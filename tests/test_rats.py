"""Tests for the RATS scheduler (Algorithm 1) and ready-list sorting."""

from __future__ import annotations

import pytest

from repro.core.params import NAIVE_DELTA, NAIVE_TIMECOST, RATSParams
from repro.core.rats import RATSScheduler, rats_schedule
from repro.core.sorting import delta_sort_value, gain_sort_value
from repro.dag.task import Task, TaskGraph
from repro.scheduling.allocation import hcpa_allocation
from repro.scheduling.mapping import ListScheduler


class TestRATSEndToEnd:
    @pytest.mark.parametrize("params", [NAIVE_DELTA, NAIVE_TIMECOST])
    def test_valid_schedule(self, tiny_cluster, model, small_random, params):
        alloc = hcpa_allocation(small_random, model,
                                tiny_cluster.num_procs).allocation
        sched = RATSScheduler(small_random, tiny_cluster, model, alloc,
                              params)
        schedule = sched.run()
        schedule.validate()
        assert len(schedule) == small_random.num_tasks

    def test_deterministic(self, tiny_cluster, model, small_random):
        alloc = hcpa_allocation(small_random, model,
                                tiny_cluster.num_procs).allocation
        runs = [
            RATSScheduler(small_random, tiny_cluster, model, alloc,
                          NAIVE_TIMECOST).run()
            for _ in range(2)
        ]
        for name in small_random.task_names():
            assert runs[0][name].procs == runs[1][name].procs

    def test_adaptations_recorded(self, tiny_cluster, model, small_random):
        alloc = hcpa_allocation(small_random, model,
                                tiny_cluster.num_procs).allocation
        sched = RATSScheduler(small_random, tiny_cluster, model, alloc,
                              NAIVE_TIMECOST)
        sched.run()
        summary = sched.adaptation_summary()
        assert set(summary) == {"stretch", "pack", "same"}
        assert len(sched.adaptations) == sum(summary.values())
        # every adaptation reuses the predecessor's exact processor set
        for r in sched.adaptations:
            assert sched.schedule[r.task].procs == sched.schedule[r.pred].procs

    def test_adapted_allocation_differs_from_input(self, tiny_cluster, model,
                                                   small_random):
        alloc = hcpa_allocation(small_random, model,
                                tiny_cluster.num_procs).allocation
        sched = RATSScheduler(small_random, tiny_cluster, model, alloc,
                              NAIVE_DELTA)
        schedule = sched.run()
        changed = [r for r in sched.adaptations if r.delta != 0]
        for r in changed:
            assert schedule[r.task].nprocs == r.to_procs != alloc[r.task]

    def test_zero_budget_delta_equals_hcpa_sizes(self, tiny_cluster, model,
                                                 small_random):
        """mindelta=maxdelta=0 only allows same-size reuse: allocation
        counts must match the first step exactly."""
        alloc = hcpa_allocation(small_random, model,
                                tiny_cluster.num_procs).allocation
        params = RATSParams("delta", mindelta=0.0, maxdelta=0.0)
        schedule = RATSScheduler(small_random, tiny_cluster, model, alloc,
                                 params).run()
        assert schedule.allocation() == alloc

    def test_rats_schedule_convenience(self, tiny_cluster, small_random):
        schedule = rats_schedule(small_random, tiny_cluster, NAIVE_TIMECOST)
        schedule.validate()

    def test_rats_free_redistributions_not_fewer(self, tiny_cluster, model,
                                                 small_random):
        """RATS must produce at least as many zero-redistribution edges as
        plain HCPA mapping (that is its whole point)."""
        alloc = hcpa_allocation(small_random, model,
                                tiny_cluster.num_procs).allocation

        def free_edges(schedule):
            return sum(
                1 for u, v, _ in small_random.edges()
                if schedule[u].procs == schedule[v].procs
            )

        base = ListScheduler(small_random, tiny_cluster, model, alloc).run()
        rats = RATSScheduler(small_random, tiny_cluster, model, alloc,
                             NAIVE_TIMECOST).run()
        assert free_edges(rats) >= free_edges(base)


class TestReadySorting:
    def _two_level_graph(self):
        g = TaskGraph(name="sorting")
        g.add_task(Task("src", data_elements=50e6, flops=10e9, alpha=0.1))
        for n, f in (("a", 10e9), ("b", 10e9)):
            g.add_task(Task(n, data_elements=50e6, flops=f, alpha=0.1))
        g.add_edge("src", "a")
        g.add_edge("src", "b")
        return g

    def test_delta_sort_prefers_small_modification(self, tiny_cluster):
        g = self._two_level_graph()
        model = tiny_cluster.performance_model()
        # a: same size as parent (delta 0); b: needs +2 (delta 2)
        alloc = {"src": 3, "a": 3, "b": 1}
        s = RATSScheduler(g, tiny_cluster, model, alloc,
                          RATSParams("delta"))
        s.commit("src", s.decision_for_procs("src", (0, 1, 2)))
        assert delta_sort_value(s, "a") == 0.0
        assert delta_sort_value(s, "b") == 2.0

    def test_gain_sort_value_positive_for_bigger_parent(self, tiny_cluster):
        g = self._two_level_graph()
        model = tiny_cluster.performance_model()
        alloc = {"src": 4, "a": 1, "b": 4}
        s = RATSScheduler(g, tiny_cluster, model, alloc,
                          RATSParams("timecost"))
        s.commit("src", s.decision_for_procs("src", (0, 1, 2, 3)))
        assert gain_sort_value(s, "a") > 0  # would run 4x wider
        assert gain_sort_value(s, "a") > gain_sort_value(s, "b")

    def test_sort_primary_is_bottom_level(self, tiny_cluster, model,
                                          small_random):
        alloc = {n: 1 for n in small_random.task_names()}
        s = RATSScheduler(small_random, tiny_cluster, model, alloc,
                          NAIVE_DELTA)
        ready = small_random.entry_tasks()
        ordered = s.sort_ready(list(ready))
        bls = [s.priorities[n] for n in ordered]
        assert bls == sorted(bls, reverse=True)

    def test_no_mapped_preds_sort_values(self, tiny_cluster, model, diamond):
        s = RATSScheduler(diamond, tiny_cluster, model,
                          {n: 1 for n in diamond.task_names()},
                          NAIVE_DELTA)
        assert delta_sort_value(s, "entry") == float("inf")
        assert gain_sort_value(s, "entry") == float("-inf")
