"""Tests for the Schedule representation and its validity invariants."""

from __future__ import annotations

import pytest

from repro.scheduling.schedule import Schedule, ScheduleEntry

from conftest import make_chain, make_diamond


class TestScheduleEntry:
    def test_basic(self):
        e = ScheduleEntry("t", (0, 1), 1.0, 3.0)
        assert e.nprocs == 2
        assert e.duration == pytest.approx(2.0)

    def test_empty_procs_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            ScheduleEntry("t", (), 0.0, 1.0)

    def test_duplicate_procs_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ScheduleEntry("t", (1, 1), 0.0, 1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError, match="finish"):
            ScheduleEntry("t", (0,), 2.0, 1.0)


class TestScheduleContainer:
    def test_add_and_lookup(self, tiny_cluster):
        g = make_chain(2)
        s = Schedule(graph=g, cluster=tiny_cluster)
        s.add(ScheduleEntry("t0", (0,), 0.0, 1.0))
        assert "t0" in s and s["t0"].finish == 1.0
        assert len(s) == 1

    def test_duplicate_task_rejected(self, tiny_cluster):
        g = make_chain(2)
        s = Schedule(graph=g, cluster=tiny_cluster)
        s.add(ScheduleEntry("t0", (0,), 0.0, 1.0))
        with pytest.raises(ValueError, match="already"):
            s.add(ScheduleEntry("t0", (1,), 0.0, 1.0))

    def test_unknown_task_rejected(self, tiny_cluster):
        s = Schedule(graph=make_chain(2), cluster=tiny_cluster)
        with pytest.raises(KeyError):
            s.add(ScheduleEntry("zz", (0,), 0.0, 1.0))

    def test_proc_out_of_range_rejected(self, tiny_cluster):
        s = Schedule(graph=make_chain(2), cluster=tiny_cluster)
        with pytest.raises(ValueError, match="out of range"):
            s.add(ScheduleEntry("t0", (99,), 0.0, 1.0))


class TestScheduleMetrics:
    def test_makespan_origin_is_earliest_start(self, tiny_cluster):
        g = make_chain(2)
        s = Schedule(graph=g, cluster=tiny_cluster)
        s.add(ScheduleEntry("t0", (0,), 5.0, 7.0))
        s.add(ScheduleEntry("t1", (0,), 7.0, 10.0))
        assert s.makespan == pytest.approx(5.0)

    def test_empty_makespan(self, tiny_cluster):
        assert Schedule(graph=make_chain(2), cluster=tiny_cluster).makespan == 0.0

    def test_total_work_from_durations(self, tiny_cluster):
        g = make_diamond()
        s = Schedule(graph=g, cluster=tiny_cluster)
        s.add(ScheduleEntry("entry", (0, 1), 0.0, 2.0))  # 4 proc-s
        assert s.total_work() == pytest.approx(4.0)

    def test_total_work_from_model(self, tiny_cluster, model):
        g = make_diamond(flops=1e9, alpha=0.0)
        s = Schedule(graph=g, cluster=tiny_cluster)
        s.add(ScheduleEntry("entry", (0, 1), 0.0, 99.0))  # duration ignored
        # model: T(2 procs) = 0.5s -> work = 1.0 proc-s
        assert s.total_work(model) == pytest.approx(1.0)

    def test_allocation_view(self, tiny_cluster):
        g = make_chain(2)
        s = Schedule(graph=g, cluster=tiny_cluster)
        s.add(ScheduleEntry("t0", (0, 1, 2), 0.0, 1.0))
        s.add(ScheduleEntry("t1", (4,), 1.0, 2.0))
        assert s.allocation() == {"t0": 3, "t1": 1}

    def test_proc_timeline_sorted(self, tiny_cluster):
        g = make_chain(3)
        s = Schedule(graph=g, cluster=tiny_cluster)
        s.add(ScheduleEntry("t0", (0,), 0.0, 1.0))
        s.add(ScheduleEntry("t1", (0,), 1.0, 2.0))
        s.add(ScheduleEntry("t2", (1,), 2.0, 3.0))
        tl = s.proc_timeline()
        assert [e.task for e in tl[0]] == ["t0", "t1"]
        assert [e.task for e in tl[1]] == ["t2"]


class TestScheduleValidate:
    def _full_chain_schedule(self, cluster) -> Schedule:
        g = make_chain(3)
        s = Schedule(graph=g, cluster=cluster)
        s.add(ScheduleEntry("t0", (0,), 0.0, 1.0))
        s.add(ScheduleEntry("t1", (0, 1), 1.0, 2.0))
        s.add(ScheduleEntry("t2", (1,), 2.0, 3.0))
        return s

    def test_valid_schedule_passes(self, tiny_cluster):
        self._full_chain_schedule(tiny_cluster).validate()

    def test_missing_task_detected(self, tiny_cluster):
        g = make_chain(2)
        s = Schedule(graph=g, cluster=tiny_cluster)
        s.add(ScheduleEntry("t0", (0,), 0.0, 1.0))
        with pytest.raises(ValueError, match="unscheduled"):
            s.validate()

    def test_precedence_violation_detected(self, tiny_cluster):
        g = make_chain(2)
        s = Schedule(graph=g, cluster=tiny_cluster)
        s.add(ScheduleEntry("t0", (0,), 0.0, 2.0))
        s.add(ScheduleEntry("t1", (1,), 1.0, 3.0))  # starts before t0 ends
        with pytest.raises(ValueError, match="precedence"):
            s.validate()

    def test_double_booking_detected(self, tiny_cluster):
        g = make_diamond()
        s = Schedule(graph=g, cluster=tiny_cluster)
        s.add(ScheduleEntry("entry", (0,), 0.0, 1.0))
        s.add(ScheduleEntry("left", (1,), 1.0, 3.0))
        s.add(ScheduleEntry("right", (1,), 2.0, 4.0))  # overlaps left on p1
        s.add(ScheduleEntry("exit", (0,), 4.0, 5.0))
        with pytest.raises(ValueError, match="double-booked"):
            s.validate()

    def test_touching_intervals_allowed(self, tiny_cluster):
        self._full_chain_schedule(tiny_cluster).validate(tol=0.0)
