"""Tests for the fluent Experiment builder and parallel run_matrix.

Includes the "third-party extension" acceptance path: a custom allocator,
mapping strategy, DAG family and platform registered from *outside*
``src/repro`` and executed end-to-end through :class:`Experiment`.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.params import RATSParams
from repro.experiments.experiment import (
    Experiment,
    ExperimentResult,
    as_algorithm_spec,
)
from repro.experiments.runner import (
    AlgorithmSpec,
    ExperimentRunner,
    baseline_spec,
    rats_spec,
)
from repro.experiments.scenarios import Scenario
from repro.platforms.cluster import Cluster
from repro.registry import (
    DagFamily,
    UnknownComponentError,
    dag_families,
    register_allocator,
    register_dag_family,
    register_mapping_strategy,
    register_platform,
)
from repro.scheduling.allocation import AllocationResult

TINY = Cluster(name="exp-tiny", num_procs=8, speed_flops=1e9)


# --------------------------------------------------------------------- #
# third-party components (module level: the process pool pickles by name)
# --------------------------------------------------------------------- #
@register_allocator("test-uniform2",
                    description="two processors for every task")
def uniform2_allocation(graph, model, total_procs, **kwargs):
    n = min(2, total_procs)
    alloc = {name: n for name in graph.task_names()}
    return AllocationResult(allocation=alloc, iterations=0, cp_length=0.0,
                           avg_area=0.0, converged=True)


@register_mapping_strategy("test-reuse",
                           description="always reuse the heaviest parent set")
class ReuseHeaviestParent:
    def __init__(self, params):
        self.params = params

    def decide(self, scheduler, name):
        preds = [(p, scheduler.schedule[p].procs)
                 for p in scheduler.graph.predecessors(name)
                 if p in scheduler.schedule]
        if not preds:
            return scheduler.best_decision(
                name, scheduler.allocation[name]), None
        pred, procs = max(
            preds, key=lambda pp: (scheduler.graph.edge_bytes(pp[0], name),
                                   pp[0]))
        from repro.core.strategies import AdaptationRecord
        decision = scheduler.decision_for_procs(name, procs)
        kind = ("stretch" if len(procs) > scheduler.allocation[name]
                else "pack" if len(procs) < scheduler.allocation[name]
                else "same")
        return decision, AdaptationRecord(
            task=name, pred=pred, kind=kind,
            from_procs=scheduler.allocation[name], to_procs=len(procs))


def _chain_id(sc):
    return f"test-chain-n{sc.n_tasks}-s{sc.sample}"


@register_dag_family("test-chain", scenario_id=_chain_id,
                     description="linear chain of uniform tasks")
def build_chain(scenario, rng):
    from repro.dag.task import Task, TaskGraph

    g = TaskGraph(name=scenario.scenario_id)
    prev = None
    for i in range(max(scenario.n_tasks, 2)):
        t = g.add_task(Task(f"t{i}", data_elements=1e6,
                            flops=float(rng.uniform(5e8, 2e9)), alpha=0.1))
        if prev is not None:
            g.add_edge(prev.name, t.name)
        prev = t
    return g


MINI = register_platform(
    Cluster(name="test-mini", num_procs=6, speed_flops=2e9),
    description="test platform")


class TestAsAlgorithmSpec:
    def test_allocator_names(self):
        for name in ("cpa", "mcpa", "hcpa"):
            spec = as_algorithm_spec(name)
            assert spec.allocator == name and not spec.is_adaptive

    def test_rats_names(self):
        spec = as_algorithm_spec("rats-delta")
        assert spec.strategy == "delta"
        assert spec.params.strategy == "delta"

    def test_tuned_names(self):
        spec = as_algorithm_spec("rats-timecost-tuned")
        assert spec.strategy == "timecost"
        assert spec.params_resolver is not None
        assert spec.resolve_params("grillon", "fft").minrho == 0.2

    def test_params_coerced(self):
        spec = as_algorithm_spec(RATSParams("delta"))
        assert spec.strategy == "delta"

    def test_spec_passthrough(self):
        spec = baseline_spec("hcpa")
        assert as_algorithm_spec(spec) is spec

    def test_unknown_name_lists_options(self):
        with pytest.raises(UnknownComponentError) as ei:
            as_algorithm_spec("rats-magic")
        msg = str(ei.value)
        assert "hcpa" in msg and "rats-delta" in msg

    def test_bad_type(self):
        with pytest.raises(TypeError):
            as_algorithm_spec(42)


class TestExperimentBuilder:
    def test_fluent_chain_returns_self(self):
        e = Experiment()
        assert e.on(TINY) is e
        assert e.workload(family="strassen") is e
        assert e.compare("hcpa") is e
        assert e.repeats(2) is e
        assert e.parallel(2) is e
        assert e.sequential() is e

    def test_build_matrix_shape(self):
        scenarios, clusters, specs = (
            Experiment().on(TINY, "test-mini")
            .workload(family="strassen")
            .compare("hcpa", "rats-delta")
            .repeats(3)
            .build())
        assert len(scenarios) == 3
        assert [c.name for c in clusters] == ["exp-tiny", "test-mini"]
        assert [s.label for s in specs] == ["hcpa", "rats-delta"]

    def test_platform_by_registry_name(self):
        (_, clusters, _) = (Experiment().on("test-mini")
                            .workload(family="strassen").compare("hcpa")
                            .build())
        assert clusters[0] is MINI

    def test_workload_samples_override_repeats(self):
        scenarios, _, _ = (Experiment().on(TINY)
                           .workload(family="strassen", samples=2)
                           .workload(family="fft", k=2)
                           .compare("hcpa").repeats(4).build())
        assert sum(s.family == "strassen" for s in scenarios) == 2
        assert sum(s.family == "fft" for s in scenarios) == 4

    def test_explicit_scenarios(self):
        scs = [Scenario(family="fft", k=2, sample=0)]
        scenarios, _, _ = (Experiment().on(TINY)
                           .workload(scenarios=scs).compare("hcpa").build())
        assert scenarios == scs

    def test_unknown_family_rejected_early(self):
        with pytest.raises(UnknownComponentError, match="strassen"):
            Experiment().workload(family="nope")

    def test_typoed_shape_parameter_rejected(self):
        # built-in families declare extra_params=(), so a misspelled field
        # errors instead of silently running a default-shape experiment
        with pytest.raises(TypeError, match="ntasks"):
            Experiment().workload(family="layered", ntasks=100, width=0.5)

    def test_custom_family_still_accepts_extras(self):
        # test-chain registers without extra_params: anything goes
        e = (Experiment().on(TINY)
             .workload(family="test-chain", n_tasks=4, depth=2)
             .compare("hcpa"))
        scenarios, _, _ = e.build()
        assert scenarios[0].extra("depth") == 2

    def test_empty_builder_errors(self):
        with pytest.raises(ValueError, match="workload"):
            Experiment().on(TINY).compare("hcpa").run()
        with pytest.raises(ValueError, match="platform"):
            Experiment().workload(family="strassen").compare("hcpa").run()
        with pytest.raises(ValueError, match="algorithm"):
            Experiment().on(TINY).workload(family="strassen").run()

    def test_estimates_only_conflicts_with_injected_runner(self):
        simulating = ExperimentRunner()
        exp = (Experiment().using(simulating).on(TINY)
               .workload(family="strassen").compare("hcpa")
               .estimates_only())
        with pytest.raises(ValueError, match="estimates_only"):
            exp.run()

    def test_estimates_only_with_matching_runner(self):
        runner = ExperimentRunner(simulate_schedules=False)
        result = (Experiment().using(runner).on(TINY)
                  .workload(family="strassen").compare("hcpa")
                  .estimates_only().run())
        assert all(r.makespan == r.estimated_makespan for r in result)

    def test_run_issue_example(self):
        result = (Experiment()
                  .on(TINY)
                  .workload(family="strassen", n_tasks=50)
                  .compare("hcpa", "rats-delta", "rats-timecost")
                  .repeats(2)
                  .run())
        assert isinstance(result, ExperimentResult)
        assert len(result) == 6  # 2 samples x 1 cluster x 3 algorithms
        assert set(result.mean_makespan()) == {
            "hcpa", "rats-delta", "rats-timecost"}
        assert result.best_algorithm() in result.mean_makespan()
        assert "best:" in result.summary()


class TestThirdPartyComponentsEndToEnd:
    """A custom allocator, strategy, family and platform through Experiment
    — without modifying any src/repro module (acceptance criterion)."""

    def test_custom_everything(self):
        result = (Experiment()
                  .on("test-mini")
                  .workload(family="test-chain", n_tasks=6)
                  .compare("test-uniform2",
                           AlgorithmSpec(label="reuse",
                                         strategy="test-reuse"),
                           "hcpa")
                  .repeats(2)
                  .run())
        assert len(result) == 6
        by_algo = result.by_algorithm()
        assert set(by_algo) == {"test-uniform2", "reuse", "hcpa"}
        for r in result:
            assert r.makespan > 0
            assert r.cluster == "test-mini"
            assert r.family == "test-chain"
        # the chain reuse strategy adapts every non-entry task
        assert all(r.stretches + r.packs + r.sames == 5
                   for r in by_algo["reuse"])

    def test_plain_callable_family_gets_generic_id(self):
        # a family registered through the bare Registry API (no DagFamily
        # wrapper) must still get the generic scenario id, not crash
        dag_families.register("test-plain", build_chain,
                              description="bare callable family")
        try:
            sc = Scenario(family="test-plain", n_tasks=4, sample=0)
            assert sc.scenario_id == "test-plain-n4-s0"
            assert sc.build().num_tasks == 4
        finally:
            dag_families.unregister("test-plain")

    def test_legacy_positional_rats_spec(self):
        # pre-registry field order was (label, kind, params)
        spec = AlgorithmSpec("d", "rats", RATSParams("delta"))
        assert spec.allocator == "hcpa" and spec.strategy == "delta"
        assert spec.kind == "rats"
        assert spec.params == RATSParams("delta")

    def test_legacy_positional_baseline_spec(self):
        spec = AlgorithmSpec("m", "mcpa")
        assert spec.allocator == "mcpa" and spec.strategy is None
        assert spec.kind == "mcpa"

    def test_custom_family_deterministic(self):
        sc = Scenario(family="test-chain", n_tasks=5, sample=1)
        g1, g2 = sc.build(), sc.build()
        assert [t.flops for t in g1.tasks()] == [t.flops for t in g2.tasks()]
        assert sc.scenario_id == "test-chain-n5-s1"

    def test_generic_scenario_id_without_formatter(self):
        dag_families.register("test-noid", DagFamily(build=build_chain),
                              description="family without id formatter")
        try:
            sc = Scenario(family="test-noid", n_tasks=4, sample=2,
                          extras=(("depth", 3),))
            assert sc.scenario_id == "test-noid-n4-depth3-s2"
            assert sc.extra("depth") == 3
            assert sc.extra("missing", 7) == 7
        finally:
            dag_families.unregister("test-noid")


class TestParallelRunMatrix:
    def _matrix(self):
        from repro.platforms.grid5000 import CHTI

        scenarios = [Scenario(family="strassen", sample=s) for s in range(4)] \
            + [Scenario(family="fft", k=2, sample=s) for s in range(4)]
        specs = [baseline_spec("hcpa", label="HCPA"),
                 rats_spec(RATSParams("delta"), label="delta"),
                 rats_spec(tuned=True, strategy="timecost", label="tc-tuned")]
        return scenarios, [CHTI], specs

    def test_parallel_matches_serial_byte_identical(self):
        scenarios, clusters, specs = self._matrix()
        serial = ExperimentRunner(record_timings=False).run_matrix(
            scenarios, clusters, specs)
        parallel = ExperimentRunner(record_timings=False).run_matrix(
            scenarios, clusters, specs, jobs=4)
        assert serial == parallel

    def test_parallel_matches_serial_modulo_wall_time(self):
        scenarios, clusters, specs = self._matrix()
        serial = ExperimentRunner().run_matrix(scenarios, clusters, specs)
        parallel = ExperimentRunner(jobs=2).run_matrix(
            scenarios, clusters, specs)
        # wall_time_s, solve_s and event_s are per-machine clocks
        timing = dict(wall_time_s=0.0, solve_s=0.0, event_s=0.0)
        strip = [replace(r, **timing) for r in serial]
        strip_p = [replace(r, **timing) for r in parallel]
        assert strip == strip_p

    def test_single_scenario_stays_serial(self):
        scenarios = [Scenario(family="strassen", sample=0)]
        r = ExperimentRunner(jobs=8).run_matrix(
            scenarios, [TINY], [baseline_spec("hcpa")])
        assert len(r) == 1

    def test_unpicklable_spec_falls_back_to_serial(self):
        scenarios = [Scenario(family="strassen", sample=s) for s in range(2)]
        spec = rats_spec(RATSParams("delta"), label="local")
        spec = replace(spec, params_resolver=lambda c, f: RATSParams("delta"))
        with pytest.warns(RuntimeWarning, match="serial"):
            r = ExperimentRunner().run_matrix(
                scenarios, [TINY], [spec], jobs=4)
        assert len(r) == 2

    def test_unpicklable_scenario_falls_back_to_serial(self):
        unpicklable = lambda: 1  # noqa: E731
        scenarios = [
            Scenario(family="strassen", sample=s,
                     extras=(("fn", unpicklable),))
            for s in range(2)]
        with pytest.warns(RuntimeWarning, match="serial"):
            r = ExperimentRunner().run_matrix(
                scenarios, [TINY], [baseline_spec("hcpa")], jobs=4)
        assert len(r) == 2

    def test_registry_snapshot_all_builtins_picklable(self):
        # the snapshot is what makes runtime registrations visible to
        # spawn/forkserver workers; built-ins must never drop out of it
        import pickle

        from repro.experiments.runner import _registry_snapshot

        snapshot = _registry_snapshot()
        names = {(section, entry.name) for section, entry in snapshot}
        for section, name in (("allocators", "hcpa"),
                              ("mapping strategies", "timecost"),
                              ("dag families", "fft"),
                              ("dag families", "strassen"),
                              ("platforms", "grillon")):
            assert (section, name) in names
        pickle.loads(pickle.dumps(snapshot))


class TestShimEquivalence:
    """rats_spec / baseline_spec produce results identical to the
    registry-path AlgorithmSpec (acceptance: deprecation-shim equivalence)."""

    def test_rats_spec_equals_registry_path(self):
        sc = [Scenario(family="fft", k=2, sample=0)]
        params = RATSParams("timecost", minrho=0.4)
        shim = ExperimentRunner(record_timings=False).run_matrix(
            sc, [TINY], [rats_spec(params, label="x")])
        new = ExperimentRunner(record_timings=False).run_matrix(
            sc, [TINY], [AlgorithmSpec(label="x", strategy="timecost",
                                       params=params)])
        assert shim == new

    def test_baseline_spec_equals_registry_path(self):
        sc = [Scenario(family="strassen", sample=0)]
        shim = ExperimentRunner(record_timings=False).run_matrix(
            sc, [TINY], [baseline_spec("mcpa", label="m")])
        new = ExperimentRunner(record_timings=False).run_matrix(
            sc, [TINY], [AlgorithmSpec(label="m", allocator="mcpa")])
        assert shim == new

    def test_legacy_kind_constructor_equals_registry_path(self):
        sc = [Scenario(family="strassen", sample=0)]
        params = RATSParams("delta")
        legacy = ExperimentRunner(record_timings=False).run_matrix(
            sc, [TINY], [AlgorithmSpec(label="d", kind="rats",
                                       params=params)])
        new = ExperimentRunner(record_timings=False).run_matrix(
            sc, [TINY], [AlgorithmSpec(label="d", strategy="delta",
                                       params=params)])
        assert legacy == new
