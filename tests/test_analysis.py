"""Tests for DAG structural analyses (levels, bottom/top levels, CP)."""

from __future__ import annotations

import pytest

from repro.dag.analysis import (
    bottom_levels,
    critical_path,
    critical_path_length,
    dag_levels,
    dag_width,
    top_levels,
)
from repro.dag.task import Task, TaskGraph

from conftest import make_chain, make_diamond


def unit_time(_name: str) -> float:
    return 1.0


class TestLevels:
    def test_chain_levels(self):
        g = make_chain(4)
        assert dag_levels(g) == {"t0": 0, "t1": 1, "t2": 2, "t3": 3}

    def test_diamond_levels(self):
        assert dag_levels(make_diamond()) == {
            "entry": 0, "left": 1, "right": 1, "exit": 2}

    def test_level_is_longest_path(self):
        # a->b->d and a->d: d must sit at level 2, not 1
        g = TaskGraph()
        for n in "abd":
            g.add_task(Task(n))
        g.add_edge("a", "b")
        g.add_edge("b", "d")
        g.add_edge("a", "d")
        assert dag_levels(g)["d"] == 2

    def test_width(self):
        assert dag_width(make_diamond()) == 2
        assert dag_width(make_chain(5)) == 1


class TestBottomTopLevels:
    def test_chain_bottom_levels_unit(self):
        g = make_chain(4)
        bl = bottom_levels(g, unit_time)
        assert bl == {"t0": 4.0, "t1": 3.0, "t2": 2.0, "t3": 1.0}

    def test_chain_top_levels_unit(self):
        g = make_chain(4)
        tl = top_levels(g, unit_time)
        assert tl == {"t0": 0.0, "t1": 1.0, "t2": 2.0, "t3": 3.0}

    def test_top_plus_bottom_constant_on_chain(self):
        g = make_chain(6)
        bl = bottom_levels(g, unit_time)
        tl = top_levels(g, unit_time)
        assert all(tl[n] + bl[n] == 6.0 for n in g.task_names())

    def test_edge_costs_included(self):
        g = make_chain(3)
        bl = bottom_levels(g, unit_time, lambda u, v: 10.0)
        # t0: 1 + 10 + (1 + 10 + 1)
        assert bl["t0"] == pytest.approx(23.0)

    def test_diamond_max_branch(self):
        g = make_diamond()

        def node_time(n: str) -> float:
            return 5.0 if n == "left" else 1.0

        bl = bottom_levels(g, node_time)
        assert bl["entry"] == pytest.approx(1 + 5 + 1)


class TestCriticalPath:
    def test_chain_is_its_own_cp(self):
        g = make_chain(4)
        assert critical_path(g, unit_time) == ["t0", "t1", "t2", "t3"]
        assert critical_path_length(g, unit_time) == pytest.approx(4.0)

    def test_diamond_follows_heavy_branch(self):
        g = make_diamond()

        def node_time(n: str) -> float:
            return 5.0 if n == "right" else 1.0

        assert critical_path(g, node_time) == ["entry", "right", "exit"]

    def test_deterministic_tie_break(self):
        g = make_diamond()
        p1 = critical_path(g, unit_time)
        p2 = critical_path(g, unit_time)
        assert p1 == p2
        assert p1[0] == "entry" and p1[-1] == "exit"

    def test_empty_graph(self):
        assert critical_path(TaskGraph(), unit_time) == []
        assert critical_path_length(TaskGraph(), unit_time) == 0.0
