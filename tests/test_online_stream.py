"""Deterministic workload sources for the online mode."""

import pytest

from repro.experiments.runner import AlgorithmSpec
from repro.experiments.scenarios import Scenario
from repro.online.stream import (
    BurstStream,
    JobArrival,
    JobStream,
    PoissonStream,
    ReplayStream,
    stream_from_spec,
)

SCEN = Scenario(family="strassen", sample=0, k=2)
SPEC = AlgorithmSpec(label="hcpa")


def _arrivals(stream) -> list[JobArrival]:
    return list(stream)


class TestPoissonStream:
    def test_replay_is_bit_identical(self):
        a = _arrivals(PoissonStream(rate=2.0, n_jobs=50, scenarios=[SCEN],
                                    spec=SPEC, seed=3))
        b = _arrivals(PoissonStream(rate=2.0, n_jobs=50, scenarios=[SCEN],
                                    spec=SPEC, seed=3))
        assert a == b
        # and iterating the *same* object twice is also identical
        s = PoissonStream(rate=2.0, n_jobs=50, scenarios=[SCEN], spec=SPEC,
                          seed=3)
        assert _arrivals(s) == _arrivals(s) == a

    def test_seed_changes_the_arrivals(self):
        a = _arrivals(PoissonStream(rate=2.0, n_jobs=20, scenarios=[SCEN],
                                    spec=SPEC, seed=0))
        b = _arrivals(PoissonStream(rate=2.0, n_jobs=20, scenarios=[SCEN],
                                    spec=SPEC, seed=1))
        assert [x.arrival_time for x in a] != [x.arrival_time for x in b]

    def test_sorted_count_and_mean_rate(self):
        arr = _arrivals(PoissonStream(rate=4.0, n_jobs=400,
                                      scenarios=[SCEN], spec=SPEC, seed=7))
        times = [x.arrival_time for x in arr]
        assert len(arr) == 400
        assert times == sorted(times)
        assert all(t > 0 for t in times)
        mean_gap = times[-1] / len(times)
        assert mean_gap == pytest.approx(1 / 4.0, rel=0.2)

    def test_round_robin_scenarios_and_specs(self):
        scen2 = Scenario(family="strassen", sample=0, k=3)
        spec2 = AlgorithmSpec(label="cpa", allocator="cpa")
        arr = _arrivals(PoissonStream(rate=1.0, n_jobs=4,
                                      scenarios=[SCEN, scen2],
                                      spec=[SPEC, spec2], seed=0))
        assert [a.scenario for a in arr] == [SCEN, scen2, SCEN, scen2]
        assert [a.spec.label for a in arr] == ["hcpa", "cpa", "hcpa", "cpa"]

    def test_is_a_jobstream(self):
        s = PoissonStream(rate=1.0, n_jobs=1, scenarios=[SCEN], spec=SPEC)
        assert isinstance(s, JobStream)

    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            PoissonStream(rate=0.0, n_jobs=1, scenarios=[SCEN], spec=SPEC)
        with pytest.raises(ValueError, match="scenario"):
            PoissonStream(rate=1.0, n_jobs=1, scenarios=[], spec=SPEC)
        with pytest.raises(ValueError, match="n_jobs"):
            PoissonStream(rate=1.0, n_jobs=-1, scenarios=[SCEN], spec=SPEC)


class TestBurstStream:
    def test_replay_is_bit_identical(self):
        mk = lambda: BurstStream(rate_on=5.0, n_jobs=60, scenarios=[SCEN],
                                 spec=SPEC, mean_on=2.0, mean_off=3.0,
                                 seed=9)
        assert _arrivals(mk()) == _arrivals(mk())

    def test_sorted_and_counted(self):
        arr = _arrivals(BurstStream(rate_on=5.0, n_jobs=80,
                                    scenarios=[SCEN], spec=SPEC,
                                    mean_on=1.0, mean_off=4.0, seed=2))
        times = [x.arrival_time for x in arr]
        assert len(arr) == 80
        assert times == sorted(times)

    def test_off_phases_are_silent_by_default(self):
        """With rate_off=0 the inter-arrival gaps show true lulls: the
        mean gap is much larger than the on-phase 1/rate_on."""
        arr = _arrivals(BurstStream(rate_on=50.0, n_jobs=200,
                                    scenarios=[SCEN], spec=SPEC,
                                    mean_on=1.0, mean_off=9.0, seed=5))
        times = [x.arrival_time for x in arr]
        span = times[-1] - times[0]
        # on 10% duty cycle the effective rate is ~5/s, not 50/s
        assert span / len(times) > 3 * (1 / 50.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="rate_on"):
            BurstStream(rate_on=0.0, n_jobs=1, scenarios=[SCEN], spec=SPEC)
        with pytest.raises(ValueError, match="rate_off"):
            BurstStream(rate_on=1.0, rate_off=-1.0, n_jobs=1,
                        scenarios=[SCEN], spec=SPEC)
        with pytest.raises(ValueError, match="durations"):
            BurstStream(rate_on=1.0, mean_on=0.0, n_jobs=1,
                        scenarios=[SCEN], spec=SPEC)


class TestReplayStream:
    def test_preserves_arrivals(self):
        arr = [JobArrival("a", 0.0, SCEN, SPEC),
               JobArrival("b", 1.5, SCEN, SPEC)]
        s = ReplayStream(arr)
        assert list(s) == arr
        assert s.n_jobs == 2

    def test_rejects_out_of_order(self):
        with pytest.raises(ValueError, match="out of order"):
            ReplayStream([JobArrival("a", 2.0, SCEN, SPEC),
                          JobArrival("b", 1.0, SCEN, SPEC)])

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ValueError, match="duplicate"):
            ReplayStream([JobArrival("a", 0.0, SCEN, SPEC),
                          JobArrival("a", 1.0, SCEN, SPEC)])

    def test_negative_arrival_rejected_at_the_source(self):
        with pytest.raises(ValueError, match="negative"):
            JobArrival("a", -0.1, SCEN, SPEC)


class TestStreamFromSpec:
    def test_poisson_defaults(self):
        s = stream_from_spec({"kind": "poisson", "jobs": 3, "seed": 4})
        assert isinstance(s, PoissonStream)
        arr = list(s)
        assert len(arr) == 3
        assert arr[0].scenario.family == "strassen"
        assert arr[0].spec.label == "hcpa"

    def test_workloads_and_algorithms_round_robin(self):
        s = stream_from_spec({
            "kind": "poisson", "jobs": 4, "rate": 2.0,
            "workloads": [{"family": "strassen", "k": 2},
                          {"family": "strassen", "k": 3}],
            "algorithms": ["hcpa", "rats-delta"]})
        arr = list(s)
        assert [a.scenario.k for a in arr] == [2, 3, 2, 3]
        assert [a.spec.label for a in arr] \
            == ["hcpa", "rats-delta", "hcpa", "rats-delta"]

    def test_samples_multiply_scenarios(self):
        s = stream_from_spec({"jobs": 4, "samples": 2,
                              "workload": {"family": "strassen", "k": 2}})
        assert [a.scenario.sample for a in list(s)] == [0, 1, 0, 1]

    def test_burst_kind(self):
        s = stream_from_spec({"kind": "burst", "jobs": 5, "rate_on": 3.0,
                              "mean_off": 2.0})
        assert isinstance(s, BurstStream)
        assert s.rate_on == 3.0 and s.mean_off == 2.0

    def test_replay_kind(self):
        s = stream_from_spec({"kind": "replay", "arrivals": [
            {"t": 0.0, "workload": {"family": "strassen", "k": 2}},
            {"t": 2.0, "workload": {"family": "strassen", "k": 2},
             "algorithm": "rats-delta", "job_id": "second"}]})
        arr = list(s)
        assert isinstance(s, ReplayStream)
        assert arr[0].job_id == "replay-00000"
        assert arr[1].job_id == "second"
        assert arr[1].spec.label == "rats-delta"

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown stream spec key"):
            stream_from_spec({"kind": "poisson", "ratee": 1.0})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown stream kind"):
            stream_from_spec({"kind": "fractal"})

    def test_workload_extras_preserved(self):
        s = stream_from_spec({"jobs": 1, "workload": {
            "family": "strassen", "k": 2, "custom_knob": 7}})
        assert dict(list(s)[0].scenario.extras)["custom_knob"] == 7
