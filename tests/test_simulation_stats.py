"""Tests for the simulation trace statistics helpers."""

from __future__ import annotations

import pytest

from repro.core.params import NAIVE_TIMECOST
from repro.core.rats import rats_schedule
from repro.scheduling.allocation import hcpa_allocation
from repro.scheduling.mapping import ListScheduler
from repro.simulation.simulator import FluidSimulator, simulate
from repro.simulation.stats import (
    edge_communication_times,
    estimation_errors,
    link_traffic,
    total_network_bytes,
)

from conftest import make_chain


@pytest.fixture
def traced_run(tiny_cluster, model, small_random):
    alloc = hcpa_allocation(small_random, model,
                            tiny_cluster.num_procs).allocation
    schedule = ListScheduler(small_random, tiny_cluster, model, alloc).run()
    result = FluidSimulator(schedule, collect_flow_traces=True).run()
    return schedule, result


class TestTraceStats:
    def test_requires_traces(self, tiny_cluster, model, small_random):
        schedule = rats_schedule(small_random, tiny_cluster, NAIVE_TIMECOST)
        res = simulate(schedule)  # traces off
        with pytest.raises(ValueError, match="flow traces"):
            total_network_bytes(res)

    def test_edge_stats_cover_remote_edges_only(self, traced_run,
                                                small_random):
        schedule, result = traced_run
        stats = edge_communication_times(result)
        all_edges = {(u, v) for u, v, _ in small_random.edges()}
        assert set(stats) <= all_edges
        for s in stats.values():
            assert s.flows >= 1
            assert s.duration >= 0
            assert s.data_bytes > 0

    def test_total_bytes_bounded_by_graph_traffic(self, traced_run,
                                                  small_random):
        _, result = traced_run
        total = total_network_bytes(result)
        assert 0 < total <= small_random.total_edge_bytes() + 1e-6

    def test_link_traffic_conservation(self, traced_run, tiny_cluster):
        """Each remote byte crosses exactly one nic_up and one nic_down on
        a flat cluster."""
        _, result = traced_run
        traffic = link_traffic(result, tiny_cluster)
        up = sum(v for (kind, _), v in traffic.items() if kind == "nic_up")
        down = sum(v for (kind, _), v in traffic.items()
                   if kind == "nic_down")
        assert up == pytest.approx(down)
        assert up == pytest.approx(total_network_bytes(result))

    def test_estimation_errors_at_least_one(self, traced_run):
        """Contention can only slow flows down relative to the isolated
        estimate (modulo the latency accounting, hence the small slack)."""
        schedule, result = traced_run
        errors = estimation_errors(result, schedule)
        assert errors
        assert all(ratio > 0.6 for ratio in errors.values())

    def test_chain_estimation_error_near_one(self, tiny_cluster, model):
        """A single transfer with no contention: observed ≈ estimated."""
        g = make_chain(2, m=1.25e8 / 8, flops=1e9, alpha=0.0)
        from repro.scheduling.schedule import Schedule, ScheduleEntry

        s = Schedule(graph=g, cluster=tiny_cluster)
        s.add(ScheduleEntry("t0", (0,), 0.0, 1.0))
        s.add(ScheduleEntry("t1", (1,), 3.0, 4.0))
        result = FluidSimulator(s, collect_flow_traces=True).run()
        errors = estimation_errors(result, s)
        assert errors[("t0", "t1")] == pytest.approx(1.0, rel=0.01)
