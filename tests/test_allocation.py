"""Tests for CPA / HCPA / MCPA allocation procedures and bounds."""

from __future__ import annotations

import pytest

from repro.dag.analysis import dag_levels
from repro.scheduling.allocation import (
    cpa_allocation,
    hcpa_allocation,
    mcpa_allocation,
)
from repro.scheduling.bounds import (
    average_area,
    critical_path_bound,
    effective_processor_count,
)

from conftest import make_chain, make_diamond


class TestBounds:
    def test_cp_bound_chain(self, model):
        g = make_chain(3, flops=1e9, alpha=0.0)  # 1s sequential each
        alloc = {n: 1 for n in g.task_names()}
        assert critical_path_bound(g, model, alloc) == pytest.approx(3.0)

    def test_cp_bound_shrinks_with_allocation(self, model):
        g = make_chain(3, flops=1e9, alpha=0.0)
        one = {n: 1 for n in g.task_names()}
        four = {n: 4 for n in g.task_names()}
        assert critical_path_bound(g, model, four) == pytest.approx(
            critical_path_bound(g, model, one) / 4)

    def test_average_area(self, model):
        g = make_diamond(flops=1e9, alpha=0.0)  # 4 tasks x 1s work
        alloc = {n: 1 for n in g.task_names()}
        assert average_area(g, model, alloc, total_procs=8) == pytest.approx(0.5)

    def test_effective_processor_policies(self):
        g = make_diamond()
        assert effective_processor_count(g, 100, "total") == 100
        assert effective_processor_count(g, 100, "ntasks") == 4
        assert effective_processor_count(g, 100, "width") == 2
        assert effective_processor_count(g, 3, "ntasks") == 3

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            effective_processor_count(make_diamond(), 4, "bogus")


class TestCPAAllocation:
    def test_stops_at_tradeoff(self, tiny_cluster, model):
        g = make_chain(4, flops=4e9, alpha=0.05)
        res = cpa_allocation(g, model, tiny_cluster.num_procs)
        assert res.converged
        assert res.cp_length <= res.avg_area + 1e-6

    def test_allocations_within_bounds(self, model):
        g = make_diamond(flops=8e9, alpha=0.1)
        res = cpa_allocation(g, model, 8)
        assert all(1 <= n <= 8 for n in res.allocation.values())

    def test_chain_gets_everything_it_needs(self, model):
        """On a pure chain with alpha=0, W̄ = total/P stays below C∞ until
        tasks are heavily parallelised."""
        g = make_chain(3, flops=8e9, alpha=0.0)
        res = cpa_allocation(g, model, 8)
        assert res.converged
        # chain: every task on the critical path, allocations grow
        assert all(n > 1 for n in res.allocation.values())

    def test_trace_records_growth(self, model):
        g = make_diamond(flops=8e9, alpha=0.1)
        res = cpa_allocation(g, model, 8, keep_trace=True)
        assert len(res.trace) == res.iterations

    def test_max_iterations_cap(self, model):
        g = make_chain(3, flops=8e9, alpha=0.0)
        res = cpa_allocation(g, model, 8, max_iterations=2)
        assert res.iterations == 2
        assert not res.converged

    def test_single_proc_cluster_trivial(self, model):
        g = make_diamond()
        res = cpa_allocation(g, model, 1)
        assert all(n == 1 for n in res.allocation.values())


class TestHCPAAllocation:
    def test_hcpa_never_allocates_more_than_cpa(self, model):
        """The bias fix can only raise W̄, so HCPA stops no later than CPA
        in total processors granted."""
        g = make_diamond(flops=50e9, alpha=0.02)
        cpa = cpa_allocation(g, model, 8)
        hcpa = hcpa_allocation(g, model, 8)
        assert hcpa.total_procs_allocated() <= cpa.total_procs_allocated()

    def test_equal_when_procs_below_ntasks(self, model):
        """P <= N makes min(P, N) = P: HCPA degenerates to CPA."""
        g = make_diamond(flops=20e9, alpha=0.05)  # 4 tasks >= 4 procs? use P=4
        cpa = cpa_allocation(g, model, 4)
        hcpa = hcpa_allocation(g, model, 4)
        assert cpa.allocation == hcpa.allocation

    def test_large_cluster_bias_fix(self, model, small_random):
        """On a 120-proc cluster with 25 tasks, HCPA must allocate far less
        total work than CPA (the §II-C motivation)."""
        cpa = cpa_allocation(small_random, model, 120)
        hcpa = hcpa_allocation(small_random, model, 120)
        assert hcpa.total_procs_allocated() < cpa.total_procs_allocated()

    def test_area_policy_override(self, model):
        g = make_diamond(flops=20e9, alpha=0.05)
        res = hcpa_allocation(g, model, 8, area_policy="width")
        assert all(1 <= n <= 8 for n in res.allocation.values())


class TestMCPAAllocation:
    def test_level_budget_respected(self, model, small_random):
        res = mcpa_allocation(small_random, model, 8)
        levels = dag_levels(small_random)
        per_level: dict[int, int] = {}
        for name, n in res.allocation.items():
            per_level[levels[name]] = per_level.get(levels[name], 0) + n
        assert all(total <= 8 for total in per_level.values())

    def test_wide_level_limits_growth(self, model):
        """A 6-task level on 8 procs leaves at most 2 spare increments."""
        from repro.dag.task import Task, TaskGraph

        g = TaskGraph(name="wide")
        g.add_task(Task("src", data_elements=1e6, flops=1e9, alpha=0.0))
        for i in range(6):
            g.add_task(Task(f"mid{i}", data_elements=1e6, flops=50e9, alpha=0.0))
            g.add_edge("src", f"mid{i}")
        g.add_task(Task("sink", data_elements=1e6, flops=1e9, alpha=0.0))
        for i in range(6):
            g.add_edge(f"mid{i}", "sink")

        res = mcpa_allocation(g, model, 8)
        mid_total = sum(res.allocation[f"mid{i}"] for i in range(6))
        assert mid_total <= 8

    def test_invalid_total_procs(self, model):
        with pytest.raises(ValueError):
            mcpa_allocation(make_diamond(), model, 0)


class TestDynamicEdgeTime:
    def test_edge_time_reevaluated_every_iteration(self, model):
        """A user edge_time callable may read evolving state: the flattened
        loop must re-evaluate it per grant, like the pre-flattening code."""
        g = make_diamond()
        n_edges = len(list(g.edges()))
        calls = []

        def edge_time(u, v):
            calls.append((u, v))
            return 0.001

        res = hcpa_allocation(g, model, 8, edge_time=edge_time)
        assert res.iterations > 0
        # initial fill + once per completed loop iteration (bl/tl share
        # one evaluation per edge)
        assert len(calls) >= n_edges * (res.iterations + 1)

    def test_static_edge_time_matches_none_shape(self, model):
        """edge_time=lambda: 0 must reproduce edge_time=None exactly."""
        g = make_diamond()
        a = hcpa_allocation(g, model, 8)
        b = hcpa_allocation(g, model, 8, edge_time=lambda u, v: 0.0)
        assert a.allocation == b.allocation
        assert a.iterations == b.iterations
        assert a.cp_length == b.cp_length
