"""Tests for the ASCII visualisation helpers."""

from __future__ import annotations

from repro.scheduling.schedule import Schedule, ScheduleEntry
from repro.viz.ascii_plot import ascii_curves, ascii_surface
from repro.viz.gantt import ascii_gantt

from conftest import make_chain


class TestAsciiCurves:
    def test_empty(self):
        assert "(no data)" in ascii_curves({})

    def test_contains_legend_and_title(self):
        out = ascii_curves(
            {"up": [(0, 0), (1, 1)], "down": [(0, 1), (1, 0)]},
            title="two lines", y_label="ratio")
        assert "two lines" in out
        assert "up" in out and "down" in out
        assert "ratio" in out

    def test_flat_series_does_not_crash(self):
        out = ascii_curves({"flat": [(0, 1.0), (1, 1.0), (2, 1.0)]})
        assert "flat" in out

    def test_single_point(self):
        out = ascii_curves({"dot": [(5.0, 2.0)]})
        assert "dot" in out


class TestAsciiSurface:
    def test_empty(self):
        assert "(no data)" in ascii_surface({})

    def test_grid_layout(self):
        values = {(x, y): x + y for x in (0.0, 1.0) for y in (0.0, 0.5)}
        out = ascii_surface(values, x_name="mind", y_name="maxd",
                            title="surface")
        assert "surface" in out
        lines = out.splitlines()
        assert len(lines) == 4  # title + header + 2 rows

    def test_missing_cells_dashed(self):
        out = ascii_surface({(0.0, 0.0): 1.0, (1.0, 1.0): 2.0})
        assert "-" in out


class TestGantt:
    def _schedule(self, cluster):
        g = make_chain(3)
        s = Schedule(graph=g, cluster=cluster)
        s.add(ScheduleEntry("t0", (0, 1), 0.0, 1.0))
        s.add(ScheduleEntry("t1", (0,), 1.0, 2.5))
        s.add(ScheduleEntry("t2", (2,), 2.5, 3.0))
        return s

    def test_empty_schedule(self, tiny_cluster):
        from repro.dag.task import TaskGraph

        s = Schedule(graph=TaskGraph(), cluster=tiny_cluster)
        assert "empty" in ascii_gantt(s)

    def test_rows_per_processor(self, tiny_cluster):
        out = ascii_gantt(self._schedule(tiny_cluster))
        assert "p0" in out and "p1" in out and "p2" in out
        assert "legend:" in out
        assert "makespan" in out

    def test_max_procs_truncation(self, tiny_cluster):
        out = ascii_gantt(self._schedule(tiny_cluster), max_procs=1)
        assert "more processors" in out

    def test_multi_proc_task_on_both_rows(self, tiny_cluster):
        out = ascii_gantt(self._schedule(tiny_cluster))
        rows = {ln.split("|")[0].strip(): ln for ln in out.splitlines()
                if ln.startswith("p")}
        sym_t0 = "A"  # t0 sorts first alphabetically
        assert sym_t0 in rows["p0"] and sym_t0 in rows["p1"]
