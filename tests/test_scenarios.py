"""Tests for the Table III scenario catalogue."""

from __future__ import annotations

import pytest

from repro.experiments.scenarios import (
    Scenario,
    all_scenarios,
    scenarios_by_family,
    subsample,
)


class TestCatalogue:
    def test_total_count_is_557(self):
        """Table III: 108 layered + 324 irregular + 100 FFT + 25 Strassen."""
        assert len(all_scenarios()) == 557

    def test_family_counts(self):
        by_family = scenarios_by_family()
        assert len(by_family["layered"]) == 108
        assert len(by_family["irregular"]) == 324
        assert len(by_family["fft"]) == 100
        assert len(by_family["strassen"]) == 25

    def test_unique_ids(self):
        ids = [s.scenario_id for s in all_scenarios()]
        assert len(set(ids)) == len(ids)

    def test_ids_stable(self):
        a = [s.scenario_id for s in all_scenarios()]
        b = [s.scenario_id for s in all_scenarios()]
        assert a == b


class TestScenarioBuild:
    def test_build_deterministic(self):
        sc = Scenario(family="layered", n_tasks=25, width=0.5, density=0.2,
                      regularity=0.8, sample=1)
        g1, g2 = sc.build(), sc.build()
        assert sorted(g1.edges()) == sorted(g2.edges())
        assert [t.flops for t in g1.tasks()] == [t.flops for t in g2.tasks()]

    def test_different_samples_differ(self):
        a = Scenario(family="fft", k=4, sample=0).build()
        b = Scenario(family="fft", k=4, sample=1).build()
        assert [t.flops for t in a.tasks()] != [t.flops for t in b.tasks()]

    def test_task_counts_match_parameters(self):
        assert Scenario(family="layered", n_tasks=50, width=0.5, density=0.2,
                        regularity=0.2, sample=0).build().num_tasks == 50
        assert Scenario(family="fft", k=8, sample=0).build().num_tasks == 39
        assert Scenario(family="strassen", sample=0).build().num_tasks == 25

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            Scenario(family="mystery", sample=0).scenario_id
        with pytest.raises(ValueError):
            Scenario(family="mystery", sample=0).build()


class TestSubsample:
    def test_full_fraction_identity(self):
        scen = all_scenarios()
        assert subsample(scen, 1.0) == scen

    def test_stratified_representation(self):
        sub = subsample(all_scenarios(), 0.1)
        families = {s.family for s in sub}
        assert families == {"layered", "irregular", "fft", "strassen"}
        # roughly proportional
        assert len(sub) == pytest.approx(56, abs=6)

    def test_minimum_one_per_family(self):
        sub = subsample(all_scenarios(), 0.001)
        assert {s.family for s in sub} == \
               {"layered", "irregular", "fft", "strassen"}

    def test_deterministic(self):
        assert subsample(all_scenarios(), 0.07) == \
               subsample(all_scenarios(), 0.07)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            subsample(all_scenarios(), 0.0)
        with pytest.raises(ValueError):
            subsample(all_scenarios(), 1.5)
