"""Tests for the automatic parameter tuning extension."""

from __future__ import annotations

import pytest

from repro.core.autotune import (
    AutotuneResult,
    autotune,
    extract_features,
    suggest_params,
)
from repro.core.params import RATSParams
from repro.dag.generator import DagShape, random_irregular_dag
from repro.platforms.cluster import Cluster
from repro.utils.rng import spawn_rng

from conftest import make_chain, make_diamond


class TestFeatures:
    def test_chain_features(self, tiny_cluster):
        g = make_chain(5, m=1e6, flops=1e9)
        f = extract_features(g, tiny_cluster)
        assert f.n_tasks == 5
        assert f.depth == 5
        assert f.width == 1
        assert f.parallelism == pytest.approx(0.2)

    def test_diamond_features(self, tiny_cluster):
        f = extract_features(make_diamond(), tiny_cluster)
        assert (f.depth, f.width) == (3, 2)

    def test_ccr_scales_with_data(self, tiny_cluster):
        light = extract_features(make_chain(3, m=1e3, flops=50e9),
                                 tiny_cluster)
        heavy = extract_features(make_chain(3, m=100e6, flops=50e9),
                                 tiny_cluster)
        assert heavy.ccr > light.ccr

    def test_describe(self, tiny_cluster):
        assert "CCR" in extract_features(make_diamond(),
                                         tiny_cluster).describe()


class TestSuggestParams:
    def test_returns_valid_params(self, tiny_cluster, small_random):
        for strategy in ("delta", "timecost"):
            p = suggest_params(small_random, tiny_cluster, strategy)
            assert isinstance(p, RATSParams)
            assert p.strategy == strategy

    def test_comm_dominated_gets_low_minrho(self, tiny_cluster):
        heavy = make_chain(4, m=121e6, flops=1e6)  # pure communication
        p = suggest_params(heavy, tiny_cluster)
        assert p.minrho <= 0.4

    def test_compute_dominated_gets_high_minrho(self, tiny_cluster):
        light = make_chain(4, m=4e6, flops=1e13)
        p = suggest_params(light, tiny_cluster)
        assert p.minrho >= 0.6

    def test_wide_dag_packs_deeper(self, tiny_cluster):
        wide = random_irregular_dag(
            DagShape(n_tasks=40, width=0.9, density=0.2, regularity=0.8),
            spawn_rng("autotune-wide"))
        narrow = make_chain(40, m=10e6, flops=10e9)
        assert suggest_params(wide, tiny_cluster).mindelta <= \
               suggest_params(narrow, tiny_cluster).mindelta

    def test_scarce_processors_limit_stretch(self, small_random):
        tiny = Cluster(name="tiny2", num_procs=4, speed_flops=1e9)
        big = Cluster(name="big", num_procs=64, speed_flops=1e9)
        assert suggest_params(small_random, tiny).maxdelta <= \
               suggest_params(small_random, big).maxdelta


class TestAutotune:
    def test_never_worse_than_naive(self, tiny_cluster, small_random):
        for strategy in ("delta", "timecost"):
            res = autotune(small_random, tiny_cluster, strategy)
            assert isinstance(res, AutotuneResult)
            assert res.best_makespan <= res.baseline_makespan + 1e-9
            assert res.improvement >= -1e-9

    def test_history_and_evaluations_recorded(self, tiny_cluster,
                                              small_random):
        res = autotune(small_random, tiny_cluster, "timecost")
        assert res.evaluations >= 2
        assert len(res.history) >= res.evaluations - 1
        assert all(s > 0 for _, s in res.history)

    def test_custom_objective(self, tiny_cluster, small_random):
        """A constant objective must terminate and keep the suggestion."""
        calls = []

        def flat(params: RATSParams) -> float:
            calls.append(params)
            return 42.0

        res = autotune(small_random, tiny_cluster, "delta", evaluate=flat)
        assert res.best_makespan == 42.0
        assert calls  # objective actually used

    def test_simulated_objective(self, tiny_cluster, small_random):
        res = autotune(small_random, tiny_cluster, "timecost",
                       simulate_candidates=True, max_rounds=1)
        assert res.best_makespan > 0

    def test_best_params_on_grid_or_suggestion(self, tiny_cluster,
                                               small_random):
        from repro.core.autotune import MINRHO_GRID

        res = autotune(small_random, tiny_cluster, "timecost")
        assert res.best_params.minrho in MINRHO_GRID + (0.5, 0.4, 0.2, 0.6)
