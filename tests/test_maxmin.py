"""Tests for Max-Min fair sharing: exact cases, optimality properties, and
pure-python vs vectorised implementation equivalence (property-based)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.maxmin import maxmin_rates, maxmin_rates_indexed


class TestExactCases:
    def test_single_flow_gets_link(self):
        assert maxmin_rates([["l"]], {"l": 10.0}) == [10.0]

    def test_two_flows_share_equally(self):
        assert maxmin_rates([["l"], ["l"]], {"l": 10.0}) == [5.0, 5.0]

    def test_classic_three_flow_example(self):
        """Flows: A on l1, B on l1+l2, C on l2; capacities 10 and 4.
        Max-Min: l2 bottleneck at 2 → B=C=2, A takes the rest of l1 = 8."""
        rates = maxmin_rates(
            [["l1"], ["l1", "l2"], ["l2"]],
            {"l1": 10.0, "l2": 4.0},
        )
        assert rates == pytest.approx([8.0, 2.0, 2.0])

    def test_rate_cap_binds(self):
        rates = maxmin_rates([["l"], ["l"]], {"l": 10.0}, rate_caps=[1.0, 100.0])
        assert rates == pytest.approx([1.0, 9.0])

    def test_empty_route_uncapped_is_infinite(self):
        assert maxmin_rates([[]], {}) == [float("inf")]

    def test_empty_route_with_cap(self):
        assert maxmin_rates([[]], {}, rate_caps=[3.0]) == [3.0]

    def test_no_flows(self):
        assert maxmin_rates([], {}) == []

    def test_missing_capacity_raises(self):
        with pytest.raises(KeyError):
            maxmin_rates([["unknown"]], {})

    def test_cap_length_mismatch(self):
        with pytest.raises(ValueError):
            maxmin_rates([["l"]], {"l": 1.0}, rate_caps=[1.0, 2.0])

    def test_bounded_multiport_pattern(self):
        """One sender to 3 receivers: sender NIC shared, each flow 1/3."""
        caps = {"up0": 9.0, "down1": 9.0, "down2": 9.0, "down3": 9.0}
        routes = [["up0", f"down{i}"] for i in (1, 2, 3)]
        assert maxmin_rates(routes, caps) == pytest.approx([3.0, 3.0, 3.0])


def _check_maxmin_properties(routes, capacities, rates):
    """Feasibility + saturation: every flow crosses a saturated link or is
    at its cap (here: uncapped, so saturated link)."""
    usage: dict[str, float] = {}
    for route, rate in zip(routes, rates):
        for link in route:
            usage[link] = usage.get(link, 0.0) + rate
    for link, used in usage.items():
        assert used <= capacities[link] * (1 + 1e-9)
    for route, rate in zip(routes, rates):
        if not route:
            continue
        saturated = any(
            usage[l] >= capacities[l] * (1 - 1e-9) for l in route)
        assert saturated, f"flow at {rate} crosses no saturated link"


@st.composite
def flow_problems(draw):
    n_links = draw(st.integers(1, 6))
    links = [f"l{i}" for i in range(n_links)]
    capacities = {
        l: draw(st.floats(0.5, 100.0)) for l in links
    }
    n_flows = draw(st.integers(1, 10))
    routes = [
        draw(st.lists(st.sampled_from(links), min_size=1, max_size=3,
                      unique=True))
        for _ in range(n_flows)
    ]
    return routes, capacities


class TestProperties:
    @settings(max_examples=80, deadline=None)
    @given(flow_problems())
    def test_feasible_and_saturating(self, problem):
        routes, capacities = problem
        rates = maxmin_rates(routes, capacities)
        _check_maxmin_properties(routes, capacities, rates)

    @settings(max_examples=80, deadline=None)
    @given(flow_problems())
    def test_indexed_matches_reference(self, problem):
        """The vectorised solver must agree with the reference solver."""
        routes, capacities = problem
        link_ids = sorted(capacities)
        index = {l: i for i, l in enumerate(link_ids)}
        cap_arr = np.array([capacities[l] for l in link_ids])
        ref = maxmin_rates(routes, capacities)
        fast = maxmin_rates_indexed(
            [[index[l] for l in r] for r in routes], cap_arr)
        np.testing.assert_allclose(fast, ref, rtol=1e-9, atol=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(flow_problems(), st.floats(0.1, 50.0))
    def test_indexed_with_uniform_caps_matches(self, problem, cap):
        routes, capacities = problem
        link_ids = sorted(capacities)
        index = {l: i for i, l in enumerate(link_ids)}
        cap_arr = np.array([capacities[l] for l in link_ids])
        caps = [cap] * len(routes)
        ref = maxmin_rates(routes, capacities, rate_caps=caps)
        fast = maxmin_rates_indexed(
            [[index[l] for l in r] for r in routes], cap_arr,
            np.array(caps))
        np.testing.assert_allclose(fast, ref, rtol=1e-9, atol=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(flow_problems())
    def test_single_flow_gets_bottleneck(self, problem):
        routes, capacities = problem
        route = routes[0]
        rates = maxmin_rates([route], capacities)
        assert rates[0] == pytest.approx(min(capacities[l] for l in route))
