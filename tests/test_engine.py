"""Tests for the generic discrete-event primitives."""

from __future__ import annotations

import pytest

from repro.simulation.engine import EventQueue, VirtualClock


class TestVirtualClock:
    def test_advances_forward(self):
        c = VirtualClock()
        c.advance_to(5.0)
        assert c.now == 5.0

    def test_rejects_backwards(self):
        c = VirtualClock(now=10.0)
        with pytest.raises(ValueError):
            c.advance_to(9.0)

    def test_idempotent_same_time(self):
        c = VirtualClock(now=3.0)
        c.advance_to(3.0)
        assert c.now == 3.0


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        out: list[str] = []
        q.push(2.0, lambda: out.append("b"))
        q.push(1.0, lambda: out.append("a"))
        q.push(3.0, lambda: out.append("c"))
        q.run_until_empty(VirtualClock())
        assert out == ["a", "b", "c"]

    def test_fifo_tie_break(self):
        q = EventQueue()
        out: list[int] = []
        for i in range(5):
            q.push(1.0, lambda i=i: out.append(i))
        q.run_until_empty(VirtualClock())
        assert out == [0, 1, 2, 3, 4]

    def test_next_time(self):
        q = EventQueue()
        assert q.next_time is None
        q.push(7.0, lambda: None)
        assert q.next_time == 7.0

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push(1.0, lambda: None)
        assert q and len(q) == 1

    def test_events_can_schedule_events(self):
        q = EventQueue()
        out: list[str] = []

        def first():
            out.append("first")
            q.push(2.0, lambda: out.append("second"))

        q.push(1.0, first)
        clock = VirtualClock()
        n = q.run_until_empty(clock)
        assert out == ["first", "second"]
        assert n == 2
        assert clock.now == 2.0

    def test_event_budget(self):
        q = EventQueue()

        def rearm():
            q.push(q.next_time or 1.0, rearm) if False else q.push(1.0, rearm)

        q.push(1.0, rearm)
        with pytest.raises(RuntimeError, match="budget"):
            q.run_until_empty(VirtualClock(), max_events=100)
