"""The scheduler raw-speed leg: indexed availability + vectorised pricing.

The project's signature guarantee is that performance work never moves a
number: the fast paths must produce ``ScheduleEntry`` lists *equal* to
the reference scan/scalar paths on every input.  The property tests here
draw random DAGs, platforms (single- and multi-cluster) and residual
``proc_release`` seedings and assert exactly that, alongside unit tests
for the :class:`~repro.scheduling.avail.AvailabilityIndex`, the batched
pricer's bitwise parity (numpy and C kernel), and the online engine's
warm-index / pipelined modes.
"""

from __future__ import annotations

import heapq

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import RATSParams
from repro.core.rats import RATSScheduler
from repro.dag.generator import DagShape, random_irregular_dag, random_layered_dag
from repro.platforms.cluster import Cluster
from repro.platforms.multicluster import MultiClusterPlatform
from repro.redistribution.cost import RedistributionCost
from repro.redistribution.pricing import BatchPricer
from repro.scheduling.allocation import hcpa_allocation
from repro.scheduling.avail import (AvailabilityIndex, platform_groups,
                                    seed_proc_avail)
from repro.scheduling.mapping import ListScheduler
from repro.scheduling.multicluster import (MultiClusterListScheduler,
                                           MultiClusterRATSScheduler)


# --------------------------------------------------------------------- #
# AvailabilityIndex unit behaviour
# --------------------------------------------------------------------- #
class TestAvailabilityIndex:
    def _reference(self, avail, count, prefer, procs):
        preferred = set(prefer)
        return heapq.nsmallest(
            count, procs,
            key=lambda p: (avail[p], p not in preferred, p))

    @given(st.data())
    @settings(max_examples=200, deadline=None)
    def test_k_smallest_matches_nsmallest(self, data):
        n = data.draw(st.integers(2, 40))
        # coarse values force ties — the tie-break order is the point
        avail = [float(v) for v in data.draw(st.lists(
            st.integers(0, 4), min_size=n, max_size=n))]
        idx = AvailabilityIndex(avail)
        count = data.draw(st.integers(1, n + 3))
        prefer = data.draw(st.lists(st.integers(0, n - 1), max_size=5,
                                    unique=True))
        got = idx.k_smallest(count, prefer)
        want = self._reference(avail, count, prefer, range(n))
        assert got == want

    @given(st.data())
    @settings(max_examples=150, deadline=None)
    def test_updates_and_group_queries(self, data):
        sizes = data.draw(st.lists(st.integers(1, 8), min_size=2,
                                   max_size=5))
        groups, start = [], 0
        for s in sizes:
            groups.append((start, start + s))
            start += s
        avail = [float(v) for v in data.draw(st.lists(
            st.integers(0, 3), min_size=start, max_size=start))]
        idx = AvailabilityIndex(avail, groups)
        for _ in range(data.draw(st.integers(0, 6))):
            p = data.draw(st.integers(0, start - 1))
            t = float(data.draw(st.integers(0, 6)))
            avail[p] = t
            idx.update(p, t)
        g = data.draw(st.integers(0, len(groups) - 1))
        lo, hi = groups[g]
        count = data.draw(st.integers(1, sizes[g] + 2))
        prefer = data.draw(st.lists(st.integers(0, start - 1), max_size=4,
                                    unique=True))
        got = idx.k_smallest(count, prefer, group=g)
        want = self._reference(
            avail, count, [p for p in prefer if lo <= p < hi],
            range(lo, hi))
        assert got == want

    def test_reseed_matches_fresh_index(self):
        rng = np.random.default_rng(7)
        avail = rng.uniform(0, 10, 30)
        idx = AvailabilityIndex(avail, [(0, 10), (10, 30)])
        idx.k_smallest(5, group=0)          # materialise sorted views
        idx.k_smallest(5, group=1)
        new = np.maximum(avail, 6.0)        # the online clamp pattern
        new[3] = 99.0
        idx.reseed(new)
        fresh = AvailabilityIndex(new, [(0, 10), (10, 30)])
        for g in (0, 1, None):
            assert idx.k_smallest(30, group=g) == \
                fresh.k_smallest(30, group=g)

    def test_update_many_marks_only_touched_groups(self):
        idx = AvailabilityIndex([0.0] * 8, [(0, 4), (4, 8)])
        idx.k_smallest(4, group=0)
        idx.k_smallest(4, group=1)
        idx.update_many((5, 6), 2.0)
        assert idx._sorted[0] is not None   # untouched cluster stays sorted
        assert idx._sorted[1] is None
        assert idx.k_smallest(4, group=1) == [4, 7, 5, 6]

    def test_groups_must_partition(self):
        with pytest.raises(ValueError):
            AvailabilityIndex([0.0] * 4, [(0, 2), (3, 4)])

    def test_platform_groups(self):
        cl = Cluster(name="pg", num_procs=5, speed_flops=1e9)
        assert platform_groups(cl) == [(0, 5)]
        mc = MultiClusterPlatform(clusters=(
            Cluster(name="pg0", num_procs=3, speed_flops=1e9),
            Cluster(name="pg1", num_procs=4, speed_flops=1e9)),
            name="pg-mc")
        assert platform_groups(mc) == [(0, 3), (3, 7)]


class TestSeedProcAvail:
    def test_defaults_to_zeros(self):
        assert seed_proc_avail(None, 3) == [0.0, 0.0, 0.0]

    def test_validates_length_everywhere(self):
        # the shared helper is the single seeding path of every
        # scheduler variant — all four must reject a short vector
        g = random_layered_dag(DagShape(n_tasks=4),
                               np.random.default_rng(0))
        cl = Cluster(name="seed1", num_procs=4, speed_flops=1e9)
        mc = MultiClusterPlatform(clusters=(
            Cluster(name="seed2", num_procs=2, speed_flops=1e9),
            Cluster(name="seed3", num_procs=2, speed_flops=1e9)),
            name="seed-mc")
        model = cl.performance_model()
        alloc = {n: 1 for n in g.task_names()}
        bad = [0.0, 0.0]
        params = RATSParams("timecost")
        with pytest.raises(ValueError, match="proc_release"):
            ListScheduler(g, cl, model, alloc, proc_release=bad)
        with pytest.raises(ValueError, match="proc_release"):
            RATSScheduler(g, cl, model, alloc, params, proc_release=bad)
        with pytest.raises(ValueError, match="proc_release"):
            MultiClusterListScheduler(g, mc, alloc, proc_release=bad)
        with pytest.raises(ValueError, match="proc_release"):
            MultiClusterRATSScheduler(g, mc, alloc, params,
                                      proc_release=bad)


# --------------------------------------------------------------------- #
# property: fast paths == reference paths, entry for entry
# --------------------------------------------------------------------- #
def _draw_platform(data):
    if data.draw(st.booleans()):
        n = data.draw(st.integers(2, 20))
        return Cluster(name="prop-c", num_procs=n, speed_flops=1e9,
                       bandwidth_Bps=1e8, latency_s=1e-4)
    sizes = data.draw(st.lists(st.integers(2, 8), min_size=2, max_size=4))
    speeds = [float(data.draw(st.sampled_from([1.0e9, 2.0e9, 3.0e9])))
              for _ in sizes]
    return MultiClusterPlatform(clusters=tuple(
        Cluster(name=f"prop-{k}", num_procs=s, speed_flops=sp,
                bandwidth_Bps=1e8, latency_s=1e-4)
        for k, (s, sp) in enumerate(zip(sizes, speeds))),
        name="prop-mc")


def _draw_case(data):
    seed = data.draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    shape = DagShape(n_tasks=data.draw(st.integers(3, 18)))
    maker = random_layered_dag if data.draw(st.booleans()) \
        else random_irregular_dag
    graph = maker(shape, rng)
    platform = _draw_platform(data)
    model = platform.performance_model()
    allocation = hcpa_allocation(graph, model, platform.num_procs).allocation
    if data.draw(st.booleans()):   # residual seeding (the online case)
        release = [float(t) for t in rng.uniform(0.0, 4.0,
                                                 platform.num_procs)]
    else:
        release = None
    return graph, platform, model, allocation, release


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_list_scheduler_fastpath_byte_identical(data):
    graph, platform, model, allocation, release = _draw_case(data)
    if hasattr(platform, "clusters"):
        fast = MultiClusterListScheduler(
            graph, platform, allocation, proc_release=release).run()
        ref = MultiClusterListScheduler(
            graph, platform, allocation, proc_release=release,
            avail_index=False, vector_price=False).run()
    else:
        fast = ListScheduler(graph, platform, model, allocation,
                             proc_release=release).run()
        ref = ListScheduler(graph, platform, model, allocation,
                            proc_release=release,
                            avail_index=False, vector_price=False).run()
    assert fast.entries == ref.entries


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_rats_scheduler_fastpath_byte_identical(data):
    graph, platform, model, allocation, release = _draw_case(data)
    params = RATSParams(data.draw(st.sampled_from(["timecost", "delta"])))
    if hasattr(platform, "clusters"):
        fast = MultiClusterRATSScheduler(
            graph, platform, allocation, params,
            proc_release=release).run()
        ref = MultiClusterRATSScheduler(
            graph, platform, allocation, params, proc_release=release,
            avail_index=False, vector_price=False).run()
    else:
        fast = RATSScheduler(graph, platform, model, allocation, params,
                             proc_release=release).run()
        ref = RATSScheduler(graph, platform, model, allocation, params,
                            proc_release=release,
                            avail_index=False, vector_price=False).run()
    assert fast.entries == ref.entries
    assert fast.makespan == ref.makespan


def test_rich_policy_fastpath_and_set_extension():
    # micro-regression for the extension-pool scan: the pool filter now
    # goes through a set, and the indexed path must reproduce the same
    # predecessor-extended candidates
    rng = np.random.default_rng(11)
    graph = random_layered_dag(DagShape(n_tasks=12), rng)
    cl = Cluster(name="rich", num_procs=12, speed_flops=1e9,
                 bandwidth_Bps=1e8, latency_s=1e-4)
    model = cl.performance_model()
    allocation = hcpa_allocation(graph, model, cl.num_procs).allocation
    runs = [ListScheduler(graph, cl, model, allocation,
                          candidates="rich", avail_index=fast,
                          vector_price=fast).run()
            for fast in (True, False)]
    assert runs[0].entries == runs[1].entries


# --------------------------------------------------------------------- #
# batched pricing: bitwise parity, kernel kill switch
# --------------------------------------------------------------------- #
class TestBatchPricing:
    def _platform(self):
        return MultiClusterPlatform(clusters=tuple(
            Cluster(name=f"bp{k}", num_procs=8,
                    speed_flops=1e9 * (k + 1), bandwidth_Bps=1e8,
                    latency_s=1e-4) for k in range(3)),
            name="bp-mc")

    def test_price_batch_matches_scalar(self):
        plat = self._platform()
        ref = RedistributionCost(plat)
        batched = RedistributionCost(plat)
        rng = np.random.default_rng(3)
        for _ in range(40):
            p = int(rng.integers(1, 7))
            src = tuple(int(x) for x in
                        rng.choice(24, size=p, replace=False))
            dsts = []
            for _ in range(int(rng.integers(1, 5))):
                q = int(rng.integers(1, 7))
                dsts.append(tuple(int(x) for x in
                                  rng.choice(24, size=q, replace=False)))
            data = float(rng.uniform(0, 1e7))
            times, remotes = batched.price_batch(src, dsts, data)
            for d, t, r in zip(dsts, times, remotes):
                assert t == ref.time(src, d, data)
                assert r == ref.remote_bytes(src, d, data)

    def test_hierarchical_cluster_falls_back(self):
        cab = Cluster(name="bp-cab", num_procs=8, speed_flops=1e9,
                      cabinets=2, cabinet_size=4)
        assert BatchPricer.for_cluster(cab) is None
        rc = RedistributionCost(cab)
        times, remotes = rc.price_batch((0, 1), [(2, 3), (4, 5)], 1e6)
        assert times[0] == rc.time((0, 1), (2, 3), 1e6)
        assert remotes[1] == rc.remote_bytes((0, 1), (4, 5), 1e6)

    def test_kernel_kill_switch(self, monkeypatch):
        # REPRO_NO_C_KERNEL must force the numpy path and leave every
        # priced value unchanged
        plat = self._platform()
        src, dsts, data = (0, 1, 2), [(1, 2, 3, 4), (8, 9), (16, 17, 18)], 3.3e6
        with_kernel = RedistributionCost(plat).price_batch(src, dsts, data)
        monkeypatch.setenv("REPRO_NO_C_KERNEL", "1")
        from repro.network import _ckernel
        assert _ckernel.load_pricing_kernel() is None
        without = RedistributionCost(plat).price_batch(src, dsts, data)
        assert with_kernel == without

    def test_kernel_numpy_masked_stats_bitwise(self):
        from repro.network._ckernel import load_pricing_kernel
        kernel = load_pricing_kernel()
        if kernel is None:
            pytest.skip("no C compiler available")
        cl = Cluster(name="bp-k", num_procs=16, speed_flops=1e9)
        bp = BatchPricer.for_cluster(cl)
        rng = np.random.default_rng(5)
        for _ in range(100):
            p, q = int(rng.integers(1, 9)), int(rng.integers(1, 9))
            data = float(rng.uniform(1, 1e7))
            arena = bp._arena_for(data, p, q)
            src = np.array(rng.choice(16, size=p, replace=False),
                           dtype=np.int64)
            dst = np.array(rng.choice(16, size=q, replace=False),
                           dtype=np.int64)
            assert bp._masked_stats(arena, src, dst, p, q, kernel) == \
                bp._masked_stats(arena, src, dst, p, q, None)


# --------------------------------------------------------------------- #
# online engine: warm index and pipelining stay byte-identical
# --------------------------------------------------------------------- #
class TestOnlineFastpath:
    def _stream(self, n_jobs=25, adaptive=False):
        from repro.experiments.runner import AlgorithmSpec
        from repro.experiments.scenarios import Scenario
        from repro.online.stream import PoissonStream

        scenarios = [Scenario(family="layered", n_tasks=10, width=0.5,
                              density=0.2, regularity=0.8, sample=s)
                     for s in range(3)]
        spec = (AlgorithmSpec(label="rats-timecost", strategy="timecost")
                if adaptive else AlgorithmSpec(label="hcpa"))
        return PoissonStream(rate=2.0, n_jobs=n_jobs, scenarios=scenarios,
                             spec=spec, seed=0)

    def _platform(self):
        return MultiClusterPlatform(clusters=tuple(
            Cluster(name=f"on{k}", num_procs=12, speed_flops=3.0e9)
            for k in range(6)), name="on-mc")

    @pytest.mark.parametrize("adaptive", [False, True])
    def test_warm_index_and_pipeline_byte_identical(self, adaptive):
        from repro.online.engine import OnlineSimulator

        plat = self._platform()
        ref = OnlineSimulator(plat, avail_index=False,
                              vector_price=False).run(
            self._stream(adaptive=adaptive))
        for kw in ({}, {"pipeline": True}):
            res = OnlineSimulator(plat, **kw).run(
                self._stream(adaptive=adaptive))
            assert res.records == ref.records
            assert res.makespan == ref.makespan
            assert res.events == ref.events

    def test_pipeline_requires_accept_all(self):
        from repro.online.engine import OnlineSimulator

        with pytest.raises(ValueError, match="accept-all"):
            OnlineSimulator(self._platform(), admission="queue-cap:2",
                            pipeline=True)

    def test_result_reports_time_attribution(self):
        from repro.online.engine import OnlineSimulator

        res = OnlineSimulator(self._platform()).run(self._stream(n_jobs=8))
        assert res.sched_s > 0.0
        assert res.sim_s > 0.0
