"""Tests for the delta and time-cost adaptation strategies (§III-A/B)."""

from __future__ import annotations

import pytest

from repro.core.params import RATSParams
from repro.core.rats import RATSScheduler
from repro.core.strategies import DeltaStrategy, TimeCostStrategy, make_strategy
from repro.dag.task import Task, TaskGraph


def fork_graph(n_children=2, m=50e6, flops=20e9, alpha=0.1):
    """src feeding n identical children."""
    g = TaskGraph(name="fork")
    g.add_task(Task("src", data_elements=m, flops=flops, alpha=alpha))
    for i in range(n_children):
        g.add_task(Task(f"c{i}", data_elements=m, flops=flops, alpha=alpha))
        g.add_edge("src", f"c{i}")
    return g


def scheduler_with_mapped_src(cluster, params, src_procs, child_alloc,
                              graph=None):
    """Build a RATSScheduler with 'src' pre-mapped on ``src_procs``."""
    g = graph or fork_graph()
    model = cluster.performance_model()
    alloc = {n: child_alloc for n in g.task_names()}
    alloc["src"] = len(src_procs)
    sched = RATSScheduler(g, cluster, model, alloc, params)
    d = sched.decision_for_procs("src", tuple(src_procs))
    sched.commit("src", d)
    return sched


class TestMakeStrategy:
    def test_dispatch(self):
        assert isinstance(make_strategy(RATSParams("delta")), DeltaStrategy)
        assert isinstance(make_strategy(RATSParams("timecost")),
                          TimeCostStrategy)


class TestDeltaStrategy:
    def test_equal_size_parent_reused(self, tiny_cluster):
        params = RATSParams("delta", mindelta=-0.5, maxdelta=0.5)
        s = scheduler_with_mapped_src(tiny_cluster, params, (2, 3), 2)
        decision, record = s.strategy.decide(s, "c0")
        assert record is not None and record.kind == "same"
        assert decision.procs == (2, 3)

    def test_stretch_within_maxdelta(self, tiny_cluster):
        # child alloc 2, parent 3: delta+ = 1 <= 0.5*2
        params = RATSParams("delta", mindelta=0.0, maxdelta=0.5)
        s = scheduler_with_mapped_src(tiny_cluster, params, (1, 2, 3), 2)
        decision, record = s.strategy.decide(s, "c0")
        assert record is not None and record.kind == "stretch"
        assert decision.procs == (1, 2, 3)

    def test_stretch_beyond_maxdelta_rejected(self, tiny_cluster):
        # child alloc 2, parent 4: delta+ = 2 > 0.5*2 = 1
        params = RATSParams("delta", mindelta=0.0, maxdelta=0.5)
        s = scheduler_with_mapped_src(tiny_cluster, params, (0, 1, 2, 3), 2)
        _, record = s.strategy.decide(s, "c0")
        assert record is None

    def test_pack_within_mindelta(self, tiny_cluster):
        # child alloc 4, parent 2: delta- = -2 >= -0.5*4
        params = RATSParams("delta", mindelta=-0.5, maxdelta=0.0)
        s = scheduler_with_mapped_src(tiny_cluster, params, (5, 6), 4)
        decision, record = s.strategy.decide(s, "c0")
        assert record is not None and record.kind == "pack"
        assert decision.procs == (5, 6)

    def test_pack_beyond_mindelta_rejected(self, tiny_cluster):
        # child alloc 4, parent 1: delta- = -3 < -0.5*4 = -2
        params = RATSParams("delta", mindelta=-0.5, maxdelta=0.0)
        s = scheduler_with_mapped_src(tiny_cluster, params, (5,), 4)
        _, record = s.strategy.decide(s, "c0")
        assert record is None

    def test_paper_example_maxdelta(self, tiny_cluster):
        """Np(t)=6, maxdelta=0.5 -> stretched allocation at most 9."""
        g = fork_graph()
        params = RATSParams("delta", maxdelta=0.5, mindelta=0.0)
        # parent has 9 procs -> delta+ = 3 <= 3: allowed
        s = scheduler_with_mapped_src(
            tiny_cluster.__class__(name="big", num_procs=16, speed_flops=1e9),
            params, tuple(range(9)), 6, graph=g)
        _, record = s.strategy.decide(s, "c0")
        assert record is not None and record.to_procs == 9

    def test_smaller_modification_wins(self, tiny_cluster):
        """With one parent at +1 and another at -2, stretch (+1) wins."""
        g = TaskGraph(name="two-parents")
        for n in ("a", "b", "child"):
            g.add_task(Task(n, data_elements=50e6, flops=20e9, alpha=0.1))
        g.add_edge("a", "child")
        g.add_edge("b", "child")
        model = tiny_cluster.performance_model()
        params = RATSParams("delta", mindelta=-1.0, maxdelta=1.0)
        sched = RATSScheduler(g, tiny_cluster, model,
                              {"a": 3, "b": 1, "child": 2}, params)
        sched.commit("a", sched.decision_for_procs("a", (0, 1, 2)))
        sched.commit("b", sched.decision_for_procs("b", (3,)))
        decision, record = sched.strategy.decide(sched, "child")
        assert record is not None
        assert record.pred == "a" and record.delta == 1

    def test_no_mapped_parent_keeps_default(self, tiny_cluster):
        g = fork_graph()
        params = RATSParams("delta")
        sched = RATSScheduler(g, tiny_cluster,
                              tiny_cluster.performance_model(),
                              {n: 2 for n in g.task_names()}, params)
        decision, record = sched.strategy.decide(sched, "src")
        assert record is None and decision.nprocs == 2


class TestTimeCostStrategy:
    def test_equal_parent_rho_one_reused(self, tiny_cluster):
        params = RATSParams("timecost", minrho=0.9)
        s = scheduler_with_mapped_src(tiny_cluster, params, (2, 3), 2)
        decision, record = s.strategy.decide(s, "c0")
        assert record is not None and record.kind == "same"
        assert decision.procs == (2, 3)

    def test_low_rho_stretch_rejected(self, tiny_cluster):
        """A highly serial task (alpha=0.9) wastes work when stretched:
        rho < minrho keeps the original allocation."""
        g = fork_graph(m=1e3, flops=20e9, alpha=0.9)
        params = RATSParams("timecost", minrho=0.9)
        s = scheduler_with_mapped_src(tiny_cluster, params, (0, 1, 2, 3, 4, 5),
                                      1, graph=g)
        _, record = s.strategy.decide(s, "c0")
        assert record is None

    def test_perfectly_parallel_stretch_accepted(self, tiny_cluster):
        """alpha=0: stretching keeps work constant (rho=1) and kills the
        redistribution: always beneficial."""
        g = fork_graph(m=50e6, flops=20e9, alpha=0.0)
        params = RATSParams("timecost", minrho=0.99)
        s = scheduler_with_mapped_src(tiny_cluster, params, (0, 1, 2, 3), 2,
                                      graph=g)
        decision, record = s.strategy.decide(s, "c0")
        assert record is not None and record.kind == "stretch"
        assert decision.procs == (0, 1, 2, 3)

    def test_pack_only_when_finish_not_worse(self, tiny_cluster):
        """Packing a compute-heavy, tiny-data task doubles its execution
        time for no redistribution gain: rejected."""
        g = fork_graph(m=1e3, flops=40e9, alpha=0.0)  # negligible data
        params = RATSParams("timecost", minrho=1.0, allow_pack=True)
        s = scheduler_with_mapped_src(tiny_cluster, params, (7,), 4, graph=g)
        _, record = s.strategy.decide(s, "c0")
        assert record is None or record.kind != "pack"

    def test_pack_accepted_when_data_dominates(self, tiny_cluster):
        """Huge data, trivial compute: starting right away on the parent's
        single proc beats waiting for a redistribution."""
        g = fork_graph(m=121e6, flops=1e6, alpha=0.0)
        params = RATSParams("timecost", minrho=1.0, allow_pack=True)
        s = scheduler_with_mapped_src(tiny_cluster, params, (7,), 4, graph=g)
        decision, record = s.strategy.decide(s, "c0")
        assert record is not None and record.kind == "pack"
        assert decision.procs == (7,)

    def test_allow_pack_false_disables_packing(self, tiny_cluster):
        g = fork_graph(m=121e6, flops=1e6, alpha=0.0)
        params = RATSParams("timecost", minrho=1.0, allow_pack=False)
        s = scheduler_with_mapped_src(tiny_cluster, params, (7,), 4, graph=g)
        _, record = s.strategy.decide(s, "c0")
        assert record is None

    def test_guard_stretch_rejects_worse_finish(self, tiny_cluster):
        """Parent procs busy far into the future: stretching onto them
        (even at rho=1) must be rejected when guarded."""
        g = fork_graph(n_children=2, m=1e3, flops=20e9, alpha=0.0)
        params = RATSParams("timecost", minrho=0.2, guard_stretch=True)
        s = scheduler_with_mapped_src(tiny_cluster, params, (0, 1, 2), 2,
                                      graph=g)
        # occupy the parent's procs for a long time
        s.proc_avail[0] = s.proc_avail[1] = s.proc_avail[2] = 1e6
        _, record = s.strategy.decide(s, "c0")
        assert record is None or record.kind == "pack"


class TestConsumedParents:
    def test_second_sibling_cannot_reclaim_parent(self, tiny_cluster):
        """Once c0 claims src's allocation, c1 must not pile onto it
        (Algorithm 1, line 11)."""
        params = RATSParams("delta", mindelta=-0.5, maxdelta=0.5)
        s = scheduler_with_mapped_src(tiny_cluster, params, (2, 3), 2)
        entry0 = s.map_task("c0")
        assert entry0.procs == (2, 3)
        assert "src" in s.consumed_parents
        _, record = s.strategy.decide(s, "c1")
        assert record is None  # no claimable parent left
