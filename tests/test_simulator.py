"""Tests for the fluid simulator: hand-computed cases, invariants and
agreement with the scheduler's estimates in contention-free settings."""

from __future__ import annotations

import pytest

from repro.core.params import NAIVE_TIMECOST
from repro.core.rats import rats_schedule
from repro.platforms.cluster import Cluster
from repro.scheduling.allocation import hcpa_allocation
from repro.scheduling.mapping import ListScheduler
from repro.scheduling.schedule import Schedule, ScheduleEntry
from repro.simulation.simulator import FluidSimulator, simulate

from conftest import make_chain, make_diamond


def manual_schedule(graph, cluster, placements) -> Schedule:
    """placements: name -> (procs, start, finish)."""
    s = Schedule(graph=graph, cluster=cluster)
    for name, (procs, start, finish) in placements.items():
        s.add(ScheduleEntry(task=name, procs=procs, start=start,
                            finish=finish))
    return s


class TestSingleTask:
    def test_one_task_runs_for_its_duration(self, tiny_cluster):
        from repro.dag.task import Task, TaskGraph

        g = TaskGraph(name="solo")
        g.add_task(Task("t", data_elements=1e3, flops=2e9, alpha=0.0))
        sched = manual_schedule(g, tiny_cluster, {"t": ((0, 1), 0.0, 1.0)})
        res = simulate(sched)
        assert res.makespan == pytest.approx(1.0)
        assert res.task_traces["t"].start == 0.0


class TestChainTiming:
    def test_same_procs_no_communication(self, tiny_cluster):
        """Two chained tasks on the same ordered set: no transfer at all."""
        g = make_chain(2, m=120e6, flops=1e9, alpha=0.0)
        sched = manual_schedule(g, tiny_cluster, {
            "t0": ((0, 1), 0.0, 0.5),
            "t1": ((0, 1), 0.5, 1.0),
        })
        res = simulate(sched)
        assert res.makespan == pytest.approx(1.0)
        assert res.events > 0 and res.maxmin_solves == 0  # no flows at all

    def test_disjoint_procs_pay_transfer(self, tiny_cluster):
        """1 proc -> 1 other proc: transfer = bytes/beta + latency."""
        m_bytes = 1.25e8  # 1 second at 1 Gb/s
        g = make_chain(2, m=m_bytes / 8, flops=1e9, alpha=0.0)
        sched = manual_schedule(g, tiny_cluster, {
            "t0": ((0,), 0.0, 1.0),
            "t1": ((1,), 2.0, 3.0),
        })
        res = simulate(sched)
        tr = res.task_traces
        expected_start = 1.0 + tiny_cluster.latency_s + 1.0
        assert tr["t1"].start == pytest.approx(expected_start, rel=1e-6)
        assert res.makespan == pytest.approx(expected_start + 1.0, rel=1e-6)

    def test_scatter_transfer_time(self, tiny_cluster):
        """1 -> 4 procs: the sender NIC is the bottleneck; receivers pull
        m/4 each but serially share the sender's 1 Gb/s."""
        m_bytes = 1.25e8
        g = make_chain(2, m=m_bytes / 8, flops=1e9, alpha=0.0)
        sched = manual_schedule(g, tiny_cluster, {
            "t0": ((0,), 0.0, 1.0),
            "t1": ((1, 2, 3, 4), 2.5, 3.0),
        })
        res = simulate(sched)
        # all 4 flows share the sender's NIC: total m_bytes at 1 Gb/s = 1 s
        assert res.task_traces["t1"].start == pytest.approx(
            2.0 + tiny_cluster.latency_s, rel=1e-5)

    def test_partial_overlap_cheaper_than_disjoint(self, tiny_cluster):
        g = make_chain(2, m=120e6, flops=8e9, alpha=0.0)

        def sim_with(procs1):
            sched = manual_schedule(g, tiny_cluster, {
                "t0": ((0, 1), 0.0, 4.0),
                "t1": (procs1, 100.0, 104.0),  # generous estimates
            })
            return simulate(sched).task_traces["t1"].start

        overlap = sim_with((0, 1, 2, 3))
        disjoint = sim_with((4, 5, 6, 7))
        same = sim_with((0, 1))
        # overlapping sets never pay more than disjoint ones; the identical
        # ordered set pays nothing at all
        assert overlap <= disjoint + 1e-9
        assert same == pytest.approx(4.0)  # t0 finish, no transfer
        assert same < disjoint


class TestContention:
    def test_two_transfers_share_receiver_nic(self, tiny_cluster):
        """diamond: left and right both send m to exit on one proc; the
        receiver NIC halves each flow's bandwidth."""
        m_bytes = 1.25e8  # 1 s alone
        g = make_diamond(m=m_bytes / 8, flops=1e9, alpha=0.0)
        sched = manual_schedule(g, tiny_cluster, {
            "entry": ((4,), 0.0, 1.0),
            "left": ((0,), 2.1, 3.1),
            "right": ((1,), 2.1, 3.1),
            "exit": ((2,), 9.9, 10.9),
        })
        res = simulate(sched)
        # entry->left/right: two flows from proc4 share its NIC (2s each);
        # left/right->exit: both finish at the same time, two flows into
        # proc2's NIC: 2 seconds for both.
        tr = res.task_traces
        assert tr["left"].start == pytest.approx(
            1.0 + 2.0 + tiny_cluster.latency_s, rel=1e-4)
        exit_start = tr["exit"].start
        lr_finish = max(tr["left"].finish, tr["right"].finish)
        assert exit_start == pytest.approx(
            lr_finish + 2.0 + tiny_cluster.latency_s, rel=1e-4)

    def test_hierarchical_cabinet_bottleneck(self, hier_cluster):
        """4 senders in cabinet 0 -> 4 receivers in cabinet 1: the shared
        cabinet uplink makes the transfer 4x slower than NIC speed."""
        from repro.dag.task import Task, TaskGraph

        m_bytes = 1.25e8
        g = TaskGraph(name="cab")
        g.add_task(Task("a", data_elements=4 * m_bytes / 8, flops=4e9,
                        alpha=0.0))
        g.add_task(Task("b", data_elements=4 * m_bytes / 8, flops=4e9,
                        alpha=0.0))
        g.add_edge("a", "b")
        sched = manual_schedule(g, hier_cluster, {
            "a": ((0, 1, 2, 3), 0.0, 1.0),
            "b": ((4, 5, 6, 7), 99.0, 100.0),
        })
        res = simulate(sched)
        # 4 x 1Gb/s NICs feed a single 1Gb/s cabinet uplink: 4 x m_bytes
        # through one link = 4 seconds
        assert res.task_traces["b"].start == pytest.approx(
            1.0 + 4.0 + 2 * hier_cluster.latency_s, rel=1e-4)


class TestSimulationInvariants:
    def test_simulated_times_respect_schedule_structure(self, tiny_cluster,
                                                        model, small_random):
        alloc = hcpa_allocation(small_random, model,
                                tiny_cluster.num_procs).allocation
        schedule = ListScheduler(small_random, tiny_cluster, model,
                                 alloc).run()
        res = simulate(schedule)
        executed = res.as_executed_schedule(schedule)
        executed.validate()  # precedence + processor exclusivity hold

    def test_simulated_never_faster_than_estimate(self, tiny_cluster, model,
                                                  small_random):
        """The scheduler's estimate is contention-free, so the simulated
        makespan can only be equal or longer."""
        alloc = hcpa_allocation(small_random, model,
                                tiny_cluster.num_procs).allocation
        schedule = ListScheduler(small_random, tiny_cluster, model,
                                 alloc).run()
        res = simulate(schedule)
        assert res.makespan >= schedule.makespan * (1 - 1e-9)

    def test_durations_preserved(self, tiny_cluster, model, small_random):
        alloc = hcpa_allocation(small_random, model,
                                tiny_cluster.num_procs).allocation
        schedule = ListScheduler(small_random, tiny_cluster, model,
                                 alloc).run()
        res = simulate(schedule)
        for name, tr in res.task_traces.items():
            assert tr.duration == pytest.approx(schedule[name].duration,
                                                rel=1e-9)
            assert tr.procs == schedule[name].procs

    def test_rats_schedule_simulates(self, tiny_cluster, small_random):
        schedule = rats_schedule(small_random, tiny_cluster, NAIVE_TIMECOST)
        res = simulate(schedule)
        assert res.makespan > 0

    def test_flow_traces_collected_on_demand(self, tiny_cluster, model):
        g = make_chain(2, m=1e6, flops=1e9, alpha=0.0)
        sched = manual_schedule(g, tiny_cluster, {
            "t0": ((0,), 0.0, 1.0),
            "t1": ((1,), 5.0, 6.0),
        })
        res_without = simulate(sched)
        assert res_without.flow_traces == []
        res_with = FluidSimulator(sched, collect_flow_traces=True).run()
        assert len(res_with.flow_traces) == 1
        ft = res_with.flow_traces[0]
        assert ft.edge == ("t0", "t1") and ft.src == 0 and ft.dst == 1
        assert ft.finish > ft.release

    def test_event_counts_reported(self, tiny_cluster, model, small_random):
        alloc = hcpa_allocation(small_random, model,
                                tiny_cluster.num_procs).allocation
        schedule = ListScheduler(small_random, tiny_cluster, model,
                                 alloc).run()
        res = simulate(schedule)
        assert res.events > 0
        assert res.maxmin_solves >= 0
