"""Tests for the resumable campaign engine: result stores, content-hash
keys, the persistent pool lifecycle and the streaming ``iter_matrix``."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.params import NAIVE_DELTA, NAIVE_TIMECOST, RATSParams
from repro.experiments.runner import (
    AlgorithmSpec,
    ExperimentRunner,
    baseline_spec,
    rats_spec,
)
from repro.experiments.scenarios import Scenario
from repro.experiments.store import (
    JsonlStore,
    MemoryStore,
    ResultStore,
    SqliteStore,
    StoreConflictError,
    content_key,
    merge_stores,
    open_store,
    run_key,
)
from repro.platforms.cluster import Cluster

TINY = Cluster(name="store-tiny", num_procs=8, speed_flops=1e9)
TINY2 = Cluster(name="store-tiny2", num_procs=6, speed_flops=2e9)

SCENARIO = Scenario(family="strassen", sample=0)
HCPA = baseline_spec("hcpa", label="HCPA")


def small_matrix():
    scenarios = [Scenario(family="strassen", sample=s) for s in range(2)] \
        + [Scenario(family="fft", k=2, sample=s) for s in range(2)]
    specs = [HCPA, rats_spec(NAIVE_DELTA, label="delta")]
    return scenarios, [TINY], specs


class TestRunKey:
    def test_stable_within_process(self):
        assert run_key(SCENARIO, TINY, HCPA) == run_key(SCENARIO, TINY, HCPA)

    def test_accepts_cluster_name(self):
        assert run_key(SCENARIO, TINY, HCPA) == \
            run_key(SCENARIO, "store-tiny", HCPA)

    def test_discriminates_every_component(self):
        base = run_key(SCENARIO, TINY, HCPA)
        assert run_key(Scenario(family="strassen", sample=1), TINY,
                       HCPA) != base
        assert run_key(SCENARIO, TINY2, HCPA) != base
        assert run_key(SCENARIO, TINY, baseline_spec("mcpa")) != base
        assert run_key(SCENARIO, TINY,
                       rats_spec(NAIVE_TIMECOST, label="tc")) != base
        assert run_key(SCENARIO, TINY, HCPA, simulated=False) != base

    def test_tuned_resolver_hashes_to_resolved_params(self):
        # a params_resolver spec and the explicit equivalent RATSParams
        # must share a key: both identify the same computation
        from repro.core.params import tuned_params

        tuned = rats_spec(tuned=True, strategy="delta", label="delta")
        explicit = AlgorithmSpec(
            label="delta", strategy="delta",
            params=tuned_params("grillon", "fft", "delta"))
        scenario = Scenario(family="fft", k=2, sample=0)
        assert run_key(scenario, "grillon", tuned) == \
            run_key(scenario, "grillon", explicit)

    def test_content_key_is_blind_to_label_only(self):
        a = baseline_spec("hcpa", label="HCPA")
        b = baseline_spec("hcpa", label="hcpa")
        assert run_key(SCENARIO, TINY, a) != run_key(SCENARIO, TINY, b)
        assert content_key(SCENARIO, TINY, a) == \
            content_key(SCENARIO, TINY, b)
        # anything that changes the computation still changes the key
        base = content_key(SCENARIO, TINY, a)
        assert content_key(SCENARIO, TINY2, a) != base
        assert content_key(SCENARIO, TINY, baseline_spec("mcpa")) != base
        assert content_key(SCENARIO, TINY,
                           rats_spec(NAIVE_DELTA, label="HCPA")) != base
        assert content_key(SCENARIO, TINY, a, simulated=False) != base

    def test_stable_across_processes(self):
        code = (
            "import sys; sys.path.insert(0, 'src')\n"
            "from repro.experiments.runner import baseline_spec\n"
            "from repro.experiments.scenarios import Scenario\n"
            "from repro.experiments.store import run_key\n"
            "print(run_key(Scenario(family='strassen', sample=0),\n"
            "              'store-tiny', baseline_spec('hcpa', "
            "label='HCPA')))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            cwd=Path(__file__).resolve().parent.parent, check=True)
        assert out.stdout.strip() == run_key(SCENARIO, TINY, HCPA)


class TestStores:
    def test_memory_store_hit_miss_accounting(self):
        store = MemoryStore()
        runner = ExperimentRunner(store=store, record_timings=False)
        first = runner.run(SCENARIO, TINY, HCPA)
        assert (store.stats.hits, store.stats.misses,
                store.stats.puts) == (0, 1, 1)
        second = runner.run(SCENARIO, TINY, HCPA)
        assert second == first
        assert (store.stats.hits, store.stats.misses,
                store.stats.puts) == (1, 1, 1)
        assert len(store) == 1 and store.stats.lookups == 2

    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "results.jsonl"
        with JsonlStore(path) as store:
            runner = ExperimentRunner(store=store, record_timings=False)
            result = runner.run(SCENARIO, TINY, HCPA)
        with JsonlStore(path) as reopened:
            assert len(reopened) == 1
            key = run_key(SCENARIO, TINY, HCPA)
            assert reopened.get(key) == result
            assert key in reopened

    def test_jsonl_put_is_idempotent(self, tmp_path):
        path = tmp_path / "results.jsonl"
        key = run_key(SCENARIO, TINY, HCPA)
        with JsonlStore(path) as store:
            result = ExperimentRunner(record_timings=False).run(
                SCENARIO, TINY, HCPA)
            store.put(key, result)
            store.put(key, result)
            assert store.stats.puts == 1
        assert len(path.read_text().splitlines()) == 1

    def test_jsonl_tolerates_crash_truncated_tail(self, tmp_path):
        """A campaign killed mid-write leaves a partial last line; the
        next campaign must resume from the intact prefix."""
        path = tmp_path / "results.jsonl"
        scenarios, clusters, specs = small_matrix()
        with JsonlStore(path) as store:
            with ExperimentRunner(store=store,
                                  record_timings=False) as runner:
                full = runner.run_matrix(scenarios, clusters, specs)
        # simulate the crash: drop half a line from the end
        text = path.read_text()
        path.write_text(text[: len(text) - 40])
        with JsonlStore(path) as store:
            assert store.skipped_lines == 1
            assert len(store) == len(full) - 1
            with ExperimentRunner(store=store,
                                  record_timings=False) as runner:
                resumed = runner.run_matrix(scenarios, clusters, specs)
            assert resumed == full
            assert store.stats.misses == 1  # only the clipped run re-ran
        # and the file is whole again
        with JsonlStore(path) as store:
            assert store.skipped_lines == 0 and len(store) == len(full)

    def test_open_store(self, tmp_path):
        assert isinstance(open_store(None), MemoryStore)
        store = open_store(tmp_path / "s.jsonl")
        assert isinstance(store, JsonlStore)
        store.close()

    def test_open_store_suffix_dispatch(self, tmp_path):
        for name in ("s.sqlite", "s.sqlite3", "s.db", "S.SQLITE"):
            store = open_store(tmp_path / name)
            assert isinstance(store, SqliteStore), name
            store.close()
        for name in ("s.jsonl", "s.json", "s.results"):
            store = open_store(tmp_path / name)
            assert isinstance(store, JsonlStore), name
            store.close()

    def test_stores_satisfy_protocol(self, tmp_path):
        assert isinstance(MemoryStore(), ResultStore)
        with SqliteStore(tmp_path / "p.sqlite") as store:
            assert isinstance(store, ResultStore)


class TestSqliteStore:
    def test_roundtrip_reopen(self, tmp_path):
        path = tmp_path / "results.sqlite"
        with SqliteStore(path) as store:
            runner = ExperimentRunner(store=store, record_timings=False)
            result = runner.run(SCENARIO, TINY, HCPA)
        with SqliteStore(path) as reopened:
            assert len(reopened) == 1
            key = run_key(SCENARIO, TINY, HCPA)
            assert key in reopened
            assert reopened.get(key) == result
            assert reopened.items() == [(key, result)]
            assert reopened.results() == [result]
            assert list(reopened) == [key]

    def test_hit_miss_accounting(self, tmp_path):
        with SqliteStore(tmp_path / "s.sqlite") as store:
            runner = ExperimentRunner(store=store, record_timings=False)
            first = runner.run(SCENARIO, TINY, HCPA)
            assert (store.stats.hits, store.stats.misses,
                    store.stats.puts) == (0, 1, 1)
            assert runner.run(SCENARIO, TINY, HCPA) == first
            assert (store.stats.hits, store.stats.misses,
                    store.stats.puts) == (1, 1, 1)

    def test_put_is_idempotent(self, tmp_path):
        key = run_key(SCENARIO, TINY, HCPA)
        result = ExperimentRunner(record_timings=False).run(
            SCENARIO, TINY, HCPA)
        with SqliteStore(tmp_path / "s.sqlite") as store:
            store.put(key, result)
            store.put(key, result)
            assert store.stats.puts == 1 and len(store) == 1

    def test_second_matrix_pass_zero_simulations(self, tmp_path):
        scenarios, clusters, specs = small_matrix()
        path = tmp_path / "campaign.sqlite"
        with SqliteStore(path) as store:
            with ExperimentRunner(store=store,
                                  record_timings=False) as runner:
                first = runner.run_matrix(scenarios, clusters, specs)
            assert store.stats.misses == 8 and store.stats.puts == 8
        with SqliteStore(path) as store:
            runner = ExperimentRunner(store=store, record_timings=False)
            runner._execute = lambda *a: (_ for _ in ()).throw(
                AssertionError("fresh simulation on a warm store"))
            second = runner.run_matrix(scenarios, clusters, specs)
            assert store.stats.hits == 8 and store.stats.misses == 0
        assert second == first

    def test_rejects_non_sqlite_file(self, tmp_path):
        path = tmp_path / "bogus.sqlite"
        path.write_text("this is not a database\n" * 10)
        with pytest.raises(ValueError, match="not a repro SQLite"):
            SqliteStore(path)


class TestSqliteWriteBatching:
    def _result(self):
        return ExperimentRunner(record_timings=False).run(
            SCENARIO, TINY, HCPA)

    def test_batched_puts_commit_on_flush(self, tmp_path):
        path = tmp_path / "b.sqlite"
        result = self._result()
        with SqliteStore(path, batch_size=8) as store:
            for i in range(5):
                store.put(f"k{i}", result)
            # reads see the buffered rows …
            assert len(store) == 5
            assert "k3" in store and store.get("k3") == result
            assert {k for k, _ in store.items()} == {f"k{i}"
                                                     for i in range(5)}
            # … but nothing is committed yet: a crash here loses the batch
            with SqliteStore(path) as other:
                assert len(other) == 0
            store.flush()
            with SqliteStore(path) as other:
                assert len(other) == 5
        assert store.stats.puts == 5

    def test_batch_size_triggers_flush(self, tmp_path):
        path = tmp_path / "b.sqlite"
        result = self._result()
        with SqliteStore(path, batch_size=3) as store:
            store.put("k0", result)
            store.put("k1", result)
            with SqliteStore(path) as other:
                assert len(other) == 0
            store.put("k2", result)  # third put fills the batch
            with SqliteStore(path) as other:
                assert len(other) == 3

    def test_close_flushes_pending(self, tmp_path):
        path = tmp_path / "b.sqlite"
        result = self._result()
        with SqliteStore(path, batch_size=100) as store:
            store.put("k0", result)
        with SqliteStore(path) as other:
            assert other.get("k0") == result

    def test_pending_puts_are_idempotent(self, tmp_path):
        result = self._result()
        with SqliteStore(tmp_path / "b.sqlite", batch_size=10) as store:
            store.put("k", result)
            store.put("k", result)
            assert store.stats.puts == 1 and len(store) == 1

    def test_default_batch_size_commits_per_put(self, tmp_path):
        path = tmp_path / "b.sqlite"
        result = self._result()
        with SqliteStore(path) as store:
            store.put("k0", result)
            with SqliteStore(path) as other:   # durable immediately
                assert len(other) == 1

    def test_open_store_batch_size(self, tmp_path):
        with open_store(tmp_path / "b.sqlite", batch_size=4) as store:
            assert store.batch_size == 4
        # non-sqlite backends simply ignore it (they flush per put)
        with open_store(tmp_path / "b.jsonl", batch_size=4) as store:
            store.flush()  # present and a no-op

    def test_runner_flushes_per_chunk(self, tmp_path):
        scenarios, clusters, specs = small_matrix()
        path = tmp_path / "campaign.sqlite"
        with SqliteStore(path, batch_size=10**6) as store:
            with ExperimentRunner(store=store,
                                  record_timings=False) as runner:
                first = runner.run_matrix(scenarios, clusters, specs)
            # every chunk was flushed by the runner despite the huge
            # batch: the rows are durable before close()
            with SqliteStore(path) as other:
                assert len(other) == len(first) == 8

    def test_batch_size_validation(self, tmp_path):
        with pytest.raises(ValueError, match="batch_size"):
            SqliteStore(tmp_path / "b.sqlite", batch_size=0)


class TestMergeStores:
    def _populated(self, path, scenarios) -> list:
        with open_store(path) as store:
            with ExperimentRunner(store=store,
                                  record_timings=False) as runner:
                return runner.run_matrix(scenarios, [TINY], [HCPA])

    def test_merges_disjoint_stores(self, tmp_path):
        a = [Scenario(family="strassen", sample=s) for s in range(2)]
        b = [Scenario(family="fft", k=2, sample=s) for s in range(2)]
        self._populated(tmp_path / "a.jsonl", a)
        self._populated(tmp_path / "b.jsonl", b)
        stats = merge_stores([tmp_path / "a.jsonl", tmp_path / "b.jsonl"],
                             tmp_path / "m.jsonl")
        assert (stats.stores, stats.merged, stats.duplicates) == (2, 4, 0)
        with open_store(tmp_path / "m.jsonl") as merged:
            assert len(merged) == 4
        assert "4 results merged from 2 stores" in stats.describe()

    def test_identical_overlap_counts_as_duplicate(self, tmp_path):
        a = [Scenario(family="strassen", sample=0)]
        self._populated(tmp_path / "a.jsonl", a)
        self._populated(tmp_path / "b.jsonl", a)
        stats = merge_stores([tmp_path / "a.jsonl", tmp_path / "b.jsonl"],
                             tmp_path / "m.jsonl")
        assert stats.merged == 1 and stats.duplicates == 1

    def test_wall_time_differences_are_not_conflicts(self, tmp_path):
        """Shard machines time runs differently; only science fields
        decide conflicts."""
        scenarios = [Scenario(family="strassen", sample=0)]
        with open_store(tmp_path / "a.jsonl") as store:
            with ExperimentRunner(store=store) as runner:  # timings on
                runner.run_matrix(scenarios, [TINY], [HCPA])
        with open_store(tmp_path / "b.jsonl") as store:
            with ExperimentRunner(store=store) as runner:
                runner.run_matrix(scenarios, [TINY], [HCPA])
        stats = merge_stores([tmp_path / "a.jsonl", tmp_path / "b.jsonl"],
                             tmp_path / "m.jsonl")
        assert stats.duplicates == 1

    def test_conflicting_results_refuse_to_merge(self, tmp_path):
        import dataclasses

        scenarios = [Scenario(family="strassen", sample=0)]
        [result] = self._populated(tmp_path / "a.jsonl", scenarios)
        key = run_key(scenarios[0], TINY, HCPA)
        with open_store(tmp_path / "b.jsonl") as store:
            store.put(key, dataclasses.replace(result,
                                               makespan=result.makespan * 2))
        with pytest.raises(StoreConflictError, match="conflicts"):
            merge_stores([tmp_path / "a.jsonl", tmp_path / "b.jsonl"],
                         tmp_path / "m.jsonl")

    def test_cross_backend_merge_converts(self, tmp_path):
        scenarios = [Scenario(family="strassen", sample=0)]
        self._populated(tmp_path / "a.jsonl", scenarios)
        stats = merge_stores([tmp_path / "a.jsonl"], tmp_path / "m.sqlite")
        assert stats.merged == 1
        with open_store(tmp_path / "m.sqlite") as merged:
            assert isinstance(merged, SqliteStore) and len(merged) == 1

    def test_missing_input_errors(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            merge_stores([tmp_path / "nope.jsonl"], tmp_path / "m.jsonl")
        with pytest.raises(ValueError, match="at least one"):
            merge_stores([], tmp_path / "m.jsonl")


class TestResumableMatrix:
    def test_72_run_matrix_second_pass_zero_simulations(self, tmp_path):
        """Acceptance: a 72-run matrix executed twice against one
        JsonlStore performs 0 fresh simulations on the second pass."""
        scenarios = [Scenario(family="strassen", sample=s) for s in range(6)] \
            + [Scenario(family="fft", k=2, sample=s) for s in range(6)]
        clusters = [TINY, TINY2]
        specs = [HCPA, rats_spec(NAIVE_DELTA, label="delta"),
                 rats_spec(NAIVE_TIMECOST, label="time-cost")]
        assert len(scenarios) * len(clusters) * len(specs) == 72

        path = tmp_path / "campaign.jsonl"
        with JsonlStore(path) as store:
            with ExperimentRunner(store=store,
                                  record_timings=False) as runner:
                first = runner.run_matrix(scenarios, clusters, specs)
            assert store.stats.misses == 72 and store.stats.puts == 72

        with JsonlStore(path) as store:
            executions = []
            runner = ExperimentRunner(store=store, record_timings=False)
            runner._execute = lambda *a: executions.append(a)  # trip-wire
            second = runner.run_matrix(scenarios, clusters, specs)
            assert executions == []  # zero simulations
            assert store.stats.hits == 72 and store.stats.misses == 0
            assert second == first

    def test_mid_campaign_crash_resume(self, tmp_path):
        """Only the runs missing from the store are computed on resume."""
        scenarios, clusters, specs = small_matrix()
        path = tmp_path / "crash.jsonl"
        with JsonlStore(path) as store:
            with ExperimentRunner(store=store,
                                  record_timings=False) as runner:
                # the "crashed" first campaign got through half the runs
                runner.run_matrix(scenarios[:2], clusters, specs)
            assert store.stats.puts == 4
        with JsonlStore(path) as store:
            with ExperimentRunner(store=store,
                                  record_timings=False) as runner:
                results = runner.run_matrix(scenarios, clusters, specs)
            assert store.stats.hits == 4 and store.stats.misses == 4
        fresh = ExperimentRunner(record_timings=False).run_matrix(
            scenarios, clusters, specs)
        assert results == fresh

    def test_store_hits_skip_pool_submission(self, tmp_path):
        """A fully-cached matrix never touches the process pool."""
        scenarios, clusters, specs = small_matrix()
        with JsonlStore(tmp_path / "s.jsonl") as store:
            with ExperimentRunner(store=store,
                                  record_timings=False) as runner:
                first = runner.run_matrix(scenarios, clusters, specs)
            with ExperimentRunner(store=store, record_timings=False,
                                  jobs=4) as runner:
                second = runner.run_matrix(scenarios, clusters, specs)
                assert runner._pool is None  # nothing was submitted
            assert second == first


class TestIterMatrix:
    def test_iter_equals_run_serial(self):
        scenarios, clusters, specs = small_matrix()
        runner = ExperimentRunner(record_timings=False)
        streamed = list(runner.iter_matrix(scenarios, clusters, specs))
        ordered = runner.run_matrix(scenarios, clusters, specs)
        assert streamed == ordered  # serial streaming is already in order

    def test_iter_equals_run_jobs2(self):
        scenarios, clusters, specs = small_matrix()
        with ExperimentRunner(record_timings=False, jobs=2) as runner:
            streamed = list(runner.iter_matrix(scenarios, clusters, specs))
            ordered = runner.run_matrix(scenarios, clusters, specs)
        assert len(streamed) == len(ordered)
        key = lambda r: (r.scenario_id, r.cluster, r.algorithm)  # noqa: E731
        assert sorted(streamed, key=key) == sorted(ordered, key=key)

    def test_distinct_scenarios_sharing_an_id_run_separately(self, tmp_path):
        """A custom family whose id formatter drops a distinguishing
        field must still execute every cell against its own scenario —
        cells are grouped by Scenario value, not bare scenario_id, and
        store keys carry the full constructor fields."""
        from repro.dag.generator import DagShape, random_layered_dag
        from repro.registry import dag_families, register_dag_family

        @register_dag_family("id-clash",
                             scenario_id=lambda sc: "id-clash-static",
                             description="deliberately degenerate ids")
        def build_id_clash(scenario, rng):
            return random_layered_dag(
                DagShape(n_tasks=scenario.n_tasks, width=0.5,
                         regularity=0.8, density=0.2), rng)

        try:
            small = Scenario(family="id-clash", n_tasks=6, sample=0)
            large = Scenario(family="id-clash", n_tasks=12, sample=0)
            assert small.scenario_id == large.scenario_id
            results = ExperimentRunner(record_timings=False).run_matrix(
                [small, large], [TINY], [HCPA])
            assert [r.n_tasks for r in results] == [6, 12]

            # the degenerate id must not alias store entries either
            assert run_key(small, TINY, HCPA) != run_key(large, TINY, HCPA)
            with JsonlStore(tmp_path / "clash.jsonl") as store:
                with ExperimentRunner(store=store,
                                      record_timings=False) as runner:
                    runner.run_matrix([small, large], [TINY], [HCPA])
                assert store.stats.puts == 2
            with JsonlStore(tmp_path / "clash.jsonl") as store:
                with ExperimentRunner(store=store,
                                      record_timings=False) as runner:
                    resumed = runner.run_matrix([small, large], [TINY],
                                                [HCPA])
                assert store.stats.misses == 0
            assert [r.n_tasks for r in resumed] == [6, 12]
        finally:
            dag_families.unregister("id-clash")

    def test_iter_yields_store_hits_first(self, tmp_path):
        scenarios, clusters, specs = small_matrix()
        with JsonlStore(tmp_path / "s.jsonl") as store:
            runner = ExperimentRunner(store=store, record_timings=False)
            runner.run_matrix(scenarios[:2], clusters, specs)
            stream = runner.iter_matrix(scenarios, clusters, specs)
            first_four = [next(stream) for _ in range(4)]
            assert {r.scenario_id for r in first_four} == \
                {s.scenario_id for s in scenarios[:2]}
            rest = list(stream)
            assert len(rest) == 4


class TestPersistentPool:
    def test_pool_survives_across_matrices(self):
        scenarios, clusters, specs = small_matrix()
        with ExperimentRunner(record_timings=False, jobs=2) as runner:
            runner.run_matrix(scenarios[:2], clusters, specs)
            pool = runner._pool
            assert pool is not None
            runner.run_matrix(scenarios[2:], clusters, specs)
            assert runner._pool is pool
        assert runner._pool is None  # context exit closed it

    def test_close_is_idempotent_and_reusable(self):
        scenarios, clusters, specs = small_matrix()
        runner = ExperimentRunner(record_timings=False, jobs=2)
        runner.close()
        runner.close()
        results = runner.run_matrix(scenarios, clusters, specs)
        assert runner._pool is not None
        runner.close()
        assert runner._pool is None
        # a closed runner recreates the pool on demand
        again = runner.run_matrix(scenarios, clusters, specs)
        assert again == results
        runner.close()

    def test_pool_recreated_when_registry_changes(self):
        from repro.registry import platforms, register_platform

        scenarios, clusters, specs = small_matrix()
        with ExperimentRunner(record_timings=False, jobs=2) as runner:
            runner.run_matrix(scenarios, clusters, specs)
            pool = runner._pool
            register_platform(
                Cluster(name="store-pool-extra", num_procs=4,
                        speed_flops=1e9),
                description="registered mid-campaign")
            try:
                runner.run_matrix(scenarios, clusters, specs)
                # the registry snapshot changed, so the workers restarted
                assert runner._pool is not pool
            finally:
                platforms.unregister("store-pool-extra")

    def test_pool_workers_capped_at_chunks_and_grow(self):
        scenarios, clusters, specs = small_matrix()
        with ExperimentRunner(record_timings=False, jobs=8) as runner:
            runner.run_matrix(scenarios[:2], clusters, specs)
            assert runner._pool_workers == 2  # not 8 idle interpreters
            small_pool = runner._pool
            runner.run_matrix(scenarios, clusters, specs)
            # a larger matrix can use more of the requested jobs
            assert runner._pool is not small_pool
            assert runner._pool_workers == 4

    def test_store_results_identical_serial_vs_pool(self, tmp_path):
        scenarios, clusters, specs = small_matrix()
        with JsonlStore(tmp_path / "serial.jsonl") as store:
            with ExperimentRunner(store=store,
                                  record_timings=False) as runner:
                serial = runner.run_matrix(scenarios, clusters, specs)
        with JsonlStore(tmp_path / "pool.jsonl") as store:
            with ExperimentRunner(store=store, record_timings=False,
                                  jobs=2) as runner:
                pooled = runner.run_matrix(scenarios, clusters, specs)
        assert serial == pooled


class TestMultiClusterThroughEngine:
    """Acceptance: a registered MultiClusterPlatform runs end-to-end
    through the same iter_matrix path as single clusters."""

    def _grid_matrix(self):
        from repro.registry import platforms

        grid = platforms.build("grid5000-grid")
        scenarios = [Scenario(family="strassen", sample=s) for s in range(2)]
        specs = [HCPA, rats_spec(NAIVE_TIMECOST, label="tc")]
        return scenarios, [grid], specs

    def test_grid_serial_vs_pool_byte_identical(self):
        scenarios, clusters, specs = self._grid_matrix()
        serial = ExperimentRunner(record_timings=False).run_matrix(
            scenarios, clusters, specs)
        with ExperimentRunner(record_timings=False, jobs=2) as runner:
            pooled = runner.run_matrix(scenarios, clusters, specs)
        assert serial == pooled
        assert all(r.cluster == "grid5000-grid" for r in serial)
        assert all(r.makespan > 0 for r in serial)

    def test_grid_through_experiment_builder(self):
        from repro.experiments.experiment import Experiment

        result = (Experiment()
                  .on("grid5000-grid")
                  .workload(family="strassen")
                  .compare("hcpa", "rats-timecost")
                  .repeats(2)
                  .run())
        assert len(result) == 4
        assert {r.cluster for r in result} == {"grid5000-grid"}
        # the adaptive runs report adaptation counts like single clusters
        assert any(r.stretches + r.packs + r.sames > 0
                   for r in result.by_algorithm()["rats-timecost"])

    def test_grid_mixed_with_single_cluster(self, tmp_path):
        """One matrix spanning a plain cluster and a grid, through one
        store — the ROADMAP's 'target grids, not just single clusters'."""
        from repro.registry import platforms

        grid = platforms.build("grid5000-grid")
        scenarios = [Scenario(family="fft", k=2, sample=s) for s in range(2)]
        clusters = [TINY, grid]
        specs = [HCPA]
        with JsonlStore(tmp_path / "mixed.jsonl") as store:
            with ExperimentRunner(store=store,
                                  record_timings=False) as runner:
                first = runner.run_matrix(scenarios, clusters, specs)
            assert store.stats.puts == 4
        with JsonlStore(tmp_path / "mixed.jsonl") as store:
            with ExperimentRunner(store=store,
                                  record_timings=False) as runner:
                second = runner.run_matrix(scenarios, clusters, specs)
            assert store.stats.misses == 0
        assert second == first

    def test_reference_allocator_spec_on_grid(self):
        scenarios, clusters, specs = self._grid_matrix()
        ref = AlgorithmSpec(label="ref", allocator="reference")
        results = ExperimentRunner(record_timings=False).run_matrix(
            scenarios, clusters, [ref])
        hcpa = ExperimentRunner(record_timings=False).run_matrix(
            scenarios, clusters, [AlgorithmSpec(label="ref",
                                                allocator="hcpa")])
        # on a multi-cluster platform the runner hands every allocator the
        # reference model, so "reference" is HCPA by construction
        assert results == hcpa


class TestExperimentStore:
    def test_experiment_store_chaining(self, tmp_path):
        from repro.experiments.experiment import Experiment

        path = str(tmp_path / "exp.jsonl")

        def build():
            return (Experiment().on(TINY)
                    .workload(family="strassen", samples=2)
                    .compare("hcpa"))

        first = build().store(path).run()
        second = build().store(path).run()
        assert tuple(second) == tuple(first)

    def test_experiment_store_path_is_lazy(self, tmp_path):
        from repro.experiments.experiment import Experiment

        path = tmp_path / "lazy.jsonl"
        exp = (Experiment().on(TINY).workload(family="strassen")
               .compare("hcpa").store(str(path)))
        assert not path.exists()  # nothing opened until execution
        exp.run()
        assert path.exists()

    def test_experiment_leaves_injected_runner_store_untouched(self, tmp_path):
        from repro.experiments.experiment import Experiment

        with ExperimentRunner(record_timings=False) as runner:
            (Experiment().using(runner).on(TINY)
             .workload(family="strassen").compare("hcpa")
             .store(str(tmp_path / "scoped.jsonl")).run())
            assert runner.store is None  # attachment was call-scoped
            # and the run actually went through the store
            with JsonlStore(tmp_path / "scoped.jsonl") as reopened:
                assert len(reopened) == 1

    def test_experiment_stream(self):
        from repro.experiments.experiment import Experiment

        exp = (Experiment().on(TINY)
               .workload(family="strassen", samples=2)
               .compare("hcpa", "rats-delta"))
        streamed = list(exp.stream())
        assert len(streamed) == 4
        assert {r.algorithm for r in streamed} == {"hcpa", "rats-delta"}


class TestPluginEntryPoints:
    def test_load_plugins_invokes_callable_and_imports_module(self, monkeypatch):
        import repro.registry as registry_mod

        calls = []

        class FakeEntryPoint:
            def __init__(self, name, obj):
                self.name = name
                self._obj = obj

            def load(self):
                if isinstance(self._obj, Exception):
                    raise self._obj
                return self._obj

        def fake_entry_points(*, group):
            assert group == "repro.plugins"
            import types

            mod = types.ModuleType("fake_plugin_module")
            return [
                FakeEntryPoint("callable-plugin",
                               lambda: calls.append("called")),
                FakeEntryPoint("module-plugin", mod),
            ]

        import importlib.metadata

        monkeypatch.setattr(importlib.metadata, "entry_points",
                            fake_entry_points)
        loaded = registry_mod.load_plugins(reload=True)
        assert loaded == ["callable-plugin", "module-plugin"]
        assert calls == ["called"]

    def test_broken_plugin_warns_but_does_not_break(self, monkeypatch):
        import repro.registry as registry_mod

        class BrokenEntryPoint:
            name = "broken"

            def load(self):
                raise RuntimeError("boom")

        import importlib.metadata

        monkeypatch.setattr(importlib.metadata, "entry_points",
                            lambda *, group: [BrokenEntryPoint()])
        with pytest.warns(RuntimeWarning, match="broken"):
            loaded = registry_mod.load_plugins(reload=True)
        assert loaded == []

    def test_second_load_is_noop_without_reload(self):
        import repro.registry as registry_mod

        assert registry_mod.load_plugins() == []
