"""Tests for the Amdahl performance model, incl. the monotonicity
invariants the RATS strategies rely on (property-based)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dag.task import Task
from repro.model.amdahl import AmdahlModel

task_strategy = st.builds(
    Task,
    name=st.just("t"),
    data_elements=st.floats(1e3, 1e9),
    flops=st.floats(1e6, 1e13),
    alpha=st.floats(0.0, 0.25),
)


class TestBasics:
    def test_sequential_time(self):
        m = AmdahlModel(speed_flops=1e9)
        t = Task("t", flops=2e9, alpha=0.0)
        assert m.sequential_time(t) == pytest.approx(2.0)
        assert m.time(t, 1) == pytest.approx(2.0)

    def test_perfect_scaling_when_alpha_zero(self):
        m = AmdahlModel(1e9)
        t = Task("t", flops=8e9, alpha=0.0)
        assert m.time(t, 8) == pytest.approx(1.0)
        assert m.work(t, 8) == pytest.approx(m.work(t, 1))

    def test_serial_fraction_floor(self):
        m = AmdahlModel(1e9)
        t = Task("t", flops=1e9, alpha=0.25)
        # infinite processors would still cost alpha * seq
        assert m.time(t, 10 ** 6) == pytest.approx(0.25, rel=1e-3)

    def test_paper_formula(self):
        # T(t,p) = T_seq (alpha + (1-alpha)/p)
        m = AmdahlModel(1e9)
        t = Task("t", flops=3e9, alpha=0.2)
        assert m.time(t, 4) == pytest.approx(3.0 * (0.2 + 0.8 / 4))

    def test_speedup(self):
        m = AmdahlModel(1e9)
        t = Task("t", flops=1e9, alpha=0.0)
        assert m.speedup(t, 4) == pytest.approx(4.0)

    def test_time_gain_sign(self):
        m = AmdahlModel(1e9)
        t = Task("t", flops=1e9, alpha=0.1)
        assert m.time_gain(t, 1, 4) > 0
        assert m.time_gain(t, 4, 1) < 0

    def test_invalid_speed(self):
        with pytest.raises(ValueError):
            AmdahlModel(0.0)

    def test_invalid_nprocs(self):
        m = AmdahlModel(1e9)
        with pytest.raises(ValueError):
            m.time(Task("t", flops=1.0), 0)


class TestMonotonicityProperties:
    """The §II-A model properties: T decreasing, work increasing in p."""

    @given(task_strategy, st.integers(1, 256))
    def test_time_monotonically_decreasing(self, task, p):
        m = AmdahlModel(3.3e9)
        assert m.time(task, p + 1) <= m.time(task, p) + 1e-12

    @given(task_strategy, st.integers(1, 256))
    def test_work_monotonically_increasing(self, task, p):
        m = AmdahlModel(3.3e9)
        assert m.work(task, p + 1) >= m.work(task, p) - 1e-9

    @given(task_strategy, st.integers(1, 256))
    def test_time_strictly_positive(self, task, p):
        m = AmdahlModel(3.3e9)
        assert m.time(task, p) > 0

    @given(task_strategy, st.integers(2, 256))
    def test_speedup_bounded_by_p_and_amdahl_limit(self, task, p):
        m = AmdahlModel(3.3e9)
        s = m.speedup(task, p)
        assert s <= p + 1e-9
        if task.alpha > 0:
            assert s <= 1.0 / task.alpha + 1e-9

    @given(task_strategy, st.integers(1, 128), st.integers(1, 128))
    def test_work_ratio_rho_at_most_one_when_growing(self, task, p, extra):
        """Eq. 1's rho = work(p)/work(p+extra) is in (0, 1] — stretching
        never decreases work."""
        m = AmdahlModel(3.3e9)
        rho = m.work(task, p) / m.work(task, p + extra)
        assert 0 < rho <= 1.0 + 1e-12
