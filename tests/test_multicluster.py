"""Tests for the multi-cluster extension (paper §V future work)."""

from __future__ import annotations

import pytest

from repro.core.params import NAIVE_DELTA, NAIVE_TIMECOST
from repro.platforms.cluster import Cluster
from repro.platforms.multicluster import MultiClusterPlatform
from repro.scheduling.multicluster import (
    MultiClusterListScheduler,
    MultiClusterRATSScheduler,
    reference_allocation,
)
from repro.simulation.simulator import simulate

from conftest import make_chain


@pytest.fixture
def platform() -> MultiClusterPlatform:
    fast = Cluster(name="fast", num_procs=8, speed_flops=4e9)
    slow = Cluster(name="slow", num_procs=12, speed_flops=2e9)
    return MultiClusterPlatform(clusters=(fast, slow), name="duo")


@pytest.fixture
def hier_platform() -> MultiClusterPlatform:
    a = Cluster(name="a", num_procs=8, speed_flops=3e9,
                cabinets=2, cabinet_size=4)
    b = Cluster(name="b", num_procs=4, speed_flops=3e9)
    return MultiClusterPlatform(clusters=(a, b))


class TestPlatformBasics:
    def test_global_indexing(self, platform):
        assert platform.num_procs == 20
        assert platform.offsets == (0, 8)
        assert platform.locate(0) == (0, 0)
        assert platform.locate(7) == (0, 7)
        assert platform.locate(8) == (1, 0)
        assert platform.locate(19) == (1, 11)

    def test_locate_out_of_range(self, platform):
        with pytest.raises(ValueError):
            platform.locate(20)

    def test_speeds(self, platform):
        assert platform.speed_of(0) == 4e9
        assert platform.speed_of(15) == 2e9
        assert platform.reference_speed == 4e9

    def test_translation(self, platform):
        # 4 reference (fast) procs need 8 slow ones (2x speed ratio)
        assert platform.translate_allocation(4, 0) == 4
        assert platform.translate_allocation(4, 1) == 8
        # clamped at the cluster size
        assert platform.translate_allocation(100, 1) == 12

    def test_duplicate_names_rejected(self):
        c = Cluster(name="x", num_procs=2, speed_flops=1e9)
        with pytest.raises(ValueError, match="duplicate"):
            MultiClusterPlatform(clusters=(c, c))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MultiClusterPlatform(clusters=())

    def test_describe(self, platform):
        assert "fast" in platform.describe() and "WAN" in platform.describe()


class TestRouting:
    def test_intra_cluster_route(self, platform):
        r = platform.topology.route(0, 3)
        assert r.links == (("nic_up", 0), ("nic_down", 3))
        assert r.latency_s == pytest.approx(100e-6)

    def test_inter_cluster_route_crosses_wan(self, platform):
        r = platform.topology.route(0, 10)
        assert ("wan_up", 0) in r.links and ("wan_down", 1) in r.links
        # 100us (fast) + 10ms WAN + 100us (slow)
        assert r.latency_s == pytest.approx(10e-3 + 2 * 100e-6)

    def test_wan_tcp_cap_binds(self, platform):
        """RTT ~20.4 ms with a 4 MiB window caps a WAN flow at ~206 MB/s…
        above 1 Gb/s link speed here, so test with a slower window."""
        small = MultiClusterPlatform(clusters=platform.clusters,
                                     tcp_window_bytes=65536)
        r = small.topology.route(0, 10)
        rtt = 2 * r.latency_s
        assert r.rate_cap_Bps == pytest.approx(65536 / rtt)
        assert r.rate_cap_Bps < 1e7  # well below the 1 Gb/s links

    def test_hierarchical_member_routes(self, hier_platform):
        # inter-cabinet inside cluster a (global procs 0 and 7)
        r = hier_platform.topology.route(0, 7)
        assert ("cab_up", 0) in r.links and ("cab_down", 1) in r.links
        # leaving cluster a crosses its cabinet uplink then the WAN
        r2 = hier_platform.topology.route(0, 8 + 1)
        kinds = [k for k, _ in r2.links]
        assert kinds == ["nic_up", "cab_up", "wan_up", "wan_down", "nic_down"]

    def test_self_route_free(self, platform):
        assert platform.topology.route(5, 5).is_local

    def test_capacity_array_consistent(self, platform):
        topo = platform.topology
        for lid, idx in topo.link_index.items():
            assert topo.capacity_array[idx] == topo.capacities[lid]


class TestMultiClusterScheduling:
    def test_schedule_valid_and_single_cluster_tasks(self, platform,
                                                     small_random):
        alloc = reference_allocation(small_random, platform).allocation
        schedule = MultiClusterListScheduler(small_random, platform,
                                             alloc).run()
        schedule.validate()
        for name in small_random.task_names():
            clusters = {platform.locate(p)[0]
                        for p in schedule[name].procs}
            assert len(clusters) == 1, f"{name} spans clusters"

    def test_slow_cluster_gets_translated_counts(self, platform):
        """A task mapped on the slow cluster runs on ~2x the processors or
        takes correspondingly longer."""
        g = make_chain(2, m=1e6, flops=40e9, alpha=0.0)
        alloc = {"t0": 4, "t1": 4}
        sched = MultiClusterListScheduler(g, platform, alloc)
        cands = sched.candidate_sets("t0", 4)
        sizes = {len(c) for c in cands}
        assert sizes == {4, 8}  # 4 on fast, 8 on slow

    def test_exec_time_uses_cluster_speed(self, platform):
        g = make_chain(2, m=1e6, flops=8e9, alpha=0.0)
        sched = MultiClusterListScheduler(g, platform, {"t0": 2, "t1": 2})
        fast_procs = (0, 1)
        slow_procs = (8, 9)
        assert sched.exec_time("t0", fast_procs) == pytest.approx(1.0)
        assert sched.exec_time("t0", slow_procs) == pytest.approx(2.0)

    def test_rats_on_multicluster(self, platform, small_random):
        alloc = reference_allocation(small_random, platform).allocation
        for params in (NAIVE_DELTA, NAIVE_TIMECOST):
            sched = MultiClusterRATSScheduler(small_random, platform, alloc,
                                              params)
            schedule = sched.run()
            schedule.validate()
            for rec in sched.adaptations:
                assert schedule[rec.task].procs == schedule[rec.pred].procs

    def test_simulation_on_multicluster(self, platform, small_random):
        alloc = reference_allocation(small_random, platform).allocation
        schedule = MultiClusterListScheduler(small_random, platform,
                                             alloc).run()
        res = simulate(schedule)
        assert res.makespan >= schedule.makespan * (1 - 1e-9)
        res.as_executed_schedule(schedule).validate()

    def test_wan_avoidance_pays_off(self, platform):
        """A data-heavy chain should not ping-pong across the WAN: the
        simulated makespan with RATS (set reuse) must not exceed the
        baseline's."""
        g = make_chain(4, m=100e6, flops=10e9, alpha=0.05)
        alloc = reference_allocation(g, platform).allocation
        base = MultiClusterListScheduler(g, platform, alloc).run()
        rats = MultiClusterRATSScheduler(g, platform, alloc,
                                         NAIVE_TIMECOST).run()
        assert simulate(rats).makespan <= simulate(base).makespan * 1.05
