"""End-to-end integration tests across the whole pipeline, including
property-based checks that random scenarios always produce valid,
deterministic, simulatable schedules."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import NAIVE_DELTA, NAIVE_TIMECOST, RATSParams
from repro.core.rats import RATSScheduler
from repro.dag.generator import DagShape, random_irregular_dag
from repro.experiments.runner import ExperimentRunner, baseline_spec, rats_spec
from repro.experiments.scenarios import Scenario
from repro.platforms.cluster import Cluster
from repro.platforms.grid5000 import GRELON
from repro.scheduling.allocation import hcpa_allocation
from repro.scheduling.mapping import ListScheduler
from repro.simulation.simulator import simulate
from repro.utils.rng import spawn_rng


class TestFullPipeline:
    @pytest.mark.parametrize("family,kwargs", [
        ("layered", dict(n_tasks=25, width=0.5, density=0.2,
                         regularity=0.8)),
        ("irregular", dict(n_tasks=25, width=0.5, density=0.8,
                           regularity=0.2, jump=2)),
        ("fft", dict(k=8)),
        ("strassen", dict()),
    ])
    def test_every_family_end_to_end(self, tiny_cluster, family, kwargs):
        scenario = Scenario(family=family, sample=0, **kwargs)
        runner = ExperimentRunner()
        for spec in (baseline_spec("hcpa"),
                     rats_spec(NAIVE_DELTA, label="d"),
                     rats_spec(NAIVE_TIMECOST, label="t")):
            r = runner.run(scenario, tiny_cluster, spec)
            assert r.makespan >= r.estimated_makespan * (1 - 1e-9)
            assert r.work > 0

    def test_hierarchical_cluster_end_to_end(self):
        """grelon's cabinet topology through the whole pipeline."""
        scenario = Scenario(family="fft", k=8, sample=3)
        runner = ExperimentRunner()
        r = runner.run(scenario, GRELON, rats_spec(NAIVE_TIMECOST))
        assert r.makespan > 0

    def test_run_results_fully_deterministic(self, tiny_cluster):
        scenario = Scenario(family="strassen", sample=7)
        rows = []
        for _ in range(2):
            runner = ExperimentRunner()  # fresh caches each time
            rows.append(runner.run(scenario, tiny_cluster,
                                   rats_spec(NAIVE_DELTA)))
        a, b = rows
        assert (a.makespan, a.estimated_makespan, a.work) == \
               (b.makespan, b.estimated_makespan, b.work)

    def test_estimate_tracks_simulation_without_contention(self):
        """A chain has no concurrent transfers: the simulated makespan must
        match the scheduler's estimate almost exactly."""
        from conftest import make_chain

        cluster = Cluster(name="seq", num_procs=4, speed_flops=1e9)
        model = cluster.performance_model()
        g = make_chain(5, m=10e6, flops=5e9, alpha=0.1)
        alloc = hcpa_allocation(g, model, cluster.num_procs).allocation
        schedule = ListScheduler(g, cluster, model, alloc).run()
        res = simulate(schedule)
        assert res.makespan == pytest.approx(schedule.makespan, rel=1e-3)


class TestPipelineProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        n_tasks=st.integers(5, 30),
        width=st.sampled_from([0.2, 0.5, 0.8]),
        density=st.sampled_from([0.2, 0.8]),
        jump=st.sampled_from([1, 2]),
        strategy=st.sampled_from(["delta", "timecost"]),
        mindelta=st.sampled_from([0.0, -0.5, -1.0]),
        maxdelta=st.sampled_from([0.0, 0.5, 1.0]),
        procs=st.integers(2, 16),
        seed=st.integers(0, 10 ** 6),
    )
    def test_random_configs_schedule_and_simulate(
            self, n_tasks, width, density, jump, strategy, mindelta,
            maxdelta, procs, seed):
        """Any generator/parameter/platform combination must yield a valid
        schedule whose simulation terminates no earlier than the estimate
        and whose adapted sizes respect the delta budget."""
        g = random_irregular_dag(
            DagShape(n_tasks=n_tasks, width=width, density=density,
                     regularity=0.5, jump=jump),
            spawn_rng("pipeline-prop", seed))
        cluster = Cluster(name=f"c{procs}", num_procs=procs,
                          speed_flops=2e9)
        model = cluster.performance_model()
        alloc = hcpa_allocation(g, model, procs).allocation
        params = RATSParams(strategy, mindelta=mindelta, maxdelta=maxdelta)
        scheduler = RATSScheduler(g, cluster, model, alloc, params)
        schedule = scheduler.run()
        schedule.validate()

        # delta budget respected by every adaptation
        if strategy == "delta":
            for rec in scheduler.adaptations:
                n0 = alloc[rec.task]
                if rec.delta > 0:
                    assert rec.delta <= maxdelta * n0 + 1e-9
                elif rec.delta < 0:
                    assert rec.delta >= mindelta * n0 - 1e-9

        res = simulate(schedule)
        assert res.makespan >= schedule.makespan * (1 - 1e-9)
        executed = res.as_executed_schedule(schedule)
        executed.validate()


class TestCampaign:
    def test_campaign_mini_run(self, tmp_path):
        from repro.experiments.campaign import main

        out = tmp_path / "report.txt"
        rc = main(["--fraction", "0.004", "--clusters", "chti",
                   "--skip-sweeps", "--quiet", "--out", str(out),
                   "--results-json", str(tmp_path / "rows.json")])
        assert rc == 0
        text = out.read_text()
        assert "Table I" in text
        assert "Figure 2" in text and "Figure 6" in text
        assert "Table V" in text and "Table VI" in text
        from repro.scheduling.serialize import load_results

        rows = load_results(tmp_path / "rows.json")
        assert rows and all(r.cluster == "chti" for r in rows)
