"""Parity suite for the batched kernel and solver threads (PR 10).

The live-path tentpole promises **bitwise identity** across every speed
knob: the batched ``repro_waterfill_batch`` crossing, the compiled sweep,
the cached per-component arenas, and ``solver_threads=N`` must all replay
the serial reference byte-for-byte.  The argument: per-component outputs
are disjoint slices of pre-grown arrays (no allocation, no sharing), and
results are committed in ascending component id whatever thread produced
them — so the only thing threads can change is wall-clock.  These tests
pin that argument against random scenario draws (exercising splits,
resurrection and merges through the same schedules the split suite uses)
and against a live engine with mid-flight injection, plus the numpy
fallback under ``REPRO_NO_C_KERNEL=1``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.scenarios import Scenario
from repro.platforms.grid5000 import CHTI, GRELON
from repro.scheduling.allocation import hcpa_allocation
from repro.scheduling.mapping import ListScheduler
from repro.simulation.simulator import (FluidSimulator,
                                        _resolve_solver_threads)


def _schedule_for_scenario(scenario: Scenario, cluster):
    graph = scenario.build()
    model = cluster.performance_model()
    alloc = hcpa_allocation(graph, model, cluster.num_procs).allocation
    return ListScheduler(graph, cluster, model, alloc).run()


def assert_byte_identical(a, b):
    assert a.events == b.events
    assert a.makespan == b.makespan
    assert set(a.task_traces) == set(b.task_traces)
    for name, tr in a.task_traces.items():
        other = b.task_traces[name]
        assert tr.procs == other.procs
        assert tr.start == other.start
        assert tr.finish == other.finish
    assert a.flow_traces == b.flow_traces


_scenarios = st.builds(
    Scenario,
    family=st.sampled_from(["layered", "irregular"]),
    n_tasks=st.sampled_from([8, 12, 16]),
    width=st.sampled_from([0.2, 0.5]),
    density=st.sampled_from([0.2, 0.8]),
    regularity=st.sampled_from([0.2, 0.8]),
    jump=st.sampled_from([1, 2]),
    sample=st.integers(0, 3),
)


class TestThreadedBatchParity:
    """solver_threads=4 ≡ solver_threads=1 ≡ full oracle, to the bit."""

    @settings(max_examples=12, deadline=None)
    @given(scenario=_scenarios, hierarchical=st.booleans())
    def test_threads_equal_serial_and_oracle(self, scenario, hierarchical):
        cluster = GRELON if hierarchical else CHTI
        schedule = _schedule_for_scenario(scenario, cluster)
        serial = FluidSimulator(schedule, solver_threads=1,
                                collect_flow_traces=True).run()
        threaded = FluidSimulator(schedule, solver_threads=4,
                                  collect_flow_traces=True).run()
        oracle = FluidSimulator(schedule, lazy=False,
                                collect_flow_traces=True).run()
        assert_byte_identical(threaded, serial)
        assert_byte_identical(threaded, oracle)

    def test_threads_equal_serial_on_split_heavy_draw(self):
        """A draw known to split, resurrect and merge (regression pin)."""
        scenario = Scenario(family="layered", n_tasks=16, width=0.2,
                            density=0.8, regularity=0.2, jump=1, sample=1)
        schedule = _schedule_for_scenario(scenario, CHTI)
        serial = FluidSimulator(schedule, collect_flow_traces=True).run()
        threaded = FluidSimulator(schedule, solver_threads=4,
                                  collect_flow_traces=True).run()
        assert_byte_identical(threaded, serial)
        merge_only = FluidSimulator(schedule, solver_threads=4,
                                    split_threshold=None, local_index=False,
                                    collect_flow_traces=True).run()
        assert_byte_identical(threaded, merge_only)

    def test_live_engine_midflight_injection(self):
        """Threaded live engine ≡ serial under staggered injection.

        Jobs inject while earlier flows are still in flight, so arenas
        are invalidated mid-stream, pairs resurrect, and components
        merge across jobs — the full streaming shape.
        """
        from repro.experiments.bench import large_platform_jobs
        from repro.online.live import LiveFluidEngine

        platform, jobs = large_platform_jobs(n_clusters=4, n_jobs=6,
                                             chain_len=4)

        def drive(**knobs):
            eng = LiveFluidEngine(platform, collect_flow_traces=True,
                                  **knobs)
            for j, schedule in enumerate(jobs):
                eng.advance_until(0.4 * j)
                eng.inject(f"job{j}", schedule, 0.4 * j)
            eng.drain()
            return eng

        serial = drive()
        threaded = drive(solver_threads=4)
        assert threaded.events == serial.events
        assert threaded.makespan() == serial.makespan()
        assert threaded.traces == serial.traces
        assert threaded.flow_traces == serial.flow_traces

    def test_online_simulator_forwards_solver_threads(self):
        from repro.online.engine import OnlineSimulator
        from repro.platforms.cluster import Cluster

        sim = OnlineSimulator(Cluster(name="c", num_procs=4,
                                      speed_flops=1e9),
                              solver_threads=3)
        assert sim.engine.solver_threads == 3


class TestNumpyFallbackParity:
    """REPRO_NO_C_KERNEL=1 forces the numpy path — even with threads."""

    def test_kill_switch_is_bitwise_neutral_with_threads(self, monkeypatch):
        scenario = Scenario(family="layered", n_tasks=12, width=0.5,
                            density=0.8, regularity=0.8, sample=0)
        schedule = _schedule_for_scenario(scenario, CHTI)
        with_kernel = FluidSimulator(schedule, solver_threads=4,
                                     collect_flow_traces=True).run()
        monkeypatch.setenv("REPRO_NO_C_KERNEL", "1")
        numpy_path = FluidSimulator(schedule, solver_threads=4,
                                    collect_flow_traces=True).run()
        assert_byte_identical(numpy_path, with_kernel)

    def test_kill_switch_reaches_registry(self, monkeypatch):
        from repro.simulation.simulator import _ComponentRegistry

        monkeypatch.setenv("REPRO_NO_C_KERNEL", "1")
        reg = _ComponentRegistry(np.array([1.0]), [(0,)], [np.inf],
                                 solver_threads=4)
        assert reg._batch_knl is None
        assert reg._sweep_knl is None


class TestSolverThreadsKnob:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_SOLVER_THREADS", raising=False)
        assert _resolve_solver_threads(None) == 1

    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER_THREADS", "4")
        assert _resolve_solver_threads(None) == 4

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER_THREADS", "4")
        assert _resolve_solver_threads(2) == 2

    def test_floor_is_one(self):
        assert _resolve_solver_threads(0) == 1
        assert _resolve_solver_threads(-3) == 1


class TestPhaseAttribution:
    """solve_s / event_s counters (satellite of PR 10)."""

    def test_simulation_result_carries_phase_times(self):
        scenario = Scenario(family="layered", n_tasks=8, width=0.5,
                            density=0.8, regularity=0.8, sample=0)
        schedule = _schedule_for_scenario(scenario, CHTI)
        res = FluidSimulator(schedule).run()
        assert res.solve_s > 0.0
        assert res.event_s >= 0.0

    def test_run_result_defaults_keep_old_stores_readable(self):
        from dataclasses import asdict

        from repro.experiments.runner import RunResult

        res = RunResult(scenario_id="s", family="f", cluster="c",
                        algorithm="a", makespan=1.0,
                        estimated_makespan=1.0, work=1.0, n_tasks=1)
        payload = asdict(res)
        # a store written before the counters existed has no such keys
        del payload["solve_s"], payload["event_s"]
        old = RunResult(**payload)
        assert old.solve_s == 0.0 and old.event_s == 0.0

    def test_online_result_carries_phase_times(self):
        from repro.experiments.runner import AlgorithmSpec
        from repro.online.engine import OnlineSimulator
        from repro.online.stream import PoissonStream
        from repro.platforms.cluster import Cluster
        from repro.platforms.multicluster import MultiClusterPlatform

        clusters = tuple(Cluster(name=f"c{i}", num_procs=8,
                                 speed_flops=1e9) for i in range(2))
        platform = MultiClusterPlatform(clusters=clusters, name="mini")
        scenarios = [Scenario(family="layered", n_tasks=6, width=0.5,
                              density=0.5, regularity=0.8, sample=0)]
        stream = PoissonStream(rate=2.0, n_jobs=4, scenarios=scenarios,
                               spec=AlgorithmSpec(label="hcpa"), seed=0)
        res = OnlineSimulator(platform).run(stream)
        assert res.solve_s >= 0.0 and res.event_s >= 0.0
        assert res.solve_s + res.event_s <= res.sim_s + 1e-6
