"""Tests for 1-D block redistribution: intervals, communication matrices
(Table I), receiver alignment and cost estimation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.flows import FlowSpec, bottleneck_time_estimate
from repro.platforms.cluster import Cluster
from repro.redistribution.block import block_interval, block_intervals
from repro.redistribution.cost import RedistributionCost
from repro.redistribution.matrix import (
    communication_matrix,
    communication_matrix_dense,
    redistribution_flows,
)
from repro.redistribution.remap import align_receivers


class TestBlockIntervals:
    def test_paper_example_senders(self):
        # 10 units over 4 procs -> 2.5 each
        assert block_intervals(10, 4) == [
            (0.0, 2.5), (2.5, 5.0), (5.0, 7.5), (7.5, 10.0)]

    def test_single_proc_owns_all(self):
        assert block_interval(7, 1, 0) == (0.0, 7.0)

    def test_rank_out_of_range(self):
        with pytest.raises(ValueError):
            block_interval(10, 4, 4)

    @given(st.floats(0.1, 1e9), st.integers(1, 200))
    def test_intervals_partition_dataset(self, m, p):
        ivals = block_intervals(m, p)
        assert ivals[0][0] == 0.0
        assert ivals[-1][1] == pytest.approx(m)
        for (a, b), (c, d) in zip(ivals, ivals[1:]):
            assert b == pytest.approx(c)
            assert b > a or m == 0


class TestCommunicationMatrix:
    def test_table1_exact(self):
        """Table I: 10 units, p=4 -> q=5."""
        expected = {
            (0, 0): 2.0, (0, 1): 0.5,
            (1, 1): 1.5, (1, 2): 1.0,
            (2, 2): 1.0, (2, 3): 1.5,
            (3, 3): 0.5, (3, 4): 2.0,
        }
        mat = communication_matrix(10, 4, 5)
        assert set(mat) == set(expected)
        for key, v in expected.items():
            assert mat[key] == pytest.approx(v)

    def test_identity_when_p_equals_q(self):
        mat = communication_matrix(12, 3, 3)
        assert set(mat) == {(0, 0), (1, 1), (2, 2)}
        assert all(v == pytest.approx(4.0) for v in mat.values())

    def test_gather(self):
        mat = communication_matrix(12, 3, 1)
        assert mat == pytest.approx({(0, 0): 4.0, (1, 0): 4.0, (2, 0): 4.0})

    def test_scatter(self):
        mat = communication_matrix(12, 1, 3)
        assert mat == pytest.approx({(0, 0): 4.0, (0, 1): 4.0, (0, 2): 4.0})

    def test_zero_data(self):
        assert communication_matrix(0, 3, 4) == {}

    def test_dense_matches_sparse(self):
        dense = communication_matrix_dense(10, 4, 5)
        sparse = communication_matrix(10, 4, 5)
        assert dense.shape == (4, 5)
        assert dense.sum() == pytest.approx(10)
        for (i, j), v in sparse.items():
            assert dense[i, j] == pytest.approx(v)

    @settings(max_examples=100, deadline=None)
    @given(st.floats(1.0, 1e10), st.integers(1, 64), st.integers(1, 64))
    def test_conservation_property(self, m, p, q):
        """All data is sent exactly once: entries sum to m; each sender
        sends its full block; each receiver gets its full block."""
        mat = communication_matrix(m, p, q)
        assert sum(mat.values()) == pytest.approx(m, rel=1e-9)
        for i in range(p):
            row = sum(v for (si, _), v in mat.items() if si == i)
            assert row == pytest.approx(m / p, rel=1e-6)
        for j in range(q):
            col = sum(v for (_, rj), v in mat.items() if rj == j)
            assert col == pytest.approx(m / q, rel=1e-6)

    @settings(max_examples=100, deadline=None)
    @given(st.integers(1, 128), st.integers(1, 128))
    def test_banded_sparsity(self, p, q):
        """At most p + q - 1 non-zero entries (keeps simulation tractable)."""
        mat = communication_matrix(1e6, p, q)
        assert len(mat) <= p + q - 1


class TestRedistributionFlows:
    def test_identical_ordered_sets_no_flows(self):
        assert redistribution_flows((3, 1, 2), (3, 1, 2), 1e6) == []

    def test_same_set_different_order_has_flows(self):
        flows = redistribution_flows((1, 2), (2, 1), 1e6)
        assert flows  # block ranks moved across nodes
        assert all(f.src != f.dst for f in flows)

    def test_disjoint_sets_ship_everything(self):
        flows = redistribution_flows((0, 1), (2, 3), 100.0)
        assert sum(f.data_bytes for f in flows) == pytest.approx(100.0)

    def test_partial_overlap_keeps_local_share(self):
        # (0,1) -> (0,1,2): ranks 0,1 keep their prefix overlap locally
        flows = redistribution_flows((0, 1), (0, 1, 2), 90.0)
        shipped = sum(f.data_bytes for f in flows)
        assert shipped < 90.0
        assert all(f.src != f.dst for f in flows)

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            redistribution_flows((), (1,), 10.0)


class TestAlignReceivers:
    def test_same_set_same_size_is_identity(self):
        assert align_receivers((4, 2, 7), {2, 4, 7}) == (4, 2, 7)

    def test_disjoint_sets_sorted(self):
        assert align_receivers((0, 1), {5, 3}) == (3, 5)

    def test_alignment_beats_sorted_order(self):
        """Aligned receiver order must keep at least as many bytes local as
        the naive sorted order."""
        src = (5, 3, 8, 1)
        dst = {3, 8, 10, 11}

        def remote(dst_order):
            return sum(f.data_bytes
                       for f in redistribution_flows(src, dst_order, 1000.0))

        aligned = align_receivers(src, dst)
        assert remote(aligned) <= remote(tuple(sorted(dst)))

    def test_subset_shrink_prefers_prefix_overlap(self):
        src = (0, 1, 2, 3)
        aligned = align_receivers(src, {0, 1})
        # both procs shared: order must preserve the sender's relative order
        assert aligned == (0, 1)

    def test_empty_receivers_rejected(self):
        with pytest.raises(ValueError):
            align_receivers((0,), set())

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(0, 30), min_size=1, max_size=10, unique=True),
           st.sets(st.integers(0, 30), min_size=1, max_size=10))
    def test_returns_permutation(self, src, dst):
        out = align_receivers(tuple(src), dst)
        assert sorted(out) == sorted(dst)


class TestRedistributionCost:
    @pytest.fixture
    def cost(self, tiny_cluster: Cluster) -> RedistributionCost:
        return RedistributionCost(tiny_cluster)

    def test_same_ordered_set_is_free(self, cost):
        assert cost.time((0, 1, 2), (0, 1, 2), 1e9) == 0.0

    def test_zero_bytes_free(self, cost):
        assert cost.time((0,), (1,), 0.0) == 0.0

    def test_disjoint_transfer_cost(self, cost, tiny_cluster):
        """1 -> 1 proc: whole dataset over one NIC."""
        data = 1.25e8  # exactly 1 second at 1 Gb/s
        t = cost.time((0,), (1,), data)
        assert t == pytest.approx(1.0 + tiny_cluster.latency_s, rel=1e-6)

    def test_more_receivers_not_slower_than_gather(self, cost):
        data = 1e9
        scatter = cost.time((0,), (1, 2, 3, 4), data)
        gather = cost.time((1, 2, 3, 4), (5,), data)
        # both bottleneck on the single node's NIC: equal estimates
        assert scatter == pytest.approx(gather)

    def test_remote_bytes_excludes_self_comm(self, cost):
        assert cost.remote_bytes((0, 1), (0, 1), 100.0) == 0.0
        assert cost.remote_bytes((0, 1), (2, 3), 100.0) == pytest.approx(100.0)

    def test_cache_hit_consistent(self, cost):
        a = cost.time((0, 1), (2, 3), 5e8)
        b = cost.time((0, 1), (2, 3), 5e8)
        assert a == b

    def test_average_edge_time_positive(self, cost):
        assert cost.average_edge_time(1e6) > 0
        assert cost.average_edge_time(0.0) == 0.0


class TestBottleneckEstimate:
    def test_empty_flows(self, tiny_cluster):
        assert bottleneck_time_estimate([], tiny_cluster) == 0.0

    def test_self_flows_free(self, tiny_cluster):
        flows = [FlowSpec(0, 0, 1e9)]
        assert bottleneck_time_estimate(flows, tiny_cluster) == 0.0

    def test_fan_out_bottleneck_is_sender_nic(self, tiny_cluster):
        bw = tiny_cluster.bandwidth_Bps
        flows = [FlowSpec(0, i, bw) for i in (1, 2, 3)]
        t = bottleneck_time_estimate(flows, tiny_cluster)
        assert t == pytest.approx(3.0 + tiny_cluster.latency_s, rel=1e-6)

    def test_parallel_pairs_bottleneck_one_pair(self, tiny_cluster):
        bw = tiny_cluster.bandwidth_Bps
        flows = [FlowSpec(0, 1, 2 * bw), FlowSpec(2, 3, bw)]
        t = bottleneck_time_estimate(flows, tiny_cluster)
        assert t == pytest.approx(2.0 + tiny_cluster.latency_s, rel=1e-6)

    def test_hierarchical_cabinet_uplink_counts(self, hier_cluster):
        bw = hier_cluster.bandwidth_Bps
        # two flows from cabinet 0 to cabinet 1 share the cab uplink
        flows = [FlowSpec(0, 4, bw), FlowSpec(1, 5, bw)]
        t = bottleneck_time_estimate(flows, hier_cluster)
        assert t == pytest.approx(2.0 + 2 * hier_cluster.latency_s, rel=1e-6)


class TestCostValidation:
    def test_cost_estimator_rejects_malformed_inputs(self):
        """The pricing fast path keeps redistribution_flows' validation.

        A negative byte count would otherwise spin the memoised
        two-pointer sweep forever, and an empty processor set divide by
        zero — both must surface as clean ValueErrors.
        """
        import pytest

        from repro.platforms.grid5000 import CHTI
        from repro.redistribution.cost import RedistributionCost

        rc = RedistributionCost(CHTI)
        for fn in (rc.time, rc.remote_bytes):
            with pytest.raises(ValueError, match="m must be >= 0"):
                fn((0,), (1,), -5.0)
            with pytest.raises(ValueError, match="p and q"):
                fn((), (0, 1), 100.0)
