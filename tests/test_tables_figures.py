"""Tests for the table renderers, figure builders and tuning sweeps
(small scenario sets: these exercise the full pipeline end to end)."""

from __future__ import annotations

import pytest

from repro.core.params import PAPER_TUNED_PARAMS
from repro.experiments.figures import (
    figure2_3_naive,
    figure4_delta_surface,
    figure5_rho_curves,
    figure6_7_tuned,
)
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenarios import Scenario
from repro.experiments.tables import (
    table1_communication_matrix,
    table2_clusters,
    table3_scenarios,
    table4_tuned_params,
    table5_pairwise,
    table6_degradation,
)
from repro.experiments.tuning import delta_sweep, rho_sweep
from repro.platforms.cluster import Cluster
from repro.platforms.grid5000 import CHTI, GRELON, GRILLON

TINY_SET = [
    Scenario(family="fft", k=2, sample=0),
    Scenario(family="strassen", sample=0),
]


@pytest.fixture(scope="module")
def cluster() -> Cluster:
    return Cluster(name="bench-tiny", num_procs=8, speed_flops=1e9)


class TestStaticTables:
    def test_table1_contains_paper_values(self):
        out = table1_communication_matrix()
        assert "p=4" in out and "q=5" in out
        # the distinctive entries of Table I
        for v in ("2", "0.5", "1.5", "1"):
            assert v in out

    def test_table2_lists_all_clusters(self):
        out = table2_clusters([CHTI, GRELON, GRILLON])
        assert "chti" in out and "grelon" in out and "grillon" in out
        assert "4.311" in out and "3.185" in out and "3.379" in out
        assert "5x24" in out

    def test_table3_counts(self):
        out = table3_scenarios()
        assert "557" in out
        assert "layered=108" in out and "irregular=324" in out

    def test_table4_renders_paper_values(self):
        out = table4_tuned_params(PAPER_TUNED_PARAMS)
        assert "chti" in out and "grelon" in out
        assert "(-0.5, 1, 0.2)" in out or "(-0.5, 1.0, 0.2)" in out \
            or "(-0.5, 1, 0.2)".replace(" ", "") in out.replace(" ", "")


class TestFigurePipelines:
    def test_figure2_3(self, cluster):
        fig2, fig3, results = figure2_3_naive(TINY_SET, cluster)
        assert len(results) == len(TINY_SET) * 3
        assert set(fig2.series) == {"Delta", "Time-cost"}
        out2, out3 = fig2.render(), fig3.render()
        assert "Figure 2" in out2 and "Figure 3" in out3
        for series in fig2.series.values():
            assert len(series) == len(TINY_SET)
            ys = [y for _, y in series]
            assert ys == sorted(ys)  # sorted independently

    def test_figure6_7_tuned_on_paper_cluster(self):
        fig6, fig7, results = figure6_7_tuned(TINY_SET, GRILLON)
        assert "tuned" in fig6.description
        assert len(results) == len(TINY_SET) * 3
        assert "Figure 6" in fig6.render() and "Figure 7" in fig7.render()

    def test_figure4_surface(self, cluster):
        fig, sweep = figure4_delta_surface(
            TINY_SET[:1], cluster,
            mindeltas=(0.0, -0.5), maxdeltas=(0.0, 0.5))
        assert len(sweep.averages) == 4
        assert sweep.best_point() in sweep.averages
        assert "Figure 4" in fig.render()

    def test_figure5_curves(self, cluster):
        fig, sweep = figure5_rho_curves(
            TINY_SET[:1], cluster, minrhos=(0.5, 1.0))
        assert len(sweep.averages) == 4  # 2 rho x packing on/off
        assert "packing allowed" in fig.series
        assert "no packing allowed" in fig.series
        assert "Figure 5" in fig.render()


class TestSweeps:
    def test_delta_sweep_zero_budget_is_baseline(self, cluster):
        """(0, 0) allows only same-size reuse; ratios stay close to 1 and
        every sweep entry is positive."""
        sweep = delta_sweep(TINY_SET[:1], cluster,
                            mindeltas=(0.0,), maxdeltas=(0.0,))
        assert list(sweep.averages) == [(0.0, 0.0)]
        assert sweep.averages[(0.0, 0.0)] > 0

    def test_rho_sweep_keys(self, cluster):
        sweep = rho_sweep(TINY_SET[:1], cluster, minrhos=(0.4,),
                          packing_options=(True,))
        assert list(sweep.averages) == [(0.4, True)]

    def test_sweeps_share_runner_cache(self, cluster):
        runner = ExperimentRunner()
        delta_sweep(TINY_SET[:1], cluster, mindeltas=(0.0,),
                    maxdeltas=(0.5,), runner=runner)
        assert runner._graphs  # cached graphs reused across sweeps
        rho_sweep(TINY_SET[:1], cluster, minrhos=(0.5,),
                  packing_options=(True,), runner=runner)


class TestResultTables:
    @pytest.fixture(scope="class")
    def results(self, cluster):
        _, _, results = figure2_3_naive(TINY_SET, cluster)
        return results

    def test_table5_pairwise_renders(self, results, cluster):
        out = table5_pairwise(results, ["HCPA", "Delta", "Time-cost"],
                              [cluster.name])
        assert "Table V" in out
        assert "XXX" in out  # diagonal
        assert "better" in out and "worse" in out

    def test_table6_degradation_renders(self, results, cluster):
        out = table6_degradation(results, ["HCPA", "Delta", "Time-cost"],
                                 [cluster.name])
        assert "Table VI" in out
        assert "avg over all exp." in out
        assert "# not best" in out
