"""Tests for the random DAG generators (layered / irregular)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag.analysis import dag_levels, dag_width
from repro.dag.costs import ComputeCostConfig
from repro.dag.generator import DagShape, random_irregular_dag, random_layered_dag
from repro.utils.rng import spawn_rng

shape_strategy = st.builds(
    DagShape,
    n_tasks=st.integers(3, 60),
    width=st.floats(0.0, 1.0),
    regularity=st.floats(0.0, 1.0),
    density=st.floats(0.0, 1.0),
    jump=st.integers(1, 4),
)


class TestDagShape:
    def test_rejects_too_few_tasks(self):
        with pytest.raises(ValueError):
            DagShape(n_tasks=2)

    @pytest.mark.parametrize("field,value", [
        ("width", -0.1), ("width", 1.1),
        ("regularity", 2.0), ("density", -1.0),
    ])
    def test_rejects_out_of_range(self, field, value):
        with pytest.raises(ValueError):
            DagShape(n_tasks=10, **{field: value})

    def test_rejects_bad_jump(self):
        with pytest.raises(ValueError):
            DagShape(n_tasks=10, jump=0)


class TestLayeredGenerator:
    def test_task_count_exact(self):
        for n in (3, 10, 25, 50, 100):
            g = random_layered_dag(DagShape(n_tasks=n), spawn_rng("count", n))
            assert g.num_tasks == n

    def test_single_entry_and_exit(self):
        g = random_layered_dag(DagShape(n_tasks=30), spawn_rng("se"))
        assert g.entry_tasks() == ["entry"]
        assert g.exit_tasks() == ["exit"]

    def test_deterministic(self):
        shape = DagShape(n_tasks=25, width=0.5, regularity=0.2, density=0.8)
        g1 = random_layered_dag(shape, spawn_rng("det"))
        g2 = random_layered_dag(shape, spawn_rng("det"))
        assert sorted(g1.edges()) == sorted(g2.edges())
        assert [(t.name, t.flops, t.alpha) for t in g1.tasks()] == \
               [(t.name, t.flops, t.alpha) for t in g2.tasks()]

    def test_per_level_cost_uniformity(self):
        """Layered DAGs: all tasks of one level share (m, flops, alpha)."""
        g = random_layered_dag(DagShape(n_tasks=40, width=0.8),
                               spawn_rng("levels"))
        levels = dag_levels(g)
        per_level: dict[int, set[tuple]] = {}
        for t in g.tasks():
            per_level.setdefault(levels[t.name], set()).add(
                (t.data_elements, t.flops, t.alpha))
        assert all(len(costs) == 1 for costs in per_level.values())

    def test_wide_vs_narrow(self):
        """width=0.8 must give substantially more parallelism than 0.2."""
        narrow = random_layered_dag(
            DagShape(n_tasks=60, width=0.2), spawn_rng("narrow"))
        wide = random_layered_dag(
            DagShape(n_tasks=60, width=0.8), spawn_rng("wide"))
        assert dag_width(wide) > dag_width(narrow)

    def test_cost_ranges_follow_paper(self):
        g = random_layered_dag(DagShape(n_tasks=30), spawn_rng("ranges"))
        cfg = ComputeCostConfig()
        for t in g.tasks():
            assert cfg.m_min <= t.data_elements <= cfg.m_max
            assert cfg.alpha_min <= t.alpha <= cfg.alpha_max
            a = t.flops / t.data_elements
            assert cfg.a_min - 1e-9 <= a <= cfg.a_max + 1e-9

    def test_edges_carry_producer_dataset(self):
        g = random_layered_dag(DagShape(n_tasks=20), spawn_rng("edges"))
        for u, v, d in g.edges():
            assert d == pytest.approx(g.task(u).data_bytes)


class TestIrregularGenerator:
    def test_task_count_and_validity(self):
        g = random_irregular_dag(
            DagShape(n_tasks=50, jump=2, density=0.8), spawn_rng("ir"))
        assert g.num_tasks == 50
        g.validate(require_single_entry=True, require_single_exit=True)

    def test_jump_edges_can_skip_levels(self):
        """With jump=2 and high density, some edge must span >= 2 levels."""
        found = False
        for s in range(8):
            g = random_irregular_dag(
                DagShape(n_tasks=60, width=0.6, density=0.8, jump=2),
                spawn_rng("jump", s))
            levels = dag_levels(g)
            if any(levels[v] - levels[u] >= 2 for u, v, _ in g.edges()):
                found = True
                break
        assert found, "no jump edge found across 8 samples"

    def test_jump_one_never_skips(self):
        g = random_irregular_dag(
            DagShape(n_tasks=40, density=0.8, jump=1), spawn_rng("noskip"))
        levels = dag_levels(g)
        assert all(levels[v] - levels[u] == 1 for u, v, _ in g.edges())

    def test_per_task_costs_vary_within_levels(self):
        g = random_irregular_dag(
            DagShape(n_tasks=60, width=0.8), spawn_rng("pertask"))
        levels = dag_levels(g)
        per_level: dict[int, set[float]] = {}
        for t in g.tasks():
            per_level.setdefault(levels[t.name], set()).add(t.flops)
        # at least one level with >= 2 tasks has differing costs
        assert any(len(costs) > 1 for costs in per_level.values())


class TestGeneratorProperties:
    @settings(max_examples=40, deadline=None)
    @given(shape_strategy, st.integers(0, 1000))
    def test_structural_invariants(self, shape, seed):
        g = random_irregular_dag(shape, spawn_rng("prop", seed))
        assert g.num_tasks == shape.n_tasks
        g.validate(require_single_entry=True, require_single_exit=True)
        # every non-entry task has a parent; every non-exit task a child
        for name in g.task_names():
            if name != "entry":
                assert g.predecessors(name), f"{name} has no parent"
            if name != "exit":
                assert g.successors(name), f"{name} has no child"

    @settings(max_examples=20, deadline=None)
    @given(shape_strategy, st.integers(0, 1000))
    def test_costs_always_in_range(self, shape, seed):
        g = random_layered_dag(shape, spawn_rng("prop-costs", seed))
        cfg = ComputeCostConfig()
        for t in g.tasks():
            assert cfg.m_min <= t.data_elements <= cfg.m_max
            assert 0 <= t.alpha <= 0.25
