"""Property tests: the simulator's internal waterfilling solver must agree
with the reference Max-Min implementation, and degenerate schedules must
not break the simulator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.maxmin import maxmin_rates
from repro.simulation.simulator import _waterfill


@st.composite
def incidence_problems(draw):
    n_links = draw(st.integers(1, 6))
    capacities = np.array([draw(st.floats(0.5, 100.0))
                           for _ in range(n_links)])
    n_flows = draw(st.integers(1, 10))
    routes = [
        draw(st.lists(st.integers(0, n_links - 1), min_size=1, max_size=3,
                      unique=True))
        for _ in range(n_flows)
    ]
    return routes, capacities


def _flatten(routes):
    entry_links = np.array([l for r in routes for l in r], dtype=np.intp)
    entry_flow = np.array(
        [i for i, r in enumerate(routes) for _ in r], dtype=np.intp)
    return entry_links, entry_flow


class TestWaterfillEquivalence:
    @settings(max_examples=100, deadline=None)
    @given(incidence_problems())
    def test_matches_reference_uncapped(self, problem):
        routes, capacities = problem
        entry_links, entry_flow = _flatten(routes)
        caps = np.full(len(routes), np.inf)
        fast = _waterfill(entry_links, entry_flow, len(routes),
                          capacities, caps)
        ref = maxmin_rates([[f"l{l}" for l in r] for r in routes],
                           {f"l{i}": c for i, c in enumerate(capacities)})
        np.testing.assert_allclose(fast, ref, rtol=1e-9, atol=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(incidence_problems(), st.floats(0.1, 50.0))
    def test_matches_reference_with_caps(self, problem, cap):
        routes, capacities = problem
        entry_links, entry_flow = _flatten(routes)
        caps = np.full(len(routes), cap)
        fast = _waterfill(entry_links, entry_flow, len(routes),
                          capacities, caps)
        ref = maxmin_rates([[f"l{l}" for l in r] for r in routes],
                           {f"l{i}": c for i, c in enumerate(capacities)},
                           rate_caps=[cap] * len(routes))
        np.testing.assert_allclose(fast, ref, rtol=1e-9, atol=1e-9)

    def test_two_flows_one_link(self):
        rates = _waterfill(np.array([0, 0]), np.array([0, 1]), 2,
                           np.array([10.0]), np.full(2, np.inf))
        np.testing.assert_allclose(rates, [5.0, 5.0])

    def test_simultaneous_tied_links(self):
        """Two equal-capacity links each with one flow: both freeze in one
        pass and share nothing."""
        rates = _waterfill(np.array([0, 1]), np.array([0, 1]), 2,
                           np.array([4.0, 4.0]), np.full(2, np.inf))
        np.testing.assert_allclose(rates, [4.0, 4.0])


class TestSimulatorDegenerateCases:
    def test_zero_duration_tasks(self, tiny_cluster):
        """flops=0 tasks execute instantaneously but keep ordering."""
        from repro.dag.task import Task, TaskGraph
        from repro.scheduling.schedule import Schedule, ScheduleEntry
        from repro.simulation.simulator import simulate

        g = TaskGraph(name="zero")
        g.add_task(Task("a", data_elements=0.0, flops=0.0))
        g.add_task(Task("b", data_elements=0.0, flops=0.0))
        g.add_edge("a", "b", data_bytes=0.0)
        s = Schedule(graph=g, cluster=tiny_cluster)
        s.add(ScheduleEntry("a", (0,), 0.0, 0.0))
        s.add(ScheduleEntry("b", (0,), 0.0, 0.0))
        res = simulate(s)
        assert res.makespan == 0.0

    def test_single_task_no_edges(self, tiny_cluster):
        from repro.dag.task import Task, TaskGraph
        from repro.scheduling.schedule import Schedule, ScheduleEntry
        from repro.simulation.simulator import simulate

        g = TaskGraph(name="one")
        g.add_task(Task("only", data_elements=1.0, flops=1e9))
        s = Schedule(graph=g, cluster=tiny_cluster)
        s.add(ScheduleEntry("only", tuple(range(8)), 0.0, 0.125))
        res = simulate(s)
        assert res.makespan == pytest.approx(0.125)

    def test_tiny_transfer_terminates(self, tiny_cluster):
        """1-byte transfers must not spin on float underflow."""
        from conftest import make_chain
        from repro.scheduling.schedule import Schedule, ScheduleEntry
        from repro.simulation.simulator import simulate

        g = make_chain(2, m=1.0 / 8, flops=1e9, alpha=0.0)  # 1 byte edge
        s = Schedule(graph=g, cluster=tiny_cluster)
        s.add(ScheduleEntry("t0", (0,), 0.0, 1.0))
        s.add(ScheduleEntry("t1", (1,), 1.1, 2.1))
        res = simulate(s)
        assert res.events < 100
        assert res.makespan > 2.0
