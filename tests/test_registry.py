"""Tests for the pluggable component registries (repro.registry)."""

from __future__ import annotations

import pytest

from repro.core.params import RATSParams
from repro.core.strategies import DeltaStrategy, TimeCostStrategy, make_strategy
from repro.experiments.runner import AlgorithmSpec, baseline_spec, rats_spec
from repro.platforms.cluster import Cluster
from repro.platforms.grid5000 import CHTI, get_cluster
from repro.registry import (
    DuplicateComponentError,
    Registry,
    UnknownComponentError,
    all_registries,
    allocators,
    dag_families,
    mapping_strategies,
    platforms,
    register_platform,
)


class TestRegistryMechanics:
    def test_register_and_build(self):
        reg = Registry("widget")
        reg.register("double", lambda x: 2 * x, description="times two")
        assert reg.build("double", 21) == 42
        assert reg.get("double").description == "times two"

    def test_decorator_form(self):
        reg = Registry("widget")

        @reg.register("triple", description="times three")
        def triple(x):
            return 3 * x

        assert reg.build("triple", 2) == 6
        assert triple(2) == 6  # decorator returns the callable unchanged

    def test_duplicate_name_rejected(self):
        reg = Registry("widget")
        reg.register("x", lambda: 1)
        with pytest.raises(DuplicateComponentError):
            reg.register("x", lambda: 2)

    def test_duplicate_alias_rejected(self):
        reg = Registry("widget")
        reg.register("x", lambda: 1, aliases=("ex",))
        with pytest.raises(DuplicateComponentError):
            reg.register("ex", lambda: 2)

    def test_replace_allows_override(self):
        reg = Registry("widget")
        reg.register("x", lambda: 1)
        reg.register("x", lambda: 2, replace=True)
        assert reg.build("x") == 2

    def test_alias_resolves_to_canonical_entry(self):
        reg = Registry("widget")
        reg.register("x", lambda: 1, aliases=("ex", "X"))
        assert reg.get("ex") is reg.get("x")
        assert "ex" in reg and "x" in reg
        assert reg.names() == ["x"]  # aliases not listed

    def test_unknown_name_lists_available(self):
        reg = Registry("widget")
        reg.register("alpha", lambda: 1)
        reg.register("beta", lambda: 2)
        with pytest.raises(UnknownComponentError) as ei:
            reg.get("gamma")
        assert "alpha" in str(ei.value) and "beta" in str(ei.value)
        assert "widget" in str(ei.value)

    def test_unknown_error_is_keyerror_and_valueerror(self):
        err = UnknownComponentError("widget", "x", ["a"])
        assert isinstance(err, KeyError)
        assert isinstance(err, ValueError)

    def test_unknown_error_survives_pickling(self):
        # process-pool workers propagate exceptions by pickle round-trip
        import pickle

        err = UnknownComponentError("widget", "x", ["a", "b"])
        clone = pickle.loads(pickle.dumps(err))
        assert str(clone) == str(err)
        assert clone.available == ("a", "b")

    def test_replace_cannot_hijack_another_entrys_alias(self):
        reg = Registry("widget")
        reg.register("x", lambda: 1, aliases=("ex",))
        with pytest.raises(DuplicateComponentError, match="'x'"):
            reg.register("ex", lambda: 2, replace=True)
        assert reg.get("ex").name == "x"  # alias still resolves to owner

    def test_replace_drops_stale_aliases(self):
        reg = Registry("widget")
        reg.register("x", lambda: 1, aliases=("old",))
        reg.register("x", lambda: 2, aliases=("new",), replace=True)
        assert "old" not in reg and "new" in reg
        assert reg.build("x") == 2

    def test_unregister(self):
        reg = Registry("widget")
        reg.register("x", lambda: 1, aliases=("ex",))
        reg.unregister("x")
        assert "x" not in reg and "ex" not in reg
        reg.unregister("x")  # silent when absent


class TestBuiltinRegistrations:
    def test_allocators(self):
        assert {"cpa", "mcpa", "hcpa"} <= set(allocators.names())

    def test_mapping_strategies(self):
        assert {"delta", "timecost"} <= set(mapping_strategies.names())
        assert "time-cost" in mapping_strategies  # alias

    def test_dag_families(self):
        assert {"layered", "irregular", "fft",
                "strassen"} <= set(dag_families.names())

    def test_platforms(self):
        assert {"chti", "grillon", "grelon"} <= set(platforms.names())

    def test_all_registries_sections(self):
        assert set(all_registries()) == {
            "allocators", "mapping strategies", "dag families", "platforms",
            "schedulers"}

    def test_schedulers(self):
        from repro.registry import schedulers

        assert {"list", "rats", "multicluster-list",
                "multicluster-rats"} <= set(schedulers.names())

    def test_multicluster_platform_registered(self):
        from repro.platforms.multicluster import MultiClusterPlatform

        grid = platforms.build("grid5000-grid")
        assert isinstance(grid, MultiClusterPlatform)
        assert grid.num_procs == 20 + 47 + 120
        assert grid.scheduler_kind == "multicluster"

    def test_reference_allocator_registered(self):
        from repro.registry import allocators

        assert "reference" in allocators
        assert "hcpa-ref" in allocators  # alias

    def test_get_cluster_identity_for_builtins(self):
        assert get_cluster("chti") is CHTI

    def test_get_cluster_resolves_registered_platforms(self):
        mini = Cluster(name="test-reg-mini", num_procs=4, speed_flops=1e9)
        register_platform(mini, description="test cluster")
        try:
            assert get_cluster("test-reg-mini") is mini
        finally:
            platforms.unregister("test-reg-mini")

    def test_get_cluster_unknown_is_keyerror(self):
        with pytest.raises(KeyError):
            get_cluster("nope")


class TestStrategyRegistryDispatch:
    def test_make_strategy_resolves_builtins(self):
        assert isinstance(make_strategy(RATSParams("delta")), DeltaStrategy)
        assert isinstance(make_strategy(RATSParams("timecost")),
                          TimeCostStrategy)

    def test_params_reject_unknown_strategy_listing_available(self):
        with pytest.raises(ValueError, match="delta") as ei:
            RATSParams(strategy="magic")
        assert "timecost" in str(ei.value)

    def test_custom_strategy_through_params(self):
        class NeverAdapt:
            def __init__(self, params):
                self.params = params

            def decide(self, scheduler, name):
                return scheduler.best_decision(
                    name, scheduler.allocation[name]), None

        mapping_strategies.register("never", NeverAdapt,
                                    description="test strategy")
        try:
            params = RATSParams(strategy="never")
            assert isinstance(make_strategy(params), NeverAdapt)
        finally:
            mapping_strategies.unregister("never")


class TestAlgorithmSpecRegistryValidation:
    def test_unknown_allocator_lists_available(self):
        with pytest.raises(ValueError, match="hcpa"):
            AlgorithmSpec(label="x", allocator="magic")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            AlgorithmSpec(label="x", strategy="magic")

    def test_strategy_gets_default_naive_params(self):
        spec = AlgorithmSpec(label="d", strategy="delta")
        assert spec.params is not None
        assert spec.params.strategy == "delta"

    def test_spec_strategy_overrides_params_strategy(self):
        spec = AlgorithmSpec(label="d", strategy="delta",
                             params=RATSParams("timecost", minrho=0.7))
        assert spec.params.strategy == "delta"
        assert spec.params.minrho == 0.7

    def test_legacy_kind_keyword_still_works(self):
        spec = AlgorithmSpec(label="x", kind="mcpa")
        assert spec.allocator == "mcpa" and spec.strategy is None
        assert spec.kind == "mcpa"

    def test_legacy_rats_kind_maps_to_strategy(self):
        spec = AlgorithmSpec(label="x", kind="rats",
                             params=RATSParams("delta"))
        assert spec.allocator == "hcpa"
        assert spec.strategy == "delta"
        assert spec.kind == "rats"

    def test_legacy_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            AlgorithmSpec(label="x", kind="magic")

    def test_legacy_rats_needs_params(self):
        with pytest.raises(ValueError):
            AlgorithmSpec(label="x", kind="rats")

    def test_shim_equivalence_baseline(self):
        assert baseline_spec("cpa", label="c") == \
            AlgorithmSpec(label="c", allocator="cpa")

    def test_shim_equivalence_rats(self):
        params = RATSParams("delta", mindelta=-0.25)
        assert rats_spec(params, label="d") == \
            AlgorithmSpec(label="d", strategy="delta", params=params)

    def test_tuned_shim_resolver_is_picklable(self):
        import pickle

        spec = rats_spec(tuned=True, strategy="timecost")
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.resolve_params("grillon", "fft") == \
            spec.resolve_params("grillon", "fft")
