"""Tests for schedule / result JSON serialisation."""

from __future__ import annotations

import pytest

from repro.core.params import NAIVE_TIMECOST
from repro.core.rats import rats_schedule
from repro.experiments.runner import RunResult
from repro.scheduling.serialize import (
    load_results,
    load_schedule,
    results_from_json,
    results_to_json,
    save_results,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)


class TestScheduleRoundTrip:
    def test_round_trip_preserves_entries(self, tiny_cluster, small_random):
        schedule = rats_schedule(small_random, tiny_cluster, NAIVE_TIMECOST)
        data = schedule_to_dict(schedule)
        rebuilt = schedule_from_dict(data, small_random, tiny_cluster)
        assert len(rebuilt) == len(schedule)
        for name in small_random.task_names():
            assert rebuilt[name].procs == schedule[name].procs
            assert rebuilt[name].start == schedule[name].start
            assert rebuilt[name].finish == schedule[name].finish
        rebuilt.validate()

    def test_file_round_trip(self, tmp_path, tiny_cluster, small_random):
        schedule = rats_schedule(small_random, tiny_cluster, NAIVE_TIMECOST)
        path = tmp_path / "schedule.json"
        save_schedule(schedule, path)
        rebuilt = load_schedule(path, small_random, tiny_cluster)
        assert rebuilt.makespan == pytest.approx(schedule.makespan)

    def test_graph_mismatch_rejected(self, tiny_cluster, small_random,
                                     diamond):
        schedule = rats_schedule(small_random, tiny_cluster, NAIVE_TIMECOST)
        data = schedule_to_dict(schedule)
        with pytest.raises(ValueError, match="graph"):
            schedule_from_dict(data, diamond, tiny_cluster)

    def test_cluster_mismatch_rejected(self, tiny_cluster, hier_cluster,
                                       small_random):
        schedule = rats_schedule(small_random, tiny_cluster, NAIVE_TIMECOST)
        data = schedule_to_dict(schedule)
        with pytest.raises(ValueError, match="cluster"):
            schedule_from_dict(data, small_random, hier_cluster)


class TestResultsRoundTrip:
    def _rows(self) -> list[RunResult]:
        return [
            RunResult("s1", "fft", "grillon", "HCPA", 10.0, 8.0, 100.0, 25),
            RunResult("s1", "fft", "grillon", "delta", 9.0, 7.5, 95.0, 25,
                      stretches=3, packs=1, sames=2, wall_time_s=0.5),
        ]

    def test_json_round_trip(self):
        rows = self._rows()
        rebuilt = results_from_json(results_to_json(rows))
        assert rebuilt == rows

    def test_file_round_trip(self, tmp_path):
        rows = self._rows()
        path = tmp_path / "results.json"
        save_results(rows, path)
        assert load_results(path) == rows
