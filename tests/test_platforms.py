"""Tests for the cluster model, topology/routing and Grid'5000 presets."""

from __future__ import annotations

import pytest

from repro.platforms.cluster import GIGABIT_BPS, Cluster
from repro.platforms.grid5000 import (
    CHTI,
    GRELON,
    GRID5000_CLUSTERS,
    GRILLON,
    get_cluster,
)


class TestClusterValidation:
    def test_rejects_zero_procs(self):
        with pytest.raises(ValueError):
            Cluster(name="x", num_procs=0, speed_flops=1e9)

    def test_rejects_zero_speed(self):
        with pytest.raises(ValueError):
            Cluster(name="x", num_procs=2, speed_flops=0)

    def test_hierarchical_requires_cabinet_size(self):
        with pytest.raises(ValueError, match="cabinet_size"):
            Cluster(name="x", num_procs=8, speed_flops=1e9, cabinets=2)

    def test_cabinets_must_cover_nodes(self):
        with pytest.raises(ValueError, match="cover"):
            Cluster(name="x", num_procs=10, speed_flops=1e9,
                    cabinets=2, cabinet_size=4)

    def test_cabinet_of(self):
        c = Cluster(name="x", num_procs=8, speed_flops=1e9,
                    cabinets=2, cabinet_size=4)
        assert [c.cabinet_of(i) for i in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_flat_cluster_single_cabinet(self):
        c = Cluster(name="x", num_procs=4, speed_flops=1e9)
        assert not c.is_hierarchical
        assert c.cabinet_of(3) == 0

    def test_performance_model_speed(self):
        c = Cluster(name="x", num_procs=4, speed_flops=2.5e9)
        assert c.performance_model().speed_flops == 2.5e9


class TestGrid5000Presets:
    """Table II constants."""

    @pytest.mark.parametrize("cluster,procs,gflops", [
        (CHTI, 20, 4.311), (GRELON, 120, 3.185), (GRILLON, 47, 3.379),
    ])
    def test_table2_characteristics(self, cluster, procs, gflops):
        assert cluster.num_procs == procs
        assert cluster.speed_flops == pytest.approx(gflops * 1e9)

    def test_gigabit_100us(self):
        for c in GRID5000_CLUSTERS.values():
            assert c.bandwidth_Bps == pytest.approx(GIGABIT_BPS)
            assert c.latency_s == pytest.approx(100e-6)

    def test_grelon_is_hierarchical_5x24(self):
        assert GRELON.is_hierarchical
        assert (GRELON.cabinets, GRELON.cabinet_size) == (5, 24)
        assert not CHTI.is_hierarchical and not GRILLON.is_hierarchical

    def test_get_cluster(self):
        assert get_cluster("chti") is CHTI
        with pytest.raises(KeyError):
            get_cluster("nope")

    def test_describe_mentions_shape(self):
        assert "5x24" in GRELON.describe()
        assert "flat" in GRILLON.describe()


class TestTopologyRoutes:
    def test_self_route_is_free(self, tiny_cluster):
        r = tiny_cluster.topology.route(3, 3)
        assert r.is_local and r.links == () and r.latency_s == 0.0

    def test_flat_route_two_links(self, tiny_cluster):
        r = tiny_cluster.topology.route(0, 5)
        assert r.links == (("nic_up", 0), ("nic_down", 5))
        assert r.latency_s == pytest.approx(tiny_cluster.latency_s)

    def test_hierarchical_intra_cabinet(self, hier_cluster):
        r = hier_cluster.topology.route(0, 3)  # both cabinet 0
        assert r.links == (("nic_up", 0), ("nic_down", 3))
        assert r.latency_s == pytest.approx(hier_cluster.latency_s)

    def test_hierarchical_inter_cabinet(self, hier_cluster):
        r = hier_cluster.topology.route(0, 11)  # cabinets 0 -> 2
        assert r.links == (("nic_up", 0), ("cab_up", 0),
                           ("cab_down", 2), ("nic_down", 11))
        assert r.latency_s == pytest.approx(2 * hier_cluster.latency_s)

    def test_route_out_of_range(self, tiny_cluster):
        with pytest.raises(ValueError):
            tiny_cluster.topology.route(0, 99)

    def test_route_cache_stable(self, tiny_cluster):
        t = tiny_cluster.topology
        assert t.route(1, 2) is t.route(1, 2)

    def test_tcp_cap_inactive_on_lan(self, tiny_cluster):
        """4 MiB window / 200 us RTT >> 1 Gb/s: cap must not bind."""
        r = tiny_cluster.topology.route(0, 1)
        assert r.rate_cap_Bps == pytest.approx(tiny_cluster.bandwidth_Bps)

    def test_tcp_cap_binds_on_high_latency(self):
        c = Cluster(name="wan", num_procs=2, speed_flops=1e9,
                    latency_s=0.05, tcp_window_bytes=1e6)
        r = c.topology.route(0, 1)
        # one-way latency 0.05 s -> RTT 0.1 s; beta' = 1e6 / 0.1 = 1e7 B/s
        assert r.rate_cap_Bps == pytest.approx(1e6 / 0.1)

    def test_capacity_array_alignment(self, hier_cluster):
        topo = hier_cluster.topology
        arr = topo.capacity_array
        assert len(arr) == len(topo.link_ids)
        for lid, idx in topo.link_index.items():
            assert arr[idx] == topo.capacities[lid]

    def test_route_indices_match_links(self, hier_cluster):
        topo = hier_cluster.topology
        r = topo.route(0, 11)
        idx = topo.route_indices(0, 11)
        assert tuple(topo.link_ids[i] for i in idx) == r.links

    def test_link_count(self, hier_cluster):
        # 2 per node + 2 per cabinet
        expected = 2 * hier_cluster.num_procs + 2 * hier_cluster.cabinets
        assert len(hier_cluster.topology.capacities) == expected
