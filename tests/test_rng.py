"""Tests for deterministic seeding (repro.utils.rng)."""

from __future__ import annotations

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import scenario_seed, spawn_rng


class TestScenarioSeed:
    def test_deterministic(self):
        assert scenario_seed("a", 1, 2.5) == scenario_seed("a", 1, 2.5)

    def test_distinct_parts_distinct_seed(self):
        assert scenario_seed("a") != scenario_seed("b")
        assert scenario_seed("a", 1) != scenario_seed("a", 2)

    def test_part_boundaries_matter(self):
        # ("ab", "c") must differ from ("a", "bc")
        assert scenario_seed("ab", "c") != scenario_seed("a", "bc")

    def test_range(self):
        s = scenario_seed("x")
        assert 0 <= s < 2 ** 64

    @given(st.lists(st.text(max_size=20), min_size=1, max_size=5))
    def test_stable_under_repetition(self, parts):
        assert scenario_seed(*parts) == scenario_seed(*parts)


class TestSpawnRng:
    def test_same_parts_same_stream(self):
        a = spawn_rng("stream").random(8)
        b = spawn_rng("stream").random(8)
        np.testing.assert_array_equal(a, b)

    def test_different_parts_different_stream(self):
        a = spawn_rng("s1").random(8)
        b = spawn_rng("s2").random(8)
        assert not np.array_equal(a, b)

    def test_returns_generator(self):
        assert isinstance(spawn_rng("x"), np.random.Generator)
