"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import main


class TestCli:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table II" in out and "Table III" in out
        assert "557" in out

    def test_demo_small(self, capsys):
        assert main(["demo", "--tasks", "8", "--cluster", "chti"]) == 0
        out = capsys.readouterr().out
        assert "HCPA" in out and "RATS" in out and "best:" in out

    def test_demo_gantt(self, capsys):
        assert main(["demo", "--tasks", "6", "--cluster", "chti",
                     "--gantt"]) == 0
        assert "Gantt" in capsys.readouterr().out

    def test_autotune_command(self, capsys):
        assert main(["autotune", "--tasks", "10", "--cluster", "chti"]) == 0
        out = capsys.readouterr().out
        assert "features:" in out
        assert "delta" in out and "timecost" in out

    def test_campaign_subcommand(self, capsys, tmp_path):
        out_file = tmp_path / "r.txt"
        rc = main(["campaign", "--fraction", "0.004", "--clusters", "chti",
                   "--skip-sweeps", "--quiet", "--out", str(out_file)])
        assert rc == 0
        assert "Table VI" in out_file.read_text()

    def test_campaign_help_lists_options(self, capsys):
        with pytest.raises(SystemExit) as ei:
            main(["campaign", "--help"])
        assert ei.value.code == 0
        out = capsys.readouterr().out
        assert "--fraction" in out and "--jobs" in out

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for section in ("allocators:", "mapping strategies:",
                        "dag families:", "platforms:"):
            assert section in out
        for name in ("cpa", "mcpa", "hcpa", "delta", "timecost", "layered",
                     "irregular", "fft", "strassen", "chti", "grillon",
                     "grelon"):
            assert name in out

    def test_list_includes_custom_registrations(self, capsys):
        from repro.platforms.cluster import Cluster
        from repro.registry import platforms, register_platform

        register_platform(Cluster(name="cli-test", num_procs=4,
                                  speed_flops=1e9),
                          description="cli test platform")
        try:
            main(["list"])
            assert "cli-test" in capsys.readouterr().out
        finally:
            platforms.unregister("cli-test")

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as ei:
            main(["--version"])
        assert ei.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["bogus"])
