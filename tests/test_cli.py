"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main


class TestCli:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table II" in out and "Table III" in out
        assert "557" in out

    def test_demo_small(self, capsys):
        assert main(["demo", "--tasks", "8", "--cluster", "chti"]) == 0
        out = capsys.readouterr().out
        assert "HCPA" in out and "RATS" in out and "best:" in out

    def test_demo_gantt(self, capsys):
        assert main(["demo", "--tasks", "6", "--cluster", "chti",
                     "--gantt"]) == 0
        assert "Gantt" in capsys.readouterr().out

    def test_autotune_command(self, capsys):
        assert main(["autotune", "--tasks", "10", "--cluster", "chti"]) == 0
        out = capsys.readouterr().out
        assert "features:" in out
        assert "delta" in out and "timecost" in out

    def test_campaign_subcommand(self, capsys, tmp_path):
        out_file = tmp_path / "r.txt"
        rc = main(["campaign", "--fraction", "0.004", "--clusters", "chti",
                   "--skip-sweeps", "--quiet", "--out", str(out_file)])
        assert rc == 0
        assert "Table VI" in out_file.read_text()

    def test_campaign_help_lists_options(self, capsys):
        with pytest.raises(SystemExit) as ei:
            main(["campaign", "--help"])
        assert ei.value.code == 0
        out = capsys.readouterr().out
        assert "--fraction" in out and "--jobs" in out

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for section in ("allocators:", "mapping strategies:",
                        "dag families:", "platforms:"):
            assert section in out
        for name in ("cpa", "mcpa", "hcpa", "delta", "timecost", "layered",
                     "irregular", "fft", "strassen", "chti", "grillon",
                     "grelon"):
            assert name in out

    def test_list_includes_custom_registrations(self, capsys):
        from repro.platforms.cluster import Cluster
        from repro.registry import platforms, register_platform

        register_platform(Cluster(name="cli-test", num_procs=4,
                                  speed_flops=1e9),
                          description="cli test platform")
        try:
            main(["list"])
            assert "cli-test" in capsys.readouterr().out
        finally:
            platforms.unregister("cli-test")

    def test_list_json(self, capsys):
        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"allocators", "mapping strategies",
                                "dag families", "platforms", "schedulers"}
        platform_names = {e["name"] for e in payload["platforms"]}
        assert "grid5000-grid" in platform_names  # multi-cluster platform
        scheduler_names = {e["name"] for e in payload["schedulers"]}
        assert {"multicluster-list", "multicluster-rats"} <= scheduler_names
        timecost = next(e for e in payload["mapping strategies"]
                        if e["name"] == "timecost")
        assert timecost["aliases"] == ["time-cost"]

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as ei:
            main(["--version"])
        assert ei.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["bogus"])


class TestRunSubcommand:
    def _write_spec(self, tmp_path, fmt="json"):
        if fmt == "toml":
            path = tmp_path / "exp.toml"
            path.write_text(
                'platforms = ["chti"]\n'
                'algorithms = ["hcpa", "rats-delta"]\n'
                "repeats = 2\n\n"
                "[[workloads]]\n"
                'family = "strassen"\n')
        else:
            path = tmp_path / "exp.json"
            path.write_text(json.dumps({
                "platforms": ["chti"],
                "workloads": [{"family": "strassen"}],
                "algorithms": ["hcpa", "rats-delta"],
                "repeats": 2,
            }))
        return path

    def test_run_json_spec(self, capsys, tmp_path):
        assert main(["run", str(self._write_spec(tmp_path)),
                     "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "hcpa" in out and "rats-delta" in out and "best:" in out

    def test_run_toml_spec(self, capsys, tmp_path):
        assert main(["run", str(self._write_spec(tmp_path, "toml")),
                     "--quiet"]) == 0
        assert "best:" in capsys.readouterr().out

    def test_run_with_store_resumes(self, capsys, tmp_path):
        spec = self._write_spec(tmp_path)
        store = tmp_path / "store.jsonl"
        assert main(["run", str(spec), "--store", str(store),
                     "--quiet"]) == 0
        err = capsys.readouterr().err
        assert "4 fresh" in err
        assert main(["run", str(spec), "--store", str(store), "--resume",
                     "--quiet"]) == 0
        err = capsys.readouterr().err
        assert "4 hits, 0 fresh" in err

    def test_run_existing_store_needs_resume(self, capsys, tmp_path):
        spec = self._write_spec(tmp_path)
        store = tmp_path / "store.jsonl"
        assert main(["run", str(spec), "--store", str(store),
                     "--quiet"]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="--resume"):
            main(["run", str(spec), "--store", str(store), "--quiet"])

    def test_run_resume_requires_store(self, tmp_path):
        spec = self._write_spec(tmp_path)
        with pytest.raises(SystemExit, match="--store"):
            main(["run", str(spec), "--resume", "--quiet"])

    def test_run_results_json(self, capsys, tmp_path):
        from repro.scheduling.serialize import load_results

        spec = self._write_spec(tmp_path)
        out_path = tmp_path / "results.json"
        assert main(["run", str(spec), "--results-json", str(out_path),
                     "--quiet"]) == 0
        results = load_results(out_path)
        assert len(results) == 4  # 2 samples x 1 cluster x 2 algorithms

    def test_run_multicluster_platform(self, capsys, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps({
            "platforms": ["grid5000-grid"],
            "workloads": [{"family": "strassen"}],
            "algorithms": ["hcpa"],
        }))
        assert main(["run", str(path), "--quiet"]) == 0
        assert "hcpa" in capsys.readouterr().out

    def test_run_rejects_unknown_spec_key(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"platform": ["chti"]}))  # typo'd key
        with pytest.raises(SystemExit, match="platform"):
            main(["run", str(path)])

    def test_run_rejects_malformed_spec(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SystemExit, match="malformed"):
            main(["run", str(path)])

    def test_run_missing_sections_error_cleanly(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"platforms": ["chti"]}))
        with pytest.raises(SystemExit, match="workload"):
            main(["run", str(path), "--quiet"])

    def test_campaign_with_store(self, capsys, tmp_path):
        store = tmp_path / "campaign.jsonl"
        args = ["campaign", "--fraction", "0.004", "--clusters", "chti",
                "--skip-sweeps", "--quiet", "--store", str(store),
                "--out", str(tmp_path / "r.txt")]
        assert main(args) == 0
        assert "0 hits" not in capsys.readouterr().err
        assert main(args + ["--resume"]) == 0
        assert "0 fresh" in capsys.readouterr().err
