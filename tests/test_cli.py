"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import main


class TestCli:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table II" in out and "Table III" in out
        assert "557" in out

    def test_demo_small(self, capsys):
        assert main(["demo", "--tasks", "8", "--cluster", "chti"]) == 0
        out = capsys.readouterr().out
        assert "HCPA" in out and "RATS" in out and "best:" in out

    def test_demo_gantt(self, capsys):
        assert main(["demo", "--tasks", "6", "--cluster", "chti",
                     "--gantt"]) == 0
        assert "Gantt" in capsys.readouterr().out

    def test_autotune_command(self, capsys):
        assert main(["autotune", "--tasks", "10", "--cluster", "chti"]) == 0
        out = capsys.readouterr().out
        assert "features:" in out
        assert "delta" in out and "timecost" in out

    def test_campaign_forwarding(self, capsys, tmp_path):
        out_file = tmp_path / "r.txt"
        rc = main(["campaign", "--fraction", "0.004", "--clusters", "chti",
                   "--skip-sweeps", "--quiet", "--out", str(out_file)])
        assert rc == 0
        assert "Table VI" in out_file.read_text()

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["bogus"])
