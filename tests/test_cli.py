"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main


class TestCli:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table II" in out and "Table III" in out
        assert "557" in out

    def test_demo_small(self, capsys):
        assert main(["demo", "--tasks", "8", "--cluster", "chti"]) == 0
        out = capsys.readouterr().out
        assert "HCPA" in out and "RATS" in out and "best:" in out

    def test_demo_gantt(self, capsys):
        assert main(["demo", "--tasks", "6", "--cluster", "chti",
                     "--gantt"]) == 0
        assert "Gantt" in capsys.readouterr().out

    def test_autotune_command(self, capsys):
        assert main(["autotune", "--tasks", "10", "--cluster", "chti"]) == 0
        out = capsys.readouterr().out
        assert "features:" in out
        assert "delta" in out and "timecost" in out

    def test_campaign_subcommand(self, capsys, tmp_path):
        out_file = tmp_path / "r.txt"
        rc = main(["campaign", "--fraction", "0.004", "--clusters", "chti",
                   "--skip-sweeps", "--quiet", "--out", str(out_file)])
        assert rc == 0
        assert "Table VI" in out_file.read_text()

    def test_campaign_help_lists_options(self, capsys):
        with pytest.raises(SystemExit) as ei:
            main(["campaign", "--help"])
        assert ei.value.code == 0
        out = capsys.readouterr().out
        assert "--fraction" in out and "--jobs" in out

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for section in ("allocators:", "mapping strategies:",
                        "dag families:", "platforms:"):
            assert section in out
        for name in ("cpa", "mcpa", "hcpa", "delta", "timecost", "layered",
                     "irregular", "fft", "strassen", "chti", "grillon",
                     "grelon"):
            assert name in out

    def test_list_includes_custom_registrations(self, capsys):
        from repro.platforms.cluster import Cluster
        from repro.registry import platforms, register_platform

        register_platform(Cluster(name="cli-test", num_procs=4,
                                  speed_flops=1e9),
                          description="cli test platform")
        try:
            main(["list"])
            assert "cli-test" in capsys.readouterr().out
        finally:
            platforms.unregister("cli-test")

    def test_list_json(self, capsys):
        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"allocators", "mapping strategies",
                                "dag families", "platforms", "schedulers"}
        platform_names = {e["name"] for e in payload["platforms"]}
        assert "grid5000-grid" in platform_names  # multi-cluster platform
        scheduler_names = {e["name"] for e in payload["schedulers"]}
        assert {"multicluster-list", "multicluster-rats"} <= scheduler_names
        timecost = next(e for e in payload["mapping strategies"]
                        if e["name"] == "timecost")
        assert timecost["aliases"] == ["time-cost"]

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as ei:
            main(["--version"])
        assert ei.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["bogus"])


class TestRunSubcommand:
    def _write_spec(self, tmp_path, fmt="json"):
        if fmt == "toml":
            path = tmp_path / "exp.toml"
            path.write_text(
                'platforms = ["chti"]\n'
                'algorithms = ["hcpa", "rats-delta"]\n'
                "repeats = 2\n\n"
                "[[workloads]]\n"
                'family = "strassen"\n')
        else:
            path = tmp_path / "exp.json"
            path.write_text(json.dumps({
                "platforms": ["chti"],
                "workloads": [{"family": "strassen"}],
                "algorithms": ["hcpa", "rats-delta"],
                "repeats": 2,
            }))
        return path

    def test_run_json_spec(self, capsys, tmp_path):
        assert main(["run", str(self._write_spec(tmp_path)),
                     "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "hcpa" in out and "rats-delta" in out and "best:" in out

    def test_run_toml_spec(self, capsys, tmp_path):
        assert main(["run", str(self._write_spec(tmp_path, "toml")),
                     "--quiet"]) == 0
        assert "best:" in capsys.readouterr().out

    def test_run_with_store_resumes(self, capsys, tmp_path):
        spec = self._write_spec(tmp_path)
        store = tmp_path / "store.jsonl"
        assert main(["run", str(spec), "--store", str(store),
                     "--quiet"]) == 0
        err = capsys.readouterr().err
        assert "4 fresh" in err
        assert main(["run", str(spec), "--store", str(store), "--resume",
                     "--quiet"]) == 0
        err = capsys.readouterr().err
        assert "4 hits, 0 fresh" in err

    def test_run_existing_store_needs_resume(self, capsys, tmp_path):
        spec = self._write_spec(tmp_path)
        store = tmp_path / "store.jsonl"
        assert main(["run", str(spec), "--store", str(store),
                     "--quiet"]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="--resume"):
            main(["run", str(spec), "--store", str(store), "--quiet"])

    def test_run_resume_requires_store(self, tmp_path):
        spec = self._write_spec(tmp_path)
        with pytest.raises(SystemExit, match="--store"):
            main(["run", str(spec), "--resume", "--quiet"])

    def test_run_results_json(self, capsys, tmp_path):
        from repro.scheduling.serialize import load_results

        spec = self._write_spec(tmp_path)
        out_path = tmp_path / "results.json"
        assert main(["run", str(spec), "--results-json", str(out_path),
                     "--quiet"]) == 0
        results = load_results(out_path)
        assert len(results) == 4  # 2 samples x 1 cluster x 2 algorithms

    def test_run_multicluster_platform(self, capsys, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps({
            "platforms": ["grid5000-grid"],
            "workloads": [{"family": "strassen"}],
            "algorithms": ["hcpa"],
        }))
        assert main(["run", str(path), "--quiet"]) == 0
        assert "hcpa" in capsys.readouterr().out

    def test_run_rejects_unknown_spec_key(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"platform": ["chti"]}))  # typo'd key
        with pytest.raises(SystemExit, match="platform"):
            main(["run", str(path)])

    def test_run_rejects_malformed_spec(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SystemExit, match="malformed"):
            main(["run", str(path)])

    def test_run_missing_sections_error_cleanly(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"platforms": ["chti"]}))
        with pytest.raises(SystemExit, match="workload"):
            main(["run", str(path), "--quiet"])

    def test_campaign_with_store(self, capsys, tmp_path):
        store = tmp_path / "campaign.jsonl"
        args = ["campaign", "--fraction", "0.004", "--clusters", "chti",
                "--skip-sweeps", "--quiet", "--store", str(store),
                "--out", str(tmp_path / "r.txt")]
        assert main(args) == 0
        err = capsys.readouterr().err
        # plan-level dedup: duplicates never even reach the store, so the
        # first pass is all fresh — and the stats line appears exactly once
        assert ", 0 fresh" not in err
        assert err.count(f"store {store}:") == 1
        assert main(args + ["--resume"]) == 0
        assert ", 0 fresh" in capsys.readouterr().err


class TestOpenCliStore:
    """The --store / --resume CLI contract (satellite: error paths)."""

    def _run_one(self, store_path):
        from repro.experiments.runner import ExperimentRunner, baseline_spec
        from repro.experiments.scenarios import Scenario
        from repro.experiments.store import open_store

        with open_store(store_path) as store:
            with ExperimentRunner(store=store) as runner:
                runner.run(Scenario(family="strassen", sample=0),
                           get_tiny(), baseline_spec("hcpa"))

    def test_none_path_without_resume_is_no_store(self):
        from repro.experiments.campaign import open_cli_store

        assert open_cli_store(None, resume=False) is None

    def test_resume_without_store_errors(self):
        from repro.experiments.campaign import open_cli_store

        with pytest.raises(SystemExit, match="--resume requires --store"):
            open_cli_store(None, resume=True)

    @pytest.mark.parametrize("name", ["s.jsonl", "s.sqlite"])
    def test_nonempty_store_without_resume_errors(self, tmp_path, name):
        from repro.experiments.campaign import open_cli_store

        path = tmp_path / name
        self._run_one(path)
        with pytest.raises(SystemExit, match="pass --resume"):
            open_cli_store(path, resume=False)

    @pytest.mark.parametrize("name", ["s.jsonl", "s.sqlite"])
    def test_nonempty_store_with_resume_opens(self, tmp_path, name):
        from repro.experiments.campaign import open_cli_store

        path = tmp_path / name
        self._run_one(path)
        store = open_cli_store(path, resume=True)
        assert len(store) == 1
        store.close()

    def test_fresh_path_opens_without_resume(self, tmp_path):
        from repro.experiments.campaign import open_cli_store
        from repro.experiments.store import JsonlStore, SqliteStore

        jsonl = open_cli_store(tmp_path / "a.jsonl", resume=False)
        assert isinstance(jsonl, JsonlStore)
        jsonl.close()
        sqlite = open_cli_store(tmp_path / "a.sqlite", resume=False)
        assert isinstance(sqlite, SqliteStore)  # suffix dispatch
        sqlite.close()

    def test_empty_existing_file_opens_without_resume(self, tmp_path):
        from repro.experiments.campaign import open_cli_store

        path = tmp_path / "empty.jsonl"
        path.touch()
        store = open_cli_store(path, resume=False)
        assert len(store) == 0
        store.close()


def get_tiny():
    from repro.platforms.cluster import Cluster

    return Cluster(name="cli-store-tiny", num_procs=8, speed_flops=1e9)


class TestMergeSubcommand:
    def _populate(self, path, samples):
        from repro.experiments.runner import ExperimentRunner, baseline_spec
        from repro.experiments.scenarios import Scenario
        from repro.experiments.store import open_store

        with open_store(path) as store:
            with ExperimentRunner(store=store,
                                  record_timings=False) as runner:
                runner.run_matrix(
                    [Scenario(family="strassen", sample=s) for s in samples],
                    [get_tiny()], [baseline_spec("hcpa")])

    def test_merge_two_stores(self, capsys, tmp_path):
        self._populate(tmp_path / "a.jsonl", [0])
        self._populate(tmp_path / "b.jsonl", [1])
        assert main(["merge", str(tmp_path / "a.jsonl"),
                     str(tmp_path / "b.jsonl"),
                     "-o", str(tmp_path / "m.sqlite")]) == 0
        out = capsys.readouterr().out
        assert "2 results merged from 2 stores" in out
        from repro.experiments.store import open_store

        with open_store(tmp_path / "m.sqlite") as merged:
            assert len(merged) == 2

    def test_merge_missing_input_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="does not exist"):
            main(["merge", str(tmp_path / "nope.jsonl"),
                  "-o", str(tmp_path / "m.jsonl")])

    def test_merge_corrupt_sqlite_input_errors_cleanly(self, tmp_path):
        bogus = tmp_path / "bogus.sqlite"
        bogus.write_text("this is not a database\n" * 10)
        with pytest.raises(SystemExit, match="not a repro SQLite"):
            main(["merge", str(bogus), "-o", str(tmp_path / "m.jsonl")])

    def test_merge_conflict_errors(self, tmp_path):
        import dataclasses

        from repro.experiments.store import open_store

        self._populate(tmp_path / "a.jsonl", [0])
        with open_store(tmp_path / "a.jsonl") as src:
            [(key, result)] = src.items()
        with open_store(tmp_path / "b.jsonl") as store:
            store.put(key, dataclasses.replace(result, makespan=1.0))
        with pytest.raises(SystemExit, match="merge conflict"):
            main(["merge", str(tmp_path / "a.jsonl"),
                  str(tmp_path / "b.jsonl"),
                  "-o", str(tmp_path / "m.jsonl")])


class TestShardedCampaign:
    ARGS = ["campaign", "--fraction", "0.004", "--clusters", "chti",
            "--skip-sweeps", "--quiet"]

    def test_shard_requires_store(self):
        with pytest.raises(SystemExit, match="--shard requires --store"):
            main(self.ARGS + ["--shard", "1/2"])

    def test_malformed_shard_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(self.ARGS + ["--shard", "bogus",
                              "--store", str(tmp_path / "s.jsonl")])

    def test_two_shards_merge_and_replay_byte_identical(self, capsys,
                                                        tmp_path):
        """Acceptance: a 2-shard run merged via `repro merge` reproduces
        the unsharded report with zero fresh simulations on replay."""
        ref = tmp_path / "ref.txt"
        assert main(self.ARGS + ["--out", str(ref)]) == 0
        for i in (1, 2):
            assert main(self.ARGS + [
                "--shard", f"{i}/2",
                "--store", str(tmp_path / f"shard{i}.sqlite")]) == 0
        capsys.readouterr()
        assert main(["merge", str(tmp_path / "shard1.sqlite"),
                     str(tmp_path / "shard2.sqlite"),
                     "-o", str(tmp_path / "merged.sqlite")]) == 0
        assert "0 duplicates" in capsys.readouterr().out  # disjoint shards
        replay = tmp_path / "replay.txt"
        assert main(self.ARGS + ["--store", str(tmp_path / "merged.sqlite"),
                                 "--resume", "--out", str(replay)]) == 0
        err = capsys.readouterr().err
        assert ", 0 fresh" in err  # zero fresh simulations on replay
        assert replay.read_text() == ref.read_text()


class TestReplayStreamSubcommand:
    SPEC = {"kind": "poisson", "rate": 0.5, "jobs": 3, "seed": 11,
            "workloads": [{"family": "strassen"}], "algorithm": "hcpa"}

    def _spec_file(self, tmp_path, spec=None):
        path = tmp_path / "stream.json"
        path.write_text(json.dumps(spec or self.SPEC))
        return str(path)

    def test_replay_stream_prints_metrics(self, capsys, tmp_path):
        assert main(["replay-stream", self._spec_file(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "jobs=3" in out and "finished=3" in out
        assert "JCT p50/p95/p99" in out and "makespan" in out

    def test_replay_stream_store_is_deterministic(self, capsys, tmp_path):
        """Acceptance: same seed, two runs -> byte-identical job records."""
        spec = self._spec_file(tmp_path)
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert main(["replay-stream", spec, "--store", str(a),
                     "--quiet"]) == 0
        assert main(["replay-stream", spec, "--store", str(b),
                     "--quiet"]) == 0
        assert a.read_bytes() == b.read_bytes()
        assert len(a.read_bytes()) > 0

    def test_replay_stream_store_roundtrips_job_records(self, capsys,
                                                        tmp_path):
        from repro.experiments.store import open_store
        from repro.online.metrics import JobRecord

        store_path = tmp_path / "jobs.sqlite"
        assert main(["replay-stream", self._spec_file(tmp_path),
                     "--store", str(store_path), "--quiet"]) == 0
        with open_store(store_path) as store:
            records = [r for _, r in store.items()]
        assert len(records) == 3
        assert all(isinstance(r, JobRecord) for r in records)
        assert all(r.finished for r in records)

    def test_replay_stream_slo_and_admission_flags(self, capsys, tmp_path):
        spec = self._spec_file(tmp_path)
        assert main(["replay-stream", spec, "--slo", "1e9",
                     "--admission", "queue-cap:1", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "SLO" in out and "rejected=2" in out

    def test_replay_stream_rejects_bad_spec(self, tmp_path):
        bad = self._spec_file(tmp_path, {"kind": "poisson", "ratee": 2})
        with pytest.raises(SystemExit, match="invalid stream spec"):
            main(["replay-stream", bad])

    def test_replay_stream_unknown_platform_is_clean(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["replay-stream", self._spec_file(tmp_path),
                  "--platform", "no-such-platform"])

    def test_serve_help_lists_options(self, capsys):
        with pytest.raises(SystemExit) as ei:
            main(["serve", "--help"])
        assert ei.value.code == 0
        out = capsys.readouterr().out
        assert "--admission" in out and "--wall" in out
