"""Property and golden tests for the bundled Max-Min solver (PR 3).

Three solvers must agree on every flow set: the reference
:func:`maxmin_rates` (progressive filling over hashable links), the
simulator's per-flow :func:`_waterfill`, and the bundled
:func:`maxmin_rates_bundled` / :func:`waterfill_bundled` fast path.  The
golden tests additionally pin the simulator's end-to-end behaviour: the
bundled fast path must reproduce the pre-optimization reference path
event-for-event.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.maxmin import (
    maxmin_rates,
    maxmin_rates_bundled,
    maxmin_rates_indexed,
    waterfill_bundled,
)
from repro.simulation.simulator import FluidSimulator, _waterfill


@st.composite
def shared_route_problems(draw):
    """Flow sets with deliberately shared routes (the bundling case).

    A small pool of distinct routes is sampled first; each flow then
    picks from the pool, so many flows share identical routes.  Empty
    routes (cap-limited local flows) are included.
    """
    n_links = draw(st.integers(1, 6))
    capacities = np.array([draw(st.floats(0.5, 100.0))
                           for _ in range(n_links)])
    n_routes = draw(st.integers(1, 4))
    pool = [
        draw(st.lists(st.integers(0, n_links - 1), min_size=0, max_size=3,
                      unique=True))
        for _ in range(n_routes)
    ]
    n_flows = draw(st.integers(1, 12))
    routes = [pool[draw(st.integers(0, n_routes - 1))]
              for _ in range(n_flows)]
    caps = np.array([
        draw(st.one_of(st.just(float("inf")), st.floats(0.1, 50.0)))
        for _ in range(n_flows)
    ])
    return routes, capacities, caps


def _reference_rates(routes, capacities, caps):
    named = [[f"l{li}" for li in r] for r in routes]
    cap_map = {f"l{i}": c for i, c in enumerate(capacities)}
    return maxmin_rates(named, cap_map, rate_caps=list(caps))


class TestBundledSolverEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(shared_route_problems())
    def test_bundled_matches_reference(self, problem):
        routes, capacities, caps = problem
        fast = maxmin_rates_bundled(routes, capacities, caps)
        ref = _reference_rates(routes, capacities, caps)
        np.testing.assert_allclose(fast, ref, rtol=1e-9, atol=1e-9)

    @settings(max_examples=120, deadline=None)
    @given(shared_route_problems())
    def test_bundled_matches_indexed(self, problem):
        routes, capacities, caps = problem
        fast = maxmin_rates_bundled(routes, capacities, caps)
        ref = maxmin_rates_indexed(routes, capacities, caps)
        np.testing.assert_allclose(fast, ref, rtol=1e-9, atol=1e-9)

    @settings(max_examples=120, deadline=None)
    @given(shared_route_problems())
    def test_bundled_matches_waterfill(self, problem):
        """waterfill_bundled over singleton bundles ≡ per-flow _waterfill."""
        routes, capacities, caps = problem
        nonempty = [(i, r) for i, r in enumerate(routes) if r]
        entry_links = np.array([li for _, r in nonempty for li in r],
                               dtype=np.intp)
        entry_flow = np.array([i for i, (_, r) in enumerate(nonempty)
                               for _ in r], dtype=np.intp)
        sub_caps = np.array([caps[i] for i, _ in nonempty])
        ref = _waterfill(entry_links, entry_flow, len(nonempty),
                         capacities, sub_caps)

        lengths = np.array([len(r) for _, r in nonempty], dtype=np.intp)
        ptr = np.zeros(len(nonempty) + 1, dtype=np.intp)
        np.cumsum(lengths, out=ptr[1:])
        fast = waterfill_bundled(entry_links, ptr,
                                 np.ones(len(nonempty), dtype=np.intp),
                                 capacities, sub_caps)
        np.testing.assert_allclose(fast, ref, rtol=1e-9, atol=1e-9)

    def test_multiplicity_equals_expansion(self):
        """One bundle of m flows ≡ m explicit flows on the same route."""
        capacities = np.array([12.0, 8.0])
        for m in (1, 2, 5):
            bundled = waterfill_bundled(
                np.array([0, 1], dtype=np.intp),
                np.array([0, 2], dtype=np.intp),
                np.array([m], dtype=np.intp),
                capacities, np.array([np.inf]))
            expanded = maxmin_rates([["a", "b"]] * m,
                                    {"a": 12.0, "b": 8.0})
            np.testing.assert_allclose(np.repeat(bundled, m), expanded,
                                       rtol=1e-12)

    def test_zero_multiplicity_bundles_are_ignored(self):
        """Dead bundles (multiplicity 0) neither consume nor constrain."""
        rates = waterfill_bundled(
            np.array([0, 0], dtype=np.intp),
            np.array([0, 1, 2], dtype=np.intp),
            np.array([0, 3], dtype=np.intp),
            np.array([9.0]), np.array([np.inf, np.inf]))
        np.testing.assert_allclose(rates[1], 3.0)

    def test_empty_route_is_cap_limited(self):
        rates = maxmin_rates_bundled([[], [0]], np.array([10.0]),
                                     np.array([4.0, np.inf]))
        np.testing.assert_allclose(rates, [4.0, 10.0])

    def test_no_flows(self):
        assert len(maxmin_rates_bundled([], np.array([1.0]))) == 0

    def test_cap_fix_uses_csr_offsets(self):
        """maxmin_rates_indexed cap branch: shared-route capped flows."""
        capacities = np.array([10.0, 10.0, 10.0])
        routes = [[0, 1], [1, 2], [0, 2], [1]]
        caps = np.array([1.0, 2.0, np.inf, np.inf])
        got = maxmin_rates_indexed(routes, capacities, caps)
        ref = _reference_rates(routes, capacities, caps)
        np.testing.assert_allclose(got, ref, rtol=1e-12)


class TestIndexedKernelParity:
    """The compiled per-flow solver must equal numpy to the bit (PR 7)."""

    def test_indexed_kernel_matches_numpy_bitwise(self):
        from repro.network import _ckernel, maxmin

        if maxmin._indexed_kernel() is None:
            pytest.skip(f"no compiled kernel ({_ckernel.kernel_status})")
        rng = np.random.default_rng(11)
        for _ in range(120):
            n_links = int(rng.integers(1, 30))
            capacities = rng.uniform(0.5, 100.0, n_links)
            n = int(rng.integers(0, 40))
            routes = [list(rng.integers(0, n_links,
                                        int(rng.integers(0, 5))))
                      for _ in range(n)]
            caps = np.where(rng.random(n) < 0.4,
                            rng.uniform(0.01, 20.0, n), np.inf)
            fast = maxmin.maxmin_rates_indexed(routes, capacities, caps)
            saved = maxmin._INDEXED_KERNEL
            try:
                maxmin._INDEXED_KERNEL = None
                slow = maxmin.maxmin_rates_indexed(routes, capacities,
                                                   caps)
            finally:
                maxmin._INDEXED_KERNEL = saved
            assert fast.tobytes() == slow.tobytes()

    def test_kill_switch_disables_indexed_kernel(self, monkeypatch):
        from repro.network import _ckernel

        monkeypatch.setenv("REPRO_NO_C_KERNEL", "1")
        assert _ckernel.load_indexed_kernel() is None
        assert _ckernel.load_kernel() is None
        assert "REPRO_NO_C_KERNEL" in _ckernel.kernel_status

    def test_warm_reports_kernel_availability(self):
        from repro.network import _ckernel

        status = _ckernel.warm()
        assert set(status) == {"waterfill", "maxmin_indexed",
                               "price_masked", "waterfill_batch",
                               "sweep_comp", "status"}
        # every entry point lives in the one shared object, so they are
        # all available or none is — the batch and sweep kernels must
        # precompile exactly when the original waterfill kernel does
        assert status["waterfill"] == status["maxmin_indexed"]
        assert status["waterfill"] == status["price_masked"]
        assert status["waterfill"] == status["waterfill_batch"]
        assert status["waterfill"] == status["sweep_comp"]

    def test_kill_switch_disables_batch_kernels(self, monkeypatch):
        from repro.network import _ckernel

        monkeypatch.setenv("REPRO_NO_C_KERNEL", "1")
        assert _ckernel.load_batch_kernel() is None
        assert _ckernel.load_sweep_kernel() is None


# ------------------------------------------------------------------ #
# golden simulator tests
# ------------------------------------------------------------------ #
def _schedule_for(n_tasks: int, density: float = 0.8):
    # the canonical bench workload: golden values below pin *its* output
    from repro.experiments.bench import dense_dag_schedule

    return dense_dag_schedule(n_tasks, density=density)


class TestGoldenSimulation:
    def test_bundled_equals_reference_path(self):
        """The fast path must replay the reference path event-for-event."""
        schedule = _schedule_for(40)
        ref = FluidSimulator(schedule, use_bundling=False).run()
        fast = FluidSimulator(schedule, use_bundling=True).run()
        assert fast.events == ref.events
        # the component engine performs component-scoped solves, but the
        # set-change events (what an eager engine solves at) must agree
        assert fast.solves_full == ref.solves_full == ref.maxmin_solves
        assert fast.solves_component > 0
        assert fast.makespan == pytest.approx(ref.makespan, rel=1e-9)
        assert set(fast.task_traces) == set(ref.task_traces)
        for name, tr in ref.task_traces.items():
            ft = fast.task_traces[name]
            assert ft.procs == tr.procs
            assert ft.start == pytest.approx(tr.start, rel=1e-9, abs=1e-9)
            assert ft.finish == pytest.approx(tr.finish, rel=1e-9, abs=1e-9)

    def test_dense_dag_golden_makespan(self):
        """Pin simulate() on the dense-DAG bench scenario (PR-3 golden).

        The constants were recorded from the pre-optimization simulator
        (seed revision) on the `bench_substrate_perf` scenario; any drift
        means the fluid model's numbers changed, which this PR promised
        not to do.
        """
        golden_makespan = 166.10181117309952
        golden_events = 2903
        res = FluidSimulator(_schedule_for(100)).run()
        assert res.makespan == pytest.approx(golden_makespan, rel=1e-9)
        assert res.events == golden_events
