"""Golden event-trace replay of the sparse multi-cluster bench scenario.

The golden file pins the *exact* event trace (every task and flow start /
finish, shortest-repr floats) of ``sparse_multicluster_schedule`` — the
scenario the lazy component-scoped Max-Min maintenance is built for.  All
engines must reproduce it byte-for-byte:

* the bundled lazy engine (the default fast path),
* the bundled full-solve oracle (``lazy=False``),
* the online :class:`~repro.online.live.LiveFluidEngine`, primed with the
  whole schedule at t=0 (the online/batch equivalence bridge).

The per-flow reference engine (``use_bundling=False``) must agree on
every task event, the makespan and the event count; its flow *finish*
times may legitimately straddle one ulp on numerically symmetric
redistribution halves (see the bench scenario's docstring), so they are
compared to within one such spacing instead of exactly.

If an intentional engine change alters the trace, regenerate the golden
with ``python tests/test_golden_traces.py`` and commit the diff.
"""

import dataclasses
import json
import math
from pathlib import Path

from repro.experiments.bench import sparse_multicluster_schedule
from repro.online.live import LiveFluidEngine
from repro.simulation import SimulationResult, canonical_event_trace, simulate

GOLDEN = Path(__file__).parent / "golden" / "sparse_multicluster_events.json"

#: Must match what generated the committed golden file.
SCENARIO_KWARGS = dict(n_clusters=4, chain_len=12)


def _golden() -> dict:
    return json.loads(GOLDEN.read_text())


def _schedule():
    return sparse_multicluster_schedule(**SCENARIO_KWARGS)


def test_lazy_engine_replays_golden_exactly():
    res = simulate(_schedule(), collect_flow_traces=True)
    assert canonical_event_trace(res) == _golden()


def test_full_solve_oracle_replays_golden_exactly():
    res = simulate(_schedule(), collect_flow_traces=True, lazy=False)
    assert canonical_event_trace(res) == _golden()


def test_live_engine_replays_golden_exactly():
    sched = _schedule()
    eng = LiveFluidEngine(sched.cluster, collect_flow_traces=True)
    eng.inject("g", sched, 0.0)
    eng.drain()
    # strip the injection's job-id namespace back to batch task names
    task_traces = {
        tr.task.split("/", 1)[1]: dataclasses.replace(
            tr, task=tr.task.split("/", 1)[1])
        for tr in eng.traces.values()
    }
    flow_traces = [
        dataclasses.replace(fl, edge=(fl.edge[0].split("/", 1)[1],
                                      fl.edge[1].split("/", 1)[1]))
        for fl in eng.flow_traces
    ]
    res = SimulationResult(makespan=eng.makespan(),
                           task_traces=task_traces,
                           flow_traces=flow_traces, events=eng.events)
    assert canonical_event_trace(res) == _golden()


def test_reference_engine_matches_golden_to_one_ulp():
    golden = _golden()
    res = simulate(_schedule(), collect_flow_traces=True,
                   use_bundling=False)
    trace = canonical_event_trace(res)
    assert trace["tasks"] == golden["tasks"]
    assert trace["makespan"] == golden["makespan"]
    assert trace["events"] == golden["events"]
    assert len(trace["flows"]) == len(golden["flows"])
    for got, want in zip(trace["flows"], golden["flows"]):
        assert {k: v for k, v in got.items() if k != "finish"} \
            == {k: v for k, v in want.items() if k != "finish"}
        assert abs(got["finish"] - want["finish"]) \
            <= math.ulp(want["finish"])


def _regenerate() -> None:  # pragma: no cover - manual tool
    sched = _schedule()
    trace = canonical_event_trace(
        simulate(sched, collect_flow_traces=True))
    for kw in ({"lazy": False},):
        assert canonical_event_trace(
            simulate(sched, collect_flow_traces=True, **kw)) == trace, kw
    GOLDEN.write_text(json.dumps(trace, indent=1) + "\n")
    print(f"wrote {GOLDEN}: {len(trace['tasks'])} tasks, "
          f"{len(trace['flows'])} flows, {trace['events']} events")


if __name__ == "__main__":  # pragma: no cover
    _regenerate()
