"""Equivalence and regression tests for the lazy component engine (PR 5).

The component-scoped Max-Min maintenance must be indistinguishable from
the eager engines it replaced:

* ``lazy=True`` vs ``lazy=False`` — **byte-identical**: the full-solve
  oracle re-solves every live component at each flow-set change, but the
  extra solves see identical inputs, so every trace float must match
  exactly;
* vs ``use_bundling=False`` — the original per-flow reference engine:
  task traces agree within 1e-9 (event *coalescing* may legitimately
  differ: the reference's global byte-threshold sweep can merge
  completions of *independent* components that land within one another's
  threshold window, e.g. the numerically symmetric halves of a
  ``gcd > 1`` redistribution band — the golden tests pin exact event
  counts on the canonical scenarios where the engines agree).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.bench import (
    dense_dag_schedule,
    sparse_multicluster_schedule,
)
from repro.experiments.scenarios import Scenario
from repro.platforms.grid5000 import CHTI, GRELON
from repro.scheduling.allocation import hcpa_allocation
from repro.scheduling.mapping import ListScheduler
from repro.simulation.simulator import FluidSimulator


def _schedule_for_scenario(scenario: Scenario, cluster):
    graph = scenario.build()
    model = cluster.performance_model()
    alloc = hcpa_allocation(graph, model, cluster.num_procs).allocation
    return ListScheduler(graph, cluster, model, alloc).run()


def _run_all_engines(schedule, **kwargs):
    lazy = FluidSimulator(schedule, lazy=True, **kwargs).run()
    full = FluidSimulator(schedule, lazy=False, **kwargs).run()
    ref = FluidSimulator(schedule, use_bundling=False, **kwargs).run()
    return lazy, full, ref


def assert_byte_identical(a, b):
    """Lazy and full-solve runs must agree to the last bit."""
    assert a.events == b.events
    assert a.solves_full == b.solves_full
    assert a.makespan == b.makespan
    assert set(a.task_traces) == set(b.task_traces)
    for name, tr in a.task_traces.items():
        other = b.task_traces[name]
        assert tr.procs == other.procs
        assert tr.start == other.start
        assert tr.finish == other.finish
    assert len(a.flow_traces) == len(b.flow_traces)
    for fa, fb in zip(a.flow_traces, b.flow_traces):
        assert (fa.edge, fa.src, fa.dst, fa.data_bytes,
                fa.release, fa.finish) == \
               (fb.edge, fb.src, fb.dst, fb.data_bytes,
                fb.release, fb.finish)


def assert_traces_close(a, ref, rel=1e-9):
    assert set(a.task_traces) == set(ref.task_traces)
    for name, tr in a.task_traces.items():
        other = ref.task_traces[name]
        assert tr.procs == other.procs
        assert tr.start == pytest.approx(other.start, rel=rel, abs=rel)
        assert tr.finish == pytest.approx(other.finish, rel=rel, abs=rel)
    assert a.makespan == pytest.approx(ref.makespan, rel=rel)


class TestEngineEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(
        family=st.sampled_from(["layered", "irregular"]),
        n_tasks=st.integers(8, 22),
        width=st.sampled_from([0.2, 0.5, 0.8]),
        density=st.sampled_from([0.2, 0.8]),
        regularity=st.sampled_from([0.2, 0.8]),
        jump=st.sampled_from([1, 2]),
        sample=st.integers(0, 3),
        hierarchical=st.booleans(),
    )
    def test_lazy_full_reference_agree_on_random_draws(
            self, family, n_tasks, width, density, regularity, jump,
            sample, hierarchical):
        """Random DAG/platform draws: lazy ≡ full (bytes), ≡ ref (1e-9)."""
        scenario = Scenario(family=family, n_tasks=n_tasks, width=width,
                            density=density, regularity=regularity,
                            jump=jump, sample=sample)
        cluster = GRELON if hierarchical else CHTI
        schedule = _schedule_for_scenario(scenario, cluster)
        lazy, full, ref = _run_all_engines(schedule,
                                           collect_flow_traces=True)
        assert_byte_identical(lazy, full)
        assert_traces_close(lazy, ref)
        # event *counts* are not asserted against the reference: a
        # symmetric (gcd > 1) redistribution band splits into numerically
        # twin components whose completions the reference's global
        # byte-threshold sweep coalesces and the per-component sweep
        # orders — same times to 1e-9, different event bookkeeping
        assert lazy.maxmin_solves == lazy.solves_component
        assert ref.maxmin_solves == ref.solves_full

    def test_kernel_families(self):
        """The structured kernels (fft, strassen) through all engines."""
        for scenario in (Scenario(family="fft", k=4, sample=0),
                         Scenario(family="strassen", sample=1)):
            schedule = _schedule_for_scenario(scenario, CHTI)
            lazy, full, ref = _run_all_engines(schedule)
            assert_byte_identical(lazy, full)
            assert_traces_close(lazy, ref)


class TestDegenerateSingleComponent:
    def test_saturated_single_cluster_has_no_solve_blowup(self):
        """A dense single-cluster DAG degenerates to ~one component.

        The lazy machinery must then behave like the eager engine: about
        one component solve per flow-set change (never a per-event
        multiple), and identical results.
        """
        schedule = dense_dag_schedule(40)
        lazy = FluidSimulator(schedule, lazy=True).run()
        full = FluidSimulator(schedule, lazy=False).run()
        assert_byte_identical(lazy, full)
        # one comp ⇒ the full oracle performs (almost) no extra solves …
        assert full.solves_component <= 1.05 * lazy.solves_component + 5
        # … and the lazy path performs about one solve per set change
        assert lazy.solves_component <= 1.05 * lazy.solves_full + 5


class TestSparseMulticluster:
    def test_components_decouple_and_engines_agree(self):
        schedule = sparse_multicluster_schedule(n_clusters=4, chain_len=14)
        lazy, full, ref = _run_all_engines(schedule)
        assert_byte_identical(lazy, full)
        assert_traces_close(lazy, ref)
        # the gcd(8,5)=1 band keeps each transfer one component, so even
        # event coalescing matches the reference engine here
        assert lazy.events == ref.events
        # ≥ 2× solve-count reduction over one-solve-per-event …
        assert lazy.solves_component < 0.5 * lazy.events
        # … and a large gap to the full-solve oracle (≈ one live
        # component per cluster)
        assert full.solves_component >= 2 * lazy.solves_component

    def test_bench_scale_ratio(self):
        """The acceptance-criterion numbers at the benchmarked scale."""
        schedule = sparse_multicluster_schedule()
        lazy = FluidSimulator(schedule, lazy=True).run()
        assert lazy.solves_component < 0.5 * lazy.events


class TestSolveCounters:
    def test_reference_counters(self):
        schedule = dense_dag_schedule(16, density=0.5)
        ref = FluidSimulator(schedule, use_bundling=False).run()
        assert ref.solves_component == 0
        assert ref.solves_full == ref.maxmin_solves > 0

    def test_component_counters(self):
        schedule = dense_dag_schedule(16, density=0.5)
        lazy = FluidSimulator(schedule, lazy=True).run()
        assert lazy.maxmin_solves == lazy.solves_component > 0
        assert lazy.solves_full > 0


class TestRunResultSurface:
    def test_solves_reach_run_results(self):
        from repro.experiments.runner import AlgorithmSpec, ExperimentRunner

        scenario = Scenario(family="layered", n_tasks=10, width=0.5,
                            density=0.8, regularity=0.8, sample=0)
        runner = ExperimentRunner()
        result = runner.run(scenario, CHTI, AlgorithmSpec(label="hcpa"))
        assert result.solves_full > 0
        assert result.solves_component > 0
        # and they serialize through the results-json path
        from repro.scheduling.serialize import results_from_json, results_to_json

        [back] = results_from_json(results_to_json([result]))
        assert back.solves_full == result.solves_full
        assert back.solves_component == result.solves_component

    def test_estimates_only_runs_report_zero_solves(self):
        from repro.experiments.runner import AlgorithmSpec, ExperimentRunner

        scenario = Scenario(family="layered", n_tasks=10, width=0.5,
                            density=0.8, regularity=0.8, sample=0)
        runner = ExperimentRunner(simulate_schedules=False)
        result = runner.run(scenario, CHTI, AlgorithmSpec(label="hcpa"))
        assert result.solves_full == 0
        assert result.solves_component == 0


class TestCompiledKernelParity:
    def test_kernel_matches_numpy_fallback_bitwise(self):
        """When the C kernel compiled, it must equal numpy to the bit."""
        from repro.network import _ckernel, maxmin

        if maxmin._kernel() is None:
            pytest.skip(f"no compiled kernel ({_ckernel.kernel_status})")
        rng = np.random.default_rng(7)
        for _ in range(60):
            n_links = int(rng.integers(2, 12))
            n_b = int(rng.integers(1, 25))
            lens = rng.integers(0, 4, n_b)
            ptr = np.zeros(n_b + 1, dtype=np.intp)
            np.cumsum(lens, out=ptr[1:])
            flat = rng.integers(0, n_links, int(ptr[-1])).astype(np.intp)
            mult = rng.integers(0, 4, n_b).astype(np.intp)
            caps = np.where(rng.random(n_b) < 0.3,
                            rng.uniform(0.1, 50.0, n_b), np.inf)
            capacities = rng.uniform(0.5, 100.0, n_links)
            fast = maxmin.waterfill_bundled(flat, ptr, mult, capacities,
                                            caps)
            saved = maxmin._C_KERNEL
            try:
                maxmin._C_KERNEL = None
                slow = maxmin.waterfill_bundled(flat, ptr, mult,
                                                capacities, caps)
            finally:
                maxmin._C_KERNEL = saved
            np.testing.assert_array_equal(fast, slow)


class TestComponentDecomposition:
    def test_bundle_components_labels(self):
        from repro.network.maxmin import bundle_components

        # bundles: {0,1} share link 3; {2} isolated; {3} empty route
        flat = np.array([0, 3, 3, 1, 2], dtype=np.intp)
        ptr = np.array([0, 2, 4, 5, 5], dtype=np.intp)
        labels = bundle_components(flat, ptr)
        assert labels[0] == labels[1]
        assert labels[2] not in (labels[0], labels[3])
        assert labels[3] not in (labels[0], labels[2])

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_by_component_solve_equals_global(self, data):
        from repro.network.maxmin import (
            waterfill_bundled,
            waterfill_bundled_by_component,
        )

        rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
        n_links = int(rng.integers(2, 10))
        n_b = int(rng.integers(1, 20))
        lens = rng.integers(0, 3, n_b)
        ptr = np.zeros(n_b + 1, dtype=np.intp)
        np.cumsum(lens, out=ptr[1:])
        flat = rng.integers(0, n_links, int(ptr[-1])).astype(np.intp)
        mult = rng.integers(1, 5, n_b).astype(np.intp)
        caps = np.where(rng.random(n_b) < 0.4,
                        rng.uniform(0.1, 20.0, n_b), np.inf)
        capacities = rng.uniform(0.5, 50.0, n_links)
        whole = waterfill_bundled(flat, ptr, mult, capacities, caps)
        split = waterfill_bundled_by_component(flat, ptr, mult, capacities,
                                               caps)
        np.testing.assert_allclose(split, whole, rtol=1e-9, atol=1e-12)
