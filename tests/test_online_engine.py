"""Online simulator: batch equivalence, determinism, admission."""

import dataclasses

import pytest

from repro.experiments.runner import AlgorithmSpec
from repro.experiments.scenarios import Scenario
from repro.online.engine import OnlineSimulator
from repro.online.live import LiveFluidEngine
from repro.online.stream import JobArrival, PoissonStream, ReplayStream
from repro.platforms.grid5000 import GRILLON
from repro.scheduling.allocation import hcpa_allocation
from repro.scheduling.mapping import ListScheduler
from repro.simulation.simulator import simulate

DENSE = Scenario(family="irregular", sample=0, n_tasks=40, width=0.5,
                 regularity=0.8, density=0.8, jump=2)
HCPA = AlgorithmSpec(label="hcpa")


def _batch_schedule(scenario=DENSE):
    graph = scenario.build()
    model = GRILLON.performance_model()
    alloc = hcpa_allocation(graph, model, GRILLON.num_procs).allocation
    return ListScheduler(graph, GRILLON, model, alloc).run()


def _small_stream(n=5, rate=0.05, seed=7):
    return PoissonStream(rate=rate, n_jobs=n, scenarios=[DENSE],
                         spec=HCPA, seed=seed)


class TestBatchEquivalence:
    """All arrivals at t=0 + accept-all reduces exactly to batch."""

    def test_live_engine_t0_injection_is_byte_identical(self):
        sched = _batch_schedule()
        batch = simulate(sched, collect_flow_traces=True)

        eng = LiveFluidEngine(GRILLON, collect_flow_traces=True)
        eng.inject("j0", sched, 0.0)
        eng.drain()

        assert eng.makespan() == batch.makespan
        assert eng.events == batch.events
        stripped = {
            tr.task.split("/", 1)[1]: dataclasses.replace(
                tr, task=tr.task.split("/", 1)[1])
            for tr in eng.traces.values()
        }
        assert stripped == batch.task_traces
        live_flows = [
            dataclasses.replace(fl, edge=(fl.edge[0].split("/", 1)[1],
                                          fl.edge[1].split("/", 1)[1]))
            for fl in eng.flow_traces
        ]
        assert live_flows == batch.flow_traces

    def test_online_pipeline_t0_matches_batch_makespan(self):
        batch = simulate(_batch_schedule())
        sim = OnlineSimulator(GRILLON)
        result = sim.run(ReplayStream([JobArrival("j0", 0.0, DENSE, HCPA)]))
        assert result.makespan == batch.makespan
        assert result.events == batch.events
        rec = result.records[0]
        assert rec.start == 0.0
        assert rec.completion == batch.makespan

    def test_residual_release_all_zero_equals_batch_default(self):
        """An all-zero proc_release seed is literally the batch scheduler."""
        graph = DENSE.build()
        model = GRILLON.performance_model()
        alloc = hcpa_allocation(graph, model, GRILLON.num_procs).allocation
        a = ListScheduler(graph, GRILLON, model, alloc).run()
        b = ListScheduler(graph, GRILLON, model, alloc,
                          proc_release=[0.0] * GRILLON.num_procs).run()
        assert a.entries == b.entries


class TestDeterminism:
    def test_seeded_stream_replays_byte_identical_records(self):
        r1 = OnlineSimulator(GRILLON).run(_small_stream())
        r2 = OnlineSimulator(GRILLON).run(_small_stream())
        assert r1.records == r2.records   # dataclass == is exact floats
        assert r1.events == r2.events
        assert r1.makespan == r2.makespan

    def test_lazy_and_full_solve_agree_online(self):
        lazy = OnlineSimulator(GRILLON, lazy=True).run(_small_stream(n=4))
        full = OnlineSimulator(GRILLON, lazy=False).run(_small_stream(n=4))
        assert lazy.records == full.records
        assert lazy.events == full.events


class TestResidualScheduling:
    def test_overlapping_jobs_queue_behind_each_other(self):
        """A job arriving mid-flight starts no earlier than it could."""
        stream = ReplayStream([JobArrival("a", 0.0, DENSE, HCPA),
                               JobArrival("b", 1.0, DENSE, HCPA)])
        result = OnlineSimulator(GRILLON).run(stream)
        rec_a, rec_b = result.records
        assert rec_a.start == 0.0
        # b was scheduled against a's residual: it cannot start at its
        # arrival because every processor is busy with a
        assert rec_b.start > rec_b.arrival
        assert rec_b.est_makespan is not None and rec_b.est_makespan > 0

    def test_records_report_estimate_vs_actual(self):
        result = OnlineSimulator(GRILLON).run(_small_stream(n=3, rate=2.0))
        for rec in result.records:
            span = rec.completion - rec.start
            assert rec.est_makespan > 0
            # the fluid simulation may run slower than the estimate
            # (contention) but the record carries both for comparison
            assert span > 0


class TestAdmission:
    def test_queue_cap_rejects_overflow(self):
        stream = ReplayStream([JobArrival(f"j{i}", 0.0, DENSE, HCPA)
                               for i in range(5)])
        result = OnlineSimulator(GRILLON,
                                 admission="queue-cap:1").run(stream)
        m = result.metrics
        assert m.n_admitted == 1
        assert m.n_rejected == 4

    def test_rejected_records_are_final_immediately(self):
        sim = OnlineSimulator(GRILLON, admission="queue-cap:1")
        assert sim.submit(JobArrival("j0", 0.0, DENSE, HCPA)) is True
        assert sim.submit(JobArrival("j1", 0.0, DENSE, HCPA)) is False
        rec = sim.records()[0]
        assert rec.job_id == "j1"
        assert rec.admitted is False and not rec.finished

    def test_load_shed_rejects_when_backlogged(self):
        stream = ReplayStream([JobArrival(f"j{i}", 0.0, DENSE, HCPA)
                               for i in range(3)])
        result = OnlineSimulator(GRILLON,
                                 admission="load-shed:0").run(stream)
        assert result.metrics.n_admitted == 1
        assert result.metrics.n_rejected == 2

    def test_slo_attainment_counts_rejections_as_misses(self):
        stream = ReplayStream([JobArrival(f"j{i}", 0.0, DENSE, HCPA)
                               for i in range(2)])
        result = OnlineSimulator(GRILLON, admission="queue-cap:1",
                                 slo=1e9).run(stream)
        assert result.metrics.slo_attainment == pytest.approx(0.5)


class TestAdmissionSpecs:
    def test_spec_strings_parse(self):
        from repro.online.admission import (AcceptAll, LoadShed, QueueCap,
                                            admission_from_spec)

        assert isinstance(admission_from_spec("accept-all"), AcceptAll)
        cap = admission_from_spec("queue-cap:3")
        assert isinstance(cap, QueueCap) and cap.cap == 3
        shed = admission_from_spec("load-shed:2.5")
        assert isinstance(shed, LoadShed) and shed.max_wait == 2.5

    def test_policy_objects_pass_through(self):
        from repro.online.admission import QueueCap, admission_from_spec

        policy = QueueCap(2)
        assert admission_from_spec(policy) is policy

    def test_bad_specs_rejected(self):
        from repro.online.admission import admission_from_spec

        with pytest.raises(ValueError):
            admission_from_spec("queue-cap")
        with pytest.raises(ValueError):
            admission_from_spec("nonsense-policy")
        with pytest.raises(ValueError):
            admission_from_spec("queue-cap:0")


class TestEngineGuards:
    def test_duplicate_job_id_raises(self):
        sim = OnlineSimulator(GRILLON)
        sim.submit(JobArrival("dup", 0.0, DENSE, HCPA))
        with pytest.raises(ValueError, match="duplicate"):
            sim.submit(JobArrival("dup", 0.0, DENSE, HCPA))

    def test_time_cannot_rewind(self):
        eng = LiveFluidEngine(GRILLON)
        eng.advance_until(10.0)
        with pytest.raises(ValueError, match="rewind"):
            eng.advance_until(5.0)

    def test_advance_returns_newly_finalised_records(self):
        sim = OnlineSimulator(GRILLON)
        sim.submit(JobArrival("j0", 0.0, DENSE, HCPA))
        assert sim.advance_until(1e-6) == []       # nothing done yet
        done = sim.advance_until(1e9)
        assert [r.job_id for r in done] == ["j0"]
        assert sim.advance_until(2e9) == []        # already reported

    def test_drain_finishes_everything(self):
        sim = OnlineSimulator(GRILLON)
        for job in _small_stream(n=3, rate=1.0):
            sim.submit(job)
        sim.drain()
        assert sim.engine.idle
        assert all(r.finished for r in sim.records())
