"""The asyncio service front-end and its synchronous client helper."""

import asyncio
import json
import queue
import socket
import threading

import pytest

from repro.online.engine import OnlineSimulator
from repro.online.service import serve, submit_jobs
from repro.platforms.grid5000 import GRILLON

STRASSEN = {"family": "strassen"}


class _Server:
    """A serve() instance on a daemon thread with its own event loop."""

    def __init__(self, sim: OnlineSimulator, **kw) -> None:
        addr: "queue.Queue[tuple]" = queue.Queue()
        self.thread = threading.Thread(
            target=lambda: asyncio.run(
                serve(sim, port=0, ready=addr.put, **kw)),
            daemon=True)
        self.thread.start()
        self.host, self.port = addr.get(timeout=30)

    def join(self, timeout: float = 30.0) -> bool:
        self.thread.join(timeout)
        return not self.thread.is_alive()


def _raw_session(host, port, payloads):
    """Send raw JSON lines; return one parsed reply line per payload."""
    replies = []
    with socket.create_connection((host, port), timeout=30) as sock:
        rfile = sock.makefile("r", encoding="utf-8")
        for payload in payloads:
            sock.sendall(json.dumps(payload).encode() + b"\n")
            replies.append(json.loads(rfile.readline()))
    return replies


class TestServeRoundTrip:
    def test_submit_drain_shutdown(self):
        server = _Server(OnlineSimulator(GRILLON))
        jobs = [{"workload": STRASSEN, "t": 5.0 * i} for i in range(3)]
        acks, records, metrics = submit_jobs(server.host, server.port,
                                             jobs, drain=True,
                                             shutdown=True)
        assert [a["type"] for a in acks] == ["ack"] * 3
        assert all(a["admitted"] for a in acks)
        assert sorted(r.job_id for r in records) \
            == [a["job_id"] for a in acks]
        assert all(r.finished for r in records)
        assert metrics["n_finished"] == 3
        assert server.join(), "server did not stop after shutdown"

    def test_virtual_time_sessions_are_deterministic(self):
        def run_session():
            server = _Server(OnlineSimulator(GRILLON))
            _, records, _ = submit_jobs(
                server.host, server.port,
                [{"workload": STRASSEN, "t": 2.0 * i, "job_id": f"j{i}"}
                 for i in range(3)],
                drain=True, shutdown=True)
            assert server.join()
            return records

        assert run_session() == run_session()   # exact float equality

    def test_rejected_submission_acks_false(self):
        server = _Server(OnlineSimulator(GRILLON,
                                         admission="queue-cap:1"))
        acks, records, metrics = submit_jobs(
            server.host, server.port,
            [{"workload": STRASSEN, "t": 0.0} for _ in range(2)],
            drain=True, shutdown=True)
        assert [a["admitted"] for a in acks] == [True, False]
        # the rejected job's record is final (streamed at drain time too)
        assert metrics["n_rejected"] == 1
        assert server.join()


class TestProtocol:
    def test_stats_advance_and_errors(self):
        server = _Server(OnlineSimulator(GRILLON))
        replies = _raw_session(server.host, server.port, [
            {"op": "stats"},
            {"op": "submit", "workload": STRASSEN, "t": 0.0},
            {"op": "advance", "t": 1e-6},
            {"op": "nonsense"},
            {"op": "submit"},                      # missing workload
            "not an object",
        ])
        assert replies[0]["type"] == "stats"
        assert replies[0]["in_flight"] == 0
        assert replies[1]["type"] == "ack"
        assert replies[2] == {"type": "advanced", "now": 1e-6}
        assert replies[3]["type"] == "error"
        assert "unknown op" in replies[3]["error"]
        assert replies[4]["type"] == "error"
        assert "workload" in replies[4]["error"]
        assert replies[5]["type"] == "error"
        # a protocol error never kills the session: drain still works
        acks, records, metrics = submit_jobs(
            server.host, server.port, [], drain=True, shutdown=True)
        assert metrics["n_finished"] == 1
        assert server.join()

    def test_drain_streams_records_before_final_reply(self):
        server = _Server(OnlineSimulator(GRILLON))
        with socket.create_connection((server.host, server.port),
                                      timeout=30) as sock:
            rfile = sock.makefile("r", encoding="utf-8")
            sock.sendall(json.dumps(
                {"op": "submit", "workload": STRASSEN, "t": 0.0}
            ).encode() + b"\n")
            assert json.loads(rfile.readline())["type"] == "ack"
            sock.sendall(b'{"op": "drain"}\n')
            first = json.loads(rfile.readline())
            second = json.loads(rfile.readline())
            assert first["type"] == "record"       # record precedes...
            assert first["record"]["completion"] > 0
            assert second["type"] == "drained"     # ...the terminal reply
            sock.sendall(b'{"op": "shutdown"}\n')
            assert json.loads(rfile.readline())["type"] == "bye"
        assert server.join()


class TestClientHelper:
    def test_connect_retry_gives_clean_error(self):
        with pytest.raises(ConnectionError, match="cannot reach"):
            submit_jobs("127.0.0.1", 1, [], connect_retries=2,
                        retry_delay=0.01)
