"""Tests for the list-scheduling mapping step."""

from __future__ import annotations

import pytest

from repro.scheduling.allocation import hcpa_allocation
from repro.scheduling.mapping import ListScheduler

from conftest import make_chain, make_diamond


def uniform_alloc(graph, n=1):
    return {name: n for name in graph.task_names()}


class TestListSchedulerBasics:
    def test_produces_valid_schedule(self, tiny_cluster, model, small_random):
        alloc = hcpa_allocation(small_random, model,
                                tiny_cluster.num_procs).allocation
        sched = ListScheduler(small_random, tiny_cluster, model, alloc).run()
        sched.validate()  # would raise
        assert len(sched) == small_random.num_tasks

    def test_respects_allocation_sizes(self, tiny_cluster, model, diamond):
        alloc = {"entry": 1, "left": 2, "right": 3, "exit": 4}
        sched = ListScheduler(diamond, tiny_cluster, model, alloc).run()
        assert sched.allocation() == alloc

    def test_missing_allocation_rejected(self, tiny_cluster, model, diamond):
        with pytest.raises(ValueError, match="missing task"):
            ListScheduler(diamond, tiny_cluster, model, {"entry": 1})

    def test_out_of_range_allocation_rejected(self, tiny_cluster, model, diamond):
        alloc = uniform_alloc(diamond)
        alloc["left"] = 999
        with pytest.raises(ValueError, match="out of range"):
            ListScheduler(diamond, tiny_cluster, model, alloc)

    def test_invalid_candidate_policy(self, tiny_cluster, model, diamond):
        with pytest.raises(ValueError, match="candidate policy"):
            ListScheduler(diamond, tiny_cluster, model,
                          uniform_alloc(diamond), candidates="bogus")

    def test_deterministic(self, tiny_cluster, model, small_random):
        alloc = hcpa_allocation(small_random, model,
                                tiny_cluster.num_procs).allocation
        s1 = ListScheduler(small_random, tiny_cluster, model, alloc).run()
        s2 = ListScheduler(small_random, tiny_cluster, model, alloc).run()
        for name in small_random.task_names():
            assert s1[name].procs == s2[name].procs
            assert s1[name].start == s2[name].start


class TestMappingBehaviour:
    def test_independent_tasks_run_concurrently(self, tiny_cluster, model,
                                                diamond):
        sched = ListScheduler(diamond, tiny_cluster, model,
                              uniform_alloc(diamond)).run()
        left, right = sched["left"], sched["right"]
        assert set(left.procs) != set(right.procs)
        # they overlap in time (task parallelism exploited)
        assert left.start < right.finish and right.start < left.finish

    def test_chain_start_includes_redistribution(self, tiny_cluster, model):
        """t1 on different procs than t0 must wait for the redistribution."""
        g = make_chain(2, m=1.25e8 / 8, flops=1e9, alpha=0.0)  # 1s transfer
        alloc = {"t0": 1, "t1": 1}
        sched = ListScheduler(g, tiny_cluster, model, alloc).run()
        if sched["t1"].procs != sched["t0"].procs:
            assert sched["t1"].start >= sched["t0"].finish + 0.9
        else:  # same procs: free redistribution
            assert sched["t1"].start == pytest.approx(sched["t0"].finish)

    def test_priorities_by_bottom_level(self, tiny_cluster, model):
        """Of two ready siblings, the one heading the longer remaining path
        maps first (gets the earlier slot when competing)."""
        from repro.dag.task import Task, TaskGraph

        g = TaskGraph(name="prio")
        g.add_task(Task("src", data_elements=1e3, flops=1e9, alpha=0.0))
        # heavy branch: b -> c; light branch: a alone
        for n, f in (("a", 1e9), ("b", 1e9), ("c", 50e9)):
            g.add_task(Task(n, data_elements=1e3, flops=f, alpha=0.0))
        g.add_edge("src", "a")
        g.add_edge("src", "b")
        g.add_edge("b", "c")
        # 1-proc cluster forces total serialisation: priority = order
        from repro.platforms.cluster import Cluster

        c1 = Cluster(name="c1", num_procs=1, speed_flops=1e9)
        sched = ListScheduler(g, c1, c1.performance_model(),
                              uniform_alloc(g)).run()
        assert sched["b"].start < sched["a"].start

    def test_rich_policy_reuses_parent_procs(self, tiny_cluster, model):
        """With equal allocation and big data, the rich policy maps the
        child on its parent's exact set (free redistribution)."""
        g = make_chain(2, m=120e6, flops=1e9, alpha=0.0)
        alloc = {"t0": 4, "t1": 4}
        rich = ListScheduler(g, tiny_cluster, model, alloc,
                             candidates="rich").run()
        assert rich["t1"].procs == rich["t0"].procs

    def test_earliest_policy_single_candidate(self, tiny_cluster, model,
                                              diamond):
        ls = ListScheduler(diamond, tiny_cluster, model,
                           uniform_alloc(diamond, 2))
        assert len(ls.candidate_sets("entry", 2)) == 1

    def test_rich_policy_more_candidates(self, tiny_cluster, model, diamond):
        ls = ListScheduler(diamond, tiny_cluster, model,
                           uniform_alloc(diamond, 2), candidates="rich")
        ls.map_task("entry")
        cands = ls.candidate_sets("left", 2)
        assert len(cands) >= 2  # earliest + parent-derived

    def test_estimated_makespan_at_least_cp(self, tiny_cluster, model,
                                            small_random):
        from repro.scheduling.bounds import critical_path_bound

        alloc = hcpa_allocation(small_random, model,
                                tiny_cluster.num_procs).allocation
        sched = ListScheduler(small_random, tiny_cluster, model, alloc).run()
        cp = critical_path_bound(small_random, model, alloc)
        assert sched.makespan >= cp - 1e-6
