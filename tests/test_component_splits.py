"""Dynamic component splits (PR 7): equivalence + drain regression.

The split machinery re-partitions a component by live link connectivity
once it drains below ``split_threshold × peak_rows``.  Two promises:

* **bitwise neutrality** — splits (and the local link index they ride
  on) change which *rows* each progressive-filling pass sees, never the
  arithmetic each row experiences: part solves gather rows in entry
  order and each part's links are untouched by the other parts, so the
  default engine must equal both the merge-only engine
  (``split_threshold=None, local_index=False``) and the full-solve
  oracle (``lazy=False``) to the last bit;
* **work reduction** — on a drain-heavy workload (one fat scatter fans
  into disjoint chains) the default engine must actually split
  (``splits > 0``) and push fewer rows through the solver
  (``solve_rows`` drops vs merge-only).

The scatter workload needs ``gcd(n_src, n_dst) = 1`` fan-outs: a
``gcd = 8`` 64→8 redistribution is block-diagonal (each destination
hears from its own 8-source block), which fragments into eight small
components that never reach ``_SPLIT_MIN_ROWS``.  A 64→9 band is one
connected component, so all four scatters merge through their shared
source uplinks into one ~300-row component — which then drains into
four disjoint chain blocks and splits.
"""

from __future__ import annotations

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.dag.task import Task, TaskGraph
from repro.experiments.scenarios import Scenario
from repro.platforms.cluster import Cluster
from repro.platforms.grid5000 import CHTI, GRELON
from repro.scheduling.allocation import hcpa_allocation
from repro.scheduling.mapping import ListScheduler
from repro.scheduling.schedule import Schedule, ScheduleEntry
from repro.simulation.simulator import FluidSimulator


def _schedule_for_scenario(scenario: Scenario, cluster):
    graph = scenario.build()
    model = cluster.performance_model()
    alloc = hcpa_allocation(graph, model, cluster.num_procs).allocation
    return ListScheduler(graph, cluster, model, alloc).run()


def assert_byte_identical(a, b):
    assert a.events == b.events
    assert a.makespan == b.makespan
    assert set(a.task_traces) == set(b.task_traces)
    for name, tr in a.task_traces.items():
        other = b.task_traces[name]
        assert tr.procs == other.procs
        assert tr.start == other.start
        assert tr.finish == other.finish
    assert len(a.flow_traces) == len(b.flow_traces)
    for fa, fb in zip(a.flow_traces, b.flow_traces):
        assert (fa.edge, fa.src, fa.dst, fa.data_bytes,
                fa.release, fa.finish) == \
               (fb.edge, fb.src, fb.dst, fb.data_bytes,
                fb.release, fb.finish)


def scatter_schedule(n_chains: int = 4, chain_len: int = 6,
                     slot: int = 16, wide: int = 9,
                     narrow: int = 5) -> Schedule:
    """One fat root scatters into ``n_chains`` disjoint proc slots.

    ``t0`` runs on every processor, so its four 64→9 redistribution
    bands share every source uplink and merge into a single component;
    staggered scatter sizes then drain it chain by chain.  Each chain
    alternates a 9-proc and a 5-proc task inside its own 16-proc slot,
    so post-split parts never talk to each other again.
    """
    procs_all = n_chains * slot
    cluster = Cluster(name="scatter", num_procs=procs_all,
                      speed_flops=1e9)
    graph = TaskGraph(name="scatter")
    graph.add_task(Task(name="t0", data_elements=1e6,
                        flops=procs_all * 1e9, alpha=0.0))
    schedule = Schedule(graph=graph, cluster=cluster)
    d0 = 1.0
    schedule.add(ScheduleEntry(task="t0", procs=tuple(range(procs_all)),
                               start=0.0, finish=d0))
    for k in range(n_chains):
        base = k * slot
        prev, t = "t0", d0
        for i in range(chain_len):
            name = f"c{k}_{i}"
            graph.add_task(Task(name=name, data_elements=1e6,
                                flops=2e8, alpha=0.0))
            # staggered scatter sizes ⇒ the merged component drains a
            # chain at a time instead of all at once
            size = (4e6 * (1 + 2 * k)) if i == 0 else 24e6
            graph.add_edge(prev, name, data_bytes=size)
            procs = (tuple(range(base, base + wide)) if i % 2 == 0
                     else tuple(range(base + wide, base + wide + narrow)))
            schedule.add(ScheduleEntry(task=name, procs=procs,
                                       start=t, finish=t + 0.2))
            t += 0.2
            prev = name
    schedule.validate()
    return schedule


class TestDrainHeavyRegression:
    def test_splits_fire_and_reduce_solve_rows(self):
        schedule = scatter_schedule()
        default = FluidSimulator(schedule,
                                 collect_flow_traces=True).run()
        merge_only = FluidSimulator(schedule, split_threshold=None,
                                    local_index=False,
                                    collect_flow_traces=True).run()
        assert default.splits > 0
        assert merge_only.splits == 0
        # the split engine pushes strictly fewer rows through the solver
        assert default.solve_rows < merge_only.solve_rows
        assert_byte_identical(default, merge_only)

    def test_default_equals_full_oracle(self):
        schedule = scatter_schedule()
        lazy = FluidSimulator(schedule, collect_flow_traces=True).run()
        full = FluidSimulator(schedule, lazy=False,
                              collect_flow_traces=True).run()
        assert lazy.splits > 0
        assert_byte_identical(lazy, full)
        assert lazy.solves_full == full.solves_full

    def test_disabling_local_index_alone_is_neutral(self):
        """`local_index=False` with splits on: same bytes, same splits."""
        schedule = scatter_schedule()
        local = FluidSimulator(schedule, collect_flow_traces=True).run()
        global_ = FluidSimulator(schedule, local_index=False,
                                 collect_flow_traces=True).run()
        assert local.splits == global_.splits > 0
        assert_byte_identical(local, global_)


class TestThreeWayEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(
        family=st.sampled_from(["layered", "irregular"]),
        n_tasks=st.integers(8, 22),
        width=st.sampled_from([0.2, 0.5, 0.8]),
        density=st.sampled_from([0.2, 0.8]),
        regularity=st.sampled_from([0.2, 0.8]),
        jump=st.sampled_from([1, 2]),
        sample=st.integers(0, 3),
        hierarchical=st.booleans(),
    )
    # regression: same-instant completions used to be delivered in
    # component row order, which diverges between the split and
    # merge-only engines once pair-row resurrection reuses rows
    @example(family="irregular", n_tasks=21, width=0.2, density=0.2,
             regularity=0.8, jump=2, sample=0, hierarchical=False)
    def test_split_merge_only_full_agree_on_random_draws(
            self, family, n_tasks, width, density, regularity, jump,
            sample, hierarchical):
        """split lazy ≡ merge-only lazy ≡ full oracle, to the last bit."""
        scenario = Scenario(family=family, n_tasks=n_tasks, width=width,
                            density=density, regularity=regularity,
                            jump=jump, sample=sample)
        cluster = GRELON if hierarchical else CHTI
        schedule = _schedule_for_scenario(scenario, cluster)
        split = FluidSimulator(schedule, collect_flow_traces=True).run()
        merge_only = FluidSimulator(schedule, split_threshold=None,
                                    local_index=False,
                                    collect_flow_traces=True).run()
        full = FluidSimulator(schedule, lazy=False,
                              collect_flow_traces=True).run()
        assert_byte_identical(split, merge_only)
        assert_byte_identical(split, full)
        assert merge_only.splits == 0

    @settings(max_examples=8, deadline=None)
    @given(threshold=st.sampled_from([0.25, 0.5, 0.75, 0.9]),
           n_chains=st.sampled_from([2, 3, 4]))
    def test_threshold_sweep_is_bitwise_neutral(self, threshold,
                                                n_chains):
        """Any split threshold yields the same bytes on the scatter."""
        schedule = scatter_schedule(n_chains=n_chains)
        tuned = FluidSimulator(schedule, split_threshold=threshold,
                               collect_flow_traces=True).run()
        merge_only = FluidSimulator(schedule, split_threshold=None,
                                    collect_flow_traces=True).run()
        assert_byte_identical(tuned, merge_only)


class TestSplitCounterSurface:
    def test_split_counter_defaults_to_zero_when_disabled(self):
        schedule = scatter_schedule(n_chains=2, chain_len=3)
        res = FluidSimulator(schedule, split_threshold=None).run()
        assert res.splits == 0
        assert res.solve_rows > 0

    def test_splits_reach_run_results(self):
        schedule = scatter_schedule()
        res = FluidSimulator(schedule).run()
        assert res.splits > 0
        assert res.solve_rows > 0
