"""Tests for the FFT and Strassen kernel task graphs (§IV-A)."""

from __future__ import annotations

import pytest

from repro.dag.analysis import bottom_levels, dag_levels, top_levels
from repro.dag.kernels import (
    STRASSEN_TASK_COUNT,
    fft_dag,
    fft_task_count,
    strassen_dag,
)
from repro.utils.rng import spawn_rng


class TestFFTCounts:
    @pytest.mark.parametrize("k,expected", [(2, 5), (4, 15), (8, 39), (16, 95)])
    def test_paper_task_counts(self, k, expected):
        """§IV-A: k in {2,4,8,16} gives 5, 15, 39, 95 tasks."""
        assert fft_task_count(k) == expected
        assert fft_dag(k, spawn_rng("fft", k)).num_tasks == expected

    @pytest.mark.parametrize("k", [0, 1, 3, 6, 12])
    def test_rejects_non_powers_of_two(self, k):
        with pytest.raises(ValueError):
            fft_task_count(k)


class TestFFTStructure:
    def test_single_entry_k_exits(self):
        k = 8
        g = fft_dag(k, spawn_rng("fft-structure"))
        assert g.entry_tasks() == ["call_0_0"]
        assert len(g.exit_tasks()) == k

    def test_every_path_is_critical(self):
        """§IV-A: every entry→exit path of the FFT DAG is a critical path
        (per-level uniform costs make top+bottom constant on all tasks)."""
        g = fft_dag(8, spawn_rng("fft-critical"))

        def node_time(n: str) -> float:
            return g.task(n).flops  # any speed, structure is what matters

        bl = bottom_levels(g, node_time)
        tl = top_levels(g, node_time)
        totals = [tl[n] + bl[n] for n in g.task_names()]
        assert max(totals) - min(totals) <= 1e-9 * max(totals)

    def test_butterfly_in_degree_two(self):
        g = fft_dag(8, spawn_rng("fft-bfly"))
        for name in g.task_names():
            if name.startswith("bfly_"):
                assert len(g.predecessors(name)) == 2

    def test_level_costs_uniform(self):
        g = fft_dag(16, spawn_rng("fft-levels"))
        levels = dag_levels(g)
        per_level: dict[int, set[float]] = {}
        for t in g.tasks():
            per_level.setdefault(levels[t.name], set()).add(t.flops)
        assert all(len(v) == 1 for v in per_level.values())

    def test_deterministic(self):
        g1 = fft_dag(4, spawn_rng("fft-det"))
        g2 = fft_dag(4, spawn_rng("fft-det"))
        assert sorted(g1.edges()) == sorted(g2.edges())


class TestStrassen:
    def test_25_tasks(self):
        g = strassen_dag(spawn_rng("strassen"))
        assert g.num_tasks == STRASSEN_TASK_COUNT == 25

    def test_ten_entries_four_exits(self):
        g = strassen_dag(spawn_rng("strassen-io"))
        entries = g.entry_tasks()
        assert len(entries) == 10
        assert all(e.startswith("S") for e in entries)
        assert sorted(g.exit_tasks()) == ["C11", "C12", "C21", "C22"]

    def test_seven_products(self):
        g = strassen_dag(spawn_rng("strassen-m"))
        products = [n for n in g.task_names() if n.startswith("M")]
        assert len(products) == 7

    def test_every_entry_reaches_an_exit(self):
        """§IV-A: all Strassen entry tasks lie on paths to the output."""
        import networkx as nx

        g = strassen_dag(spawn_rng("strassen-paths"))
        exits = set(g.exit_tasks())
        for e in g.entry_tasks():
            reach = nx.descendants(g.nx_graph, e)
            assert reach & exits, f"{e} reaches no exit"

    def test_dataflow_examples(self):
        g = strassen_dag(spawn_rng("strassen-df"))
        assert set(g.predecessors("M1")) == {"S1", "S2"}
        assert set(g.predecessors("C12")) == {"M3", "M5"}
        assert set(g.predecessors("C11")) == {"U1", "U2"}

    def test_level_costs_uniform(self):
        g = strassen_dag(spawn_rng("strassen-levels"))
        levels = dag_levels(g)
        per_level: dict[int, set[float]] = {}
        for t in g.tasks():
            per_level.setdefault(levels[t.name], set()).add(t.flops)
        assert all(len(v) == 1 for v in per_level.values())
