"""Tests for the `repro bench` perf harness and the tuned-params fallback."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.core.params import RATSParams
from repro.experiments.bench import (
    append_results,
    compare_benchmarks,
    latest_entry,
    profiled,
    run_benchmarks,
    write_results,
)


class TestBenchHarness:
    def test_run_benchmarks_quick(self):
        results = run_benchmarks(rounds=1, quick=True,
                                 only=["maxmin_bundled_random"])
        assert results["schema"] == 1
        bench = results["benchmarks"]["maxmin_bundled_random"]
        assert bench["min_s"] > 0
        assert bench["rounds"] == 1

    def test_compare_flags_regressions(self):
        base = {"benchmarks": {"a": {"min_s": 1.0}, "b": {"min_s": 1.0},
                               "only_base": {"min_s": 1.0}}}
        cur = {"benchmarks": {"a": {"min_s": 1.2}, "b": {"min_s": 1.3},
                              "only_cur": {"min_s": 9.9}}}
        regs = compare_benchmarks(cur, base, threshold=0.25)
        assert len(regs) == 1 and regs[0].startswith("b:")
        assert compare_benchmarks(cur, base, threshold=0.5) == []

    def test_compare_per_benchmark_thresholds(self):
        base = {"benchmarks": {"a": {"min_s": 1.0}, "b": {"min_s": 1.0}}}
        cur = {"benchmarks": {"a": {"min_s": 1.2}, "b": {"min_s": 1.2}}}
        # a gates tightly (10%), b keeps the loose global threshold
        regs = compare_benchmarks(cur, base, threshold=0.5,
                                  per_benchmark={"a": 0.1})
        assert len(regs) == 1 and regs[0].startswith("a:")
        assert "threshold 10%" in regs[0]
        # per-benchmark values can also relax below the global gate
        assert compare_benchmarks(cur, base, threshold=0.1,
                                  per_benchmark={"a": 0.5, "b": 0.5}) == []

    def test_cli_writes_json_and_compares(self, tmp_path, capsys):
        out = tmp_path / "BENCH_substrate.json"
        rc = main(["bench", "--quick", "--rounds", "1",
                   "--only", "maxmin_bundled_random",
                   "--out", str(out), "--quiet"])
        assert rc == 0
        data = json.loads(out.read_text())
        assert "maxmin_bundled_random" in data["benchmarks"]

        # same machine, same benchmark: no regression against itself
        out2 = tmp_path / "second.json"
        rc = main(["bench", "--quick", "--rounds", "1",
                   "--only", "maxmin_bundled_random",
                   "--out", str(out2), "--quiet",
                   "--compare", str(out), "--threshold", "5.0"])
        assert rc == 0

        # a doctored ultra-fast baseline must trip the >25% gate
        data["benchmarks"]["maxmin_bundled_random"]["min_s"] = 1e-9
        fast = tmp_path / "fast.json"
        fast.write_text(json.dumps(data))
        rc = main(["bench", "--quick", "--rounds", "1",
                   "--only", "maxmin_bundled_random",
                   "--out", str(out2), "--quiet", "--compare", str(fast)])
        assert rc == 1
        assert "PERF REGRESSION" in capsys.readouterr().out

    def test_regressed_run_does_not_clobber_its_baseline(self, tmp_path,
                                                         capsys):
        """`repro bench --compare X` with --out defaulting onto X must
        leave the baseline intact when the run regresses — otherwise the
        next run compares against the regression and passes."""
        out = tmp_path / "BENCH_substrate.json"
        assert main(["bench", "--quick", "--rounds", "1",
                     "--only", "maxmin_bundled_random",
                     "--out", str(out), "--quiet"]) == 0
        data = json.loads(out.read_text())
        data["benchmarks"]["maxmin_bundled_random"]["min_s"] = 1e-9
        out.write_text(json.dumps(data))
        baseline_bytes = out.read_bytes()
        capsys.readouterr()
        rc = main(["bench", "--quick", "--rounds", "1",
                   "--only", "maxmin_bundled_random", "--quiet",
                   "--out", str(out), "--compare", str(out)])
        assert rc == 1
        assert out.read_bytes() == baseline_bytes  # baseline untouched
        # without a regression the same invocation refreshes the file
        rc = main(["bench", "--quick", "--rounds", "1",
                   "--only", "maxmin_bundled_random", "--quiet",
                   "--out", str(out), "--compare", str(out),
                   "--threshold", "1e9"])
        assert rc == 0
        assert out.read_bytes() != baseline_bytes

    def test_cli_missing_baseline_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["bench", "--quick", "--rounds", "1",
                  "--only", "maxmin_bundled_random",
                  "--out", str(tmp_path / "o.json"), "--quiet",
                  "--compare", str(tmp_path / "nope.json")])

    def test_write_results_roundtrip(self, tmp_path):
        payload = {"schema": 1, "benchmarks": {}}
        p = write_results(payload, tmp_path / "b.json")
        assert json.loads(p.read_text()) == payload


class TestBenchTrajectory:
    def test_append_builds_git_stamped_trajectory(self, tmp_path):
        path = tmp_path / "traj.json"
        append_results({"schema": 1, "benchmarks": {"a": {"min_s": 1.0}}},
                       path)
        append_results({"schema": 1, "benchmarks": {"a": {"min_s": 0.9}}},
                       path)
        data = json.loads(path.read_text())
        assert len(data["entries"]) == 2
        assert all("git_rev" in e for e in data["entries"])
        assert latest_entry(data)["benchmarks"]["a"]["min_s"] == 0.9

    def test_append_upgrades_single_run_file_in_place(self, tmp_path):
        """A pre-trajectory BENCH file becomes entry #1 — the history
        recorded before --append existed is kept."""
        path = tmp_path / "bench.json"
        write_results({"schema": 1, "benchmarks": {"a": {"min_s": 2.0}}},
                      path)
        append_results({"schema": 1, "benchmarks": {"a": {"min_s": 1.5}}},
                       path)
        data = json.loads(path.read_text())
        assert [e["benchmarks"]["a"]["min_s"] for e in data["entries"]] \
            == [2.0, 1.5]

    def test_latest_entry_shapes(self):
        single = {"schema": 1, "benchmarks": {}}
        assert latest_entry(single) is single
        traj = {"entries": [{"benchmarks": {"x": 1}},
                            {"benchmarks": {"x": 2}}]}
        assert latest_entry(traj)["benchmarks"]["x"] == 2
        with pytest.raises(ValueError, match="no entries"):
            latest_entry({"entries": []})

    def test_cli_append_and_compare_latest(self, tmp_path, capsys):
        out = tmp_path / "traj.json"
        base_args = ["bench", "--quick", "--rounds", "1",
                     "--only", "maxmin_bundled_random", "--quiet",
                     "--out", str(out)]
        assert main(base_args + ["--append"]) == 0
        assert "appended" in capsys.readouterr().out
        assert main(base_args + ["--append"]) == 0
        data = json.loads(out.read_text())
        assert len(data["entries"]) == 2

        # --compare reads the trajectory's *latest* entry: doctor the
        # first entry to be impossibly fast, latest stays realistic
        data["entries"][0]["benchmarks"]["maxmin_bundled_random"]["min_s"] \
            = 1e-9
        out.write_text(json.dumps(data))
        capsys.readouterr()
        rc = main(["bench", "--quick", "--rounds", "1",
                   "--only", "maxmin_bundled_random", "--quiet",
                   "--out", str(tmp_path / "now.json"),
                   "--compare", str(out), "--threshold", "5.0"])
        assert rc == 0  # latest entry compared, not the doctored first

    def test_cli_append_rejects_malformed_file(self, tmp_path):
        out = tmp_path / "traj.json"
        out.write_text("{broken")
        with pytest.raises(SystemExit, match="malformed"):
            main(["bench", "--quick", "--rounds", "1",
                  "--only", "maxmin_bundled_random", "--quiet",
                  "--out", str(out), "--append"])

    def test_append_preserves_thresholds(self, tmp_path):
        """The per-benchmark gates ride along through --append."""
        path = tmp_path / "traj.json"
        append_results({"schema": 1, "benchmarks": {"a": {"min_s": 1.0}}},
                       path)
        data = json.loads(path.read_text())
        data["thresholds"] = {"a": 0.1}
        path.write_text(json.dumps(data))
        append_results({"schema": 1, "benchmarks": {"a": {"min_s": 0.9}}},
                       path)
        data = json.loads(path.read_text())
        assert data["thresholds"] == {"a": 0.1}
        assert len(data["entries"]) == 2

    def test_cli_compare_uses_baseline_thresholds(self, tmp_path, capsys):
        out = tmp_path / "base.json"
        assert main(["bench", "--quick", "--rounds", "1",
                     "--only", "maxmin_bundled_random", "--quiet",
                     "--out", str(out)]) == 0
        data = json.loads(out.read_text())
        # an impossible per-benchmark gate must fail the compare even
        # though the global --threshold is huge
        data["thresholds"] = {"maxmin_bundled_random": -0.999999}
        out.write_text(json.dumps(data))
        capsys.readouterr()
        rc = main(["bench", "--quick", "--rounds", "1",
                   "--only", "maxmin_bundled_random", "--quiet",
                   "--out", str(tmp_path / "now.json"),
                   "--compare", str(out), "--threshold", "100.0"])
        assert rc == 1
        assert "PERF REGRESSION" in capsys.readouterr().out

    def test_cli_warns_on_stale_threshold_names(self, tmp_path, capsys):
        out = tmp_path / "base.json"
        assert main(["bench", "--quick", "--rounds", "1",
                     "--only", "maxmin_bundled_random", "--quiet",
                     "--out", str(out)]) == 0
        data = json.loads(out.read_text())
        data["thresholds"] = {"simulator_densedag": 0.3}  # typo'd name
        out.write_text(json.dumps(data))
        capsys.readouterr()
        rc = main(["bench", "--quick", "--rounds", "1",
                   "--only", "maxmin_bundled_random", "--quiet",
                   "--out", str(tmp_path / "now.json"),
                   "--compare", str(out)])
        assert rc == 0
        assert "unknown benchmark" in capsys.readouterr().err

    def test_cli_rejects_malformed_thresholds(self, tmp_path):
        out = tmp_path / "base.json"
        assert main(["bench", "--quick", "--rounds", "1",
                     "--only", "maxmin_bundled_random", "--quiet",
                     "--out", str(out)]) == 0
        data = json.loads(out.read_text())
        data["thresholds"] = {"maxmin_bundled_random": "tight"}
        out.write_text(json.dumps(data))
        with pytest.raises(SystemExit, match="thresholds"):
            main(["bench", "--quick", "--rounds", "1",
                  "--only", "maxmin_bundled_random", "--quiet",
                  "--out", str(tmp_path / "now.json"),
                  "--compare", str(out)])

    def test_append_refuses_unrecognized_json_shapes(self, tmp_path):
        """Valid JSON that is neither a bench result nor a trajectory
        must not be silently overwritten."""
        out = tmp_path / "other.json"
        out.write_text(json.dumps({"some": "other tool's file"}))
        with pytest.raises(ValueError, match="refusing to overwrite"):
            append_results({"schema": 1, "benchmarks": {}}, out)
        assert json.loads(out.read_text()) == {"some": "other tool's file"}


class TestProfiled:
    def test_disabled_is_transparent(self):
        ran = []
        with profiled(None):
            ran.append(1)
        assert ran == [1]

    def test_enabled_prints_stats(self, capsys):
        import io

        buf = io.StringIO()
        with profiled(5, stream=buf):
            sum(range(1000))
        assert "cumulative" in buf.getvalue()


class TestTunedFallback:
    def test_known_cluster_resolves_table_iv(self):
        from repro.experiments.runner import TunedResolver

        p = TunedResolver("delta")("grillon", "fft")
        assert (p.mindelta, p.maxdelta, p.minrho) == (-0.5, 1.0, 0.2)

    def test_unknown_cluster_falls_back_with_one_warning(self):
        from repro.experiments import runner as runner_mod
        from repro.experiments.runner import TunedResolver

        resolver = TunedResolver("timecost")
        key = ("no-such-cluster", "layered", "timecost")
        runner_mod._TUNED_FALLBACK_WARNED.discard(key)
        with pytest.warns(RuntimeWarning, match="falling back to naive"):
            p = resolver("no-such-cluster", "layered")
        assert p == RATSParams(strategy="timecost")

        # second resolution is silent (one-time warning)
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolver("no-such-cluster", "layered") == p

    def test_worker_processes_keep_the_fallback_silent(self):
        import warnings

        from repro.experiments import runner as runner_mod
        from repro.experiments.runner import TunedResolver

        resolver = TunedResolver("delta")
        key = ("never-warned-cluster", "layered", "delta")
        runner_mod._TUNED_FALLBACK_WARNED.discard(key)
        old = runner_mod._TUNED_WARNINGS_ENABLED
        runner_mod._TUNED_WARNINGS_ENABLED = False  # what workers set
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                p = resolver("never-warned-cluster", "layered")
            assert p == RATSParams(strategy="delta")
            # and the combination is NOT marked warned: the parent still
            # owns the single user-visible warning
            assert key not in runner_mod._TUNED_FALLBACK_WARNED
        finally:
            runner_mod._TUNED_WARNINGS_ENABLED = old

    def test_parallel_matrix_warns_once_across_all_processes(self):
        """The per-worker duplicate warning (once per pool process) is
        gone: the parent pre-resolves at dispatch, workers stay silent."""
        import subprocess
        import sys

        code = (
            "from repro.experiments.experiment import Experiment\n"
            "result = (Experiment().on('grid5000-grid')\n"
            "          .workload('strassen', k=2, samples=2)\n"
            "          .compare('rats-delta-tuned')\n"
            "          .parallel(2).run())\n"
            "assert len(result) == 2\n"
        )
        proc = subprocess.run([sys.executable, "-c", code],
                              capture_output=True, text=True, timeout=300)
        assert proc.returncode == 0, proc.stderr
        assert proc.stderr.count("no Table IV tuned parameters") == 1, \
            proc.stderr

    def test_tuned_spec_runs_on_multicluster_grid(self):
        import warnings

        from repro.experiments.experiment import Experiment

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            result = (Experiment()
                      .on("grid5000-grid")
                      .workload("strassen", k=2, samples=1)
                      .compare("rats-delta-tuned")
                      .run())
        assert len(result) == 1
        assert result[0].makespan > 0
