"""Tests for the Task / TaskGraph application model."""

from __future__ import annotations

import pytest

from repro.dag.task import DOUBLE_BYTES, Task, TaskGraph

from conftest import make_chain, make_diamond


class TestTask:
    def test_data_bytes(self):
        t = Task("t", data_elements=10)
        assert t.data_bytes == 10 * DOUBLE_BYTES

    def test_rejects_negative_data(self):
        with pytest.raises(ValueError, match="data_elements"):
            Task("t", data_elements=-1)

    def test_rejects_negative_flops(self):
        with pytest.raises(ValueError, match="flops"):
            Task("t", flops=-1)

    @pytest.mark.parametrize("alpha", [-0.1, 1.1])
    def test_rejects_bad_alpha(self, alpha):
        with pytest.raises(ValueError, match="alpha"):
            Task("t", alpha=alpha)

    def test_with_costs_partial_update(self):
        t = Task("t", data_elements=1, flops=2, alpha=0.1)
        u = t.with_costs(flops=5)
        assert (u.data_elements, u.flops, u.alpha) == (1, 5, 0.1)
        assert t.flops == 2  # original untouched


class TestTaskGraphConstruction:
    def test_duplicate_name_rejected(self):
        g = TaskGraph()
        g.add_task(Task("a"))
        with pytest.raises(ValueError, match="duplicate"):
            g.add_task(Task("a"))

    def test_edge_to_unknown_task(self):
        g = TaskGraph()
        g.add_task(Task("a"))
        with pytest.raises(KeyError):
            g.add_edge("a", "missing")

    def test_self_loop_rejected(self):
        g = TaskGraph()
        g.add_task(Task("a"))
        with pytest.raises(ValueError, match="self-loop"):
            g.add_edge("a", "a")

    def test_cycle_rejected_and_rolled_back(self):
        g = make_chain(3)
        with pytest.raises(ValueError, match="cycle"):
            g.add_edge("t2", "t0")
        # the offending edge must not remain
        assert ("t2", "t0") not in [(u, v) for u, v, _ in g.edges()]

    def test_default_edge_weight_is_producer_bytes(self):
        g = TaskGraph()
        g.add_task(Task("a", data_elements=100))
        g.add_task(Task("b"))
        g.add_edge("a", "b")
        assert g.edge_bytes("a", "b") == 100 * DOUBLE_BYTES

    def test_explicit_edge_weight(self):
        g = TaskGraph()
        g.add_task(Task("a", data_elements=100))
        g.add_task(Task("b"))
        g.add_edge("a", "b", data_bytes=7.0)
        assert g.edge_bytes("a", "b") == 7.0

    def test_negative_edge_weight_rejected(self):
        g = TaskGraph()
        g.add_task(Task("a"))
        g.add_task(Task("b"))
        with pytest.raises(ValueError, match=">= 0"):
            g.add_edge("a", "b", data_bytes=-1)

    def test_add_edge_accepts_task_objects(self):
        g = TaskGraph()
        a = g.add_task(Task("a", data_elements=1))
        b = g.add_task(Task("b"))
        g.add_edge(a, b)
        assert g.successors("a") == ["b"]


class TestTaskGraphAccessors:
    def test_diamond_structure(self):
        g = make_diamond()
        assert g.num_tasks == 4
        assert g.num_edges == 4
        assert g.entry_tasks() == ["entry"]
        assert g.exit_tasks() == ["exit"]
        assert set(g.successors("entry")) == {"left", "right"}
        assert set(g.predecessors("exit")) == {"left", "right"}

    def test_topological_order_respects_edges(self):
        g = make_diamond()
        order = g.topological_order()
        assert order.index("entry") < order.index("left")
        assert order.index("right") < order.index("exit")

    def test_contains_and_len(self):
        g = make_chain(5)
        assert "t0" in g
        assert "nope" not in g
        assert len(g) == 5

    def test_totals(self):
        g = make_chain(3, m=10, flops=100)
        assert g.total_flops() == 300
        assert g.total_edge_bytes() == 2 * 10 * DOUBLE_BYTES

    def test_from_tasks_builder(self):
        g = TaskGraph.from_tasks(
            "built",
            [Task("a", data_elements=1), Task("b")],
            [("a", "b")],
        )
        assert g.num_tasks == 2 and g.num_edges == 1


class TestValidate:
    def test_valid_graph_passes(self):
        make_diamond().validate(require_single_entry=True,
                                require_single_exit=True)

    def test_empty_graph_fails(self):
        with pytest.raises(ValueError, match="empty"):
            TaskGraph().validate()

    def test_multiple_entries_detected(self):
        g = TaskGraph()
        g.add_task(Task("a"))
        g.add_task(Task("b"))
        g.add_task(Task("c"))
        g.add_edge("a", "c")
        g.add_edge("b", "c")
        with pytest.raises(ValueError, match="single entry"):
            g.validate(require_single_entry=True)
        g.validate()  # fine without the flag
