"""Shared fixtures: small clusters and task graphs used across the suite."""

from __future__ import annotations

import pytest

from repro.dag.generator import DagShape, random_layered_dag
from repro.dag.task import Task, TaskGraph
from repro.model.amdahl import AmdahlModel
from repro.platforms.cluster import Cluster
from repro.utils.rng import spawn_rng


@pytest.fixture
def tiny_cluster() -> Cluster:
    """8 nodes, 1 GFlop/s, flat gigabit switch."""
    return Cluster(name="tiny", num_procs=8, speed_flops=1e9)


@pytest.fixture
def hier_cluster() -> Cluster:
    """12 nodes in 3 cabinets of 4 — exercises the hierarchical network."""
    return Cluster(name="hier", num_procs=12, speed_flops=1e9,
                   cabinets=3, cabinet_size=4)


@pytest.fixture
def model(tiny_cluster: Cluster) -> AmdahlModel:
    return tiny_cluster.performance_model()


def make_diamond(m: float = 1e6, flops: float = 1e9,
                 alpha: float = 0.1) -> TaskGraph:
    """entry -> (left, right) -> exit diamond with uniform costs."""
    g = TaskGraph(name="diamond")
    for name in ("entry", "left", "right", "exit"):
        g.add_task(Task(name, data_elements=m, flops=flops, alpha=alpha))
    g.add_edge("entry", "left")
    g.add_edge("entry", "right")
    g.add_edge("left", "exit")
    g.add_edge("right", "exit")
    return g


def make_chain(n: int = 4, m: float = 1e6, flops: float = 1e9,
               alpha: float = 0.1) -> TaskGraph:
    """A linear chain t0 -> t1 -> ... -> t{n-1} with uniform costs."""
    g = TaskGraph(name=f"chain{n}")
    prev = None
    for i in range(n):
        t = g.add_task(Task(f"t{i}", data_elements=m, flops=flops, alpha=alpha))
        if prev is not None:
            g.add_edge(prev.name, t.name)
        prev = t
    return g


@pytest.fixture
def diamond() -> TaskGraph:
    return make_diamond()


@pytest.fixture
def chain() -> TaskGraph:
    return make_chain()


@pytest.fixture
def small_random() -> TaskGraph:
    """A deterministic 25-task layered DAG with paper-scale costs."""
    return random_layered_dag(
        DagShape(n_tasks=25, width=0.5, regularity=0.5, density=0.5),
        spawn_rng("conftest-small-random"),
    )
