"""Tests for the declarative campaign pipeline: stages, plan compilation
(cross-stage dedup), sharded execution and the campaign plan producers."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.params import NAIVE_DELTA, NAIVE_TIMECOST
from repro.experiments.campaign import build_campaign_plan, run_campaign
from repro.experiments.experiment import Experiment
from repro.experiments.plan import (
    SECTION_SEPARATOR,
    CampaignPlan,
    Stage,
    parse_shard,
    shard_of,
)
from repro.experiments.runner import (
    ExperimentRunner,
    baseline_spec,
    rats_spec,
)
from repro.experiments.scenarios import Scenario
from repro.experiments.store import JsonlStore, merge_stores
from repro.platforms.cluster import Cluster

TINY = Cluster(name="plan-tiny", num_procs=8, speed_flops=1e9)
SCENARIOS = tuple(Scenario(family="strassen", sample=s) for s in range(2))
HCPA = baseline_spec("hcpa", label="HCPA")
DELTA = rats_spec(NAIVE_DELTA, label="delta")
TIMECOST = rats_spec(NAIVE_TIMECOST, label="time-cost")


def two_overlapping_stages() -> tuple[Stage, Stage]:
    """Two stages sharing the (scenarios × TINY × HCPA/delta) cells."""
    first = Stage(name="first", scenarios=SCENARIOS, clusters=(TINY,),
                  specs=(HCPA, DELTA),
                  artifact=lambda rs: [f"first:{len(rs)}"])
    second = Stage(name="second", scenarios=SCENARIOS, clusters=(TINY,),
                   specs=(HCPA, DELTA, TIMECOST),
                   artifact=lambda rs: [f"second:{len(rs)}"])
    return first, second


class TestStage:
    def test_cells_are_scenario_major(self):
        stage = Stage(name="s", scenarios=SCENARIOS, clusters=(TINY,),
                      specs=(HCPA, DELTA))
        cells = list(stage.cells())
        assert len(cells) == stage.n_cells == 4
        assert [c[0].sample for c in cells] == [0, 0, 1, 1]
        assert [c[2].label for c in cells] == ["HCPA", "delta"] * 2

    def test_static_stage_has_no_cells(self):
        stage = Stage(name="static", artifact=lambda _r: ["body"])
        assert stage.n_cells == 0
        assert stage.sections([]) == ["body"]

    def test_artifact_string_normalised_to_list(self):
        stage = Stage(name="s", artifact=lambda _r: "single section")
        assert stage.sections([]) == ["single section"]

    def test_stage_without_artifact_renders_nothing(self):
        stage = Stage(name="warm", scenarios=SCENARIOS, clusters=(TINY,),
                      specs=(HCPA,))
        assert stage.sections([]) == []


class TestCompile:
    def test_cross_stage_dedup(self):
        plan = CampaignPlan(two_overlapping_stages())
        compiled = plan.compile()
        # 4 + 6 cells, but the 4 first-stage runs all recur in the second
        assert compiled.total_cells == 10
        assert compiled.unique_runs == 6
        assert "4 deduplicated" in compiled.describe()

    def test_first_occurrence_order_is_stable(self):
        compiled = CampaignPlan(two_overlapping_stages()).compile()
        labels = [r.spec.label for r in compiled.runs]
        assert labels == ["HCPA", "delta", "HCPA", "delta",
                          "time-cost", "time-cost"]

    def test_stage_keys_cover_every_cell(self):
        compiled = CampaignPlan(two_overlapping_stages()).compile()
        assert [len(k) for k in compiled.stage_keys] == [4, 6]
        known = {r.key for r in compiled.runs}
        for keys in compiled.stage_keys:
            for run_key in keys:
                content, label = compiled.cells[run_key]
                assert content in known
                assert label in ("HCPA", "delta", "time-cost")

    def test_label_only_differences_collapse(self):
        """Two cells differing only in display label simulate once; each
        stage sees the shared result under its own label."""
        upper = Stage(name="upper", scenarios=SCENARIOS, clusters=(TINY,),
                      specs=(baseline_spec("hcpa", label="HCPA"),),
                      artifact=lambda rs: [
                          ",".join(r.algorithm for r in rs)])
        lower = Stage(name="lower", scenarios=SCENARIOS, clusters=(TINY,),
                      specs=(baseline_spec("hcpa", label="hcpa-again"),),
                      artifact=lambda rs: [
                          ",".join(r.algorithm for r in rs)])
        compiled = CampaignPlan([upper, lower]).compile()
        assert compiled.total_cells == 4
        assert compiled.unique_runs == 2  # labels are presentation only

        executions = []
        runner = ExperimentRunner(record_timings=False)
        orig = runner._execute

        def counting(*args):
            executions.append(args)
            return orig(*args)

        runner._execute = counting
        execution = compiled.execute(runner)
        assert len(executions) == 2
        assert execution.sections() == ["HCPA,HCPA",
                                        "hcpa-again,hcpa-again"]
        # the science is shared, only the label differs
        up, low = (execution.stage_results("upper"),
                   execution.stage_results("lower"))
        assert [r.makespan for r in up] == [r.makespan for r in low]

    def test_relabelled_cells_persist_under_their_own_run_key(self, tmp_path):
        """The fan-out stores every cell's result under its own run_key,
        so non-plan consumers of the store still resume cell-by-cell."""
        upper = Stage(name="upper", scenarios=SCENARIOS, clusters=(TINY,),
                      specs=(baseline_spec("hcpa", label="HCPA"),))
        lower = Stage(name="lower", scenarios=SCENARIOS, clusters=(TINY,),
                      specs=(baseline_spec("hcpa", label="hcpa-again"),))
        with JsonlStore(tmp_path / "fan.jsonl") as store:
            with ExperimentRunner(store=store,
                                  record_timings=False) as runner:
                CampaignPlan([upper, lower]).execute(runner)
            assert len(store) == 4  # 2 simulated + 2 relabelled aliases
        with JsonlStore(tmp_path / "fan.jsonl") as store:
            runner = ExperimentRunner(store=store, record_timings=False)
            results = runner.run_matrix(list(SCENARIOS), [TINY],
                                        [baseline_spec("hcpa",
                                                       label="hcpa-again")])
            assert store.stats.misses == 0  # plain matrix: all hits
        assert all(r.algorithm == "hcpa-again" for r in results)


class TestExecute:
    def test_each_unique_run_executes_once(self):
        plan = CampaignPlan(two_overlapping_stages())
        executions = []
        runner = ExperimentRunner(record_timings=False)
        orig = runner._execute

        def counting(*args):
            executions.append(args)
            return orig(*args)

        runner._execute = counting
        execution = plan.execute(runner)
        assert len(executions) == 6  # not 10
        assert execution.complete

    def test_stage_results_match_run_matrix(self):
        first, second = two_overlapping_stages()
        execution = CampaignPlan([first, second]).execute(
            ExperimentRunner(record_timings=False))
        expected = ExperimentRunner(record_timings=False).run_matrix(
            list(second.scenarios), list(second.clusters),
            list(second.specs))
        assert execution.stage_results("second") == expected
        # lookup by Stage object works too
        assert execution.stage_results(second) == expected

    def test_report_joins_sections_in_stage_order(self):
        execution = CampaignPlan(two_overlapping_stages()).execute(
            ExperimentRunner(record_timings=False))
        assert execution.report() == \
            f"first:4{SECTION_SEPARATOR}second:6"

    def test_unknown_stage_raises(self):
        execution = CampaignPlan(two_overlapping_stages()).execute(
            ExperimentRunner(record_timings=False))
        with pytest.raises(KeyError, match="no stage named"):
            execution.stage_results("nope")

    def test_duplicate_stage_names_render_their_own_results(self):
        """sections() renders by position, so two stages sharing a name
        (e.g. two default-named Experiment.plan() stages) each see their
        own result list."""
        one = Stage(name="experiment", scenarios=SCENARIOS[:1],
                    clusters=(TINY,), specs=(HCPA,),
                    artifact=lambda rs: [f"one:{len(rs)}"])
        two = Stage(name="experiment", scenarios=SCENARIOS,
                    clusters=(TINY,), specs=(HCPA, DELTA),
                    artifact=lambda rs: [f"two:{len(rs)}"])
        execution = CampaignPlan([one, two]).execute(
            ExperimentRunner(record_timings=False))
        assert execution.sections() == ["one:1", "two:4"]
        # object lookup resolves by identity even under a shared name
        assert len(execution.stage_results(two)) == 4

    def test_store_attached_runner_persists_unique_runs(self, tmp_path):
        plan = CampaignPlan(two_overlapping_stages())
        with JsonlStore(tmp_path / "plan.jsonl") as store:
            with ExperimentRunner(store=store,
                                  record_timings=False) as runner:
                plan.execute(runner)
            assert store.stats.misses == 6 and store.stats.puts == 6
        # replay: all hits, zero fresh
        with JsonlStore(tmp_path / "plan.jsonl") as store:
            with ExperimentRunner(store=store,
                                  record_timings=False) as runner:
                execution = plan.execute(runner)
            assert store.stats.misses == 0 and store.stats.hits == 6
        assert execution.complete


class TestSharding:
    def test_parse_shard(self):
        assert parse_shard("1/2") == (0, 2)
        assert parse_shard("2/2") == (1, 2)
        assert parse_shard("3/5") == (2, 5)
        for bad in ("0/2", "3/2", "1-2", "x", "1/0", "/2"):
            with pytest.raises(ValueError):
                parse_shard(bad)

    def test_shards_partition_the_run_set(self):
        compiled = CampaignPlan(two_overlapping_stages()).compile()
        s1 = compiled.shard(0, 2)
        s2 = compiled.shard(1, 2)
        assert set(r.key for r in s1).isdisjoint(r.key for r in s2)
        assert {r.key for r in s1} | {r.key for r in s2} == \
            {r.key for r in compiled.runs}
        # and the same holds for any shard count
        for n in (1, 3, 4):
            shards = [compiled.shard(i, n) for i in range(n)]
            assert sum(len(s) for s in shards) == compiled.unique_runs

    def test_shard_assignment_is_deterministic(self):
        compiled = CampaignPlan(two_overlapping_stages()).compile()
        again = CampaignPlan(two_overlapping_stages()).compile()
        assert [r.key for r in compiled.shard(0, 2)] == \
            [r.key for r in again.shard(0, 2)]
        for r in compiled.runs:
            assert shard_of(r.key, 2) == int(r.key[:16], 16) % 2

    def test_shard_deterministic_across_processes(self):
        """The campaign plan's shard split is a pure function of run
        content, so an independent interpreter computes the same slice."""
        code = (
            "import sys; sys.path.insert(0, 'src')\n"
            "from repro.experiments.campaign import build_campaign_plan\n"
            "compiled = build_campaign_plan(0.004, ['chti'],"
            " skip_sweeps=True).compile()\n"
            "print('\\n'.join(r.key for r in compiled.shard(0, 2)))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            cwd=Path(__file__).resolve().parent.parent, check=True)
        compiled = build_campaign_plan(0.004, ["chti"],
                                       skip_sweeps=True).compile()
        assert out.stdout.split() == [r.key for r in compiled.shard(0, 2)]

    def test_invalid_shard_rejected(self):
        compiled = CampaignPlan(two_overlapping_stages()).compile()
        with pytest.raises(ValueError):
            compiled.shard(2, 2)
        with pytest.raises(ValueError):
            compiled.shard(0, 0)

    def test_sharded_execution_cannot_render(self):
        compiled = CampaignPlan(two_overlapping_stages()).compile()
        execution = compiled.execute(
            ExperimentRunner(record_timings=False), shard=(0, 2))
        assert len(execution.executed) < compiled.unique_runs
        assert not execution.complete
        with pytest.raises(RuntimeError, match="merge the shard stores"):
            execution.sections()

    def test_sharded_stores_merge_into_full_replay(self, tmp_path):
        """2-shard union == full set: executing both shards into separate
        stores, merging, and replaying performs zero fresh simulations and
        reproduces the direct report."""
        plan = CampaignPlan(two_overlapping_stages())
        for i in (0, 1):
            with JsonlStore(tmp_path / f"shard{i}.jsonl") as store:
                with ExperimentRunner(store=store,
                                      record_timings=False) as runner:
                    plan.execute(runner, shard=(i, 2))
        merge_stores([tmp_path / "shard0.jsonl", tmp_path / "shard1.jsonl"],
                     tmp_path / "merged.jsonl")
        with JsonlStore(tmp_path / "merged.jsonl") as store:
            assert len(store) == 6
            with ExperimentRunner(store=store,
                                  record_timings=False) as runner:
                execution = plan.execute(runner)
            assert store.stats.misses == 0  # zero fresh simulations
        direct = plan.execute(ExperimentRunner(record_timings=False))
        assert execution.report() == direct.report()


class TestCampaignPlanProducer:
    def test_campaign_plan_is_pure_and_dedups(self):
        plan = build_campaign_plan(0.004, ["chti"])
        names = [s.name for s in plan.stages]
        assert names == ["preamble", "tables I-III", "figures 2-3",
                         "figure 4", "figure 5", "figures 6-7",
                         "tables V-VI"]
        compiled = plan.compile()
        # sweep baselines + the HCPA runs shared between figures 2-3/6-7
        # and tables V-VI collapse
        assert compiled.unique_runs < compiled.total_cells

    def test_skip_sweeps_drops_the_sweep_stages(self):
        plan = build_campaign_plan(0.004, ["chti"], skip_sweeps=True)
        names = [s.name for s in plan.stages]
        assert "figure 4" not in names and "figure 5" not in names

    def test_campaign_dedup_strictly_reduces_simulations(self):
        """Acceptance: a sweep-inclusive campaign executes strictly fewer
        simulations than its stages declare cells."""
        plan = build_campaign_plan(0.004, ["chti"])
        compiled = plan.compile()
        executions = []
        runner = ExperimentRunner(record_timings=False)
        orig = runner._execute

        def counting(*args):
            executions.append(args)
            return orig(*args)

        runner._execute = counting
        execution = compiled.execute(runner)
        assert len(executions) == compiled.unique_runs < compiled.total_cells
        assert execution.complete and execution.report()

    def test_run_campaign_report_has_all_sections(self, tmp_path):
        report, results = run_campaign(0.004, ["chti"], skip_sweeps=True,
                                       progress=False)
        for marker in ("RATS reproduction campaign", "Table I", "Table II",
                       "Table III", "Figure 2", "Figure 3", "Figure 6",
                       "Figure 7", "Table V", "Table VI"):
            assert marker in report
        # the exported results are the Tables V-VI matrix
        assert {r.algorithm for r in results} == \
            {"HCPA", "delta", "time-cost"}


class TestExperimentPlan:
    def test_experiment_compiles_to_stage(self):
        stage = (Experiment().on(TINY)
                 .workload(family="strassen", samples=2)
                 .compare("hcpa", "rats-delta")
                 .plan(name="mine"))
        assert isinstance(stage, Stage)
        assert stage.name == "mine" and stage.n_cells == 4

    def test_experiment_stage_in_campaign_plan(self):
        stage = (Experiment().on(TINY)
                 .workload(family="strassen", samples=2)
                 .compare("hcpa")
                 .plan())
        execution = CampaignPlan([stage]).execute(
            ExperimentRunner(record_timings=False))
        [section] = execution.sections()
        assert "hcpa" in section and "best:" in section  # summary table

    def test_experiment_stage_dedups_against_campaign_stages(self):
        first, _ = two_overlapping_stages()
        stage = (Experiment().on(TINY)
                 .workload(scenarios=list(SCENARIOS))
                 .compare(HCPA)
                 .plan(name="user"))
        compiled = CampaignPlan([first, stage]).compile()
        assert compiled.unique_runs == 4  # the user stage is fully shared
