"""Tests for the experiment runner and the paper's metrics."""

from __future__ import annotations

import pytest

from repro.core.params import NAIVE_DELTA, NAIVE_TIMECOST
from repro.experiments.metrics import (
    combined_comparison,
    degradation_from_best,
    index_results,
    pairwise_comparison,
    relative_series,
    series_stats,
)
from repro.experiments.runner import (
    AlgorithmSpec,
    ExperimentRunner,
    RunResult,
    baseline_spec,
    rats_spec,
)
from repro.experiments.scenarios import Scenario
from repro.platforms.cluster import Cluster

SMALL = Scenario(family="strassen", sample=0)
TINY_FFT = Scenario(family="fft", k=2, sample=0)


@pytest.fixture(scope="module")
def cluster() -> Cluster:
    return Cluster(name="mod-tiny", num_procs=8, speed_flops=1e9)


@pytest.fixture(scope="module")
def run_results(cluster) -> list[RunResult]:
    runner = ExperimentRunner()
    specs = [
        baseline_spec("hcpa", label="HCPA"),
        rats_spec(NAIVE_DELTA, label="delta"),
        rats_spec(NAIVE_TIMECOST, label="time-cost"),
    ]
    return runner.run_matrix([SMALL, TINY_FFT], [cluster], specs)


class TestAlgorithmSpec:
    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            AlgorithmSpec(label="x", kind="magic")

    def test_rats_needs_params(self):
        with pytest.raises(ValueError):
            AlgorithmSpec(label="x", kind="rats")
        with pytest.raises(ValueError):
            rats_spec()

    def test_tuned_spec_resolves_table_iv(self):
        spec = rats_spec(tuned=True, strategy="delta")
        p = spec.resolve_params("grillon", "fft")
        assert (p.mindelta, p.maxdelta) == (-0.5, 1.0)
        p2 = spec.resolve_params("chti", "strassen")
        assert (p2.mindelta, p2.maxdelta) == (-0.25, 0.5)

    def test_tuned_needs_strategy(self):
        with pytest.raises(ValueError):
            rats_spec(tuned=True)

    def test_baseline_kinds(self):
        for kind in ("cpa", "mcpa", "hcpa"):
            assert baseline_spec(kind).kind == kind


class TestRunner:
    def test_results_complete(self, run_results):
        assert len(run_results) == 6  # 2 scenarios x 1 cluster x 3 algos
        for r in run_results:
            assert r.makespan > 0
            assert r.work > 0
            assert r.estimated_makespan > 0
            assert r.n_tasks in (25, 5)

    def test_simulated_at_least_estimated(self, run_results):
        for r in run_results:
            assert r.makespan >= r.estimated_makespan * (1 - 1e-9)

    def test_rats_runs_record_adaptations(self, run_results):
        rats_runs = [r for r in run_results if r.algorithm != "HCPA"]
        assert any(r.stretches + r.packs + r.sames > 0 for r in rats_runs)

    def test_baseline_runs_have_no_adaptations(self, run_results):
        for r in run_results:
            if r.algorithm == "HCPA":
                assert r.stretches == r.packs == r.sames == 0

    def test_caching_returns_same_objects(self, cluster):
        runner = ExperimentRunner()
        g1 = runner.graph_for(SMALL)
        g2 = runner.graph_for(SMALL)
        assert g1 is g2
        a1 = runner.allocation_for(SMALL, cluster, "hcpa")
        a2 = runner.allocation_for(SMALL, cluster, "hcpa")
        assert a1 is a2

    def test_no_simulation_mode(self, cluster):
        runner = ExperimentRunner(simulate_schedules=False)
        r = runner.run(TINY_FFT, cluster, baseline_spec("hcpa"))
        assert r.makespan == r.estimated_makespan

    def test_cpa_and_mcpa_kinds_run(self, cluster):
        runner = ExperimentRunner(simulate_schedules=False)
        for kind in ("cpa", "mcpa"):
            r = runner.run(TINY_FFT, cluster, baseline_spec(kind))
            assert r.makespan > 0


class TestMetrics:
    def test_index_results_groups(self, run_results):
        idx = index_results(run_results)
        assert len(idx) == 2
        for bucket in idx.values():
            assert set(bucket) == {"HCPA", "delta", "time-cost"}

    def test_index_rejects_duplicates(self, run_results):
        with pytest.raises(ValueError):
            index_results(run_results + run_results[:1])

    def test_relative_series_sorted(self, run_results):
        s = relative_series(run_results, "delta", "HCPA")
        assert len(s) == 2
        assert s == sorted(s)
        assert all(v > 0 for v in s)

    def test_relative_series_self_is_ones(self, run_results):
        s = relative_series(run_results, "HCPA", "HCPA")
        assert all(v == pytest.approx(1.0) for v in s)

    def test_series_stats(self):
        st = series_stats([0.5, 1.0, 1.5, 2.0])
        assert st.count == 4
        assert st.mean == pytest.approx(1.25)
        assert st.median == pytest.approx(1.25)
        assert st.frac_better == pytest.approx(0.25)
        assert st.frac_equal == pytest.approx(0.25)
        assert st.frac_worse == pytest.approx(0.5)

    def test_series_stats_empty(self):
        with pytest.raises(ValueError):
            series_stats([])

    def test_pairwise_symmetry(self, run_results):
        algos = ["HCPA", "delta", "time-cost"]
        pw = pairwise_comparison(run_results, algos)
        for a in algos:
            for b in algos:
                if a == b:
                    continue
                ab, ba = pw[(a, b)], pw[(b, a)]
                assert ab["better"] == ba["worse"]
                assert ab["equal"] == ba["equal"]
                total = sum(ab.values())
                assert total == 2  # one comparison per configuration

    def test_combined_percentages_sum_to_100(self, run_results):
        algos = ["HCPA", "delta", "time-cost"]
        comb = combined_comparison(run_results, algos)
        for a in algos:
            assert sum(comb[a].values()) == pytest.approx(100.0)

    def test_degradation_from_best(self, run_results):
        algos = ["HCPA", "delta", "time-cost"]
        deg = degradation_from_best(run_results, algos)
        # at least one algorithm achieves the best in each config
        assert min(d.avg_over_all for d in deg.values()) \
            == pytest.approx(min(d.avg_over_all for d in deg.values()))
        for d in deg.values():
            assert d.avg_over_all >= 0
            assert d.avg_over_not_best >= d.avg_over_all - 1e-9

    def test_degradation_best_algo_has_zero_rows(self):
        """Synthetic: algo A always best."""
        rows = []
        for i, (ma, mb) in enumerate([(1.0, 2.0), (3.0, 4.5)]):
            rows.append(RunResult(f"s{i}", "f", "c", "A", ma, ma, 1, 5))
            rows.append(RunResult(f"s{i}", "f", "c", "B", mb, mb, 1, 5))
        deg = degradation_from_best(rows, ["A", "B"])
        assert deg["A"].avg_over_all == 0.0
        assert deg["A"].not_best_count == 0
        assert deg["B"].avg_over_all == pytest.approx((100 + 50) / 2)
        assert deg["B"].avg_over_not_best == pytest.approx(75.0)
