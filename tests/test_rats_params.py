"""Tests for RATSParams validation and the Table IV presets."""

from __future__ import annotations

import pytest

from repro.core.params import (
    NAIVE_DELTA,
    NAIVE_TIMECOST,
    PAPER_TUNED_PARAMS,
    RATSParams,
    tuned_params,
)


class TestRATSParamsValidation:
    def test_defaults_valid(self):
        p = RATSParams()
        assert p.strategy == "timecost"
        assert p.allow_pack and p.guard_stretch

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="strategy"):
            RATSParams(strategy="magic")

    def test_positive_mindelta_rejected(self):
        with pytest.raises(ValueError, match="mindelta"):
            RATSParams(mindelta=0.5)

    def test_negative_maxdelta_rejected(self):
        with pytest.raises(ValueError, match="maxdelta"):
            RATSParams(maxdelta=-0.5)

    @pytest.mark.parametrize("rho", [0.0, -0.2, 1.5])
    def test_minrho_interval(self, rho):
        with pytest.raises(ValueError, match="minrho"):
            RATSParams(minrho=rho)

    def test_minrho_one_allowed(self):
        assert RATSParams(minrho=1.0).minrho == 1.0

    def test_with_helper(self):
        p = NAIVE_DELTA.with_(maxdelta=1.0)
        assert p.maxdelta == 1.0 and p.mindelta == NAIVE_DELTA.mindelta

    def test_describe(self):
        assert "delta" in NAIVE_DELTA.describe()
        assert "packing" in NAIVE_TIMECOST.describe()


class TestNaivePresets:
    def test_naive_values_are_half(self):
        """§IV-B: 'we use a naive value (0.5) for each parameter'."""
        assert NAIVE_DELTA.mindelta == -0.5
        assert NAIVE_DELTA.maxdelta == 0.5
        assert NAIVE_TIMECOST.minrho == 0.5
        assert NAIVE_TIMECOST.allow_pack


class TestTableIV:
    def test_all_12_cells_present(self):
        assert len(PAPER_TUNED_PARAMS) == 12
        clusters = {k[0] for k in PAPER_TUNED_PARAMS}
        families = {k[1] for k in PAPER_TUNED_PARAMS}
        assert clusters == {"chti", "grillon", "grelon"}
        assert families == {"fft", "strassen", "layered", "irregular"}

    @pytest.mark.parametrize("key,expected", [
        (("chti", "fft"), (-0.5, 1.0, 0.2)),
        (("grillon", "strassen"), (0.0, 1.0, 0.4)),
        (("grelon", "fft"), (-0.25, 0.75, 0.4)),
        (("grelon", "irregular"), (-0.75, 1.0, 0.4)),
    ])
    def test_spot_check_table_values(self, key, expected):
        assert PAPER_TUNED_PARAMS[key] == expected

    def test_tuned_params_builds_valid_params(self):
        for (cluster, family) in PAPER_TUNED_PARAMS:
            for strategy in ("delta", "timecost"):
                p = tuned_params(cluster, family, strategy)
                assert p.strategy == strategy
                assert p.mindelta <= 0 <= p.maxdelta

    def test_unknown_pair_raises(self):
        with pytest.raises(KeyError):
            tuned_params("grillon", "unknown-family", "delta")

    def test_all_values_from_sweep_grid(self):
        """Tuned values must come from the §IV-C tested grids."""
        from repro.experiments.tuning import (
            DEFAULT_MAXDELTAS,
            DEFAULT_MINDELTAS,
            DEFAULT_MINRHOS,
        )
        for mind, maxd, rho in PAPER_TUNED_PARAMS.values():
            assert mind in DEFAULT_MINDELTAS
            assert maxd in DEFAULT_MAXDELTAS
            assert rho in DEFAULT_MINRHOS
