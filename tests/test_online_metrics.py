"""Edge cases of the online per-job metrics roll-up."""

import math

import pytest

from repro.online.metrics import JobRecord, OnlineMetrics, _nearest_rank


def _finished(job_id="j0", arrival=0.0, start=1.0, completion=5.0,
              **kw) -> JobRecord:
    return JobRecord(job_id=job_id, scenario="s", algorithm="hcpa",
                     arrival=arrival, admitted=True, start=start,
                     completion=completion, **kw)


def _rejected(job_id="r0", arrival=0.0) -> JobRecord:
    return JobRecord(job_id=job_id, scenario="s", algorithm="hcpa",
                     arrival=arrival, admitted=False)


class TestJobRecord:
    def test_jct_and_slowdown(self):
        r = _finished(arrival=0.0, start=2.0, completion=6.0)
        assert r.jct == 6.0
        assert r.slowdown == 6.0 / 4.0

    def test_rejected_has_no_timings(self):
        r = _rejected()
        assert not r.finished
        assert r.jct is None and r.slowdown is None

    def test_zero_span_slowdown_clamps_to_one(self):
        r = _finished(arrival=0.0, start=3.0, completion=3.0)
        assert r.slowdown == 1.0


class TestEmptyStream:
    def test_no_records_at_all(self):
        m = OnlineMetrics.from_records([])
        assert (m.n_jobs, m.n_admitted, m.n_rejected, m.n_finished) \
            == (0, 0, 0, 0)
        assert m.jct == {} and m.slowdown == {}
        assert m.slo_attainment is None  # nothing to attain or miss

    def test_no_records_with_slo_still_none(self):
        m = OnlineMetrics.from_records([], slo=10.0)
        assert m.slo_threshold == 10.0
        assert m.slo_attainment is None

    def test_summary_renders_without_distributions(self):
        s = OnlineMetrics.from_records([]).summary()
        assert "jobs=0" in s and "JCT" not in s


class TestSingleJob:
    def test_every_percentile_is_the_one_observation(self):
        m = OnlineMetrics.from_records(
            [_finished(arrival=1.0, start=2.0, completion=8.0)])
        assert m.n_jobs == m.n_finished == 1
        assert m.jct["p50"] == m.jct["p95"] == m.jct["p99"] \
            == m.jct["mean"] == m.jct["max"] == 7.0
        assert m.slowdown["p50"] == pytest.approx(7.0 / 6.0)

    def test_single_unfinished_job(self):
        r = JobRecord(job_id="j0", scenario="s", algorithm="hcpa",
                      arrival=0.0, admitted=True)  # admitted, never done
        m = OnlineMetrics.from_records([r], slo=10.0)
        assert m.n_admitted == 1 and m.n_finished == 0
        assert m.jct == {}
        assert m.slo_attainment == 0.0  # unfinished counts as a miss


class TestAllRejected:
    def test_counts_and_empty_distributions(self):
        m = OnlineMetrics.from_records([_rejected(f"r{i}")
                                        for i in range(4)])
        assert m.n_jobs == m.n_rejected == 4
        assert m.n_admitted == m.n_finished == 0
        assert m.jct == {} and m.slowdown == {}

    def test_rejections_are_missed_slos(self):
        m = OnlineMetrics.from_records([_rejected(f"r{i}")
                                        for i in range(4)], slo=100.0)
        assert m.slo_attainment == 0.0


class TestSloBoundary:
    def test_jct_exactly_at_threshold_attains(self):
        # jobs with JCT 4, 8, 12; SLO exactly 8 -> the boundary job counts
        records = [_finished(f"j{i}", arrival=0.0, start=0.0,
                             completion=float(c))
                   for i, c in enumerate((4, 8, 12))]
        m = OnlineMetrics.from_records(records, slo=8.0)
        assert m.slo_attainment == pytest.approx(2 / 3)

    def test_attainment_denominator_includes_rejected(self):
        records = [_finished("j0", arrival=0.0, start=0.0, completion=5.0),
                   _rejected("r0")]
        m = OnlineMetrics.from_records(records, slo=5.0)
        assert m.slo_attainment == pytest.approx(0.5)


class TestNearestRank:
    def test_definition_on_known_list(self):
        vals = [float(v) for v in range(1, 11)]  # 1..10
        assert _nearest_rank(vals, 0.50) == 5.0   # ceil(5.0) = 5th
        assert _nearest_rank(vals, 0.95) == 10.0  # ceil(9.5) = 10th
        assert _nearest_rank(vals, 0.99) == 10.0
        assert _nearest_rank(vals, 0.0) == 1.0    # rank clamps to 1

    def test_reported_values_are_observations(self):
        vals = sorted([3.7, 1.2, 9.9, 2.2, 5.1])
        for p in (0.5, 0.9, 0.95, 0.99):
            assert _nearest_rank(vals, p) in vals

    def test_rank_never_exceeds_n(self):
        assert _nearest_rank([2.5], 0.999) == 2.5
        assert not math.isnan(_nearest_rank([2.5], 1.0))


class TestAsDict:
    def test_round_trips_every_field(self):
        m = OnlineMetrics.from_records(
            [_finished(), _rejected()], slo=10.0)
        d = m.as_dict()
        assert d["n_jobs"] == 2 and d["slo_threshold"] == 10.0
        assert OnlineMetrics(**d) == m
