"""Network topology: links and routes of a cluster (paper §II-B, §IV-A).

Link naming
-----------
Every node ``p`` owns a full-duplex private link modelled as two directed
half-links, ``("nic_up", p)`` for sends and ``("nic_down", p)`` for
receives — this is what makes the model *bounded multi-port*: any number of
concurrent flows, but each node's aggregate send (resp. receive) rate is
bounded by its link bandwidth.

Hierarchical clusters add per-cabinet uplinks ``("cab_up", c)`` /
``("cab_down", c)`` crossed only by inter-cabinet flows; the top switch
backplane is assumed contention-free (as is usual for switched gigabit
fabrics).

Latency is split evenly over the two NIC half-links so that an
intra-cluster transfer sees the paper's one-way latency (100 µs) and an
inter-cabinet transfer sees twice that.

The SimGrid v3.3 empirical bandwidth correction is applied **per flow**:
``rate ≤ Wmax / RTT`` with ``RTT`` twice the route latency (§IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.platforms.cluster import Cluster

__all__ = ["LinkId", "Route", "RouteCacheMixin", "Topology"]

#: A link identifier: ``(kind, index)``.
LinkId = tuple[str, int]


@dataclass(frozen=True)
class Route:
    """The path of a point-to-point flow.

    Attributes
    ----------
    links:
        Ordered link identifiers the flow crosses (empty for a
        self-communication, which is free).
    latency_s:
        One-way latency of the route.
    rate_cap_Bps:
        Per-flow rate bound ``min(β, Wmax / RTT)``.
    """

    links: tuple[LinkId, ...]
    latency_s: float
    rate_cap_Bps: float

    @property
    def is_local(self) -> bool:
        return not self.links


class RouteCacheMixin:
    """Shared link-index / route caching for topology classes.

    Expects the concrete class to provide ``capacities`` (LinkId →
    capacity) and ``route(src, dst)``; :meth:`_init_route_caches` wires
    the link indexing and the caches.  Both :class:`Topology` and
    :class:`~repro.platforms.multicluster.MultiClusterTopology` inherit
    this, so the fused per-pair summary the schedulers' pricing relies
    on cannot drift between the two.
    """

    capacities: dict[LinkId, float]

    def _init_route_caches(self) -> None:
        # stable integer indexing of links for the vectorised solvers
        self.link_ids: list[LinkId] = list(self.capacities)
        self.link_index: dict[LinkId, int] = {
            lid: i for i, lid in enumerate(self.link_ids)
        }
        self._route_cache: dict[tuple[int, int], Route] = {}
        self._capacity_array = None
        self._capacity_list: list[float] | None = None
        self._route_idx_cache: dict[tuple[int, int], tuple[int, ...]] = {}
        self._pair_summary_cache: dict[tuple[int, int],
                                       tuple[tuple[int, ...],
                                             float, float]] = {}

    @property
    def capacity_array(self):
        """Link capacities as a numpy array aligned with ``link_ids``."""
        if self._capacity_array is None:
            import numpy as np

            self._capacity_array = np.array(
                [self.capacities[lid] for lid in self.link_ids], dtype=float
            )
        return self._capacity_array

    @property
    def capacity_list(self) -> list[float]:
        """Capacities as plain floats (scalar hot loops avoid numpy)."""
        if self._capacity_list is None:
            self._capacity_list = [float(self.capacities[lid])
                                   for lid in self.link_ids]
        return self._capacity_list

    def route_indices(self, src: int, dst: int) -> tuple[int, ...]:
        """Integer link indices of the ``src → dst`` route."""
        key = (src, dst)
        hit = self._route_idx_cache.get(key)
        if hit is None:
            hit = tuple(self.link_index[lid]
                        for lid in self.route(src, dst).links)
            self._route_idx_cache[key] = hit
        return hit

    def pair_summary(self, src: int, dst: int) -> tuple[tuple[int, ...],
                                                        float, float]:
        """``(link indices, latency, rate cap)`` of the pair, one dict hit.

        The fused per-pair record behind the schedulers' bottleneck
        estimator, which prices the same (src, dst) pairs thousands of
        times per mapping run.
        """
        key = (src, dst)
        hit = self._pair_summary_cache.get(key)
        if hit is None:
            route = self.route(src, dst)
            hit = (self.route_indices(src, dst), route.latency_s,
                   route.rate_cap_Bps)
            self._pair_summary_cache[key] = hit
        return hit

    def link_capacity(self, link: LinkId) -> float:
        return self.capacities[link]

    def route(self, src: int, dst: int) -> Route:  # pragma: no cover
        raise NotImplementedError


class Topology(RouteCacheMixin):
    """Link capacities and routing for one :class:`Cluster`."""

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster
        self.capacities: dict[LinkId, float] = {}
        bw = cluster.bandwidth_Bps
        for p in range(cluster.num_procs):
            self.capacities[("nic_up", p)] = bw
            self.capacities[("nic_down", p)] = bw
        if cluster.is_hierarchical:
            assert cluster.cabinets is not None
            for c in range(cluster.cabinets):
                self.capacities[("cab_up", c)] = bw
                self.capacities[("cab_down", c)] = bw
        self._init_route_caches()

    def route(self, src: int, dst: int) -> Route:
        """Route of a flow from node ``src`` to node ``dst``.

        Self-communications (``src == dst``) are free (paper §II-A: no
        redistribution cost on the same processors) and get an empty route.
        """
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached

        cluster = self.cluster
        n = cluster.num_procs
        if not (0 <= src < n and 0 <= dst < n):
            raise ValueError(f"processor out of range: {src}, {dst}")
        if src == dst:
            route = Route((), 0.0, float("inf"))
        else:
            links: list[LinkId] = [("nic_up", src)]
            latency = cluster.latency_s
            c_src, c_dst = cluster.cabinet_of(src), cluster.cabinet_of(dst)
            if c_src != c_dst:
                links.append(("cab_up", c_src))
                links.append(("cab_down", c_dst))
                latency += cluster.latency_s
            links.append(("nic_down", dst))
            rtt = 2.0 * latency
            cap = min(cluster.bandwidth_Bps,
                      cluster.tcp_window_bytes / rtt if rtt > 0 else float("inf"))
            route = Route(tuple(links), latency, cap)
        self._route_cache[key] = route
        return route

    def effective_bandwidth(self, src: int, dst: int) -> float:
        """Bandwidth of an isolated ``src → dst`` flow."""
        r = self.route(src, dst)
        return r.rate_cap_Bps if not r.is_local else float("inf")
