"""Multi-cluster platforms — the paper's §V future work, implemented.

"As a future work we aim at extending this work to multi-cluster platforms
in which heterogeneity and high latency network connections have to be
taken into account."

A :class:`MultiClusterPlatform` joins several (possibly different-speed)
:class:`~repro.platforms.cluster.Cluster` instances through a WAN backbone
modelled as a star: each cluster owns a WAN uplink/downlink pair hanging
off a contention-free core.  WAN links have high latency, so this is where
the SimGrid empirical bandwidth cap ``β' = min(β, Wmax/RTT)`` actually
binds (on a 10 ms one-way WAN, a 4 MiB window caps a flow at ≈ 200 MB/s —
and at ≈ 20 MB/s for 100 ms).

Processors get *global* indices: cluster ``k``'s processor ``i`` maps to
``offset_k + i``.  Data-parallel tasks never span clusters (their internal
communication pattern would be dominated by the WAN), which is the standard
assumption of HCPA's own multi-cluster work — so the scheduling question
becomes *which cluster* and *which processors inside it*.

The class mirrors the parts of the :class:`Cluster` interface the mapping,
redistribution and simulation layers rely on (``num_procs``, ``topology``,
``bandwidth_Bps``, ``latency_s``, ``performance_model``), so schedules on a
multi-cluster platform flow through the same simulator unchanged.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from functools import cached_property

from repro.model.amdahl import AmdahlModel
from repro.platforms.cluster import GIGABIT_BPS, Cluster
from repro.platforms.topology import LinkId, Route, RouteCacheMixin
from repro.registry import platforms

__all__ = ["MultiClusterPlatform", "MultiClusterTopology"]


class MultiClusterTopology(RouteCacheMixin):
    """Routing and link capacities across a star-of-clusters WAN."""

    def __init__(self, platform: "MultiClusterPlatform") -> None:
        self.platform = platform
        self.capacities: dict[LinkId, float] = {}
        # per-node NIC links (global ids) and per-cluster cabinet links
        for k, cluster in enumerate(platform.clusters):
            offset = platform.offsets[k]
            for p in range(cluster.num_procs):
                self.capacities[("nic_up", offset + p)] = cluster.bandwidth_Bps
                self.capacities[("nic_down", offset + p)] = cluster.bandwidth_Bps
            if cluster.is_hierarchical:
                assert cluster.cabinets is not None
                for c in range(cluster.cabinets):
                    # cabinet link ids are namespaced by cluster index
                    self.capacities[("cab_up", k * 1000 + c)] = \
                        cluster.bandwidth_Bps
                    self.capacities[("cab_down", k * 1000 + c)] = \
                        cluster.bandwidth_Bps
            self.capacities[("wan_up", k)] = platform.wan_bandwidth_Bps
            self.capacities[("wan_down", k)] = platform.wan_bandwidth_Bps

        self._init_route_caches()

    # ------------------------------------------------------------------ #
    def route(self, src: int, dst: int) -> Route:
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        platform = self.platform
        if src == dst:
            route = Route((), 0.0, float("inf"))
        else:
            ks, ps = platform.locate(src)
            kd, pd = platform.locate(dst)
            links: list[LinkId] = [("nic_up", src)]
            cs = platform.clusters[ks]
            latency = cs.latency_s
            if ks == kd:
                # intra-cluster: replicate the Cluster routing at global ids
                c_src = cs.cabinet_of(ps)
                c_dst = cs.cabinet_of(pd)
                if c_src != c_dst:
                    links.append(("cab_up", ks * 1000 + c_src))
                    links.append(("cab_down", ks * 1000 + c_dst))
                    latency += cs.latency_s
            else:
                cd = platform.clusters[kd]
                # leave the source cluster (through its cabinet layer)
                c_src = cs.cabinet_of(ps)
                if cs.is_hierarchical:
                    links.append(("cab_up", ks * 1000 + c_src))
                links.append(("wan_up", ks))
                links.append(("wan_down", kd))
                c_dst = cd.cabinet_of(pd)
                if cd.is_hierarchical:
                    links.append(("cab_down", kd * 1000 + c_dst))
                latency += platform.wan_latency_s + cd.latency_s
            links.append(("nic_down", dst))
            rtt = 2.0 * latency
            cap = min(min(self.capacities[l] for l in links),
                      platform.tcp_window_bytes / rtt if rtt > 0
                      else float("inf"))
            route = Route(tuple(links), latency, cap)
        self._route_cache[key] = route
        return route

    def effective_bandwidth(self, src: int, dst: int) -> float:
        r = self.route(src, dst)
        return r.rate_cap_Bps if not r.is_local else float("inf")


@dataclass(frozen=True)
class MultiClusterPlatform:
    """Several clusters joined by a high-latency WAN backbone.

    Parameters
    ----------
    clusters:
        Member clusters (Table II presets or custom); speeds may differ.
    wan_latency_s:
        One-way latency of a WAN hop (default 10 ms — three orders of
        magnitude above the intra-cluster 100 µs).
    wan_bandwidth_Bps:
        Backbone link bandwidth (default 1 Gb/s).
    tcp_window_bytes:
        ``Wmax`` for the per-flow empirical cap; on WAN RTTs this is the
        binding constraint.
    """

    clusters: tuple[Cluster, ...]
    wan_latency_s: float = 10e-3
    wan_bandwidth_Bps: float = GIGABIT_BPS
    tcp_window_bytes: float = 4 * 1024 * 1024
    name: str = "multicluster"
    _topology: MultiClusterTopology | None = field(
        default=None, repr=False, compare=False)

    #: Routes the experiment runner to the ``multicluster-*`` entries of
    #: :data:`repro.registry.schedulers` (plain clusters have no attribute
    #: and default to ``"single"``).
    scheduler_kind = "multicluster"

    def __post_init__(self) -> None:
        if not self.clusters:
            raise ValueError("need at least one cluster")
        if self.wan_latency_s < 0 or self.wan_bandwidth_Bps <= 0:
            raise ValueError("invalid WAN parameters")
        names = [c.name for c in self.clusters]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate cluster names: {names}")

    # ------------------------------------------------------------------ #
    # cached_property stores straight into the instance __dict__, which
    # is fine on a frozen dataclass (no __setattr__ involved) — these are
    # hot in route construction on wide platforms, where recomputing the
    # offset table per lookup made `locate` O(clusters²)
    @cached_property
    def offsets(self) -> tuple[int, ...]:
        out = []
        total = 0
        for c in self.clusters:
            out.append(total)
            total += c.num_procs
        return tuple(out)

    @cached_property
    def num_procs(self) -> int:
        return sum(c.num_procs for c in self.clusters)

    def locate(self, proc: int) -> tuple[int, int]:
        """Global processor id → (cluster index, local processor id)."""
        if not 0 <= proc < self.num_procs:
            raise ValueError(f"processor {proc} out of range")
        k = bisect_right(self.offsets, proc) - 1
        return k, proc - self.offsets[k]

    def cluster_of(self, proc: int) -> Cluster:
        return self.clusters[self.locate(proc)[0]]

    def procs_of_cluster(self, k: int) -> range:
        off = self.offsets[k]
        return range(off, off + self.clusters[k].num_procs)

    def speed_of(self, proc: int) -> float:
        return self.cluster_of(proc).speed_flops

    # ------------------------------------------------------------------ #
    @property
    def reference_speed(self) -> float:
        """Fastest member speed — HCPA's reference-cluster abstraction."""
        return max(c.speed_flops for c in self.clusters)

    def performance_model(self) -> AmdahlModel:
        """Amdahl model at the *reference* speed (used by the allocation
        step; the mapping step rescales per cluster)."""
        return AmdahlModel(self.reference_speed)

    def model_for_cluster(self, k: int) -> AmdahlModel:
        return AmdahlModel(self.clusters[k].speed_flops)

    def translate_allocation(self, n_ref: int, k: int) -> int:
        """HCPA reference→actual allocation translation.

        A task allocated ``n_ref`` reference processors needs
        ``ceil(n_ref · speed_ref / speed_k)`` processors of cluster ``k``
        to deliver comparable computing power, clamped to the cluster size.
        """
        import math

        ratio = self.reference_speed / self.clusters[k].speed_flops
        return max(1, min(self.clusters[k].num_procs,
                          math.ceil(n_ref * ratio)))

    # ------------------------------------------------------------------ #
    @property
    def is_hierarchical(self) -> bool:
        return True

    @property
    def bandwidth_Bps(self) -> float:
        """A-priori edge-cost bandwidth: the most conservative NIC speed."""
        return min(c.bandwidth_Bps for c in self.clusters)

    @property
    def latency_s(self) -> float:
        """A-priori edge-cost latency (intra-cluster hop)."""
        return max(c.latency_s for c in self.clusters)

    @property
    def topology(self) -> MultiClusterTopology:
        if self._topology is None:
            object.__setattr__(self, "_topology",
                               MultiClusterTopology(self))
        assert self._topology is not None
        return self._topology

    def processors(self) -> range:
        return range(self.num_procs)

    def describe(self) -> str:
        parts = ", ".join(
            f"{c.name}({c.num_procs}@{c.speed_flops / 1e9:.2f}GF)"
            for c in self.clusters)
        return (f"{self.name}: [{parts}] over "
                f"{self.wan_latency_s * 1e3:g} ms WAN")


def _grid5000_grid() -> MultiClusterPlatform:
    # imported lazily: grid5000 registers its clusters on import, which
    # (during the platform registry's own bootstrap) must not recurse
    # through this module's top level
    from repro.platforms.grid5000 import CHTI, GRELON, GRILLON

    return MultiClusterPlatform(clusters=(CHTI, GRILLON, GRELON),
                                name="grid5000-grid")


platforms.register(
    "grid5000-grid", _grid5000_grid,
    description="Table II's three Grid'5000 clusters (187 procs) joined by "
                "a 10 ms WAN backbone")
