"""Cluster platform models (paper §II-B and Table II)."""

from repro.platforms.cluster import Cluster
from repro.platforms.topology import Route, Topology
from repro.platforms.grid5000 import CHTI, GRELON, GRILLON, GRID5000_CLUSTERS, get_cluster
from repro.platforms.multicluster import MultiClusterPlatform

__all__ = [
    "Cluster",
    "MultiClusterPlatform",
    "Topology",
    "Route",
    "CHTI",
    "GRILLON",
    "GRELON",
    "GRID5000_CLUSTERS",
    "get_cluster",
]
