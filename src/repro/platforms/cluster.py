"""Homogeneous commodity cluster model (paper §II-B).

A cluster is a set of ``P`` identical single-processor nodes.  Each node has
a private full-duplex network link to a switch; communications follow the
*bounded multi-port* model — a node may exchange data with several peers
simultaneously, but the flows share its private link bandwidth.

Small clusters hang off one switch; larger ones (like grelon) are organised
in *cabinets*, each with its own switch, the cabinet switches being
interconnected by a top switch — a two-level hierarchical network whose
cabinet uplinks are additional shared resources.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.model.amdahl import AmdahlModel
from repro.platforms.topology import Topology

__all__ = ["Cluster"]

#: 1 Gb/s expressed in bytes per second.
GIGABIT_BPS = 1e9 / 8


@dataclass(frozen=True)
class Cluster:
    """A homogeneous cluster.

    Parameters
    ----------
    name:
        Identifier (``"grillon"``...).
    num_procs:
        Number of single-processor nodes ``P``.
    speed_flops:
        Per-node compute speed in Flop/s (Table II reports GFlop/s).
    latency_s:
        One-way network latency of the switched interconnect
        (100 µs in §IV-A).
    bandwidth_Bps:
        Nominal link bandwidth in *bytes* per second (1 Gb/s in §IV-A).
    cabinets:
        Number of cabinets for hierarchical clusters (``None`` or 1 for a
        flat, single-switch cluster).  Nodes are assigned to cabinets
        round-robin-free: node ``i`` belongs to cabinet ``i // cabinet_size``.
    cabinet_size:
        Nodes per cabinet; required when ``cabinets`` is set.
    tcp_window_bytes:
        Maximal TCP window ``Wmax`` for the SimGrid empirical bandwidth
        ``β' = min(β, Wmax / RTT)`` (§IV-A).  The default 4 MiB makes the
        correction inactive on LAN latencies, as in the paper's setting.
    """

    name: str
    num_procs: int
    speed_flops: float
    latency_s: float = 100e-6
    bandwidth_Bps: float = GIGABIT_BPS
    cabinets: int | None = None
    cabinet_size: int | None = None
    tcp_window_bytes: float = 4 * 1024 * 1024
    _topology: Topology | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.num_procs < 1:
            raise ValueError("num_procs must be >= 1")
        if self.speed_flops <= 0:
            raise ValueError("speed_flops must be > 0")
        if self.latency_s < 0 or self.bandwidth_Bps <= 0:
            raise ValueError("invalid network parameters")
        if self.cabinets is not None and self.cabinets > 1:
            if not self.cabinet_size or self.cabinet_size < 1:
                raise ValueError("cabinet_size required for hierarchical clusters")
            if self.cabinets * self.cabinet_size < self.num_procs:
                raise ValueError("cabinets * cabinet_size must cover all nodes")

    # ------------------------------------------------------------------ #
    @property
    def is_hierarchical(self) -> bool:
        return bool(self.cabinets and self.cabinets > 1)

    def cabinet_of(self, proc: int) -> int:
        """Cabinet index of node ``proc`` (0 for flat clusters)."""
        if not self.is_hierarchical:
            return 0
        assert self.cabinet_size is not None
        return proc // self.cabinet_size

    @property
    def topology(self) -> Topology:
        """Lazily-built network topology of the cluster."""
        if self._topology is None:
            object.__setattr__(self, "_topology", Topology(self))
        assert self._topology is not None
        return self._topology

    def performance_model(self) -> AmdahlModel:
        """The Amdahl model bound to this cluster's node speed."""
        return AmdahlModel(self.speed_flops)

    def processors(self) -> range:
        return range(self.num_procs)

    def describe(self) -> str:
        net = (f"{self.cabinets}x{self.cabinet_size} hierarchical"
               if self.is_hierarchical else "flat switched")
        return (f"{self.name}: {self.num_procs} procs @ "
                f"{self.speed_flops / 1e9:.3f} GFlop/s, "
                f"{self.bandwidth_Bps * 8 / 1e9:g} Gb/s, "
                f"{self.latency_s * 1e6:g} us, {net}")
