"""The three Grid'5000 clusters of the paper's evaluation (Table II).

======== ======= ===========
cluster  #procs  GFlop/s
======== ======= ===========
chti       20     4.311
grelon    120     3.185
grillon    47     3.379
======== ======= ===========

All use a Gigabit switched interconnect (100 µs latency, 1 Gb/s bandwidth).
grelon is divided into five cabinets of 24 nodes each, giving it a
hierarchical network (§IV-A).
"""

from __future__ import annotations

from repro.platforms.cluster import Cluster

__all__ = ["CHTI", "GRILLON", "GRELON", "GRID5000_CLUSTERS", "get_cluster"]

CHTI = Cluster(name="chti", num_procs=20, speed_flops=4.311e9)
GRILLON = Cluster(name="grillon", num_procs=47, speed_flops=3.379e9)
GRELON = Cluster(name="grelon", num_procs=120, speed_flops=3.185e9,
                 cabinets=5, cabinet_size=24)

#: The paper's three target clusters, keyed by name.
GRID5000_CLUSTERS: dict[str, Cluster] = {
    c.name: c for c in (CHTI, GRILLON, GRELON)
}


def get_cluster(name: str) -> Cluster:
    """Look up one of the paper's clusters by name.

    >>> get_cluster("grillon").num_procs
    47
    """
    try:
        return GRID5000_CLUSTERS[name]
    except KeyError:
        raise KeyError(
            f"unknown cluster {name!r}; choose from {sorted(GRID5000_CLUSTERS)}"
        ) from None
