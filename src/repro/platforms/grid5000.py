"""The three Grid'5000 clusters of the paper's evaluation (Table II).

======== ======= ===========
cluster  #procs  GFlop/s
======== ======= ===========
chti       20     4.311
grelon    120     3.185
grillon    47     3.379
======== ======= ===========

All use a Gigabit switched interconnect (100 µs latency, 1 Gb/s bandwidth).
grelon is divided into five cabinets of 24 nodes each, giving it a
hierarchical network (§IV-A).
"""

from __future__ import annotations

from repro.platforms.cluster import Cluster
from repro.registry import platforms, register_platform

__all__ = ["CHTI", "GRILLON", "GRELON", "GRID5000_CLUSTERS", "get_cluster"]

CHTI = register_platform(
    Cluster(name="chti", num_procs=20, speed_flops=4.311e9),
    description="Grid'5000 chti: 20 procs @ 4.311 GFlop/s, flat switch")
GRILLON = register_platform(
    Cluster(name="grillon", num_procs=47, speed_flops=3.379e9),
    description="Grid'5000 grillon: 47 procs @ 3.379 GFlop/s, flat switch")
GRELON = register_platform(
    Cluster(name="grelon", num_procs=120, speed_flops=3.185e9,
            cabinets=5, cabinet_size=24),
    description="Grid'5000 grelon: 120 procs @ 3.185 GFlop/s, 5x24 "
                "hierarchical")

#: The paper's three target clusters, keyed by name.
GRID5000_CLUSTERS: dict[str, Cluster] = {
    c.name: c for c in (CHTI, GRILLON, GRELON)
}


def get_cluster(name: str) -> Cluster:
    """Look up a registered platform by name.

    Resolves through :data:`repro.registry.platforms`, so clusters added
    with :func:`repro.registry.register_platform` are found too.  Raises
    :class:`~repro.registry.UnknownComponentError` (a ``KeyError``) for
    unknown names.

    >>> get_cluster("grillon").num_procs
    47
    """
    return platforms.build(name)
