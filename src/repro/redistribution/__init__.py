"""1-D block data redistribution (paper §II-A, Table I)."""

from repro.redistribution.block import block_interval, block_intervals
from repro.redistribution.matrix import (
    communication_matrix,
    communication_matrix_dense,
    redistribution_flows,
)
from repro.redistribution.remap import align_receivers
from repro.redistribution.cost import RedistributionCost

__all__ = [
    "block_interval",
    "block_intervals",
    "communication_matrix",
    "communication_matrix_dense",
    "redistribution_flows",
    "align_receivers",
    "RedistributionCost",
]
