"""Vectorised candidate pricing for the mapping step.

List/RATS mapping prices every candidate placement of a ready task by
expanding the edge's communication matrix onto processors and charging
the bottleneck link (:func:`repro.network.flows.
bottleneck_time_estimate_mapped`).  The scalar path walks the
``(i, j, amount)`` triples once per candidate in Python — on a
128-cluster platform that is 128 full walks per predecessor edge of
every ready task.

On *flat* topologies (no cabinet hierarchy) the walk collapses to a
closed form.  A candidate set never spans clusters, so every flow of one
(src set → candidate) pair crosses the same link classes:

* ``nic_up(src_i)`` carries rank ``i``'s row sum,
* ``nic_down(dst_j)`` carries rank ``j``'s column sum,
* the WAN up/down pair (inter-cluster only) carries the total,
* per-flow latency and the TCP rate cap are constants of the
  (src cluster, dst cluster) pair.

:class:`BatchPricer` therefore prices all candidates of a task from
**one** set of per-arena statistics — row/column sums, ordered total,
largest amount — computed with ``np.bincount`` / ``np.cumsum`` (both
accumulate sequentially in entry order, exactly like the scalar loop, so
every estimate is **bitwise identical** to the reference path; the
regular pairwise-summing ``np.sum`` would not be).  Candidates disjoint
from the source set share one statistics pass outright; overlapping
candidates (same cluster as the producer) re-run it under the
self-communication mask, optionally through the ``repro_price_masked``
C kernel (:mod:`repro.network._ckernel`, ``REPRO_NO_C_KERNEL``
honoured, bitwise parity with the numpy path).

Hierarchical (cabinet) clusters route flows position-dependently, so
they are detected in :meth:`BatchPricer.for_cluster` and keep the scalar
path — the golden grid5000 campaigns are untouched by construction.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Sequence

import numpy as np

from repro.network._ckernel import load_pricing_kernel
from repro.redistribution.matrix import _comm_matrix_entries

__all__ = ["BatchPricer"]


class BatchPricer:
    """Closed-form flat-topology pricing over the comm-triple arena."""

    def __init__(self, cluster) -> None:
        self.cluster = cluster
        self._offsets: tuple[int, ...] | None = None
        self._sizes: tuple[int, ...] | None = None
        clusters = getattr(cluster, "clusters", None)
        if clusters is not None:
            self._offsets = cluster.offsets
            self._sizes = tuple(c.num_procs for c in clusters)
        # (bytes, p, q) → (i_idx, j_idx, amt, unmasked stats or None)
        self._arena: dict[tuple[float, int, int], list] = {}
        # (src cluster, dst cluster) → (latency, rate cap, link caps)
        self._consts: dict[tuple[int, int],
                           tuple[float, float, tuple[float, ...]]] = {}

    @classmethod
    def for_cluster(cls, cluster) -> "BatchPricer | None":
        """A pricer for ``cluster``, or ``None`` when it needs the scalar
        path (any cabinet hierarchy makes routes position-dependent)."""
        clusters = getattr(cluster, "clusters", None)
        if clusters is not None:
            if any(c.is_hierarchical for c in clusters):
                return None
        elif cluster.is_hierarchical:
            return None
        return cls(cluster)

    # ------------------------------------------------------------------ #
    def _cluster_of(self, procs: Sequence[int]) -> int | None:
        """Cluster index of a single-cluster set; ``None`` if it spans."""
        if self._offsets is None:
            return 0
        k = bisect_right(self._offsets, procs[0]) - 1
        lo = self._offsets[k]
        hi = lo + self._sizes[k]
        for p in procs:
            if not lo <= p < hi:
                return None
        return k

    def _arena_for(self, data: float, p: int, q: int) -> list:
        key = (data, p, q)
        hit = self._arena.get(key)
        if hit is None:
            entries = _comm_matrix_entries(data, p, q)
            i_idx = np.fromiter((e[0] for e in entries), dtype=np.int64,
                                count=len(entries))
            j_idx = np.fromiter((e[1] for e in entries), dtype=np.int64,
                                count=len(entries))
            amt = np.fromiter((e[2] for e in entries), dtype=float,
                              count=len(entries))
            hit = [i_idx, j_idx, amt, None]
            self._arena[key] = hit
        return hit

    def _unmasked_stats(self, arena: list, p: int, q: int):
        stats = arena[3]
        if stats is None:
            i_idx, j_idx, amt = arena[0], arena[1], arena[2]
            if len(amt) == 0:
                stats = (0.0, 0.0, 0.0, 0.0, 0)
            else:
                row = np.bincount(i_idx, weights=amt, minlength=p)
                col = np.bincount(j_idx, weights=amt, minlength=q)
                stats = (float(row.max()), float(col.max()),
                         float(np.cumsum(amt)[-1]), float(amt.max()),
                         len(amt))
            arena[3] = stats
        return stats

    def _consts_for(self, ks: int, kd: int, s: int, d: int):
        key = (ks, kd)
        hit = self._consts.get(key)
        if hit is None:
            topo = self.cluster.topology
            indices, latency, cap = topo.pair_summary(s, d)
            caps = tuple(topo.capacity_list[li] for li in indices)
            hit = (latency, cap, caps)
            self._consts[key] = hit
        return hit

    @staticmethod
    def _finish(row_max: float, col_max: float, total: float,
                amt_max: float, consts) -> float:
        """``max(bottleneck, slowest flow) + latency`` from the statistics.

        ``max`` over the per-link quotients equals the quotient of the
        max numerator (division by a positive constant is monotone), so
        this matches the scalar per-link loop bit for bit.
        """
        latency, cap, caps = consts
        b = row_max / caps[0]
        v = col_max / caps[-1]
        if v > b:
            b = v
        for c in caps[1:-1]:          # WAN up/down carry the full total
            v = total / c
            if v > b:
                b = v
        v = amt_max / cap             # per-flow TCP rate cap
        if v > b:
            b = v
        return b + latency

    def _masked_stats(self, arena: list, src_map: np.ndarray,
                      dst_map: np.ndarray, p: int, q: int, kernel):
        """Row/col/total/max over entries that cross between nodes."""
        i_idx, j_idx, amt = arena[0], arena[1], arena[2]
        n = len(amt)
        if kernel is not None:
            row = np.zeros(p)
            col = np.zeros(q)
            out = np.zeros(3)
            kernel(n, i_idx.ctypes.data, j_idx.ctypes.data,
                   amt.ctypes.data, src_map.ctypes.data,
                   dst_map.ctypes.data, row.ctypes.data,
                   col.ctypes.data, out.ctypes.data)
            if out[2] == 0:
                return None
            return (float(row.max()), float(col.max()), float(out[0]),
                    float(out[1]), int(out[2]))
        mask = src_map[i_idx] != dst_map[j_idx]
        if not mask.any():
            return None
        am = amt[mask]
        row = np.bincount(i_idx[mask], weights=am, minlength=p)
        col = np.bincount(j_idx[mask], weights=am, minlength=q)
        return (float(row.max()), float(col.max()),
                float(np.cumsum(am)[-1]), float(am.max()), len(am))

    # ------------------------------------------------------------------ #
    def price(self, src: tuple[int, ...],
              dst_list: Sequence[tuple[int, ...]],
              data: float) -> list[tuple[float, float] | None] | None:
        """``(time, remote bytes)`` for every candidate, in one pass.

        Returns ``None`` when the source set itself needs the scalar
        path; individual entries are ``None`` for candidates that do
        (either way the caller falls back per key, so supported and
        unsupported candidates can mix freely).
        """
        p = len(src)
        ks = self._cluster_of(src)
        if ks is None:
            return None
        src_set = set(src)
        src_map = None
        kernel = load_pricing_kernel()
        out: list[tuple[float, float] | None] = [None] * len(dst_list)
        for idx, dst in enumerate(dst_list):
            q = len(dst)
            kd = self._cluster_of(dst)
            if kd is None:
                continue
            arena = self._arena_for(data, p, q)
            if kd == ks and any(d in src_set for d in dst):
                if src_map is None:
                    src_map = np.asarray(src, dtype=np.int64)
                stats = self._masked_stats(
                    arena, src_map, np.asarray(dst, dtype=np.int64),
                    p, q, kernel)
                if stats is None:      # everything is self-communication
                    out[idx] = (0.0, 0)
                    continue
            else:
                stats = self._unmasked_stats(arena, p, q)
                if stats[4] == 0:
                    out[idx] = (0.0, 0)
                    continue
            row_max, col_max, total, amt_max, _ = stats
            # representative pair: any (s, d) with s != d prices the
            # class — latency/caps are per-cluster-pair constants on a
            # flat topology
            s, d = src[0], dst[0]
            if s == d:
                d = next((x for x in dst if x != s), None)
                if d is None:
                    s = next(x for x in src if x != dst[0])
                    d = dst[0]
            consts = self._consts_for(ks, kd, s, d)
            out[idx] = (self._finish(row_max, col_max, total, amt_max,
                                     consts), total)
        return out
