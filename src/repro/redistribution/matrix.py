"""Communication matrices of 1-D block redistributions (paper §II-A, Table I).

When a producer mapped on ``p`` processors feeds a consumer mapped on ``q``
processors, the amount sender rank ``i`` ships to receiver rank ``j`` is the
overlap of their block intervals.  The matrix is *banded*: at most
``p + q − 1`` entries are non-zero, so a redistribution spawns ``O(p + q)``
network flows — this is what keeps flow-level simulation of all 557
configurations tractable.

The paper's Table I example (``m = 10``, ``p = 4 → q = 5``)::

          q1   q2   q3   q4   q5
    p1   2.0  0.5
    p2        1.5  1.0
    p3             1.0  1.5
    p4                  0.5  2.0
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

import numpy as np

from repro.network.flows import FlowSpec

__all__ = [
    "communication_matrix",
    "communication_matrix_dense",
    "redistribution_flows",
]

_EPS = 1e-12


@lru_cache(maxsize=4096)
def _comm_matrix_entries(m: float, p: int,
                         q: int) -> tuple[tuple[int, int, float], ...]:
    """Memoised two-pointer sweep: ``(i, j, amount)`` triples for ``m`` units.

    The schedulers re-price the same ``(bytes, p, q)`` shapes many times
    per adaptation loop (and the simulator re-expands them once more), so
    the sweep result is cached on its three scalars.  Validation lives
    here — every pricing path goes through this function, and a negative
    ``m`` would otherwise spin the sweep forever.
    """
    if p < 1 or q < 1:
        raise ValueError("p and q must be >= 1")
    if m < 0:
        raise ValueError("m must be >= 0")
    out: dict[tuple[int, int], float] = {}
    if m == 0:
        return ()
    i = j = 0
    pos = 0.0
    send_step = m / p
    recv_step = m / q
    while i < p and j < q:
        send_end = (i + 1) * send_step
        recv_end = (j + 1) * recv_step
        end = min(send_end, recv_end)
        amount = end - pos
        if amount > _EPS * m:
            out[(i, j)] = out.get((i, j), 0.0) + amount
        pos = end
        # advance whichever interval(s) finished
        if send_end <= recv_end + _EPS * m:
            i += 1
        if recv_end <= send_end + _EPS * m:
            j += 1
    return tuple((i, j, amount) for (i, j), amount in out.items())


def communication_matrix(m: float, p: int, q: int) -> dict[tuple[int, int], float]:
    """Sparse ``(sender rank, receiver rank) → amount`` map for ``m`` units.

    Computed with a two-pointer sweep over the interval boundaries in
    ``O(p + q)``; results are memoised on ``(m, p, q)``.  Amounts are in
    the same unit as ``m``.

    >>> communication_matrix(10, 4, 5)[(0, 0)]
    2.5
    """
    if p < 1 or q < 1:
        raise ValueError("p and q must be >= 1")
    if m < 0:
        raise ValueError("m must be >= 0")
    return {(i, j): amount for i, j, amount in _comm_matrix_entries(m, p, q)}


def communication_matrix_dense(m: float, p: int, q: int) -> np.ndarray:
    """Dense ``p × q`` array version of :func:`communication_matrix`."""
    mat = np.zeros((p, q))
    for (i, j), amount in communication_matrix(m, p, q).items():
        mat[i, j] = amount
    return mat


def redistribution_flows(
    src_procs: Sequence[int],
    dst_procs: Sequence[int],
    data_bytes: float,
) -> list[FlowSpec]:
    """Expand a redistribution into network flows between concrete nodes.

    Ranks are mapped onto processors through the *ordered* processor sets;
    entries whose sender and receiver are the same node become
    self-communications and are dropped (they are free, §II-A).  In
    particular, identical ordered sets yield no flows at all.
    """
    if not src_procs or not dst_procs:
        raise ValueError("processor sets must be non-empty")
    if data_bytes < 0:
        raise ValueError("m must be >= 0")
    flows: list[FlowSpec] = []
    for i, j, amount in _comm_matrix_entries(
        data_bytes, len(src_procs), len(dst_procs)
    ):
        src, dst = src_procs[i], dst_procs[j]
        if src != dst:
            flows.append(FlowSpec(src=src, dst=dst, data_bytes=amount))
    return flows
