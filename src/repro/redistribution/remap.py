"""Receiver-rank ordering that maximises self-communication (paper §II-A).

"When these sets have elements in common, our redistribution algorithm
tries to maximize the amount of self communications."  With 1-D block
layouts, *which* bytes stay local is entirely determined by the rank order
of the receiving processor set.  A processor at sender rank ``i`` (of
``p``) keeps the most data when its receiver rank is near ``i·q/p``, where
its sender interval sits inside the receiver layout.

:func:`align_receivers` implements a greedy assignment: shared processors
claim their preferred receiver rank (nearest free slot on conflict, larger
overlaps first), remaining processors fill the leftover slots in sorted
order.  When the receiver set equals the sender set and sizes match, the
result is the sender order itself — making the redistribution entirely
free, the property RATS exploits.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["align_receivers"]


def _overlap(a: tuple[float, float], b: tuple[float, float]) -> float:
    return max(0.0, min(a[1], b[1]) - max(a[0], b[0]))


def align_receivers(src_procs: Sequence[int],
                    dst_procs: Iterable[int]) -> tuple[int, ...]:
    """Order ``dst_procs`` to maximise bytes kept local w.r.t. ``src_procs``.

    Parameters
    ----------
    src_procs:
        The producer's *ordered* processor set (defines the source layout).
    dst_procs:
        The processors chosen for the consumer; the order of this input is
        irrelevant (it is what this function decides).

    Returns
    -------
    The receiver set as an ordered tuple.
    """
    dst_list = sorted(set(dst_procs))
    p, q = len(src_procs), len(dst_list)
    if q == 0:
        raise ValueError("empty receiver set")
    src_rank = {proc: r for r, proc in enumerate(src_procs)}

    shared = [proc for proc in dst_list if proc in src_rank]
    others = [proc for proc in dst_list if proc not in src_rank]

    slots: list[int | None] = [None] * q
    # normalised sender intervals: rank i owns [i/p, (i+1)/p)
    recv_ivals = [(j / q, (j + 1) / q) for j in range(q)]

    # process shared processors in sender-rank order (deterministic; block
    # shares are uniform, so rank order is also largest-overlap-first)
    shared_sorted = sorted(shared, key=lambda proc: src_rank[proc])
    for proc in shared_sorted:
        i = src_rank[proc]
        ival = (i / p, (i + 1) / p)
        preferred = min(int(i * q / p), q - 1)
        # probe preferred slot, then nearest free slots by overlap
        best_j, best_ov = None, -1.0
        for j in range(q):
            if slots[j] is not None:
                continue
            ov = _overlap(ival, recv_ivals[j])
            # prefer higher overlap, then proximity to the preferred slot
            key = (ov, -abs(j - preferred))
            if best_j is None or key > (best_ov, -abs(best_j - preferred)):
                best_j, best_ov = j, ov
        assert best_j is not None
        slots[best_j] = proc

    it = iter(others)
    for j in range(q):
        if slots[j] is None:
            slots[j] = next(it)
    assert all(s is not None for s in slots)
    return tuple(s for s in slots if s is not None)
