"""Redistribution cost estimation for the scheduling algorithms.

This is the *contention-free* price a scheduler attaches to an edge when it
evaluates candidate mappings: zero when producer and consumer share the same
ordered processor set (§II-A), otherwise the bottleneck estimate of the
redistribution's own flows over the cluster topology.

The simulated makespan (:mod:`repro.simulation`) recomputes the same flows
*with* contention; the gap between the two is the estimation error discussed
in §IV-D.
"""

from __future__ import annotations

from typing import Sequence

from repro.network.flows import FlowSpec, bottleneck_time_estimate_mapped
from repro.platforms.cluster import Cluster
from repro.redistribution.matrix import _comm_matrix_entries, redistribution_flows

__all__ = ["RedistributionCost"]


class RedistributionCost:
    """Estimator bound to one cluster.

    Every product — the expanded flow list, the time estimate and the
    remote byte count — is memoised on the ordered-set key
    ``(src_procs, dst_procs, data_bytes)``: list scheduling probes the
    same predecessor/candidate pairs repeatedly, and RATS re-prices the
    same (pred set, candidate set, bytes) triples many times per
    adaptation loop.
    """

    _PRICER_UNSET = object()

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        _Key = tuple[tuple[int, ...], tuple[int, ...], float]
        self._time_cache: dict[_Key, float] = {}
        self._bytes_cache: dict[_Key, float] = {}
        self._flow_cache: dict[_Key, tuple[FlowSpec, ...]] = {}
        self._pricer = RedistributionCost._PRICER_UNSET

    def _flows_cached(self, key) -> tuple[FlowSpec, ...]:
        hit = self._flow_cache.get(key)
        if hit is None:
            hit = tuple(redistribution_flows(key[0], key[1], key[2]))
            self._flow_cache[key] = hit
        return hit

    def flows(self, src_procs: Sequence[int], dst_procs: Sequence[int],
              data_bytes: float) -> list[FlowSpec]:
        """Concrete flows of the redistribution (self-comms dropped)."""
        return list(self._flows_cached(
            (tuple(src_procs), tuple(dst_procs), data_bytes)))

    def time(self, src_procs: Sequence[int], dst_procs: Sequence[int],
             data_bytes: float) -> float:
        """Estimated duration; 0 for identical ordered sets or no data.

        Works from the memoised communication-matrix triples directly —
        the pricing hot path never materialises :class:`FlowSpec`
        objects (the amounts are accumulated in the same order, so the
        estimates match the flow-expanded computation bit for bit).
        """
        if data_bytes == 0:
            return 0.0
        key = (tuple(src_procs), tuple(dst_procs), data_bytes)
        hit = self._time_cache.get(key)
        if hit is not None:
            return hit
        entries = _comm_matrix_entries(data_bytes, len(key[0]), len(key[1]))
        t = bottleneck_time_estimate_mapped(key[0], key[1], entries,
                                            self.cluster)
        self._time_cache[key] = t
        return t

    def remote_bytes(self, src_procs: Sequence[int], dst_procs: Sequence[int],
                     data_bytes: float) -> float:
        """Bytes that actually cross the network (excludes self-comm)."""
        if data_bytes == 0:
            return 0.0
        key = (tuple(src_procs), tuple(dst_procs), data_bytes)
        hit = self._bytes_cache.get(key)
        if hit is None:
            src, dst = key[0], key[1]
            hit = sum(amount
                      for i, j, amount in _comm_matrix_entries(
                          data_bytes, len(src), len(dst))
                      if src[i] != dst[j])
            self._bytes_cache[key] = hit
        return hit

    def price_batch(self, src_procs: Sequence[int],
                    dst_list: Sequence[Sequence[int]],
                    data_bytes: float) -> tuple[list[float], list[float]]:
        """Time and remote bytes for *all* candidate receiver sets at once.

        The vectorised :class:`~repro.redistribution.pricing.BatchPricer`
        computes every uncached candidate from one shared statistics pass
        over the memoised communication-matrix triples; its results are
        bitwise identical to :meth:`time` / :meth:`remote_bytes` and land
        in the same memo caches (so later scalar probes of the same keys
        are hits).  Unsupported shapes — hierarchical topologies,
        cluster-spanning sets — transparently keep the scalar path,
        per candidate.
        """
        src = tuple(src_procs)
        dsts = [tuple(d) for d in dst_list]
        if data_bytes != 0 and dsts:
            pricer = self._pricer
            if pricer is RedistributionCost._PRICER_UNSET:
                from repro.redistribution.pricing import BatchPricer

                pricer = self._pricer = BatchPricer.for_cluster(self.cluster)
            if pricer is not None:
                miss = [d for d in dsts
                        if (src, d, data_bytes) not in self._time_cache]
                if miss:
                    priced = pricer.price(src, miss, data_bytes)
                    if priced is not None:
                        for d, result in zip(miss, priced):
                            if result is not None:
                                key = (src, d, data_bytes)
                                self._time_cache[key] = result[0]
                                self._bytes_cache[key] = result[1]
        times = [self.time(src, d, data_bytes) for d in dsts]
        remotes = [self.remote_bytes(src, d, data_bytes) for d in dsts]
        return times, remotes

    def average_edge_time(self, data_bytes: float) -> float:
        """Platform-level a-priori estimate of an edge's communication time.

        Used for the bottom-level priorities before any mapping exists:
        ships the full dataset once across one NIC at effective bandwidth.
        """
        if data_bytes == 0:
            return 0.0
        bw = self.cluster.bandwidth_Bps
        return data_bytes / bw + self.cluster.latency_s
