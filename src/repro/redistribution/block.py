"""1-D block data distributions.

Data is always distributed following a one-dimensional block distribution
(§II-A): a task working on ``m`` units mapped onto ``p`` processors gives
rank ``r`` the half-open interval ``[r·m/p, (r+1)·m/p)``.  Intervals are
continuous quantities (the paper's own example splits 10 units over 4
processors into 2.5-unit blocks).
"""

from __future__ import annotations

__all__ = ["block_interval", "block_intervals"]


def block_interval(m: float, p: int, rank: int) -> tuple[float, float]:
    """Interval ``[rank·m/p, (rank+1)·m/p)`` owned by ``rank`` among ``p``.

    >>> block_interval(10, 4, 0)
    (0.0, 2.5)
    """
    if p < 1:
        raise ValueError("p must be >= 1")
    if not 0 <= rank < p:
        raise ValueError(f"rank {rank} out of range for p={p}")
    if m < 0:
        raise ValueError("m must be >= 0")
    step = m / p
    return (rank * step, (rank + 1) * step)


def block_intervals(m: float, p: int) -> list[tuple[float, float]]:
    """All ``p`` block intervals of an ``m``-unit dataset.

    >>> block_intervals(10, 5)
    [(0.0, 2.0), (2.0, 4.0), (4.0, 6.0), (6.0, 8.0), (8.0, 10.0)]
    """
    return [block_interval(m, p, r) for r in range(p)]
