"""Renderers for the paper's tables (I–VI), plus their campaign stages.

The ``table*`` functions render text from results; the ``*_stage``
producers wrap them as declarative :class:`~repro.experiments.plan.Stage`
objects for the campaign plan — ``static_tables_stage`` for the runless
Tables I–III, ``tables5_6_stage`` for the three-cluster tuned study.
"""

from __future__ import annotations

from repro.dag.kernels import STRASSEN_TASK_COUNT, fft_task_count
from repro.experiments.metrics import (
    DegradationStats,
    combined_comparison,
    degradation_from_best,
    pairwise_comparison,
)
from repro.experiments.plan import Stage
from repro.experiments.runner import (
    AlgorithmSpec,
    RunResult,
    baseline_spec,
    rats_spec,
)
from repro.experiments.scenarios import (
    DENSITIES,
    FFT_POINTS,
    JUMPS,
    REGULARITIES,
    TASK_COUNTS,
    WIDTHS,
    Scenario,
    scenarios_by_family,
)
from repro.platforms.cluster import Cluster
from repro.redistribution.matrix import communication_matrix

__all__ = [
    "table1_communication_matrix",
    "table2_clusters",
    "table3_scenarios",
    "table4_tuned_params",
    "table5_pairwise",
    "table6_degradation",
    "static_tables_stage",
    "tables5_6_stage",
]


def table1_communication_matrix(m: float = 10, p: int = 4, q: int = 5) -> str:
    """Table I: the redistribution matrix of ``m`` units from p=4 to q=5."""
    mat = communication_matrix(m, p, q)
    header = "      " + "".join(f"{f'q{j + 1}':>7}" for j in range(q))
    lines = [f"Table I: communication matrix, {m:g} units, "
             f"p={p} senders -> q={q} receivers", header]
    for i in range(p):
        cells = []
        for j in range(q):
            v = mat.get((i, j))
            cells.append(f"{v:7.2g}" if v else "       ")
        lines.append(f"  p{i + 1:<3}" + "".join(cells))
    return "\n".join(lines)


def table2_clusters(clusters: list[Cluster]) -> str:
    """Table II: cluster characteristics."""
    lines = ["Table II: cluster characteristics",
             f"  {'cluster':<10}{'#proc':>7}{'GFlop/s':>10}{'network':>26}"]
    for c in clusters:
        net = (f"{c.cabinets}x{c.cabinet_size} cabinets"
               if c.is_hierarchical else "flat switched")
        lines.append(f"  {c.name:<10}{c.num_procs:>7}"
                     f"{c.speed_flops / 1e9:>10.3f}{net:>26}")
    return "\n".join(lines)


def table3_scenarios() -> str:
    """Table III: DAG generation parameters and scenario counts."""
    by_family = scenarios_by_family()
    counts = {f: len(s) for f, s in by_family.items()}
    total = sum(counts.values())
    lines = [
        "Table III: random DAG generation parameters and values",
        f"  #computation tasks : {', '.join(map(str, TASK_COUNTS))}",
        "  non-parallelizable : [0.0, 0.25]",
        f"  width              : {', '.join(map(str, WIDTHS))}",
        f"  density            : {', '.join(map(str, DENSITIES))}",
        f"  regularity         : {', '.join(map(str, REGULARITIES))}",
        f"  jump (irregular)   : {', '.join(map(str, JUMPS))}",
        "  #samples           : 3 (random), 25 (kernels)",
        (f"  totals             : layered={counts['layered']}, "
         f"irregular={counts['irregular']}, fft={counts['fft']}, "
         f"strassen={counts['strassen']}  (sum {total})"),
        (f"  fft sizes          : " + ", ".join(
            f"k={k} -> {fft_task_count(k)} tasks" for k in FFT_POINTS)),
        f"  strassen           : {STRASSEN_TASK_COUNT} tasks",
    ]
    return "\n".join(lines)


def table4_tuned_params(
    table: dict[tuple[str, str], tuple[float, float, float]],
    clusters: list[str] | None = None,
    families: list[str] | None = None,
) -> str:
    """Table IV: (mindelta, maxdelta, minrho) per application type × cluster."""
    clusters = clusters or sorted({k[0] for k in table})
    families = families or sorted({k[1] for k in table})
    col_w = 18
    lines = ["Table IV: tuned RATS parameters (mindelta, maxdelta, minrho)",
             "  " + f"{'cluster':<10}" + "".join(f"{f:>{col_w}}" for f in families)]
    for c in clusters:
        cells = []
        for f in families:
            v = table.get((c, f))
            cells.append("-".rjust(col_w) if v is None else
                         f"({v[0]:g}, {v[1]:g}, {v[2]:g})".rjust(col_w))
        lines.append(f"  {c:<10}" + "".join(cells))
    return "\n".join(lines)


def static_tables_stage(clusters: list[Cluster]) -> Stage:
    """Tables I–III as one runless (static) campaign stage."""
    def artifact(_results: list[RunResult]) -> list[str]:
        return [table1_communication_matrix(), table2_clusters(clusters),
                table3_scenarios()]

    return Stage(name="tables I-III", artifact=artifact)


def tuned_study_specs() -> list[AlgorithmSpec]:
    """The Tables V–VI algorithm column: HCPA vs both tuned RATS variants."""
    return [
        baseline_spec("hcpa", label="HCPA"),
        rats_spec(tuned=True, strategy="delta", label="delta"),
        rats_spec(tuned=True, strategy="timecost", label="time-cost"),
    ]


def tables5_6_stage(scenarios: list[Scenario],
                    clusters: list[Cluster],
                    specs: list[AlgorithmSpec] | None = None) -> Stage:
    """Tables V–VI (tuned pairwise/degradation study) as a campaign stage."""
    specs = tuned_study_specs() if specs is None else list(specs)
    algos = [s.label for s in specs]
    names = [c.name for c in clusters]

    def artifact(results: list[RunResult]) -> list[str]:
        return [table5_pairwise(results, algos, names),
                table6_degradation(results, algos, names)]

    return Stage(name="tables V-VI", scenarios=tuple(scenarios),
                 clusters=tuple(clusters), specs=tuple(specs),
                 artifact=artifact)


def table5_pairwise(results: list[RunResult], algorithms: list[str],
                    clusters: list[str]) -> str:
    """Table V: pairwise better/equal/worse counts per cluster, plus the
    combined percentage column."""
    per_cluster = {
        c: pairwise_comparison([r for r in results if r.cluster == c],
                               algorithms)
        for c in clusters
    }
    combined = {
        c: combined_comparison([r for r in results if r.cluster == c],
                               algorithms)
        for c in clusters
    }
    col_w = 20
    header = ("  " + f"{'':<12}{'':<8}"
              + "".join(f"{b:>{col_w}}" for b in algorithms)
              + f"{'combined (%)':>{col_w}}")
    lines = [f"Table V: pairwise comparison "
             f"(cells: {' / '.join(clusters)})", header]
    for a in algorithms:
        for outcome in ("better", "equal", "worse"):
            cells = []
            for b in algorithms:
                if a == b:
                    cells.append("XXX".rjust(col_w))
                    continue
                vals = [per_cluster[c][(a, b)][outcome] for c in clusters]
                cells.append(" / ".join(f"{v}" for v in vals).rjust(col_w))
            comb = [combined[c][a][outcome] for c in clusters]
            cells.append(" / ".join(f"{v:.1f}" for v in comb).rjust(col_w))
            lead = a if outcome == "better" else ""
            lines.append(f"  {lead:<12}{outcome:<8}" + "".join(cells))
    return "\n".join(lines)


def table6_degradation(results: list[RunResult], algorithms: list[str],
                       clusters: list[str]) -> str:
    """Table VI: average degradation from best, both averaging methods."""
    lines = ["Table VI: average degradation from best",
             "  " + f"{'cluster':<10}{'metric':<22}"
             + "".join(f"{a:>14}" for a in algorithms)]
    for c in clusters:
        stats: dict[str, DegradationStats] = degradation_from_best(
            [r for r in results if r.cluster == c], algorithms)
        rows = [
            ("avg over all exp.", lambda s: f"{s.avg_over_all:.2f}%"),
            ("# not best", lambda s: f"{s.not_best_count}"),
            ("avg over # not best", lambda s: f"{s.avg_over_not_best:.2f}%"),
        ]
        for i, (label, fmt) in enumerate(rows):
            lead = c if i == 0 else ""
            lines.append(
                "  " + f"{lead:<10}{label:<22}"
                + "".join(f"{fmt(stats[a]):>14}" for a in algorithms))
    return "\n".join(lines)
