"""Experiment harness reproducing the paper's evaluation (§IV)."""

from repro.experiments.scenarios import (
    Scenario,
    all_scenarios,
    scenarios_by_family,
    subsample,
)
from repro.experiments.runner import (
    AlgorithmSpec,
    ExperimentRunner,
    RunResult,
    TunedResolver,
    baseline_spec,
    rats_spec,
)
from repro.experiments.experiment import (
    Experiment,
    ExperimentResult,
    as_algorithm_spec,
)
from repro.experiments.store import (
    JsonlStore,
    MemoryStore,
    ResultStore,
    SqliteStore,
    StoreConflictError,
    StoreStats,
    content_key,
    merge_stores,
    open_store,
    run_key,
)
from repro.experiments.plan import (
    CampaignPlan,
    CompiledPlan,
    PlanExecution,
    PlannedRun,
    Stage,
    parse_shard,
)
from repro.experiments.metrics import (
    combined_comparison,
    degradation_from_best,
    pairwise_comparison,
    relative_series,
    series_stats,
)
from repro.experiments.campaign import build_campaign_plan, run_campaign

__all__ = [
    "run_campaign",
    "build_campaign_plan",
    "Stage",
    "CampaignPlan",
    "CompiledPlan",
    "PlannedRun",
    "PlanExecution",
    "parse_shard",
    "Experiment",
    "ExperimentResult",
    "as_algorithm_spec",
    "TunedResolver",
    "Scenario",
    "all_scenarios",
    "scenarios_by_family",
    "subsample",
    "AlgorithmSpec",
    "ExperimentRunner",
    "RunResult",
    "baseline_spec",
    "rats_spec",
    "ResultStore",
    "StoreStats",
    "MemoryStore",
    "JsonlStore",
    "SqliteStore",
    "StoreConflictError",
    "merge_stores",
    "open_store",
    "run_key",
    "content_key",
    "relative_series",
    "series_stats",
    "pairwise_comparison",
    "combined_comparison",
    "degradation_from_best",
]
