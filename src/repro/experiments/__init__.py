"""Experiment harness reproducing the paper's evaluation (§IV)."""

from repro.experiments.scenarios import (
    Scenario,
    all_scenarios,
    scenarios_by_family,
    subsample,
)
from repro.experiments.runner import (
    AlgorithmSpec,
    ExperimentRunner,
    RunResult,
    TunedResolver,
    baseline_spec,
    rats_spec,
)
from repro.experiments.experiment import (
    Experiment,
    ExperimentResult,
    as_algorithm_spec,
)
from repro.experiments.store import (
    JsonlStore,
    MemoryStore,
    ResultStore,
    StoreStats,
    open_store,
    run_key,
)
from repro.experiments.metrics import (
    combined_comparison,
    degradation_from_best,
    pairwise_comparison,
    relative_series,
    series_stats,
)
from repro.experiments.campaign import run_campaign

__all__ = [
    "run_campaign",
    "Experiment",
    "ExperimentResult",
    "as_algorithm_spec",
    "TunedResolver",
    "Scenario",
    "all_scenarios",
    "scenarios_by_family",
    "subsample",
    "AlgorithmSpec",
    "ExperimentRunner",
    "RunResult",
    "baseline_spec",
    "rats_spec",
    "ResultStore",
    "StoreStats",
    "MemoryStore",
    "JsonlStore",
    "open_store",
    "run_key",
    "relative_series",
    "series_stats",
    "pairwise_comparison",
    "combined_comparison",
    "degradation_from_best",
]
