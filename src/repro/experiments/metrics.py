"""Metrics of the paper's evaluation: relative series, pairwise win counts
and degradation from best (§IV-B, §IV-D, Tables V and VI).

All functions consume flat lists of :class:`~repro.experiments.runner.RunResult`
and pair runs by ``(scenario_id, cluster)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import RunResult

__all__ = [
    "index_results",
    "relative_series",
    "series_stats",
    "SeriesStats",
    "pairwise_comparison",
    "combined_comparison",
    "degradation_from_best",
    "DegradationStats",
]

#: Relative tolerance under which two makespans count as "equal" in the
#: pairwise comparisons (identical schedules give exactly equal values; the
#: tolerance only absorbs float noise).
EQUAL_RTOL = 1e-9


def index_results(results: list[RunResult]
                  ) -> dict[tuple[str, str], dict[str, RunResult]]:
    """Group results: ``(scenario_id, cluster) → {algorithm label → run}``."""
    out: dict[tuple[str, str], dict[str, RunResult]] = {}
    for r in results:
        key = (r.scenario_id, r.cluster)
        bucket = out.setdefault(key, {})
        if r.algorithm in bucket:
            raise ValueError(
                f"duplicate run for {key} / {r.algorithm!r}")
        bucket[r.algorithm] = r
    return out


def _metric(r: RunResult, metric: str) -> float:
    if metric == "makespan":
        return r.makespan
    if metric == "work":
        return r.work
    if metric == "estimated_makespan":
        return r.estimated_makespan
    raise ValueError(f"unknown metric {metric!r}")


def relative_series(results: list[RunResult], algorithm: str,
                    baseline: str, metric: str = "makespan",
                    sort: bool = True) -> list[float]:
    """Per-configuration ``algorithm / baseline`` ratios (Figures 2/3/6/7).

    The paper sorts each data set independently by increasing ratio;
    ``sort=False`` keeps configuration order for paired analyses.
    """
    series: list[float] = []
    for bucket in index_results(results).values():
        if algorithm not in bucket or baseline not in bucket:
            continue
        base = _metric(bucket[baseline], metric)
        if base <= 0:
            raise ValueError("baseline metric must be positive")
        series.append(_metric(bucket[algorithm], metric) / base)
    return sorted(series) if sort else series


@dataclass(frozen=True)
class SeriesStats:
    """Aggregates of one relative series."""

    count: int
    mean: float
    median: float
    frac_better: float   # ratio < 1 (strictly)
    frac_equal: float
    frac_worse: float

    def describe(self) -> str:
        return (f"n={self.count}, mean ratio={self.mean:.3f} "
                f"({(1 - self.mean) * 100:+.1f}% vs baseline), "
                f"better in {self.frac_better * 100:.0f}% of scenarios")


def series_stats(series: list[float]) -> SeriesStats:
    if not series:
        raise ValueError("empty series")
    s = sorted(series)
    n = len(s)
    median = (s[n // 2] if n % 2 else 0.5 * (s[n // 2 - 1] + s[n // 2]))
    better = sum(1 for v in s if v < 1.0 - EQUAL_RTOL)
    equal = sum(1 for v in s if abs(v - 1.0) <= EQUAL_RTOL)
    return SeriesStats(
        count=n,
        mean=sum(s) / n,
        median=median,
        frac_better=better / n,
        frac_equal=equal / n,
        frac_worse=(n - better - equal) / n,
    )


def pairwise_comparison(
    results: list[RunResult],
    algorithms: list[str],
    metric: str = "makespan",
) -> dict[tuple[str, str], dict[str, int]]:
    """Table V core: per ordered pair ``(a, b)``, count the configurations
    where ``a`` is better / equal / worse than ``b``."""
    counts = {
        (a, b): {"better": 0, "equal": 0, "worse": 0}
        for a in algorithms for b in algorithms if a != b
    }
    for bucket in index_results(results).values():
        if any(a not in bucket for a in algorithms):
            continue
        for a in algorithms:
            for b in algorithms:
                if a == b:
                    continue
                va, vb = _metric(bucket[a], metric), _metric(bucket[b], metric)
                if abs(va - vb) <= EQUAL_RTOL * max(abs(va), abs(vb)):
                    counts[(a, b)]["equal"] += 1
                elif va < vb:
                    counts[(a, b)]["better"] += 1
                else:
                    counts[(a, b)]["worse"] += 1
    return counts


def combined_comparison(
    results: list[RunResult],
    algorithms: list[str],
    metric: str = "makespan",
) -> dict[str, dict[str, float]]:
    """Table V's *combined* column: share of pairwise outcomes in which each
    algorithm beats / ties / loses to all others combined (in %)."""
    pairwise = pairwise_comparison(results, algorithms, metric)
    out: dict[str, dict[str, float]] = {}
    for a in algorithms:
        agg = {"better": 0, "equal": 0, "worse": 0}
        for b in algorithms:
            if a == b:
                continue
            for k in agg:
                agg[k] += pairwise[(a, b)][k]
        total = sum(agg.values())
        out[a] = {k: (100.0 * v / total if total else 0.0)
                  for k, v in agg.items()}
    return out


@dataclass(frozen=True)
class DegradationStats:
    """Table VI row triple for one algorithm."""

    avg_over_all: float      # mean % above the best, over all experiments
    not_best_count: int      # experiments where the algorithm was not best
    avg_over_not_best: float  # mean % above the best, over those only


def degradation_from_best(
    results: list[RunResult],
    algorithms: list[str],
    metric: str = "makespan",
) -> dict[str, DegradationStats]:
    """Table VI: average percent degradation from the best heuristic.

    Two averaging methods (§IV-D): over *all* experiments (zeros included
    when the algorithm was the best) and over only the experiments where the
    algorithm was *not* the best.
    """
    per_algo: dict[str, list[float]] = {a: [] for a in algorithms}
    for bucket in index_results(results).values():
        if any(a not in bucket for a in algorithms):
            continue
        values = {a: _metric(bucket[a], metric) for a in algorithms}
        best = min(values.values())
        if best <= 0:
            raise ValueError("metric must be positive")
        for a in algorithms:
            per_algo[a].append(100.0 * (values[a] - best) / best)

    out: dict[str, DegradationStats] = {}
    for a, degs in per_algo.items():
        if not degs:
            out[a] = DegradationStats(0.0, 0, 0.0)
            continue
        not_best = [d for d in degs
                    if d > 100.0 * EQUAL_RTOL]
        out[a] = DegradationStats(
            avg_over_all=sum(degs) / len(degs),
            not_best_count=len(not_best),
            avg_over_not_best=(sum(not_best) / len(not_best)
                               if not_best else 0.0),
        )
    return out
