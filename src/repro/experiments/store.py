"""Content-addressed result persistence for experiment campaigns.

The paper's evaluation is a large cartesian campaign (scenario × cluster ×
algorithm); this module makes repeated campaigns cheap by keying every
:class:`~repro.experiments.runner.RunResult` under a stable content hash of
*what was run*:

* the scenario id (which deterministically seeds the task graph),
* the cluster (platform) name,
* the algorithm spec — allocator, mapping strategy and the **resolved**
  RATS parameters (a tuned ``params_resolver`` hashes to the concrete
  per-(cluster, family) values it resolves to),
* whether the schedule was simulated or only estimated.

:func:`run_key` computes the hash from canonical JSON, so it is stable
across processes, interpreter restarts and machines — the property that
lets one :class:`JsonlStore` file be shared by resumed or sharded
campaigns.

Two stores ship with ``repro``:

* :class:`MemoryStore` — a per-process dict; caching within one campaign.
* :class:`JsonlStore` — an append-only JSON-Lines file.  Every ``put``
  appends one line and flushes, so a campaign killed mid-flight loses at
  most the run being written; re-opening the file tolerates a truncated
  final line and the next campaign resumes exactly where the crash left
  off.

Both count hits/misses/puts in :attr:`ResultStore.stats`, which is how the
CI smoke test asserts that a second pass over the same store performs zero
fresh simulations.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.runner import AlgorithmSpec, RunResult
    from repro.experiments.scenarios import Scenario

__all__ = [
    "ResultStore",
    "StoreStats",
    "MemoryStore",
    "JsonlStore",
    "run_key",
    "open_store",
]

#: Bump when the key payload schema changes: old store files then read as
#: all-miss instead of silently returning results computed under different
#: semantics.
_KEY_VERSION = 1


def run_key(scenario: "Scenario", cluster, spec: "AlgorithmSpec", *,
            simulated: bool = True) -> str:
    """Stable content hash identifying one (scenario, cluster, spec) run.

    ``cluster`` may be a platform object (anything with a ``name``) or the
    name itself.  Tuned specs hash to their *resolved* parameters, so a
    ``params_resolver`` and the equivalent explicit ``RATSParams`` produce
    the same key.  The hash is computed over canonical JSON (sorted keys,
    repr-exact floats), making it reproducible across processes.
    """
    cluster_name = cluster if isinstance(cluster, str) else cluster.name
    params = spec.resolve_params(cluster_name, scenario.family)
    payload = {
        "v": _KEY_VERSION,
        "scenario": scenario.scenario_id,
        "cluster": cluster_name,
        "label": spec.label,
        "allocator": spec.allocator,
        "strategy": spec.strategy,
        "params": None if params is None else {
            "strategy": params.strategy,
            "mindelta": params.mindelta,
            "maxdelta": params.maxdelta,
            "minrho": params.minrho,
            "allow_pack": params.allow_pack,
            "guard_stretch": params.guard_stretch,
        },
        "simulated": bool(simulated),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class StoreStats:
    """Hit/miss/put accounting of one store instance (this process)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def describe(self) -> str:
        return (f"{self.hits} hit{'s' if self.hits != 1 else ''}, "
                f"{self.misses} fresh")


@runtime_checkable
class ResultStore(Protocol):
    """What :class:`~repro.experiments.runner.ExperimentRunner` needs from
    a result store.  :class:`MemoryStore` and :class:`JsonlStore` implement
    it; any object with the same surface participates."""

    stats: StoreStats

    def get(self, key: str) -> "RunResult | None":
        """The stored result for ``key``, or ``None`` (counted in stats)."""
        ...

    def put(self, key: str, result: "RunResult") -> None:
        """Persist ``result`` under ``key``."""
        ...

    def __contains__(self, key: str) -> bool: ...

    def __len__(self) -> int: ...

    def close(self) -> None: ...


class _BaseStore:
    """Shared dict-backed mechanics; subclasses add persistence."""

    def __init__(self) -> None:
        self._results: dict[str, "RunResult"] = {}
        self.stats = StoreStats()

    def get(self, key: str) -> "RunResult | None":
        result = self._results.get(key)
        if result is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return result

    def put(self, key: str, result: "RunResult") -> None:
        if key in self._results:
            return
        self._results[key] = result
        self.stats.puts += 1

    def __contains__(self, key: str) -> bool:
        return key in self._results

    def __len__(self) -> int:
        return len(self._results)

    def __iter__(self) -> Iterator[str]:
        return iter(self._results)

    def results(self) -> list["RunResult"]:
        """Every stored result, in insertion (= completion) order."""
        return list(self._results.values())

    def close(self) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class MemoryStore(_BaseStore):
    """In-process result store: caching within (not across) one run."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MemoryStore({len(self)} results)"


class JsonlStore(_BaseStore):
    """Append-only on-disk store: one ``{"key":…, "result":…}`` per line.

    Opening an existing file loads every valid line; a truncated or
    corrupt trailing line (the signature of a campaign killed mid-write)
    is skipped, counted in :attr:`skipped_lines`, and overwritten-free:
    new results simply append after it.  Every :meth:`put` flushes, so the
    file is crash-consistent at run granularity.
    """

    def __init__(self, path: str | Path) -> None:
        super().__init__()
        self.path = Path(path)
        self.skipped_lines = 0
        if self.path.exists():
            self._load()
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a", encoding="utf-8")

    def _load(self) -> None:
        from repro.experiments.runner import RunResult

        raw = self.path.read_bytes()
        end_valid = len(raw)
        if raw and not raw.endswith(b"\n"):
            # mid-write crash: a partial trailing line.  Count it as
            # skipped and truncate it away, so appended results start on a
            # clean line instead of concatenating onto the fragment.
            end_valid = raw.rfind(b"\n") + 1
            self.skipped_lines += 1
        for line in raw[:end_valid].split(b"\n"):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
                result = RunResult(**row["result"])
                key = row["key"]
            except (ValueError, KeyError, TypeError):
                self.skipped_lines += 1
                continue
            self._results[key] = result
        if end_valid < len(raw):
            with self.path.open("rb+") as fh:
                fh.truncate(end_valid)

    def put(self, key: str, result: "RunResult") -> None:
        if key in self._results:
            return
        super().put(key, result)
        row = {"key": key, "result": dataclasses.asdict(result)}
        self._fh.write(json.dumps(row, separators=(",", ":")) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JsonlStore({str(self.path)!r}, {len(self)} results)"


def open_store(path: str | Path | None) -> ResultStore:
    """A :class:`JsonlStore` at ``path``, or a :class:`MemoryStore` for
    ``None`` — the CLI's ``--store`` convention."""
    return MemoryStore() if path is None else JsonlStore(path)
