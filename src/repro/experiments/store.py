"""Content-addressed result persistence for experiment campaigns.

The paper's evaluation is a large cartesian campaign (scenario × cluster ×
algorithm); this module makes repeated campaigns cheap by keying every
:class:`~repro.experiments.runner.RunResult` under a stable content hash of
*what was run*:

* the scenario id (which deterministically seeds the task graph) plus
  every :class:`~repro.experiments.scenarios.Scenario` constructor field
  (so a custom family's id formatter omitting a field cannot alias two
  different computations),
* the cluster (platform) name,
* the algorithm spec — allocator, mapping strategy and the **resolved**
  RATS parameters (a tuned ``params_resolver`` hashes to the concrete
  per-(cluster, family) values it resolves to),
* whether the schedule was simulated or only estimated.

:func:`run_key` computes the hash from canonical JSON, so it is stable
across processes, interpreter restarts and machines — the property that
lets one :class:`JsonlStore` file be shared by resumed or sharded
campaigns.

Three stores ship with ``repro``:

* :class:`MemoryStore` — a per-process dict; caching within one campaign.
* :class:`JsonlStore` — an append-only JSON-Lines file.  Every ``put``
  appends one line and flushes, so a campaign killed mid-flight loses at
  most the run being written; re-opening the file tolerates a truncated
  final line and the next campaign resumes exactly where the crash left
  off.
* :class:`SqliteStore` — a single-table SQLite database, keyed on the run
  hash.  Lookups are index hits instead of a whole-file line scan, which
  is what keeps tens-of-MB campaign stores fast; every ``put`` commits,
  matching the JSONL store's run-granularity crash tolerance.

:func:`open_store` dispatches on the path suffix (``.sqlite`` /
``.sqlite3`` / ``.db`` → SQLite, anything else → JSON-Lines), so every
``--store`` flag accepts either backend.  :func:`merge_stores` recombines
the stores of sharded campaigns — deduplicating identical runs and
refusing conflicting ones — across backends.

All stores count hits/misses/puts in :attr:`ResultStore.stats`, which is
how the CI smoke test asserts that a second pass over the same store
performs zero fresh simulations.

Besides :class:`~repro.experiments.runner.RunResult` rows, every backend
also persists the online mode's per-job
:class:`~repro.online.metrics.JobRecord` rows (``repro replay-stream``):
a job record's payload carries a ``"__type__": "job"`` tag and decodes
back to a :class:`JobRecord`; untagged payloads decode to
:class:`RunResult` exactly as before, so existing store files read
unchanged.  :func:`job_key` is the job-row analogue of :func:`run_key` —
a content hash of the stream spec, the job id and the platform, with no
wall-clock component, so replaying the same seeded stream twice writes
byte-identical stores.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import sqlite3
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Protocol, Sequence, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.runner import AlgorithmSpec, RunResult
    from repro.experiments.scenarios import Scenario

__all__ = [
    "ResultStore",
    "StoreStats",
    "MemoryStore",
    "JsonlStore",
    "SqliteStore",
    "StoreConflictError",
    "MergeStats",
    "merge_stores",
    "run_key",
    "content_key",
    "job_key",
    "open_store",
    "SQLITE_SUFFIXES",
]

#: Path suffixes :func:`open_store` routes to :class:`SqliteStore`.
SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")

#: Bump when the key payload schema changes: old store files then read as
#: all-miss instead of silently returning results computed under different
#: semantics.  v2: the payload carries every Scenario constructor field,
#: not just the formatted scenario_id, so a custom family whose id
#: formatter drops a distinguishing field cannot alias two different
#: computations under one key.
_KEY_VERSION = 2


def _key_payload(scenario: "Scenario", cluster, spec: "AlgorithmSpec",
                 simulated: bool) -> dict:
    cluster_name = cluster if isinstance(cluster, str) else cluster.name
    params = spec.resolve_params(cluster_name, scenario.family)
    # every constructor field rides along with the formatted id: the id
    # seeds the graph RNG, but the shape fields feed the construction too,
    # and a custom family's id formatter may (wrongly) omit one of them —
    # that must surface as distinct keys, not as silent store aliasing
    scenario_fields = {
        f.name: getattr(scenario, f.name)
        for f in dataclasses.fields(scenario)
    }
    return {
        "v": _KEY_VERSION,
        "scenario": scenario.scenario_id,
        "scenario_fields": scenario_fields,
        "cluster": cluster_name,
        "label": spec.label,
        "allocator": spec.allocator,
        "strategy": spec.strategy,
        "params": None if params is None else {
            "strategy": params.strategy,
            "mindelta": params.mindelta,
            "maxdelta": params.maxdelta,
            "minrho": params.minrho,
            "allow_pack": params.allow_pack,
            "guard_stretch": params.guard_stretch,
        },
        "simulated": bool(simulated),
    }


def _digest(payload: dict) -> str:
    # default=repr: custom-family extras may carry values JSON cannot
    # encode; their repr keeps the key deterministic within a codebase
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def run_key(scenario: "Scenario", cluster, spec: "AlgorithmSpec", *,
            simulated: bool = True) -> str:
    """Stable content hash identifying one (scenario, cluster, spec) run.

    ``cluster`` may be a platform object (anything with a ``name``) or the
    name itself.  Tuned specs hash to their *resolved* parameters, so a
    ``params_resolver`` and the equivalent explicit ``RATSParams`` produce
    the same key.  The hash is computed over canonical JSON (sorted keys,
    repr-exact floats), making it reproducible across processes.
    """
    return _digest(_key_payload(scenario, cluster, spec, simulated))


def content_key(scenario: "Scenario", cluster, spec: "AlgorithmSpec", *,
                simulated: bool = True) -> str:
    """Like :func:`run_key`, but blind to the spec's presentation label.

    The label never influences the computation — it is only copied into
    ``RunResult.algorithm`` — so two cells that differ *only* in label
    (Figure 6's ``"Delta"`` vs Table V's ``"delta"``, a sweep's
    ``"hcpa"`` baseline vs Figure 2's ``"HCPA"``) identify the same
    simulation.  :class:`~repro.experiments.plan.CampaignPlan` dedupes on
    this key and re-labels the shared result per cell; stores keep using
    :func:`run_key`, so cell-level resume semantics are unchanged.
    """
    payload = _key_payload(scenario, cluster, spec, simulated)
    del payload["label"]
    return _digest(payload)


def job_key(stream_spec: dict, job_id: str, cluster) -> str:
    """Stable content hash identifying one job of a replayed stream.

    Per-job records written by ``repro replay-stream`` are keyed on the
    *stream spec* (which, with its seed, deterministically generates
    every arrival), the job id and the platform.  Nothing wall-clock
    enters the key or the record, so replaying the same seeded stream
    twice produces byte-identical store files — the property the CI
    determinism check compares.
    """
    cluster_name = cluster if isinstance(cluster, str) else cluster.name
    payload = {
        "v": _KEY_VERSION,
        "kind": "job",
        "stream": dict(stream_spec),
        "cluster": cluster_name,
        "job_id": job_id,
    }
    return _digest(payload)


# --------------------------------------------------------------------- #
# row (de)serialisation: RunResult rows stay untagged (byte-compatible
# with every existing store file); JobRecord rows carry a "__type__" tag
# --------------------------------------------------------------------- #
def _encode_result(result) -> dict:
    from repro.online.metrics import JobRecord

    payload = dataclasses.asdict(result)
    if isinstance(result, JobRecord):
        payload["__type__"] = "job"
    return payload


def _decode_result(payload: dict):
    if payload.get("__type__") == "job":
        from repro.online.metrics import JobRecord

        return JobRecord(**{k: v for k, v in payload.items()
                            if k != "__type__"})
    from repro.experiments.runner import RunResult

    return RunResult(**payload)


@dataclass
class StoreStats:
    """Hit/miss/put accounting of one store instance (this process)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def describe(self) -> str:
        return (f"{self.hits} hit{'s' if self.hits != 1 else ''}, "
                f"{self.misses} fresh")


@runtime_checkable
class ResultStore(Protocol):
    """What :class:`~repro.experiments.runner.ExperimentRunner` needs from
    a result store.  :class:`MemoryStore` and :class:`JsonlStore` implement
    it; any object with the same surface participates."""

    stats: StoreStats

    def get(self, key: str) -> "RunResult | None":
        """The stored result for ``key``, or ``None`` (counted in stats)."""
        ...

    def put(self, key: str, result: "RunResult") -> None:
        """Persist ``result`` under ``key``."""
        ...

    def __contains__(self, key: str) -> bool: ...

    def __len__(self) -> int: ...

    def items(self) -> "Sequence[tuple[str, RunResult]]":
        """Every ``(key, result)`` pair, in insertion order."""
        ...

    def flush(self) -> None:
        """Persist any buffered writes (no-op for unbuffered stores)."""
        ...

    def close(self) -> None: ...


class _BaseStore:
    """Shared dict-backed mechanics; subclasses add persistence."""

    def __init__(self) -> None:
        self._results: dict[str, "RunResult"] = {}
        self.stats = StoreStats()

    def get(self, key: str) -> "RunResult | None":
        result = self._results.get(key)
        if result is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return result

    def put(self, key: str, result: "RunResult") -> None:
        if key in self._results:
            return
        self._results[key] = result
        self.stats.puts += 1

    def __contains__(self, key: str) -> bool:
        return key in self._results

    def __len__(self) -> int:
        return len(self._results)

    def __iter__(self) -> Iterator[str]:
        return iter(self._results)

    def results(self) -> list["RunResult"]:
        """Every stored result, in insertion (= completion) order."""
        return list(self._results.values())

    def items(self) -> list[tuple[str, "RunResult"]]:
        """Every ``(key, result)`` pair, in insertion order."""
        return list(self._results.items())

    def flush(self) -> None:
        """Nothing buffered: memory and JSONL stores persist per put."""

    def close(self) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class MemoryStore(_BaseStore):
    """In-process result store: caching within (not across) one run."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MemoryStore({len(self)} results)"


class JsonlStore(_BaseStore):
    """Append-only on-disk store: one ``{"key":…, "result":…}`` per line.

    Opening an existing file loads every valid line; a truncated or
    corrupt trailing line (the signature of a campaign killed mid-write)
    is skipped, counted in :attr:`skipped_lines`, and overwritten-free:
    new results simply append after it.  Every :meth:`put` flushes, so the
    file is crash-consistent at run granularity.
    """

    def __init__(self, path: str | Path) -> None:
        super().__init__()
        self.path = Path(path)
        self.skipped_lines = 0
        if self.path.exists():
            self._load()
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a", encoding="utf-8")

    def _load(self) -> None:
        raw = self.path.read_bytes()
        end_valid = len(raw)
        if raw and not raw.endswith(b"\n"):
            # mid-write crash: a partial trailing line.  Count it as
            # skipped and truncate it away, so appended results start on a
            # clean line instead of concatenating onto the fragment.
            end_valid = raw.rfind(b"\n") + 1
            self.skipped_lines += 1
        for line in raw[:end_valid].split(b"\n"):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
                result = _decode_result(row["result"])
                key = row["key"]
            except (ValueError, KeyError, TypeError):
                self.skipped_lines += 1
                continue
            self._results[key] = result
        if end_valid < len(raw):
            with self.path.open("rb+") as fh:
                fh.truncate(end_valid)

    def put(self, key: str, result: "RunResult") -> None:
        if key in self._results:
            return
        super().put(key, result)
        row = {"key": key, "result": _encode_result(result)}
        self._fh.write(json.dumps(row, separators=(",", ":")) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JsonlStore({str(self.path)!r}, {len(self)} results)"


class SqliteStore:
    """SQLite-backed result store: one indexed ``results`` table.

    The JSONL store loads (and line-scans) the whole file on open, which
    starts to dominate once campaign stores reach tens of MB.  Here every
    lookup is a primary-key hit and nothing is loaded eagerly; memory
    stays flat no matter how large the store grows.

    With the default ``batch_size=1`` every :meth:`put` is
    ``INSERT OR IGNORE`` + commit, so a campaign killed mid-flight loses
    at most the run being written — the same crash-tolerance contract as
    :class:`JsonlStore`, at run granularity (this is what every CLI
    ``--store`` / ``--resume`` path uses).  A larger ``batch_size``
    buffers puts and writes them as **one** ``executemany`` transaction
    per :meth:`flush` — the :class:`~repro.experiments.runner
    .ExperimentRunner` flushes after every ``iter_cells`` chunk, so bulk
    campaigns pay one commit per chunk instead of one fsync per run, at
    the cost of losing at most the current unflushed chunk on a crash.
    Reads always see buffered puts.
    """

    def __init__(self, path: str | Path, *, batch_size: int = 1) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.path = Path(path)
        self.batch_size = batch_size
        self.stats = StoreStats()
        self._pending: dict[str, str] = {}   # key -> serialized result
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path))
        try:
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS results ("
                "  key TEXT PRIMARY KEY,"
                "  result TEXT NOT NULL"
                ")")
            self._conn.commit()
        except sqlite3.DatabaseError as exc:
            self._conn.close()
            raise ValueError(
                f"{self.path} is not a repro SQLite result store: "
                f"{exc}") from exc

    def get(self, key: str) -> "RunResult | None":
        blob = self._pending.get(key)
        if blob is None:
            row = self._conn.execute(
                "SELECT result FROM results WHERE key = ?",
                (key,)).fetchone()
            if row is None:
                self.stats.misses += 1
                return None
            blob = row[0]
        self.stats.hits += 1
        return _decode_result(json.loads(blob))

    def put(self, key: str, result: "RunResult") -> None:
        if key in self._pending:
            return
        blob = json.dumps(_encode_result(result),
                          separators=(",", ":"))
        if self.batch_size == 1:
            cursor = self._conn.execute(
                "INSERT OR IGNORE INTO results (key, result) VALUES (?, ?)",
                (key, blob))
            if cursor.rowcount:
                self.stats.puts += 1
                self._conn.commit()
            return
        if key in self:
            return
        self._pending[key] = blob
        self.stats.puts += 1
        if len(self._pending) >= self.batch_size:
            self.flush()

    def flush(self) -> None:
        """Write buffered puts as one transaction (no-op when empty)."""
        if not self._pending:
            return
        self._conn.executemany(
            "INSERT OR IGNORE INTO results (key, result) VALUES (?, ?)",
            list(self._pending.items()))
        self._conn.commit()
        self._pending.clear()

    def __contains__(self, key: str) -> bool:
        if key in self._pending:
            return True
        row = self._conn.execute(
            "SELECT 1 FROM results WHERE key = ?", (key,)).fetchone()
        return row is not None

    def __len__(self) -> int:
        n = self._conn.execute(
            "SELECT COUNT(*) FROM results").fetchone()[0]
        return n + len(self._pending)

    def __iter__(self) -> Iterator[str]:
        for (key,) in self._conn.execute(
                "SELECT key FROM results ORDER BY rowid"):
            yield key
        yield from self._pending

    def results(self) -> list["RunResult"]:
        """Every stored result, in insertion (= completion) order."""
        out = [_decode_result(json.loads(blob))
               for (blob,) in self._conn.execute(
                   "SELECT result FROM results ORDER BY rowid")]
        out.extend(_decode_result(json.loads(blob))
                   for blob in self._pending.values())
        return out

    def items(self) -> list[tuple[str, "RunResult"]]:
        """Every ``(key, result)`` pair, in insertion order."""
        out = [(key, _decode_result(json.loads(blob)))
               for key, blob in self._conn.execute(
                   "SELECT key, result FROM results ORDER BY rowid")]
        out.extend((key, _decode_result(json.loads(blob)))
                   for key, blob in self._pending.items())
        return out

    def close(self) -> None:
        self.flush()
        self._conn.close()

    def __enter__(self) -> "SqliteStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SqliteStore({str(self.path)!r}, {len(self)} results)"


def open_store(path: str | Path | None, *,
               batch_size: int = 1) -> ResultStore:
    """Open the store backend a path's suffix names.

    ``None`` gives a :class:`MemoryStore`; a ``.sqlite`` / ``.sqlite3`` /
    ``.db`` path a :class:`SqliteStore`; anything else a
    :class:`JsonlStore` — the convention behind every CLI ``--store``
    flag and ``Experiment.store(path)``.  ``batch_size`` selects the
    SQLite write-batching granularity (ignored by the other backends,
    which flush per put).
    """
    if path is None:
        return MemoryStore()
    if Path(path).suffix.lower() in SQLITE_SUFFIXES:
        return SqliteStore(path, batch_size=batch_size)
    return JsonlStore(path)


# --------------------------------------------------------------------- #
# store merging (sharded campaigns)
# --------------------------------------------------------------------- #
class StoreConflictError(ValueError):
    """Two stores hold *different* results under the same run key."""


@dataclass(frozen=True)
class MergeStats:
    """Outcome of one :func:`merge_stores` call."""

    stores: int      # input stores read
    merged: int      # results newly written to the output
    duplicates: int  # identical results seen more than once (skipped)

    def describe(self) -> str:
        return (f"{self.merged} result{'s' if self.merged != 1 else ''} "
                f"merged from {self.stores} store"
                f"{'s' if self.stores != 1 else ''}, "
                f"{self.duplicates} duplicate"
                f"{'s' if self.duplicates != 1 else ''} skipped")


def _comparable(result: "RunResult") -> "RunResult":
    """A result with its per-machine timing zeroed, for conflict checks.

    Two shards that somehow both computed a run produce identical numbers
    but different wall clocks; only the *science* fields decide whether
    results conflict.  Job records carry no wall-clock field and compare
    as-is.
    """
    names = {f.name for f in dataclasses.fields(result)}
    timing = {name: 0.0 for name in ("wall_time_s", "solve_s", "event_s")
              if name in names}
    if timing:
        return dataclasses.replace(result, **timing)
    return result


def merge_stores(inputs: Sequence[str | Path],
                 output: str | Path) -> MergeStats:
    """Recombine shard stores into one (the ``repro merge`` core).

    Each input is opened by suffix (:func:`open_store`) and copied into
    ``output`` in input order; a key seen twice with an *identical* result
    (timing aside) is a duplicate and skipped, a key with diverging
    results raises :class:`StoreConflictError` — silent last-writer-wins
    would mask a nondeterministic run or a stale shard.  ``output`` may
    already exist: merging then appends, with the same conflict check
    against its current content.  Input and output backends mix freely,
    so ``repro merge a.jsonl b.jsonl -o all.sqlite`` also converts.
    """
    if not inputs:
        raise ValueError("merge needs at least one input store")
    for path in inputs:
        if not Path(path).exists():
            raise FileNotFoundError(f"input store {path} does not exist")
    merged = duplicates = 0
    # merging is bulk-write by nature: batch the output commits (the
    # inputs are read-only, and a crashed merge is simply re-run)
    with open_store(output, batch_size=256) as out:
        for path in inputs:
            with open_store(path) as src:
                for key, result in src.items():
                    existing = out.get(key)
                    if existing is None:
                        out.put(key, result)
                        merged += 1
                    elif _comparable(existing) == _comparable(result):
                        duplicates += 1
                    else:
                        raise StoreConflictError(
                            f"run {key} in {path} conflicts with the result "
                            f"already merged into {output}; the stores do "
                            "not come from the same deterministic campaign")
    return MergeStats(stores=len(inputs), merged=merged,
                      duplicates=duplicates)
