"""Scenario × cluster × algorithm execution engine.

For every run the pipeline is:

1. build the scenario's task graph (cached per scenario);
2. compute the first-step allocation (cached per ``(scenario, cluster,
   allocator)`` — HCPA and both RATS variants share the same HCPA
   allocation, exactly as in the paper);
3. map with the requested second step (plain list scheduling or RATS);
4. *simulate* the mapped schedule on the cluster's fluid network model —
   the simulated makespan is what the paper's metrics use;
5. report makespan, total work ``Σ n_t·T(t, n_t)`` and adaptation counts.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.core.params import RATSParams, tuned_params
from repro.core.rats import RATSScheduler
from repro.dag.task import TaskGraph
from repro.experiments.scenarios import Scenario
from repro.platforms.cluster import Cluster
from repro.redistribution.cost import RedistributionCost
from repro.scheduling.allocation import (
    cpa_allocation,
    hcpa_allocation,
    mcpa_allocation,
)
from repro.scheduling.mapping import ListScheduler
from repro.simulation.simulator import simulate

__all__ = ["AlgorithmSpec", "RunResult", "ExperimentRunner",
           "baseline_spec", "rats_spec"]

ParamsResolver = Callable[[str, str], RATSParams]  # (cluster, family) -> params


@dataclass(frozen=True)
class AlgorithmSpec:
    """One scheduling algorithm configuration.

    ``kind`` selects the pipeline: ``"cpa"``, ``"mcpa"`` and ``"hcpa"`` run
    the respective allocation followed by plain list-scheduling mapping;
    ``"rats"`` runs the HCPA allocation followed by the RATS mapping with
    ``params`` (a fixed :class:`RATSParams` or a per-(cluster, family)
    resolver, used for the paper's *tuned* runs).
    """

    label: str
    kind: str
    params: RATSParams | None = None
    params_resolver: ParamsResolver | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in ("cpa", "mcpa", "hcpa", "rats"):
            raise ValueError(f"unknown algorithm kind {self.kind!r}")
        if self.kind == "rats" and self.params is None \
                and self.params_resolver is None:
            raise ValueError("rats spec needs params or params_resolver")

    def resolve_params(self, cluster_name: str, family: str) -> RATSParams | None:
        if self.kind != "rats":
            return None
        if self.params_resolver is not None:
            return self.params_resolver(cluster_name, family)
        return self.params


def baseline_spec(kind: str = "hcpa", label: str | None = None) -> AlgorithmSpec:
    """Spec for one of the two-step baselines (default: the paper's HCPA)."""
    return AlgorithmSpec(label=label or kind, kind=kind)


def rats_spec(params: RATSParams | None = None, *, label: str | None = None,
              strategy: str | None = None, tuned: bool = False) -> AlgorithmSpec:
    """Spec for a RATS variant.

    ``tuned=True`` resolves Table IV parameters per (cluster, family) —
    ``strategy`` is then required.  Otherwise pass explicit ``params``.
    """
    if tuned:
        if strategy not in ("delta", "timecost"):
            raise ValueError("tuned rats_spec needs strategy='delta'|'timecost'")

        def resolver(cluster_name: str, family: str) -> RATSParams:
            return tuned_params(cluster_name, family, strategy)  # type: ignore[arg-type]

        return AlgorithmSpec(label=label or f"{strategy}-tuned", kind="rats",
                             params_resolver=resolver)
    if params is None:
        raise ValueError("rats_spec needs params when not tuned")
    return AlgorithmSpec(label=label or params.describe(), kind="rats",
                         params=params)


@dataclass(frozen=True)
class RunResult:
    """Outcome of one (scenario, cluster, algorithm) run."""

    scenario_id: str
    family: str
    cluster: str
    algorithm: str
    makespan: float            # simulated (what the paper reports)
    estimated_makespan: float  # the scheduler's own estimate
    work: float                # Σ n_t · T(t, n_t) of the final allocation
    n_tasks: int
    stretches: int = 0
    packs: int = 0
    sames: int = 0
    wall_time_s: float = 0.0


class ExperimentRunner:
    """Runs experiments with graph / allocation / redistribution caching."""

    def __init__(self, *, simulate_schedules: bool = True,
                 progress: bool = False) -> None:
        self.simulate_schedules = simulate_schedules
        self.progress = progress
        self._graphs: dict[str, TaskGraph] = {}
        self._allocations: dict[tuple[str, str, str], dict[str, int]] = {}
        self._redists: dict[str, RedistributionCost] = {}

    # ------------------------------------------------------------------ #
    def graph_for(self, scenario: Scenario) -> TaskGraph:
        g = self._graphs.get(scenario.scenario_id)
        if g is None:
            g = scenario.build()
            self._graphs[scenario.scenario_id] = g
        return g

    def allocation_for(self, scenario: Scenario, cluster: Cluster,
                       allocator: str) -> dict[str, int]:
        key = (scenario.scenario_id, cluster.name, allocator)
        alloc = self._allocations.get(key)
        if alloc is None:
            graph = self.graph_for(scenario)
            model = cluster.performance_model()
            fn = {"cpa": cpa_allocation, "mcpa": mcpa_allocation,
                  "hcpa": hcpa_allocation}[allocator]
            alloc = fn(graph, model, cluster.num_procs).allocation
            self._allocations[key] = alloc
        return alloc

    def redist_for(self, cluster: Cluster) -> RedistributionCost:
        rc = self._redists.get(cluster.name)
        if rc is None:
            rc = RedistributionCost(cluster)
            self._redists[cluster.name] = rc
        return rc

    # ------------------------------------------------------------------ #
    def run(self, scenario: Scenario, cluster: Cluster,
            spec: AlgorithmSpec) -> RunResult:
        t0 = time.perf_counter()
        graph = self.graph_for(scenario)
        model = cluster.performance_model()
        redist = self.redist_for(cluster)

        allocator = "hcpa" if spec.kind == "rats" else spec.kind
        allocation = self.allocation_for(scenario, cluster, allocator)

        stretches = packs = sames = 0
        if spec.kind == "rats":
            params = spec.resolve_params(cluster.name, scenario.family)
            assert params is not None
            scheduler: ListScheduler = RATSScheduler(
                graph, cluster, model, allocation, params, redist=redist)
        else:
            scheduler = ListScheduler(graph, cluster, model, allocation,
                                      redist=redist)
        schedule = scheduler.run()
        if isinstance(scheduler, RATSScheduler):
            counts = scheduler.adaptation_summary()
            stretches, packs, sames = (counts["stretch"], counts["pack"],
                                       counts["same"])

        estimated = schedule.makespan
        if self.simulate_schedules:
            makespan = simulate(schedule).makespan
        else:
            makespan = estimated
        work = schedule.total_work(model)

        return RunResult(
            scenario_id=scenario.scenario_id,
            family=scenario.family,
            cluster=cluster.name,
            algorithm=spec.label,
            makespan=makespan,
            estimated_makespan=estimated,
            work=work,
            n_tasks=graph.num_tasks,
            stretches=stretches,
            packs=packs,
            sames=sames,
            wall_time_s=time.perf_counter() - t0,
        )

    def run_matrix(
        self,
        scenarios: Iterable[Scenario],
        clusters: Sequence[Cluster],
        specs: Sequence[AlgorithmSpec],
    ) -> list[RunResult]:
        """Cartesian product of scenarios × clusters × algorithm specs."""
        scenarios = list(scenarios)
        results: list[RunResult] = []
        total = len(scenarios) * len(clusters) * len(specs)
        done = 0
        for scenario in scenarios:
            for cluster in clusters:
                for spec in specs:
                    results.append(self.run(scenario, cluster, spec))
                    done += 1
                    if self.progress and done % 25 == 0:
                        print(f"  [{done}/{total}] runs complete",
                              file=sys.stderr, flush=True)
        return results
