"""Scenario × cluster × algorithm execution engine.

For every run the pipeline is:

1. build the scenario's task graph (cached per scenario);
2. compute the first-step allocation with the spec's *allocator* — a
   :data:`repro.registry.allocators` entry — cached per ``(scenario,
   cluster, allocator)``; HCPA and both RATS variants share the same HCPA
   allocation, exactly as in the paper;
3. map with the requested second step: plain list scheduling, or RATS
   adaptation when the spec names a *mapping strategy*
   (:data:`repro.registry.mapping_strategies`);
4. *simulate* the mapped schedule on the cluster's fluid network model —
   the simulated makespan is what the paper's metrics use;
5. report makespan, total work ``Σ n_t·T(t, n_t)`` and adaptation counts.

The execution engine is resumable and streaming:

* :meth:`ExperimentRunner.iter_matrix` *yields* :class:`RunResult`\\ s as
  they complete — immediately for store hits, chunk by chunk on the
  process pool — so long campaigns can stream into dashboards instead of
  blocking on the full product;
* :meth:`ExperimentRunner.run_matrix` is a thin wrapper collecting the
  same stream back into the deterministic scenario-major order, so serial
  and pool execution return byte-identical lists (with
  ``record_timings=False``);
* both sit on :meth:`ExperimentRunner.iter_cells`, which streams an
  *arbitrary* cell list — the entry point a deduplicated
  :class:`~repro.experiments.plan.CampaignPlan` executes through;
* a :class:`~repro.experiments.store.ResultStore` (``store=...``) keys
  every run under a stable content hash — repeated or crashed campaigns
  skip everything already computed;
* the process pool (``jobs > 1``) is **persistent**: it is created once
  and reused across ``run_matrix`` calls, so a campaign of many matrices
  pays pool startup once and keeps the workers' graph / allocation /
  redistribution caches warm.  ``close()`` (or using the runner as a
  context manager) releases it.

Step-two scheduling dispatches through :data:`repro.registry.schedulers`:
plain clusters use the ``list`` / ``rats`` entries, and platforms that
declare ``scheduler_kind`` (multi-cluster grids declare
``"multicluster"``) route to ``<kind>-list`` / ``<kind>-rats`` — which is
how a registered :class:`~repro.platforms.multicluster.MultiClusterPlatform`
flows through the very same engine.
"""

from __future__ import annotations

import hashlib
import pickle
import sys
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from repro.core.params import RATSParams, tuned_params
from repro.dag.task import TaskGraph
from repro.experiments.scenarios import Scenario
from repro.experiments.store import ResultStore, run_key
from repro.platforms.cluster import Cluster
from repro.redistribution.cost import RedistributionCost
from repro.registry import allocators, mapping_strategies, schedulers
from repro.simulation.simulator import simulate

__all__ = ["AlgorithmSpec", "RunResult", "ExperimentRunner",
           "TunedResolver", "baseline_spec", "rats_spec"]

ParamsResolver = Callable[[str, str], RATSParams]  # (cluster, family) -> params


#: (cluster, family, strategy) triples already warned about — the tuned
#: fallback warns once per combination per process, not once per run
_TUNED_FALLBACK_WARNED: set[tuple[str, str, str]] = set()

#: Pool workers flip this off (:func:`_init_worker_runner`): the parent
#: pre-resolves every pending spec's parameters before dispatching, so
#: the fallback warning fires exactly once per combination — in the
#: parent — instead of once per worker process.
_TUNED_WARNINGS_ENABLED = True


@dataclass(frozen=True)
class TunedResolver:
    """Picklable per-(cluster, family) Table IV parameter resolver.

    Table IV only covers the paper's three single clusters; on any other
    platform (multi-cluster grids, third-party registrations) the
    resolver falls back to the strategy's *naive* parameters with a
    one-time warning instead of raising, so ``rats-*-tuned`` specs run
    everywhere.
    """

    strategy: str

    def __call__(self, cluster_name: str, family: str) -> RATSParams:
        try:
            return tuned_params(cluster_name, family, self.strategy)
        except KeyError:
            key = (cluster_name, family, self.strategy)
            if _TUNED_WARNINGS_ENABLED \
                    and key not in _TUNED_FALLBACK_WARNED:
                _TUNED_FALLBACK_WARNED.add(key)
                warnings.warn(
                    f"no Table IV tuned parameters for cluster "
                    f"{cluster_name!r}, family {family!r}; falling back to "
                    f"naive {self.strategy!r} parameters",
                    RuntimeWarning, stacklevel=2)
            return RATSParams(strategy=self.strategy)


@dataclass(frozen=True)
class AlgorithmSpec:
    """One scheduling algorithm configuration.

    ``allocator`` names a step-one procedure from
    :data:`repro.registry.allocators` (``"cpa"``, ``"mcpa"``, ``"hcpa"``,
    or any registered third-party allocator).  ``strategy`` selects the
    second step: ``None`` runs plain list-scheduling mapping; a
    :data:`repro.registry.mapping_strategies` name runs the RATS adaptation
    with ``params`` (defaulting to naive parameters for that strategy) or a
    per-(cluster, family) ``params_resolver`` (the paper's *tuned* runs).

    The legacy ``kind`` keyword (``"cpa" | "mcpa" | "hcpa" | "rats"``) is
    still accepted and normalised onto ``allocator`` / ``strategy``; after
    construction ``spec.kind`` reads back as ``"rats"`` for adaptive specs
    and the allocator name otherwise.
    """

    label: str
    allocator: str = "hcpa"
    strategy: str | None = None
    params: RATSParams | None = None
    params_resolver: ParamsResolver | None = field(default=None, compare=False)
    kind: str | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.kind is None and self.allocator == "rats" \
                and "rats" not in allocators:
            # legacy *positional* construction: the old field order was
            # (label, kind, params), so "rats" lands in allocator and the
            # params (if also positional) in strategy
            object.__setattr__(self, "kind", "rats")
            object.__setattr__(self, "allocator", "hcpa")
            if isinstance(self.strategy, RATSParams):
                object.__setattr__(self, "params", self.strategy)
                object.__setattr__(self, "strategy", None)
        if self.kind is not None:  # legacy constructor path
            if self.kind in ("cpa", "mcpa", "hcpa"):
                object.__setattr__(self, "allocator", self.kind)
                object.__setattr__(self, "strategy", None)
            elif self.kind == "rats":
                object.__setattr__(self, "allocator", "hcpa")
                if self.params is None and self.params_resolver is None:
                    raise ValueError("rats spec needs params or "
                                     "params_resolver")
                strat = (self.params.strategy if self.params is not None
                         else getattr(self.params_resolver, "strategy",
                                      "timecost"))
                object.__setattr__(self, "strategy", strat)
            else:
                raise ValueError(f"unknown algorithm kind {self.kind!r}")

        allocators.get(self.allocator)  # raises listing available names
        if self.strategy is not None:
            mapping_strategies.get(self.strategy)
            if self.params is None and self.params_resolver is None:
                object.__setattr__(self, "params",
                                   RATSParams(strategy=self.strategy))
            elif self.params is not None \
                    and self.params.strategy != self.strategy:
                object.__setattr__(self, "params",
                                   self.params.with_(strategy=self.strategy))
        object.__setattr__(
            self, "kind",
            "rats" if self.strategy is not None else self.allocator)

    @property
    def is_adaptive(self) -> bool:
        """Whether the second step runs a RATS adaptation strategy."""
        return self.strategy is not None

    def resolve_params(self, cluster_name: str, family: str) -> RATSParams | None:
        if not self.is_adaptive:
            return None
        if self.params_resolver is not None:
            return self.params_resolver(cluster_name, family)
        return self.params


def baseline_spec(kind: str = "hcpa", label: str | None = None) -> AlgorithmSpec:
    """Spec for a pure two-step baseline (deprecation shim).

    Equivalent to ``AlgorithmSpec(label=kind, allocator=kind)``; kept so
    pre-registry call sites keep working.
    """
    return AlgorithmSpec(label=label or kind, allocator=kind)


def rats_spec(params: RATSParams | None = None, *, label: str | None = None,
              strategy: str | None = None, tuned: bool = False) -> AlgorithmSpec:
    """Spec for a RATS variant (deprecation shim).

    ``tuned=True`` resolves Table IV parameters per (cluster, family) —
    ``strategy`` is then required.  Otherwise pass explicit ``params``.
    Equivalent to ``AlgorithmSpec(label=..., strategy=..., params=...)``.
    """
    if tuned:
        if strategy is None or strategy not in mapping_strategies:
            raise ValueError(
                "tuned rats_spec needs strategy from "
                f"{mapping_strategies.names()}")
        return AlgorithmSpec(label=label or f"{strategy}-tuned",
                             strategy=strategy,
                             params_resolver=TunedResolver(strategy))
    if params is None:
        raise ValueError("rats_spec needs params when not tuned")
    return AlgorithmSpec(label=label or params.describe(),
                         strategy=params.strategy, params=params)


@dataclass(frozen=True)
class RunResult:
    """Outcome of one (scenario, cluster, algorithm) run.

    ``solves_full`` / ``solves_component`` mirror the
    :class:`~repro.simulation.simulator.SimulationResult` counters: the
    flow-set-change events an eager engine would re-solve at, and the
    component-scoped solves the lazy engine actually ran — their gap is
    the work the lazy Max-Min maintenance saved.  Both are 0 for
    estimate-only runs (and for results stored before these fields
    existed).
    """

    scenario_id: str
    family: str
    cluster: str
    algorithm: str
    makespan: float            # simulated (what the paper reports)
    estimated_makespan: float  # the scheduler's own estimate
    work: float                # Σ n_t · T(t, n_t) of the final allocation
    n_tasks: int
    stretches: int = 0
    packs: int = 0
    sames: int = 0
    wall_time_s: float = 0.0
    solves_full: int = 0
    solves_component: int = 0
    # per-phase wall-clock attribution inside simulate(): Max-Min solve
    # time vs everything else in the event loop.  0.0 for estimate-only
    # runs, with record_timings=False, and for stored results that
    # predate the fields.
    solve_s: float = 0.0
    event_s: float = 0.0


class ExperimentRunner:
    """Runs experiments with graph / allocation / redistribution caching.

    ``jobs`` sets the default parallelism of :meth:`run_matrix` /
    :meth:`iter_matrix` (1 = serial; ``n > 1`` = a **persistent** process
    pool of ``n`` workers, created on first use and reused across calls;
    ``-1`` = one per CPU).  Call :meth:`close` — or use the runner as a
    context manager, ``with ExperimentRunner(jobs=8) as r: ...`` — to
    release the pool; a closed runner stays usable and recreates the pool
    on demand.

    ``store`` plugs in a :class:`~repro.experiments.store.ResultStore`:
    every run is looked up by its content hash first (skipping the
    simulation entirely on a hit) and persisted after computing, which
    makes repeated or crash-interrupted campaigns resumable.

    ``record_timings=False`` zeroes ``RunResult.wall_time_s`` so serial
    and parallel runs of the same matrix compare byte-identical.
    """

    def __init__(self, *, simulate_schedules: bool = True,
                 progress: bool = False, jobs: int = 1,
                 record_timings: bool = True,
                 store: ResultStore | None = None) -> None:
        self.simulate_schedules = simulate_schedules
        self.progress = progress
        self.jobs = jobs
        self.record_timings = record_timings
        self.store = store
        self._graphs: dict[Scenario, TaskGraph] = {}
        self._allocations: dict[tuple[Scenario, str, str],
                                dict[str, int]] = {}
        self._redists: dict[str, RedistributionCost] = {}
        self._pool: ProcessPoolExecutor | None = None
        self._pool_jobs = 0
        self._pool_workers = 0
        self._pool_digest: str | None = None

    # ------------------------------------------------------------------ #
    # persistent-pool lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut down the persistent worker pool (if one was started).

        Idempotent; the runner itself stays usable afterwards — the next
        parallel call simply starts a fresh pool.
        """
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            self._pool_jobs = 0
            self._pool_workers = 0
            self._pool_digest = None

    def __enter__(self) -> "ExperimentRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _ensure_pool(self, jobs: int, chunks: int,
                     snapshot: list[tuple[str, object]],
                     snapshot_blob: bytes) -> ProcessPoolExecutor:
        """The persistent pool, (re)created when ``jobs``, the set of
        registered components, or the needed worker count changed.

        Workers are capped at the number of chunks actually submitted — a
        2-scenario matrix on ``jobs=16`` starts 2 interpreters, not 16 —
        and the pool grows (by restarting) when a later, larger matrix can
        use more of the requested ``jobs``.
        """
        workers = min(jobs, chunks) if chunks else jobs
        digest = hashlib.sha256(snapshot_blob).hexdigest()
        if self._pool is not None and (self._pool_jobs != jobs
                                       or self._pool_digest != digest
                                       or workers > self._pool_workers):
            self.close()
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker_runner,
                initargs=(self.simulate_schedules, self.record_timings,
                          snapshot),
            )
            self._pool_jobs = jobs
            self._pool_workers = workers
            self._pool_digest = digest
        return self._pool

    # ------------------------------------------------------------------ #
    def graph_for(self, scenario: Scenario) -> TaskGraph:
        # cached by Scenario *value*: a degenerate custom scenario_id
        # formatter (two distinct scenarios, one id) must not alias graphs
        g = self._graphs.get(scenario)
        if g is None:
            g = scenario.build()
            self._graphs[scenario] = g
        return g

    def allocation_for(self, scenario: Scenario, cluster: Cluster,
                       allocator: str) -> dict[str, int]:
        key = (scenario, cluster.name, allocator)
        alloc = self._allocations.get(key)
        if alloc is None:
            graph = self.graph_for(scenario)
            model = cluster.performance_model()
            alloc = allocators.build(
                allocator, graph, model, cluster.num_procs).allocation
            self._allocations[key] = alloc
        return alloc

    def redist_for(self, cluster: Cluster) -> RedistributionCost:
        rc = self._redists.get(cluster.name)
        if rc is None:
            rc = RedistributionCost(cluster)
            self._redists[cluster.name] = rc
        return rc

    # ------------------------------------------------------------------ #
    def run(self, scenario: Scenario, cluster: Cluster,
            spec: AlgorithmSpec) -> RunResult:
        """One (scenario, cluster, spec) run, through the store if any."""
        key = None
        if self.store is not None:
            key = run_key(scenario, cluster, spec,
                          simulated=self.simulate_schedules)
            cached = self.store.get(key)
            if cached is not None:
                return cached
        result = self._execute(scenario, cluster, spec)
        if self.store is not None and key is not None:
            self.store.put(key, result)
        return result

    def _execute(self, scenario: Scenario, cluster: Cluster,
                 spec: AlgorithmSpec) -> RunResult:
        """Build, schedule and simulate — no store involvement."""
        t0 = time.perf_counter()
        graph = self.graph_for(scenario)
        model = cluster.performance_model()
        redist = self.redist_for(cluster)

        allocation = self.allocation_for(scenario, cluster, spec.allocator)

        # plain clusters use the "list"/"rats" schedulers; platforms with a
        # scheduler_kind (multi-cluster grids: "multicluster") route to
        # their registered "<kind>-list"/"<kind>-rats" counterparts
        kind = getattr(cluster, "scheduler_kind", "single")
        prefix = "" if kind == "single" else f"{kind}-"
        stretches = packs = sames = 0
        if spec.is_adaptive:
            params = spec.resolve_params(cluster.name, scenario.family)
            assert params is not None
            scheduler = schedulers.build(f"{prefix}rats", graph, cluster,
                                         model, allocation, params=params,
                                         redist=redist)
        else:
            scheduler = schedulers.build(f"{prefix}list", graph, cluster,
                                         model, allocation, redist=redist)
        schedule = scheduler.run()
        summary = getattr(scheduler, "adaptation_summary", None)
        if summary is not None:
            counts = summary()
            stretches, packs, sames = (counts["stretch"], counts["pack"],
                                       counts["same"])

        estimated = schedule.makespan
        solves_full = solves_component = 0
        solve_s = event_s = 0.0
        if self.simulate_schedules:
            sim = simulate(schedule)
            makespan = sim.makespan
            solves_full = sim.solves_full
            solves_component = sim.solves_component
            if self.record_timings:
                solve_s = sim.solve_s
                event_s = sim.event_s
        else:
            makespan = estimated
        work = schedule.total_work(model)

        return RunResult(
            scenario_id=scenario.scenario_id,
            family=scenario.family,
            cluster=cluster.name,
            algorithm=spec.label,
            makespan=makespan,
            estimated_makespan=estimated,
            work=work,
            n_tasks=graph.num_tasks,
            stretches=stretches,
            packs=packs,
            sames=sames,
            wall_time_s=(time.perf_counter() - t0
                         if self.record_timings else 0.0),
            solves_full=solves_full,
            solves_component=solves_component,
            solve_s=solve_s,
            event_s=event_s,
        )

    # ------------------------------------------------------------------ #
    def run_matrix(
        self,
        scenarios: Iterable[Scenario],
        clusters: Sequence[Cluster],
        specs: Sequence[AlgorithmSpec],
        *,
        jobs: int | None = None,
    ) -> list[RunResult]:
        """Cartesian product of scenarios × clusters × algorithm specs.

        Implemented on top of :meth:`iter_matrix`: the stream is collected
        and re-sorted into scenario-major, cluster, then spec order, so the
        result list is identical for the serial and parallel paths (and
        byte-identical with ``record_timings=False``).  ``jobs`` overrides
        the runner's default parallelism for this call.
        """
        cells = [(scenario, cluster, spec)
                 for scenario in scenarios
                 for cluster in clusters for spec in specs]
        indexed = sorted(self.iter_cells(cells, jobs=jobs))
        return [result for _, result in indexed]

    def iter_matrix(
        self,
        scenarios: Iterable[Scenario],
        clusters: Sequence[Cluster],
        specs: Sequence[AlgorithmSpec],
        *,
        jobs: int | None = None,
    ) -> Iterator[RunResult]:
        """Stream the matrix: yield each :class:`RunResult` as it lands.

        Store hits are yielded immediately; fresh runs follow as they
        complete — in matrix order serially, in chunk-completion order on
        the process pool.  ``run_matrix`` is this stream re-sorted, so the
        two are permutations of each other by construction.
        """
        cells = [(scenario, cluster, spec)
                 for scenario in scenarios
                 for cluster in clusters for spec in specs]
        for _, result in self.iter_cells(cells, jobs=jobs):
            yield result

    # ------------------------------------------------------------------ #
    def iter_cells(
        self,
        cells: Iterable[tuple[Scenario, Cluster, AlgorithmSpec]],
        *,
        jobs: int | None = None,
    ) -> Iterator[tuple[int, RunResult]]:
        """The execution core: stream an *arbitrary* list of
        ``(scenario, cluster, spec)`` cells as ``(index, result)`` pairs.

        The index is the cell's position in the input list — what
        ``run_matrix`` sorts on.  Unlike :meth:`iter_matrix` the cells need
        not form a cartesian product, which is what lets a deduplicated
        :class:`~repro.experiments.plan.CampaignPlan` execute each unique
        run exactly once.  Store hits are yielded first; fresh runs are
        grouped into per-scenario chunks (the pool's unit of work) and
        follow in input order serially, in chunk-completion order on the
        pool.
        """
        cells = list(cells)
        jobs = self.jobs if jobs is None else jobs
        if jobs is not None and jobs < 0:
            import os
            jobs = os.cpu_count() or 1
        total = len(cells)

        # consult the store once per cell; anything missing is grouped
        # into per-scenario chunks in first-occurrence order.  Grouping
        # is by Scenario *value* (not bare scenario_id): a custom family
        # whose id formatter drops a distinguishing field must not see
        # its cells silently executed against another cell's scenario.
        hits: list[tuple[int, RunResult]] = []
        pending: dict[Scenario, list[tuple[int, Cluster,
                                           AlgorithmSpec]]] = {}
        keys: dict[int, str] = {}
        for index, (scenario, cluster, spec) in enumerate(cells):
            cached = None
            if self.store is not None:
                key = run_key(scenario, cluster, spec,
                              simulated=self.simulate_schedules)
                keys[index] = key
                cached = self.store.get(key)
            if cached is not None:
                hits.append((index, cached))
            else:
                pending.setdefault(scenario, []).append(
                    (index, cluster, spec))

        done = 0
        for index, cached in hits:
            done += 1
            yield index, cached
        if hits and self.progress:
            print(f"  [{done}/{total}] runs complete "
                  f"({len(hits)} store hits)", file=sys.stderr, flush=True)

        if jobs and jobs > 1 and len(pending) > 1:
            # snapshot the registries so runtime-registered components
            # reach the workers even under spawn/forkserver start methods
            snapshot = _registry_snapshot()
            try:
                pickle.dumps(cells)
                snapshot_blob = pickle.dumps(snapshot)
            except Exception as exc:  # unpicklable custom components
                warnings.warn(
                    f"falling back to serial run_matrix: {exc}",
                    RuntimeWarning, stacklevel=3)
            else:
                # resolve every pending spec's parameters here, in the
                # parent: any tuned-fallback warning fires once, at
                # dispatch time, instead of once per pool worker (which
                # warn with _TUNED_WARNINGS_ENABLED off)
                for scenario, group in pending.items():
                    for _, cluster, spec in group:
                        spec.resolve_params(cluster.name, scenario.family)
                yield from self._iter_parallel(pending, keys, jobs,
                                               snapshot, snapshot_blob,
                                               done, total)
                return

        for scenario, group in pending.items():
            for index, cluster, spec in group:
                result = self._execute(scenario, cluster, spec)
                if self.store is not None:
                    self.store.put(keys[index], result)
                done += 1
                if self.progress and done % 25 == 0:
                    print(f"  [{done}/{total}] runs complete",
                          file=sys.stderr, flush=True)
                yield index, result
            if self.store is not None:
                # one transaction per chunk on write-batching stores
                getattr(self.store, "flush", lambda: None)()

    def _iter_parallel(
        self,
        pending: dict[Scenario, list[tuple[int, Cluster, AlgorithmSpec]]],
        keys: dict[int, str],
        jobs: int,
        snapshot: list[tuple[str, object]],
        snapshot_blob: bytes,
        done: int,
        total: int,
    ) -> Iterator[tuple[int, RunResult]]:
        """Stream chunk results off the persistent pool as they finish.

        Each worker keeps a module-global :class:`ExperimentRunner`, so its
        caches survive across the scenarios it is handed — and, because the
        pool itself survives across ``run_matrix`` calls, across matrices.
        """
        pool = self._ensure_pool(jobs, len(pending), snapshot, snapshot_blob)
        try:
            futures = {
                pool.submit(_run_cells, scenario,
                            [(cluster, spec)
                             for _, cluster, spec in group]): scenario
                for scenario, group in pending.items()
            }
            for fut in as_completed(futures):
                group = pending[futures[fut]]
                results = fut.result()
                for (index, _, _), result in zip(group, results):
                    if self.store is not None:
                        self.store.put(keys[index], result)
                    yield index, result
                if self.store is not None:
                    # one transaction per chunk on write-batching stores
                    getattr(self.store, "flush", lambda: None)()
                done += len(results)
                if self.progress:
                    print(f"  [{done}/{total}] runs complete",
                          file=sys.stderr, flush=True)
        except BrokenProcessPool:
            self.close()  # a dead pool must not be reused by later calls
            raise


# --------------------------------------------------------------------- #
# process-pool worker plumbing (module level: must be picklable by name)
# --------------------------------------------------------------------- #
_WORKER_RUNNER: ExperimentRunner | None = None


def _registry_snapshot() -> list[tuple[str, object]]:
    """Every picklable registry entry as ``(section, entry)`` pairs.

    Shipped to pool workers so components registered at runtime in the
    driver process exist there too — under ``spawn``/``forkserver`` start
    methods a fresh worker only re-imports the built-ins.  Entries whose
    factory cannot be pickled (e.g. lambdas) are skipped rather than
    forcing the whole matrix serial: under ``fork`` the worker inherits
    them anyway, and under ``spawn`` a missing component surfaces as a
    clear (picklable) :class:`~repro.registry.UnknownComponentError`.
    """
    from repro.registry import all_registries

    snapshot = []
    for section, registry in all_registries().items():
        for entry in registry.entries():
            try:
                pickle.dumps(entry)
            except Exception:
                continue
            snapshot.append((section, entry))
    return snapshot


def _init_worker_runner(simulate_schedules: bool, record_timings: bool,
                        registry_snapshot: list[tuple[str, object]]) -> None:
    from repro.registry import all_registries

    global _WORKER_RUNNER, _TUNED_WARNINGS_ENABLED
    # the parent already pre-resolved (and warned about) every pending
    # spec; a worker repeating the warning would print it once per process
    _TUNED_WARNINGS_ENABLED = False
    registries = all_registries()
    for section, entry in registry_snapshot:
        registries[section].register(
            entry.name, entry.factory, description=entry.description,
            aliases=entry.aliases, replace=True)
    _WORKER_RUNNER = ExperimentRunner(simulate_schedules=simulate_schedules,
                                      record_timings=record_timings)


def _run_cells(scenario: Scenario,
               cells: Sequence[tuple[Cluster, AlgorithmSpec]]) -> list[RunResult]:
    """Pool worker: run one scenario's pending (cluster, spec) cells."""
    runner = _WORKER_RUNNER
    if runner is None:  # pragma: no cover - initializer always runs
        runner = ExperimentRunner()
    return [runner.run(scenario, cluster, spec) for cluster, spec in cells]
