"""Scenario × cluster × algorithm execution engine.

For every run the pipeline is:

1. build the scenario's task graph (cached per scenario);
2. compute the first-step allocation with the spec's *allocator* — a
   :data:`repro.registry.allocators` entry — cached per ``(scenario,
   cluster, allocator)``; HCPA and both RATS variants share the same HCPA
   allocation, exactly as in the paper;
3. map with the requested second step: plain list scheduling, or RATS
   adaptation when the spec names a *mapping strategy*
   (:data:`repro.registry.mapping_strategies`);
4. *simulate* the mapped schedule on the cluster's fluid network model —
   the simulated makespan is what the paper's metrics use;
5. report makespan, total work ``Σ n_t·T(t, n_t)`` and adaptation counts.

:meth:`ExperimentRunner.run_matrix` executes the cartesian product either
serially or on a ``concurrent.futures`` process pool (``jobs > 1``): each
worker owns a private :class:`ExperimentRunner` whose graph / allocation /
redistribution caches persist across the scenarios it processes, and the
result list is returned in the same deterministic order as the serial path.
"""

from __future__ import annotations

import pickle
import sys
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.core.params import RATSParams, tuned_params
from repro.core.rats import RATSScheduler
from repro.dag.task import TaskGraph
from repro.experiments.scenarios import Scenario
from repro.platforms.cluster import Cluster
from repro.redistribution.cost import RedistributionCost
from repro.registry import allocators, mapping_strategies
from repro.scheduling.mapping import ListScheduler
from repro.simulation.simulator import simulate

__all__ = ["AlgorithmSpec", "RunResult", "ExperimentRunner",
           "TunedResolver", "baseline_spec", "rats_spec"]

ParamsResolver = Callable[[str, str], RATSParams]  # (cluster, family) -> params


@dataclass(frozen=True)
class TunedResolver:
    """Picklable per-(cluster, family) Table IV parameter resolver."""

    strategy: str

    def __call__(self, cluster_name: str, family: str) -> RATSParams:
        return tuned_params(cluster_name, family, self.strategy)


@dataclass(frozen=True)
class AlgorithmSpec:
    """One scheduling algorithm configuration.

    ``allocator`` names a step-one procedure from
    :data:`repro.registry.allocators` (``"cpa"``, ``"mcpa"``, ``"hcpa"``,
    or any registered third-party allocator).  ``strategy`` selects the
    second step: ``None`` runs plain list-scheduling mapping; a
    :data:`repro.registry.mapping_strategies` name runs the RATS adaptation
    with ``params`` (defaulting to naive parameters for that strategy) or a
    per-(cluster, family) ``params_resolver`` (the paper's *tuned* runs).

    The legacy ``kind`` keyword (``"cpa" | "mcpa" | "hcpa" | "rats"``) is
    still accepted and normalised onto ``allocator`` / ``strategy``; after
    construction ``spec.kind`` reads back as ``"rats"`` for adaptive specs
    and the allocator name otherwise.
    """

    label: str
    allocator: str = "hcpa"
    strategy: str | None = None
    params: RATSParams | None = None
    params_resolver: ParamsResolver | None = field(default=None, compare=False)
    kind: str | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.kind is None and self.allocator == "rats" \
                and "rats" not in allocators:
            # legacy *positional* construction: the old field order was
            # (label, kind, params), so "rats" lands in allocator and the
            # params (if also positional) in strategy
            object.__setattr__(self, "kind", "rats")
            object.__setattr__(self, "allocator", "hcpa")
            if isinstance(self.strategy, RATSParams):
                object.__setattr__(self, "params", self.strategy)
                object.__setattr__(self, "strategy", None)
        if self.kind is not None:  # legacy constructor path
            if self.kind in ("cpa", "mcpa", "hcpa"):
                object.__setattr__(self, "allocator", self.kind)
                object.__setattr__(self, "strategy", None)
            elif self.kind == "rats":
                object.__setattr__(self, "allocator", "hcpa")
                if self.params is None and self.params_resolver is None:
                    raise ValueError("rats spec needs params or "
                                     "params_resolver")
                strat = (self.params.strategy if self.params is not None
                         else getattr(self.params_resolver, "strategy",
                                      "timecost"))
                object.__setattr__(self, "strategy", strat)
            else:
                raise ValueError(f"unknown algorithm kind {self.kind!r}")

        allocators.get(self.allocator)  # raises listing available names
        if self.strategy is not None:
            mapping_strategies.get(self.strategy)
            if self.params is None and self.params_resolver is None:
                object.__setattr__(self, "params",
                                   RATSParams(strategy=self.strategy))
            elif self.params is not None \
                    and self.params.strategy != self.strategy:
                object.__setattr__(self, "params",
                                   self.params.with_(strategy=self.strategy))
        object.__setattr__(
            self, "kind",
            "rats" if self.strategy is not None else self.allocator)

    @property
    def is_adaptive(self) -> bool:
        """Whether the second step runs a RATS adaptation strategy."""
        return self.strategy is not None

    def resolve_params(self, cluster_name: str, family: str) -> RATSParams | None:
        if not self.is_adaptive:
            return None
        if self.params_resolver is not None:
            return self.params_resolver(cluster_name, family)
        return self.params


def baseline_spec(kind: str = "hcpa", label: str | None = None) -> AlgorithmSpec:
    """Spec for a pure two-step baseline (deprecation shim).

    Equivalent to ``AlgorithmSpec(label=kind, allocator=kind)``; kept so
    pre-registry call sites keep working.
    """
    return AlgorithmSpec(label=label or kind, allocator=kind)


def rats_spec(params: RATSParams | None = None, *, label: str | None = None,
              strategy: str | None = None, tuned: bool = False) -> AlgorithmSpec:
    """Spec for a RATS variant (deprecation shim).

    ``tuned=True`` resolves Table IV parameters per (cluster, family) —
    ``strategy`` is then required.  Otherwise pass explicit ``params``.
    Equivalent to ``AlgorithmSpec(label=..., strategy=..., params=...)``.
    """
    if tuned:
        if strategy is None or strategy not in mapping_strategies:
            raise ValueError(
                "tuned rats_spec needs strategy from "
                f"{mapping_strategies.names()}")
        return AlgorithmSpec(label=label or f"{strategy}-tuned",
                             strategy=strategy,
                             params_resolver=TunedResolver(strategy))
    if params is None:
        raise ValueError("rats_spec needs params when not tuned")
    return AlgorithmSpec(label=label or params.describe(),
                         strategy=params.strategy, params=params)


@dataclass(frozen=True)
class RunResult:
    """Outcome of one (scenario, cluster, algorithm) run."""

    scenario_id: str
    family: str
    cluster: str
    algorithm: str
    makespan: float            # simulated (what the paper reports)
    estimated_makespan: float  # the scheduler's own estimate
    work: float                # Σ n_t · T(t, n_t) of the final allocation
    n_tasks: int
    stretches: int = 0
    packs: int = 0
    sames: int = 0
    wall_time_s: float = 0.0


class ExperimentRunner:
    """Runs experiments with graph / allocation / redistribution caching.

    ``jobs`` sets the default parallelism of :meth:`run_matrix` (1 =
    serial; ``n > 1`` = a process pool of ``n`` workers; ``-1`` = one per
    CPU).  ``record_timings=False`` zeroes ``RunResult.wall_time_s`` so
    serial and parallel runs of the same matrix compare byte-identical.
    """

    def __init__(self, *, simulate_schedules: bool = True,
                 progress: bool = False, jobs: int = 1,
                 record_timings: bool = True) -> None:
        self.simulate_schedules = simulate_schedules
        self.progress = progress
        self.jobs = jobs
        self.record_timings = record_timings
        self._graphs: dict[str, TaskGraph] = {}
        self._allocations: dict[tuple[str, str, str], dict[str, int]] = {}
        self._redists: dict[str, RedistributionCost] = {}

    # ------------------------------------------------------------------ #
    def graph_for(self, scenario: Scenario) -> TaskGraph:
        g = self._graphs.get(scenario.scenario_id)
        if g is None:
            g = scenario.build()
            self._graphs[scenario.scenario_id] = g
        return g

    def allocation_for(self, scenario: Scenario, cluster: Cluster,
                       allocator: str) -> dict[str, int]:
        key = (scenario.scenario_id, cluster.name, allocator)
        alloc = self._allocations.get(key)
        if alloc is None:
            graph = self.graph_for(scenario)
            model = cluster.performance_model()
            alloc = allocators.build(
                allocator, graph, model, cluster.num_procs).allocation
            self._allocations[key] = alloc
        return alloc

    def redist_for(self, cluster: Cluster) -> RedistributionCost:
        rc = self._redists.get(cluster.name)
        if rc is None:
            rc = RedistributionCost(cluster)
            self._redists[cluster.name] = rc
        return rc

    # ------------------------------------------------------------------ #
    def run(self, scenario: Scenario, cluster: Cluster,
            spec: AlgorithmSpec) -> RunResult:
        t0 = time.perf_counter()
        graph = self.graph_for(scenario)
        model = cluster.performance_model()
        redist = self.redist_for(cluster)

        allocation = self.allocation_for(scenario, cluster, spec.allocator)

        stretches = packs = sames = 0
        if spec.is_adaptive:
            params = spec.resolve_params(cluster.name, scenario.family)
            assert params is not None
            scheduler: ListScheduler = RATSScheduler(
                graph, cluster, model, allocation, params, redist=redist)
        else:
            scheduler = ListScheduler(graph, cluster, model, allocation,
                                      redist=redist)
        schedule = scheduler.run()
        if isinstance(scheduler, RATSScheduler):
            counts = scheduler.adaptation_summary()
            stretches, packs, sames = (counts["stretch"], counts["pack"],
                                       counts["same"])

        estimated = schedule.makespan
        if self.simulate_schedules:
            makespan = simulate(schedule).makespan
        else:
            makespan = estimated
        work = schedule.total_work(model)

        return RunResult(
            scenario_id=scenario.scenario_id,
            family=scenario.family,
            cluster=cluster.name,
            algorithm=spec.label,
            makespan=makespan,
            estimated_makespan=estimated,
            work=work,
            n_tasks=graph.num_tasks,
            stretches=stretches,
            packs=packs,
            sames=sames,
            wall_time_s=(time.perf_counter() - t0
                         if self.record_timings else 0.0),
        )

    # ------------------------------------------------------------------ #
    def run_matrix(
        self,
        scenarios: Iterable[Scenario],
        clusters: Sequence[Cluster],
        specs: Sequence[AlgorithmSpec],
        *,
        jobs: int | None = None,
    ) -> list[RunResult]:
        """Cartesian product of scenarios × clusters × algorithm specs.

        Results are ordered scenario-major, cluster, then spec — identical
        for the serial and parallel paths.  ``jobs`` overrides the runner's
        default parallelism for this call.

        Note: each parallel call spins up (and tears down) its own process
        pool, so worker caches do not persist across ``run_matrix`` calls
        the way this runner's own caches do serially — parallelism pays off
        on large matrices, not on many small ones.
        """
        scenarios = list(scenarios)
        clusters = list(clusters)
        specs = list(specs)
        jobs = self.jobs if jobs is None else jobs
        if jobs is not None and jobs < 0:
            import os
            jobs = os.cpu_count() or 1
        if jobs and jobs > 1 and len(scenarios) > 1:
            # snapshot the registries so runtime-registered components
            # reach the workers even under spawn/forkserver start methods
            snapshot = _registry_snapshot()
            try:
                pickle.dumps((scenarios, clusters, specs, snapshot))
            except Exception as exc:  # unpicklable custom components
                warnings.warn(
                    f"falling back to serial run_matrix: {exc}",
                    RuntimeWarning, stacklevel=2)
            else:
                return self._run_matrix_parallel(
                    scenarios, clusters, specs, jobs, snapshot)

        results: list[RunResult] = []
        total = len(scenarios) * len(clusters) * len(specs)
        done = 0
        for scenario in scenarios:
            for cluster in clusters:
                for spec in specs:
                    results.append(self.run(scenario, cluster, spec))
                    done += 1
                    if self.progress and done % 25 == 0:
                        print(f"  [{done}/{total}] runs complete",
                              file=sys.stderr, flush=True)
        return results

    def _run_matrix_parallel(
        self,
        scenarios: list[Scenario],
        clusters: list[Cluster],
        specs: list[AlgorithmSpec],
        jobs: int,
        registry_snapshot: list[tuple[str, object]],
    ) -> list[RunResult]:
        """Process-pool execution, one chunk per scenario.

        Each worker keeps a module-global :class:`ExperimentRunner`, so its
        caches survive across the scenarios it is handed; chunk results are
        collected in submission order, preserving the serial ordering.
        """
        total = len(scenarios) * len(clusters) * len(specs)
        results: list[RunResult] = []
        done = 0
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(scenarios)),
            initializer=_init_worker_runner,
            initargs=(self.simulate_schedules, self.record_timings,
                      registry_snapshot),
        ) as pool:
            futures = [pool.submit(_run_scenario_chunk, sc, clusters, specs)
                       for sc in scenarios]
            for fut in futures:
                results.extend(fut.result())
                done += len(clusters) * len(specs)
                if self.progress:
                    print(f"  [{done}/{total}] runs complete",
                          file=sys.stderr, flush=True)
        return results


# --------------------------------------------------------------------- #
# process-pool worker plumbing (module level: must be picklable by name)
# --------------------------------------------------------------------- #
_WORKER_RUNNER: ExperimentRunner | None = None


def _registry_snapshot() -> list[tuple[str, object]]:
    """Every picklable registry entry as ``(section, entry)`` pairs.

    Shipped to pool workers so components registered at runtime in the
    driver process exist there too — under ``spawn``/``forkserver`` start
    methods a fresh worker only re-imports the built-ins.  Entries whose
    factory cannot be pickled (e.g. lambdas) are skipped rather than
    forcing the whole matrix serial: under ``fork`` the worker inherits
    them anyway, and under ``spawn`` a missing component surfaces as a
    clear (picklable) :class:`~repro.registry.UnknownComponentError`.
    """
    from repro.registry import all_registries

    snapshot = []
    for section, registry in all_registries().items():
        for entry in registry.entries():
            try:
                pickle.dumps(entry)
            except Exception:
                continue
            snapshot.append((section, entry))
    return snapshot


def _init_worker_runner(simulate_schedules: bool, record_timings: bool,
                        registry_snapshot: list[tuple[str, object]]) -> None:
    from repro.registry import all_registries

    global _WORKER_RUNNER
    registries = all_registries()
    for section, entry in registry_snapshot:
        registries[section].register(
            entry.name, entry.factory, description=entry.description,
            aliases=entry.aliases, replace=True)
    _WORKER_RUNNER = ExperimentRunner(simulate_schedules=simulate_schedules,
                                      record_timings=record_timings)


def _run_scenario_chunk(scenario: Scenario, clusters: Sequence[Cluster],
                        specs: Sequence[AlgorithmSpec]) -> list[RunResult]:
    runner = _WORKER_RUNNER
    if runner is None:  # pragma: no cover - initializer always runs
        runner = ExperimentRunner()
    return [runner.run(scenario, cluster, spec)
            for cluster in clusters for spec in specs]
