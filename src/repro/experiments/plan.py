"""Declarative campaign pipeline: stages, a deduplicated run plan, sharding.

The paper's evaluation is a sequence of *stages* — each figure or table is
a (scenarios × clusters × specs) matrix plus a renderer over its results.
Driving them imperatively (run a matrix, render, run the next matrix)
re-simulates every run that two stages share: the Figure 4/5 sweep points
re-run the HCPA baseline per grid point, and Tables V–VI re-run everything
Figures 2–3/6–7 already simulated on the headline cluster.

This module turns the campaign into data:

* :class:`Stage` declares one stage's matrix and its *artifact* — a
  callable rendering the stage's report section(s) from its results;
* :class:`CampaignPlan` is an ordered list of stages;
  :meth:`CampaignPlan.compile` flattens every stage into cells, keys each
  cell with the :func:`~repro.experiments.store.run_key` content hash and
  deduplicates on the label-free
  :func:`~repro.experiments.store.content_key` — a run shared by N
  stages (even under different display labels, like Figure 6's
  ``"Delta"`` vs Table V's ``"delta"``) simulates **once** and is
  re-labelled per cell;
* :meth:`CompiledPlan.execute` streams the deduplicated runs through a
  store-aware :class:`~repro.experiments.runner.ExperimentRunner`
  (:meth:`~repro.experiments.runner.ExperimentRunner.iter_cells`) and
  returns a :class:`PlanExecution` that materializes each stage's report
  sections from the shared result pool;
* :meth:`CompiledPlan.shard` partitions the deduplicated run list by key
  hash, so ``--shard i/n`` campaigns on independent machines fill
  disjoint slices of one (mergeable) result store.

Because ``run_key`` is stable across processes and machines, the same
plan compiled anywhere shards identically — two machines running
``--shard 1/2`` and ``--shard 2/2`` cover every run exactly once, and
merging their stores (``repro merge``) lets a final ``--resume`` replay
render the full report with zero fresh simulations.
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from repro.experiments.runner import AlgorithmSpec, ExperimentRunner, RunResult
from repro.experiments.scenarios import Scenario
from repro.experiments.store import content_key, run_key
from repro.platforms.cluster import Cluster

__all__ = [
    "Stage",
    "CampaignPlan",
    "CompiledPlan",
    "PlannedRun",
    "PlanExecution",
    "parse_shard",
    "shard_of",
    "SECTION_SEPARATOR",
]

#: How report sections are joined — one separator line between sections.
SECTION_SEPARATOR = "\n\n" + "=" * 78 + "\n\n"

#: An artifact builder: stage results (in the stage's scenario-major matrix
#: order) to one section string or a sequence of them.
ArtifactBuilder = Callable[[list[RunResult]], "str | Sequence[str]"]


@dataclass(frozen=True)
class Stage:
    """One campaign stage: a run matrix plus its report renderer.

    ``scenarios × clusters × specs`` is the stage's (possibly empty)
    matrix; ``artifact`` renders the stage's report section(s) from the
    matrix results, delivered in scenario-major matrix order — exactly
    what ``run_matrix`` would have returned.  A stage with an empty
    matrix and an artifact is *static* (the paper's Tables I–III); a
    stage with a matrix and no artifact contributes runs but no report
    section (useful for cache-warming stages).
    """

    name: str
    scenarios: tuple[Scenario, ...] = ()
    clusters: tuple[Cluster, ...] = ()
    specs: tuple[AlgorithmSpec, ...] = ()
    artifact: ArtifactBuilder | None = field(default=None, compare=False)

    def cells(self) -> Iterator[tuple[Scenario, Cluster, AlgorithmSpec]]:
        """The stage's cells in scenario-major matrix order."""
        for scenario in self.scenarios:
            for cluster in self.clusters:
                for spec in self.specs:
                    yield scenario, cluster, spec

    @property
    def n_cells(self) -> int:
        return len(self.scenarios) * len(self.clusters) * len(self.specs)

    def sections(self, results: list[RunResult]) -> list[str]:
        """Render the stage's report sections from its matrix results."""
        if self.artifact is None:
            return []
        out = self.artifact(list(results))
        return [out] if isinstance(out, str) else list(out)


@dataclass(frozen=True)
class PlannedRun:
    """One deduplicated run of a compiled plan.

    ``key`` is the label-free :func:`~repro.experiments.store.content_key`
    — the dedup and shard unit.  The cell fields are the run's *first
    occurrence* in stage order; cells elsewhere in the plan that share
    the content key receive this run's result re-labelled with their own
    spec label.
    """

    key: str
    scenario: Scenario
    cluster: Cluster
    spec: AlgorithmSpec


def shard_of(key: str, count: int) -> int:
    """The shard (``0 <= shard < count``) owning a run key.

    Derived from the key's leading hex digits, so the partition is a pure
    function of *what is run* — stable across processes, machines and
    stage ordering, which is what lets independent shard campaigns agree
    on the split without coordination.
    """
    return int(key[:16], 16) % count


def parse_shard(text: str) -> tuple[int, int]:
    """Parse a CLI ``--shard I/N`` value into ``(index, count)``.

    ``I`` is 1-based on the command line (``1/2``, ``2/2``); the returned
    index is 0-based.  Raises :class:`ValueError` on malformed input, so
    it can be used directly as an ``argparse`` type.
    """
    m = re.fullmatch(r"(\d+)/(\d+)", text.strip())
    if not m:
        raise ValueError(f"shard must look like I/N (e.g. 1/2), got {text!r}")
    index, count = int(m.group(1)), int(m.group(2))
    if count < 1 or not 1 <= index <= count:
        raise ValueError(f"shard index must be in 1..{count}, got {index}")
    return index - 1, count


class CampaignPlan:
    """An ordered list of :class:`Stage` objects.

    Compose with :meth:`add` (chainable) or pass stages to the
    constructor; :meth:`compile` produces the global deduplicated run
    list, and :meth:`execute` is the compile-and-run convenience::

        plan = (CampaignPlan()
                .add(figure2_3_stage(scenarios, grillon))
                .add(tables5_6_stage(scenarios, clusters)))
        report = plan.execute(runner).report()
    """

    def __init__(self, stages: Iterable[Stage] = ()) -> None:
        self._stages: list[Stage] = list(stages)

    @property
    def stages(self) -> tuple[Stage, ...]:
        return tuple(self._stages)

    def add(self, *stages: Stage) -> "CampaignPlan":
        self._stages.extend(stages)
        return self

    def compile(self, *, simulated: bool = True) -> "CompiledPlan":
        """Flatten all stages into one deduplicated, keyed run list.

        Each cell gets its :func:`~repro.experiments.store.run_key`
        (label-inclusive — the store's key) and is deduplicated on its
        label-free :func:`~repro.experiments.store.content_key`
        (``simulated`` must match the runner's ``simulate_schedules``).
        The first occurrence of a content key defines the run's position
        in the global list, so compilation is deterministic in stage
        order.
        """
        runs: dict[str, PlannedRun] = {}
        cells: dict[str, tuple[str, str]] = {}
        stage_keys: list[tuple[str, ...]] = []
        for stage in self._stages:
            keys = []
            for scenario, cluster, spec in stage.cells():
                rk = run_key(scenario, cluster, spec, simulated=simulated)
                ck = content_key(scenario, cluster, spec,
                                 simulated=simulated)
                if ck not in runs:
                    runs[ck] = PlannedRun(key=ck, scenario=scenario,
                                          cluster=cluster, spec=spec)
                cells.setdefault(rk, (ck, spec.label))
                keys.append(rk)
            stage_keys.append(tuple(keys))
        return CompiledPlan(stages=tuple(self._stages),
                            runs=tuple(runs.values()),
                            stage_keys=tuple(stage_keys),
                            cells=cells)

    def execute(self, runner: ExperimentRunner | None = None, *,
                shard: tuple[int, int] | None = None,
                jobs: int | None = None) -> "PlanExecution":
        """Compile and execute in one call; see :meth:`CompiledPlan.execute`."""
        simulated = runner.simulate_schedules if runner is not None else True
        return self.compile(simulated=simulated).execute(
            runner, shard=shard, jobs=jobs)


@dataclass(frozen=True)
class CompiledPlan:
    """A plan flattened into a global deduplicated run list.

    ``runs`` holds every unique run once, in first-occurrence order,
    keyed by content key; ``stage_keys`` maps each stage (by position) to
    its cells' run keys in matrix order; ``cells`` maps each cell run key
    to its ``(content_key, label)`` — how :class:`PlanExecution`
    reassembles every stage's result list (with per-cell labels) from the
    shared pool.
    """

    stages: tuple[Stage, ...]
    runs: tuple[PlannedRun, ...]
    stage_keys: tuple[tuple[str, ...], ...]
    cells: dict[str, tuple[str, str]]

    @property
    def total_cells(self) -> int:
        """Cells over all stages, shared runs counted once per stage."""
        return sum(len(keys) for keys in self.stage_keys)

    @property
    def unique_runs(self) -> int:
        return len(self.runs)

    def describe(self) -> str:
        dedup = self.total_cells - self.unique_runs
        return (f"{len(self.stages)} stages, {self.total_cells} cells -> "
                f"{self.unique_runs} unique runs ({dedup} deduplicated)")

    def describe_stages(self) -> list[str]:
        """One line per running stage: cells declared, runs it adds."""
        seen: set[str] = set()
        lines = []
        for stage, keys in zip(self.stages, self.stage_keys):
            if not keys:
                continue
            new = {self.cells[rk][0] for rk in keys} - seen
            seen.update(new)
            lines.append(f"stage {stage.name}: {len(keys)} cells, "
                         f"{len(new)} new unique runs")
        return lines

    def shard(self, index: int, count: int) -> tuple[PlannedRun, ...]:
        """The deduplicated runs owned by shard ``index`` of ``count``.

        Shards partition the run list: the union over ``index = 0..count-1``
        is the full list and any two shards are disjoint.  The assignment
        depends only on each run's content-hash key (:func:`shard_of`), so
        independent processes compiling the same plan agree on it.
        """
        if count < 1 or not 0 <= index < count:
            raise ValueError(
                f"shard index must be in 0..{count - 1}, got {index}")
        return tuple(r for r in self.runs
                     if shard_of(r.key, count) == index)

    def execute(self, runner: ExperimentRunner | None = None, *,
                shard: tuple[int, int] | None = None,
                jobs: int | None = None) -> "PlanExecution":
        """Run the (optionally sharded) deduplicated runs.

        Streams through :meth:`ExperimentRunner.iter_cells`, so a
        store-attached runner skips everything already computed and
        persists everything fresh.  Each completed run is fanned out to
        every cell sharing its content key — re-labelled with the cell's
        own spec label, and persisted under the cell's
        :func:`~repro.experiments.store.run_key` so cell-level resume
        keeps working for other consumers of the store.  A runner
        constructed here is closed before returning; an injected runner's
        lifecycle stays with the caller.
        """
        runs = self.runs if shard is None else self.shard(*shard)
        # reverse index: content key -> the cells (run_key, label) it fills
        fanout: dict[str, list[tuple[str, str]]] = {}
        for rk, (ck, label) in self.cells.items():
            fanout.setdefault(ck, []).append((rk, label))
        owned = runner is None
        runner = runner or ExperimentRunner()
        results: dict[str, RunResult] = {}
        try:
            cells = [(r.scenario, r.cluster, r.spec) for r in runs]
            for index, result in runner.iter_cells(cells, jobs=jobs):
                for rk, label in fanout.get(runs[index].key, ()):
                    relabelled = (result if result.algorithm == label
                                  else dataclasses.replace(
                                      result, algorithm=label))
                    results[rk] = relabelled
                    if runner.store is not None and rk not in runner.store:
                        runner.store.put(rk, relabelled)
        finally:
            if owned:
                runner.close()
        return PlanExecution(plan=self, results=results,
                             executed=tuple(runs))


@dataclass(frozen=True)
class PlanExecution:
    """Results of one (possibly sharded) plan execution.

    ``results`` maps cell run keys to their (per-label) `RunResult`;
    stage result lists and report sections are materialized lazily from
    it.  A sharded execution holds only its slice — rendering then
    raises, because a report over partial results would be silently
    wrong; merge the shard stores and replay the full plan instead.
    """

    plan: CompiledPlan
    results: dict[str, RunResult]
    executed: tuple[PlannedRun, ...]

    @property
    def complete(self) -> bool:
        """Whether every cell of the plan has a result."""
        return all(key in self.results
                   for keys in self.plan.stage_keys for key in keys)

    def _results_at(self, position: int) -> list[RunResult]:
        try:
            return [self.results[key]
                    for key in self.plan.stage_keys[position]]
        except KeyError as exc:
            raise RuntimeError(
                f"stage {self.plan.stages[position].name!r} is missing "
                f"run {exc.args[0]}; a sharded execution cannot render "
                "artifacts — merge the shard stores and replay the full "
                "plan") from None

    def stage_results(self, stage: "str | Stage") -> list[RunResult]:
        """One stage's results in its scenario-major matrix order.

        Stages may be addressed by name or object; with duplicate names
        the first match wins — prefer iterating :meth:`sections`, which
        renders every stage by position.
        """
        names = [s.name for s in self.plan.stages]
        if isinstance(stage, Stage):
            for position, candidate in enumerate(self.plan.stages):
                if candidate is stage:
                    break
            else:
                try:
                    position = self.plan.stages.index(stage)
                except ValueError:
                    raise KeyError(
                        f"stage {stage.name!r} is not part of this plan; "
                        f"stages: {names}") from None
        else:
            try:
                position = names.index(stage)
            except ValueError:
                raise KeyError(
                    f"no stage named {stage!r}; stages: {names}") from None
        return self._results_at(position)

    def sections(self) -> list[str]:
        """Every stage's report sections, in stage order.

        Stages are rendered by position, so duplicate stage names are
        fine — each stage sees exactly its own results.
        """
        out: list[str] = []
        for position, stage in enumerate(self.plan.stages):
            out.extend(stage.sections(self._results_at(position)
                                      if stage.n_cells else []))
        return out

    def report(self) -> str:
        """The full report: all sections joined by the separator rule."""
        return SECTION_SEPARATOR.join(self.sections())
