"""One-shot reproduction campaign: regenerate the paper's evaluation.

Run as a module::

    python -m repro.experiments.campaign --fraction 0.06
    python -m repro.experiments.campaign --full --out report.txt
    python -m repro.experiments.campaign --clusters grillon --skip-sweeps

The campaign executes, in order: Tables I–III (static), Figures 2–3 (naive
parameters on grillon), Figures 4–5 (parameter sweeps), Figures 6–7 (tuned
parameters), and Tables V–VI (three-cluster pairwise/degradation study),
writing one consolidated text report and optionally the raw results as
JSON.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments.figures import (
    figure2_3_naive,
    figure4_delta_surface,
    figure5_rho_curves,
    figure6_7_tuned,
)
from repro.experiments.runner import ExperimentRunner, baseline_spec, rats_spec
from repro.experiments.scenarios import (
    all_scenarios,
    scenarios_by_family,
    subsample,
)
from repro.experiments.store import JsonlStore, ResultStore
from repro.experiments.tables import (
    table1_communication_matrix,
    table2_clusters,
    table3_scenarios,
    table5_pairwise,
    table6_degradation,
)
from repro.platforms.grid5000 import GRID5000_CLUSTERS, GRILLON, get_cluster
from repro.scheduling.serialize import save_results

__all__ = ["run_campaign", "add_campaign_arguments", "run_from_args", "main",
           "open_cli_store"]


def open_cli_store(path: Path | None, resume: bool) -> ResultStore | None:
    """Open the ``--store`` / ``--resume`` pair with safe CLI semantics.

    ``--resume`` without ``--store`` is an error.  A non-empty store file
    without ``--resume`` is also an error: silently reusing stale results
    from a forgotten file would be indistinguishable from a fresh run, so
    continuing an interrupted campaign must be asked for explicitly.
    """
    if path is None:
        if resume:
            raise SystemExit("--resume requires --store PATH")
        return None
    if not resume and path.exists() and path.stat().st_size > 0:
        raise SystemExit(
            f"store {path} already holds results; pass --resume to skip "
            "everything already computed (or delete the file)")
    return JsonlStore(path)


def run_campaign(
    fraction: float = 0.06,
    clusters: list[str] | None = None,
    *,
    skip_sweeps: bool = False,
    progress: bool = True,
    jobs: int = 1,
    store: ResultStore | None = None,
) -> tuple[str, list]:
    """Execute the reproduction campaign; returns (report text, results).

    ``jobs > 1`` (or ``-1`` for one worker per CPU) runs every experiment
    matrix on one persistent process pool, reused across every figure and
    table of the campaign; result ordering is unaffected.  ``store``
    persists each run under its content hash, so an interrupted or
    repeated campaign skips everything already computed.
    """
    cluster_objs = [get_cluster(c) for c in
                    (clusters or list(GRID5000_CLUSTERS))]
    headline = GRILLON if GRILLON in cluster_objs else cluster_objs[0]
    with ExperimentRunner(progress=progress, jobs=jobs, store=store) as runner:
        return _run_campaign(runner, cluster_objs, headline, fraction,
                             skip_sweeps=skip_sweeps, progress=progress,
                             store=store)


def _run_campaign(
    runner: ExperimentRunner,
    cluster_objs: list,
    headline,
    fraction: float,
    *,
    skip_sweeps: bool,
    progress: bool,
    store: ResultStore | None,
) -> tuple[str, list]:
    scenarios = subsample(all_scenarios(), fraction)
    sections: list[str] = [
        f"RATS reproduction campaign — {len(scenarios)} of 557 "
        f"configurations (fraction {fraction:g}), clusters: "
        f"{', '.join(c.name for c in cluster_objs)}",
    ]
    t0 = time.time()

    def log(msg: str) -> None:
        if progress:
            print(f"[{time.time() - t0:7.1f}s] {msg}", file=sys.stderr,
                  flush=True)

    sections.append(table1_communication_matrix())
    sections.append(table2_clusters(cluster_objs))
    sections.append(table3_scenarios())

    log(f"figures 2-3: naive RATS vs HCPA on {headline.name}")
    fig2, fig3, _ = figure2_3_naive(scenarios, headline, runner=runner)
    sections.extend([fig2.render(), fig3.render()])

    if not skip_sweeps:
        by_family = scenarios_by_family()
        ffts = subsample(by_family["fft"], max(fraction, 6 / 100))
        log(f"figure 4: delta sweep over {len(ffts)} FFT DAGs")
        fig4, _ = figure4_delta_surface(ffts, headline, runner=runner)
        sections.append(fig4.render())

        irr = subsample(by_family["irregular"], max(fraction * 0.5, 8 / 324))
        log(f"figure 5: rho sweep over {len(irr)} irregular DAGs")
        fig5, _ = figure5_rho_curves(irr, headline, runner=runner)
        sections.append(fig5.render())

    log(f"figures 6-7: tuned RATS vs HCPA on {headline.name}")
    fig6, fig7, _ = figure6_7_tuned(scenarios, headline, runner=runner)
    sections.extend([fig6.render(), fig7.render()])

    log("tables V-VI: tuned campaign on all clusters")
    specs = [
        baseline_spec("hcpa", label="HCPA"),
        rats_spec(tuned=True, strategy="delta", label="delta"),
        rats_spec(tuned=True, strategy="timecost", label="time-cost"),
    ]
    results = runner.run_matrix(scenarios, cluster_objs, specs)
    algos = [s.label for s in specs]
    names = [c.name for c in cluster_objs]
    sections.append(table5_pairwise(results, algos, names))
    sections.append(table6_degradation(results, algos, names))

    if store is not None:
        log(f"store: {store.stats.describe()} "
            f"({store.stats.puts} persisted)")
    log("done")
    report = ("\n\n" + "=" * 78 + "\n\n").join(sections)
    return report, results


def add_campaign_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the campaign options (shared with ``python -m repro``)."""
    parser.add_argument("--fraction", type=float, default=0.06,
                        help="stratified fraction of the 557 configurations")
    parser.add_argument("--full", action="store_true",
                        help="run the full 557 configurations")
    parser.add_argument("--clusters", nargs="*", default=None,
                        metavar="NAME",
                        help="subset of the registered platforms "
                             "(default: chti grillon grelon)")
    parser.add_argument("--skip-sweeps", action="store_true",
                        help="skip the Figure 4/5 parameter sweeps")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="workers of the campaign-wide persistent "
                             "process pool (-1 = one per CPU; default: "
                             "serial)")
    parser.add_argument("--store", type=Path, default=None, metavar="PATH",
                        help="persist every run in a JSON-Lines result "
                             "store keyed by content hash")
    parser.add_argument("--resume", action="store_true",
                        help="continue into an existing --store file, "
                             "skipping all runs it already holds")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the report to this file")
    parser.add_argument("--results-json", type=Path, default=None,
                        help="persist raw RunResults as JSON")
    parser.add_argument("--quiet", action="store_true")


def run_from_args(args: argparse.Namespace) -> int:
    """Execute the campaign from parsed :func:`add_campaign_arguments`."""
    fraction = 1.0 if args.full else args.fraction
    store = open_cli_store(args.store, args.resume)
    try:
        report, results = run_campaign(
            fraction,
            args.clusters,
            skip_sweeps=args.skip_sweeps,
            progress=not args.quiet,
            jobs=args.jobs,
            store=store,
        )
    finally:
        if store is not None:
            print(f"store {args.store}: {store.stats.describe()}",
                  file=sys.stderr, flush=True)
            store.close()
    if args.out:
        args.out.write_text(report + "\n")
        if not args.quiet:
            print(f"report written to {args.out}", file=sys.stderr)
    else:
        print(report)
    if args.results_json:
        save_results(results, args.results_json)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.campaign",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    add_campaign_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
