"""One-shot reproduction campaign: regenerate the paper's evaluation.

Run as a module::

    python -m repro.experiments.campaign --fraction 0.06
    python -m repro.experiments.campaign --full --out report.txt
    python -m repro.experiments.campaign --clusters grillon --skip-sweeps
    python -m repro.experiments.campaign --shard 1/2 --store a.sqlite

The campaign is a declarative :class:`~repro.experiments.plan.CampaignPlan`
over six stages — the preamble, Tables I–III (static), Figures 2–3 (naive
parameters on the headline cluster), Figures 4–5 (parameter sweeps),
Figures 6–7 (tuned parameters) and Tables V–VI (three-cluster
pairwise/degradation study).  Compiling the plan deduplicates every run
shared between stages (sweep points reuse the baseline, the tables reuse
the headline-cluster figures), executing it streams the unique runs
through the store-aware runner, and each stage then renders its report
sections from the shared result pool.

``--shard i/n`` executes only a deterministic slice of the deduplicated
run set into ``--store`` (no report); ``repro merge`` recombines shard
stores, after which a ``--resume`` replay renders the full report with
zero fresh simulations.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments.figures import (
    figure2_3_stage,
    figure4_stage,
    figure5_stage,
    figure6_7_stage,
)
from repro.experiments.plan import CampaignPlan, PlanExecution, Stage, parse_shard
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenarios import (
    all_scenarios,
    scenarios_by_family,
    subsample,
)
from repro.experiments.store import ResultStore, open_store
from repro.experiments.tables import static_tables_stage, tables5_6_stage
from repro.platforms.grid5000 import GRID5000_CLUSTERS, GRILLON, get_cluster
from repro.scheduling.serialize import save_results

__all__ = ["build_campaign_plan", "run_campaign", "add_campaign_arguments",
           "run_from_args", "main", "open_cli_store"]

#: Stage holding the Tables V–VI matrix — the campaign's raw-result export.
RESULTS_STAGE = "tables V-VI"


def open_cli_store(path: Path | None, resume: bool) -> ResultStore | None:
    """Open the ``--store`` / ``--resume`` pair with safe CLI semantics.

    The backend follows the path suffix (``.sqlite``/``.sqlite3``/``.db``
    → SQLite, anything else → JSON-Lines).  ``--resume`` without
    ``--store`` is an error.  A non-empty store without ``--resume`` is
    also an error: silently reusing stale results from a forgotten file
    would be indistinguishable from a fresh run, so continuing an
    interrupted campaign must be asked for explicitly.
    """
    if path is None:
        if resume:
            raise SystemExit("--resume requires --store PATH")
        return None
    existed = path.exists()
    store = open_store(path)
    if not resume and existed and len(store) > 0:
        store.close()
        raise SystemExit(
            f"store {path} already holds results; pass --resume to skip "
            "everything already computed (or delete the file)")
    return store


def build_campaign_plan(
    fraction: float = 0.06,
    clusters: list[str] | None = None,
    *,
    skip_sweeps: bool = False,
) -> CampaignPlan:
    """The reproduction campaign as a declarative stage list.

    Pure plan construction — nothing runs.  Compile it to see the
    deduplicated run set; execute it (optionally sharded) to fill a store
    and render the report.
    """
    cluster_objs = [get_cluster(c) for c in
                    (clusters or list(GRID5000_CLUSTERS))]
    headline = GRILLON if GRILLON in cluster_objs else cluster_objs[0]
    scenarios = subsample(all_scenarios(), fraction)

    header = (f"RATS reproduction campaign — {len(scenarios)} of 557 "
              f"configurations (fraction {fraction:g}), clusters: "
              f"{', '.join(c.name for c in cluster_objs)}")
    plan = CampaignPlan()
    plan.add(Stage(name="preamble", artifact=lambda _results: [header]))
    plan.add(static_tables_stage(cluster_objs))
    plan.add(figure2_3_stage(scenarios, headline))
    if not skip_sweeps:
        by_family = scenarios_by_family()
        ffts = subsample(by_family["fft"], max(fraction, 6 / 100))
        plan.add(figure4_stage(ffts, headline))
        irr = subsample(by_family["irregular"], max(fraction * 0.5, 8 / 324))
        plan.add(figure5_stage(irr, headline))
    plan.add(figure6_7_stage(scenarios, headline))
    plan.add(tables5_6_stage(scenarios, cluster_objs))
    return plan


def _execute_plan(
    plan: CampaignPlan,
    *,
    shard: tuple[int, int] | None,
    progress: bool,
    jobs: int,
    store: ResultStore | None,
) -> PlanExecution:
    """Compile and run a campaign plan with CLI-style progress logging."""
    t0 = time.time()

    def log(msg: str) -> None:
        if progress:
            print(f"[{time.time() - t0:7.1f}s] {msg}", file=sys.stderr,
                  flush=True)

    compiled = plan.compile()
    log(f"plan: {compiled.describe()}")
    for line in compiled.describe_stages():
        log(f"  {line}")
    if shard is not None:
        owned = compiled.shard(*shard)
        log(f"shard {shard[0] + 1}/{shard[1]}: {len(owned)} of "
            f"{compiled.unique_runs} unique runs")
    with ExperimentRunner(progress=progress, jobs=jobs,
                          store=store) as runner:
        execution = compiled.execute(runner, shard=shard)
    log("done")
    return execution


def run_campaign(
    fraction: float = 0.06,
    clusters: list[str] | None = None,
    *,
    skip_sweeps: bool = False,
    progress: bool = True,
    jobs: int = 1,
    store: ResultStore | None = None,
) -> tuple[str, list]:
    """Execute the reproduction campaign; returns (report text, results).

    The returned results are the Tables V–VI matrix (the campaign's
    raw-result export).  ``jobs > 1`` (or ``-1`` for one worker per CPU)
    runs the whole deduplicated plan on one persistent process pool;
    ``store`` persists each run under its content hash, so an interrupted
    or repeated campaign skips everything already computed.
    """
    plan = build_campaign_plan(fraction, clusters, skip_sweeps=skip_sweeps)
    execution = _execute_plan(plan, shard=None, progress=progress,
                              jobs=jobs, store=store)
    return execution.report(), execution.stage_results(RESULTS_STAGE)


def add_campaign_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the campaign options (shared with ``python -m repro``)."""
    parser.add_argument("--fraction", type=float, default=0.06,
                        help="stratified fraction of the 557 configurations")
    parser.add_argument("--full", action="store_true",
                        help="run the full 557 configurations")
    parser.add_argument("--clusters", nargs="*", default=None,
                        metavar="NAME",
                        help="subset of the registered platforms "
                             "(default: chti grillon grelon)")
    parser.add_argument("--skip-sweeps", action="store_true",
                        help="skip the Figure 4/5 parameter sweeps")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="workers of the campaign-wide persistent "
                             "process pool (-1 = one per CPU; default: "
                             "serial)")
    parser.add_argument("--store", type=Path, default=None, metavar="PATH",
                        help="persist every run in a result store keyed by "
                             "content hash (JSON-Lines, or SQLite for "
                             ".sqlite/.db paths)")
    parser.add_argument("--resume", action="store_true",
                        help="continue into an existing --store file, "
                             "skipping all runs it already holds")
    parser.add_argument("--shard", type=parse_shard, default=None,
                        metavar="I/N",
                        help="execute only shard I of N of the deduplicated "
                             "run set into --store (no report; recombine "
                             "the shard stores with `repro merge`)")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the report to this file")
    parser.add_argument("--results-json", type=Path, default=None,
                        help="persist raw RunResults as JSON")
    parser.add_argument("--quiet", action="store_true")


def run_from_args(args: argparse.Namespace) -> int:
    """Execute the campaign from parsed :func:`add_campaign_arguments`."""
    fraction = 1.0 if args.full else args.fraction
    shard = getattr(args, "shard", None)
    if shard is not None and args.store is None:
        raise SystemExit("--shard requires --store PATH: a shard's only "
                         "output is the store slice it fills")
    store = open_cli_store(args.store, args.resume)
    try:
        if shard is None:
            report, results = run_campaign(
                fraction,
                args.clusters,
                skip_sweeps=args.skip_sweeps,
                progress=not args.quiet,
                jobs=args.jobs,
                store=store,
            )
        else:
            plan = build_campaign_plan(fraction, args.clusters,
                                       skip_sweeps=args.skip_sweeps)
            _execute_plan(plan, shard=shard, progress=not args.quiet,
                          jobs=args.jobs, store=store)
            report, results = None, None
    finally:
        if store is not None:
            # the single place store statistics are reported
            print(f"store {args.store}: {store.stats.describe()} "
                  f"({store.stats.puts} persisted)",
                  file=sys.stderr, flush=True)
            store.close()
    if report is None:
        if not args.quiet:
            print(f"shard {shard[0] + 1}/{shard[1]} complete; merge the "
                  "shard stores with `repro merge` and replay with "
                  "--resume for the report", file=sys.stderr)
        return 0
    if args.out:
        args.out.write_text(report + "\n")
        if not args.quiet:
            print(f"report written to {args.out}", file=sys.stderr)
    else:
        print(report)
    if args.results_json:
        save_results(results, args.results_json)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.campaign",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    add_campaign_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
