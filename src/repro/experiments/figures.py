"""Figure data builders for the paper's evaluation (Figures 2–7).

Each figure exists in two forms:

* an imperative function (``figure2_3_naive`` …) that runs the figure's
  matrix through a runner and returns :class:`FigureData` — the original
  API, kept for direct use;
* a declarative *stage producer* (``figure2_3_stage`` …) returning a
  :class:`~repro.experiments.plan.Stage` that declares the same matrix
  and renders the same sections from a shared result pool — the form a
  :class:`~repro.experiments.plan.CampaignPlan` deduplicates across
  stages, so sweep points reuse runs other figures already own.

Both forms share the same result→figure builders, so a plan-based
campaign report is byte-identical to the imperative one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.params import NAIVE_DELTA, NAIVE_TIMECOST
from repro.experiments.metrics import relative_series, series_stats
from repro.experiments.plan import Stage
from repro.experiments.runner import (
    AlgorithmSpec,
    ExperimentRunner,
    RunResult,
    baseline_spec,
    rats_spec,
)
from repro.experiments.scenarios import Scenario
from repro.experiments.tuning import (
    DEFAULT_MAXDELTAS,
    DEFAULT_MINDELTAS,
    DEFAULT_MINRHOS,
    SweepResult,
    delta_grid,
    delta_sweep,
    rho_grid,
    rho_sweep,
    sweep_from_results,
)
from repro.platforms.cluster import Cluster
from repro.viz.ascii_plot import ascii_curves, ascii_surface

__all__ = [
    "FigureData",
    "figure2_3_naive",
    "figure4_delta_surface",
    "figure5_rho_curves",
    "figure6_7_tuned",
    "relative_figure",
    "figure2_3_stage",
    "figure4_stage",
    "figure5_stage",
    "figure6_7_stage",
]


@dataclass
class FigureData:
    """Series of one figure plus a terminal renderer."""

    name: str
    description: str
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    stats: dict[str, str] = field(default_factory=dict)
    kind: str = "curves"  # "curves" | "surface"
    surface: dict[tuple[float, float], float] = field(default_factory=dict)
    axis_names: tuple[str, str] = ("x", "y")

    def render(self) -> str:
        title = f"{self.name}: {self.description}"
        if self.kind == "surface":
            body = ascii_surface(self.surface, x_name=self.axis_names[0],
                                 y_name=self.axis_names[1], title=title)
        else:
            body = ascii_curves(self.series, title=title,
                                y_label=self.axis_names[1])
        stat_lines = [f"  {label}: {text}" for label, text in self.stats.items()]
        return "\n".join([body] + stat_lines)


def relative_figure(
    results: list[RunResult],
    labels: list[str],
    baseline: str,
    metric: str,
    name: str,
    description: str,
) -> FigureData:
    """Build a sorted relative-ratio figure (the Figure 2/3/6/7 shape)."""
    fig = FigureData(name=name, description=description,
                     axis_names=("DAG rank", f"{metric} relative to {baseline}"))
    for label in labels:
        ratios = relative_series(results, label, baseline, metric, sort=True)
        fig.series[label] = [(float(i), v) for i, v in enumerate(ratios)]
        fig.stats[label] = series_stats(ratios).describe()
    return fig


# --------------------------------------------------------------------- #
# Figures 2/3 and 6/7: relative makespan / work vs HCPA
# --------------------------------------------------------------------- #
def _relative_pair(results: list[RunResult], labels: list[str],
                   numbers: tuple[str, str], flavour: str,
                   cluster_name: str) -> tuple[FigureData, FigureData]:
    """The makespan + work figure pair shared by Figs 2/3 and 6/7."""
    ms = relative_figure(
        results, labels, "HCPA", "makespan", numbers[0],
        f"relative makespan, {flavour} parameters, {cluster_name}")
    work = relative_figure(
        results, labels, "HCPA", "work", numbers[1],
        f"relative work, {flavour} parameters, {cluster_name}")
    return ms, work


def _naive_specs() -> list[AlgorithmSpec]:
    return [
        baseline_spec("hcpa", label="HCPA"),
        rats_spec(NAIVE_DELTA, label="Delta"),
        rats_spec(NAIVE_TIMECOST, label="Time-cost"),
    ]


def _tuned_specs(
    specs: tuple[AlgorithmSpec, ...] | None,
) -> list[AlgorithmSpec]:
    if specs is None:
        specs = (
            rats_spec(tuned=True, strategy="delta", label="Delta"),
            rats_spec(tuned=True, strategy="timecost", label="Time-cost"),
        )
    return [baseline_spec("hcpa", label="HCPA"), *specs]


def figure2_3_stage(scenarios: list[Scenario], cluster: Cluster) -> Stage:
    """Figures 2–3 as a declarative campaign stage."""
    specs = _naive_specs()

    def artifact(results: list[RunResult]) -> list[str]:
        fig2, fig3 = _relative_pair(results, ["Delta", "Time-cost"],
                                    ("Figure 2", "Figure 3"), "naive",
                                    cluster.name)
        return [fig2.render(), fig3.render()]

    return Stage(name="figures 2-3", scenarios=tuple(scenarios),
                 clusters=(cluster,), specs=tuple(specs), artifact=artifact)


def figure2_3_naive(
    scenarios: list[Scenario],
    cluster: Cluster,
    runner: ExperimentRunner | None = None,
) -> tuple[FigureData, FigureData, list[RunResult]]:
    """Figures 2 and 3: naive-parameter RATS vs HCPA on one cluster.

    Returns (figure2, figure3, raw results) — figure 2 is the relative
    makespan, figure 3 the relative work, both sorted independently.
    """
    runner = runner or ExperimentRunner()
    results = runner.run_matrix(scenarios, [cluster], _naive_specs())
    fig2, fig3 = _relative_pair(results, ["Delta", "Time-cost"],
                                ("Figure 2", "Figure 3"), "naive",
                                cluster.name)
    return fig2, fig3, results


def figure6_7_stage(
    scenarios: list[Scenario],
    cluster: Cluster,
    specs: tuple[AlgorithmSpec, ...] | None = None,
) -> Stage:
    """Figures 6–7 as a declarative campaign stage."""
    all_specs = _tuned_specs(specs)
    labels = [s.label for s in all_specs[1:]]

    def artifact(results: list[RunResult]) -> list[str]:
        fig6, fig7 = _relative_pair(results, labels,
                                    ("Figure 6", "Figure 7"), "tuned",
                                    cluster.name)
        return [fig6.render(), fig7.render()]

    return Stage(name="figures 6-7", scenarios=tuple(scenarios),
                 clusters=(cluster,), specs=tuple(all_specs),
                 artifact=artifact)


def figure6_7_tuned(
    scenarios: list[Scenario],
    cluster: Cluster,
    runner: ExperimentRunner | None = None,
    specs: tuple[AlgorithmSpec, ...] | None = None,
) -> tuple[FigureData, FigureData, list[RunResult]]:
    """Figures 6 and 7: Table IV-tuned RATS vs HCPA on one cluster."""
    runner = runner or ExperimentRunner()
    all_specs = _tuned_specs(specs)
    results = runner.run_matrix(scenarios, [cluster], all_specs)
    labels = [s.label for s in all_specs[1:]]
    fig6, fig7 = _relative_pair(results, labels, ("Figure 6", "Figure 7"),
                                "tuned", cluster.name)
    return fig6, fig7, results


# --------------------------------------------------------------------- #
# Figures 4/5: the parameter sweeps
# --------------------------------------------------------------------- #
def _figure4_from_sweep(sweep: SweepResult, cluster_name: str) -> FigureData:
    fig = FigureData(
        name="Figure 4",
        description=(f"avg makespan relative to {sweep.baseline} over "
                     f"(mindelta, maxdelta), {cluster_name}"),
        kind="surface",
        surface=dict(sweep.averages),
        axis_names=("mindelta", "maxdelta"),
    )
    best = sweep.best_point()
    fig.stats["best"] = (f"mindelta={best[0]:g}, maxdelta={best[1]:g} "
                         f"-> avg ratio {sweep.averages[best]:.3f}")
    return fig


def _figure5_from_sweep(sweep: SweepResult, cluster_name: str) -> FigureData:
    fig = FigureData(
        name="Figure 5",
        description=(f"avg makespan relative to {sweep.baseline} vs minrho, "
                     f"{cluster_name}"),
        axis_names=("minrho", "avg relative makespan"),
    )
    for allow_pack in (True, False):
        pts = sorted(
            (rho, avg) for (rho, pack), avg in sweep.averages.items()
            if pack == allow_pack
        )
        if pts:
            label = "packing allowed" if allow_pack else "no packing allowed"
            fig.series[label] = pts
    best = sweep.best_point()
    fig.stats["best"] = (f"minrho={best[0]:g} "
                         f"({'packing' if best[1] else 'no packing'}) "
                         f"-> avg ratio {sweep.averages[best]:.3f}")
    return fig


def figure4_stage(
    scenarios: list[Scenario],
    cluster: Cluster,
    *,
    mindeltas: tuple[float, ...] = DEFAULT_MINDELTAS,
    maxdeltas: tuple[float, ...] = DEFAULT_MAXDELTAS,
    baseline: AlgorithmSpec | None = None,
) -> Stage:
    """Figure 4 as a declarative sweep stage.

    Declares the whole (baseline + grid) matrix at once: the baseline runs
    once per scenario instead of once per grid point, and every cell
    deduplicates against other stages through the campaign plan.
    """
    base = baseline or baseline_spec("hcpa")
    grid = delta_grid(mindeltas, maxdeltas)

    def artifact(results: list[RunResult]) -> list[str]:
        sweep = sweep_from_results(results, grid, cluster=cluster.name,
                                   baseline=base.label)
        return [_figure4_from_sweep(sweep, cluster.name).render()]

    return Stage(name="figure 4", scenarios=tuple(scenarios),
                 clusters=(cluster,),
                 specs=(base, *(spec for _, spec in grid)),
                 artifact=artifact)


def figure4_delta_surface(
    scenarios: list[Scenario],
    cluster: Cluster,
    runner: ExperimentRunner | None = None,
    **sweep_kwargs,
) -> tuple[FigureData, SweepResult]:
    """Figure 4: (mindelta, maxdelta) surface of average relative makespan."""
    sweep = delta_sweep(scenarios, cluster, runner=runner, **sweep_kwargs)
    return _figure4_from_sweep(sweep, cluster.name), sweep


def figure5_stage(
    scenarios: list[Scenario],
    cluster: Cluster,
    *,
    minrhos: tuple[float, ...] = DEFAULT_MINRHOS,
    packing_options: tuple[bool, ...] = (True, False),
    baseline: AlgorithmSpec | None = None,
) -> Stage:
    """Figure 5 as a declarative sweep stage."""
    base = baseline or baseline_spec("hcpa")
    grid = rho_grid(minrhos, packing_options)

    def artifact(results: list[RunResult]) -> list[str]:
        sweep = sweep_from_results(results, grid, cluster=cluster.name,
                                   baseline=base.label)
        return [_figure5_from_sweep(sweep, cluster.name).render()]

    return Stage(name="figure 5", scenarios=tuple(scenarios),
                 clusters=(cluster,),
                 specs=(base, *(spec for _, spec in grid)),
                 artifact=artifact)


def figure5_rho_curves(
    scenarios: list[Scenario],
    cluster: Cluster,
    runner: ExperimentRunner | None = None,
    **sweep_kwargs,
) -> tuple[FigureData, SweepResult]:
    """Figure 5: average relative makespan vs minrho, packing on/off."""
    sweep = rho_sweep(scenarios, cluster, runner=runner, **sweep_kwargs)
    return _figure5_from_sweep(sweep, cluster.name), sweep
