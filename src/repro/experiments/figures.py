"""Figure data builders for the paper's evaluation (Figures 2–7).

Each function returns a :class:`FigureData` holding the raw series plus a
``render()`` producing an ASCII rendition; the benchmark harness prints the
numbers the paper's plots encode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.params import NAIVE_DELTA, NAIVE_TIMECOST
from repro.experiments.metrics import relative_series, series_stats
from repro.experiments.runner import (
    AlgorithmSpec,
    ExperimentRunner,
    RunResult,
    baseline_spec,
    rats_spec,
)
from repro.experiments.scenarios import Scenario
from repro.experiments.tuning import SweepResult, delta_sweep, rho_sweep
from repro.platforms.cluster import Cluster
from repro.viz.ascii_plot import ascii_curves, ascii_surface

__all__ = [
    "FigureData",
    "figure2_3_naive",
    "figure4_delta_surface",
    "figure5_rho_curves",
    "figure6_7_tuned",
    "relative_figure",
]


@dataclass
class FigureData:
    """Series of one figure plus a terminal renderer."""

    name: str
    description: str
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    stats: dict[str, str] = field(default_factory=dict)
    kind: str = "curves"  # "curves" | "surface"
    surface: dict[tuple[float, float], float] = field(default_factory=dict)
    axis_names: tuple[str, str] = ("x", "y")

    def render(self) -> str:
        title = f"{self.name}: {self.description}"
        if self.kind == "surface":
            body = ascii_surface(self.surface, x_name=self.axis_names[0],
                                 y_name=self.axis_names[1], title=title)
        else:
            body = ascii_curves(self.series, title=title,
                                y_label=self.axis_names[1])
        stat_lines = [f"  {label}: {text}" for label, text in self.stats.items()]
        return "\n".join([body] + stat_lines)


def relative_figure(
    results: list[RunResult],
    labels: list[str],
    baseline: str,
    metric: str,
    name: str,
    description: str,
) -> FigureData:
    """Build a sorted relative-ratio figure (the Figure 2/3/6/7 shape)."""
    fig = FigureData(name=name, description=description,
                     axis_names=("DAG rank", f"{metric} relative to {baseline}"))
    for label in labels:
        ratios = relative_series(results, label, baseline, metric, sort=True)
        fig.series[label] = [(float(i), v) for i, v in enumerate(ratios)]
        fig.stats[label] = series_stats(ratios).describe()
    return fig


def figure2_3_naive(
    scenarios: list[Scenario],
    cluster: Cluster,
    runner: ExperimentRunner | None = None,
) -> tuple[FigureData, FigureData, list[RunResult]]:
    """Figures 2 and 3: naive-parameter RATS vs HCPA on one cluster.

    Returns (figure2, figure3, raw results) — figure 2 is the relative
    makespan, figure 3 the relative work, both sorted independently.
    """
    runner = runner or ExperimentRunner()
    base = baseline_spec("hcpa", label="HCPA")
    specs = [
        base,
        rats_spec(NAIVE_DELTA, label="Delta"),
        rats_spec(NAIVE_TIMECOST, label="Time-cost"),
    ]
    results = runner.run_matrix(scenarios, [cluster], specs)
    fig2 = relative_figure(
        results, ["Delta", "Time-cost"], "HCPA", "makespan",
        "Figure 2", f"relative makespan, naive parameters, {cluster.name}")
    fig3 = relative_figure(
        results, ["Delta", "Time-cost"], "HCPA", "work",
        "Figure 3", f"relative work, naive parameters, {cluster.name}")
    return fig2, fig3, results


def figure4_delta_surface(
    scenarios: list[Scenario],
    cluster: Cluster,
    runner: ExperimentRunner | None = None,
    **sweep_kwargs,
) -> tuple[FigureData, SweepResult]:
    """Figure 4: (mindelta, maxdelta) surface of average relative makespan."""
    sweep = delta_sweep(scenarios, cluster, runner=runner, **sweep_kwargs)
    fig = FigureData(
        name="Figure 4",
        description=(f"avg makespan relative to {sweep.baseline} over "
                     f"(mindelta, maxdelta), {cluster.name}"),
        kind="surface",
        surface=dict(sweep.averages),
        axis_names=("mindelta", "maxdelta"),
    )
    best = sweep.best_point()
    fig.stats["best"] = (f"mindelta={best[0]:g}, maxdelta={best[1]:g} "
                         f"-> avg ratio {sweep.averages[best]:.3f}")
    return fig, sweep


def figure5_rho_curves(
    scenarios: list[Scenario],
    cluster: Cluster,
    runner: ExperimentRunner | None = None,
    **sweep_kwargs,
) -> tuple[FigureData, SweepResult]:
    """Figure 5: average relative makespan vs minrho, packing on/off."""
    sweep = rho_sweep(scenarios, cluster, runner=runner, **sweep_kwargs)
    fig = FigureData(
        name="Figure 5",
        description=(f"avg makespan relative to {sweep.baseline} vs minrho, "
                     f"{cluster.name}"),
        axis_names=("minrho", "avg relative makespan"),
    )
    for allow_pack in (True, False):
        pts = sorted(
            (rho, avg) for (rho, pack), avg in sweep.averages.items()
            if pack == allow_pack
        )
        if pts:
            label = "packing allowed" if allow_pack else "no packing allowed"
            fig.series[label] = pts
    best = sweep.best_point()
    fig.stats["best"] = (f"minrho={best[0]:g} "
                         f"({'packing' if best[1] else 'no packing'}) "
                         f"-> avg ratio {sweep.averages[best]:.3f}")
    return fig, sweep


def figure6_7_tuned(
    scenarios: list[Scenario],
    cluster: Cluster,
    runner: ExperimentRunner | None = None,
    specs: tuple[AlgorithmSpec, ...] | None = None,
) -> tuple[FigureData, FigureData, list[RunResult]]:
    """Figures 6 and 7: Table IV-tuned RATS vs HCPA on one cluster."""
    runner = runner or ExperimentRunner()
    base = baseline_spec("hcpa", label="HCPA")
    if specs is None:
        specs = (
            rats_spec(tuned=True, strategy="delta", label="Delta"),
            rats_spec(tuned=True, strategy="timecost", label="Time-cost"),
        )
    results = runner.run_matrix(scenarios, [cluster], [base, *specs])
    labels = [s.label for s in specs]
    fig6 = relative_figure(
        results, labels, "HCPA", "makespan",
        "Figure 6", f"relative makespan, tuned parameters, {cluster.name}")
    fig7 = relative_figure(
        results, labels, "HCPA", "work",
        "Figure 7", f"relative work, tuned parameters, {cluster.name}")
    return fig6, fig7, results
