"""Substrate performance benchmarks and the ``repro bench`` harness.

The paper's whole evaluation (557 configurations) hinges on the simulate-
and-schedule substrate staying fast: flow-level fluid simulation re-solves
Max-Min rates at every event, and the RATS mapping step prices many
candidate placements per task.  This module measures those hot paths,
persists the numbers to a machine-readable ``BENCH_substrate.json``
(the perf trajectory future PRs regress against) and compares runs:
``repro bench --compare BASELINE.json`` exits non-zero when any benchmark
regressed beyond the threshold (25 % by default).

``--append`` records a *trajectory* instead of overwriting: the file
becomes ``{"schema": …, "entries": [entry, …]}`` with one entry per run,
each stamped with the current git revision — so per-commit history stays
inspectable.  ``--compare`` accepts either shape and reads a trajectory's
latest entry.

``profiled(top)`` is the shared cProfile wrapper behind the ``--profile``
flag of ``repro run`` / ``repro campaign``.

The numbers here are wall-clock on the current machine — compare only
against baselines recorded on the same hardware.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Mapping

__all__ = [
    "BENCH_SCHEMA",
    "DEFAULT_THRESHOLD",
    "dense_dag_schedule",
    "sparse_multicluster_schedule",
    "run_benchmarks",
    "compare_benchmarks",
    "write_results",
    "append_results",
    "latest_entry",
    "profiled",
    "main",
]

BENCH_SCHEMA = 1
DEFAULT_THRESHOLD = 0.25
DEFAULT_OUT = "BENCH_substrate.json"


# --------------------------------------------------------------------- #
# benchmark definitions
# --------------------------------------------------------------------- #
def dense_dag_schedule(n_tasks: int = 100, *, density: float = 0.8):
    """The canonical bench scenario: a dense irregular DAG on grillon.

    Shared by ``repro bench``, the pytest-benchmark suite and the golden
    simulator tests — all three must measure the *same* workload, so the
    shape lives in exactly one place.
    """
    from repro.experiments.scenarios import Scenario
    from repro.platforms.grid5000 import GRILLON
    from repro.scheduling.allocation import hcpa_allocation
    from repro.scheduling.mapping import ListScheduler

    sc = Scenario(family="irregular", n_tasks=n_tasks, width=0.5,
                  density=density, regularity=0.8, jump=2, sample=0)
    g = sc.build()
    model = GRILLON.performance_model()
    alloc = hcpa_allocation(g, model, GRILLON.num_procs).allocation
    return ListScheduler(g, GRILLON, model, alloc).run()


def sparse_multicluster_schedule(n_clusters: int = 12, chain_len: int = 40,
                                 free_steps: int = 5, m: float = 4.0e6):
    """A wide-but-sparse multi-cluster workload: independent pipelines.

    One pipeline per cluster, alternating a real 8→5-processor
    redistribution with ``free_steps`` same-set (free) hops, with
    rng-jittered task durations so the pipelines interleave instead of
    running in lock-step.  Concurrent transfers touch disjoint processor
    sets, so the active flows decompose into one link-connected component
    per cluster — the regime the lazy component-scoped Max-Min
    maintenance is built for (a dense single-cluster DAG degenerates to
    one component; this scenario keeps ~``n_clusters`` alive).  The 8→5
    shape is deliberate: ``gcd(8, 5) = 1`` keeps each redistribution's
    banded communication matrix link-connected, so a transfer is exactly
    one component (a ``gcd > 1`` band falls apart into numerically
    symmetric halves whose completions straddle one ulp).
    """
    from repro.dag.task import Task, TaskGraph
    from repro.platforms.cluster import Cluster
    from repro.platforms.multicluster import MultiClusterPlatform
    from repro.scheduling.schedule import Schedule, ScheduleEntry
    from repro.utils.rng import spawn_rng

    clusters = tuple(Cluster(name=f"c{i}", num_procs=16, speed_flops=3.0e9)
                     for i in range(n_clusters))
    platform = MultiClusterPlatform(clusters=clusters, name="sparse-grid")
    graph = TaskGraph(name="sparse-pipelines")
    schedule = Schedule(graph=graph, cluster=platform)
    model = platform.performance_model()
    rng = spawn_rng("sparse-multicluster-bench")
    period = free_steps + 1
    for c in range(n_clusters):
        off = platform.offsets[c]
        wide = tuple(range(off, off + 8))
        narrow = tuple(range(off + 8, off + 13))
        procs, side, prev, t_fin = wide, 0, None, 0.0
        for i in range(chain_len):
            # continuous jitter: near-tie completion times across
            # pipelines would otherwise depend on FP event coalescing
            flops = 1.2e9 * (1.0 + 0.2 * rng.random())
            task = Task(name=f"p{c}t{i}", data_elements=m, flops=flops,
                        alpha=0.0)
            graph.add_task(task)
            if i > 0:
                graph.add_edge(prev, task.name)
            if i > 0 and i % period == 0:
                side ^= 1
                procs = narrow if side else wide
            dur = model.time(task, len(procs))
            schedule.add(ScheduleEntry(task=task.name, procs=procs,
                                       start=t_fin, finish=t_fin + dur))
            t_fin += dur
            prev = task.name
    schedule.validate()
    return schedule


def large_platform_jobs(n_clusters: int = 128, procs: int = 192,
                        n_jobs: int = 352, chain_len: int = 30,
                        m: float = 4.0e6):
    """Many-cluster platform + per-cluster pipeline jobs for streaming.

    The regime ROADMAP item 4 targets: ≥10k links (128 fat clusters ×
    192 procs → 49,408 — a shared service grid where streaming jobs use
    a slice of each cluster, so per-solve cost is all about *not*
    touching platform-sized arrays), jobs landing round-robin across
    clusters so the
    live flow set stays component-sparse, and *every* hop a real 16→11
    redistribution (``gcd = 1`` keeps each banded matrix one component,
    as in :func:`sparse_multicluster_schedule`).  Overlapping jobs on
    one cluster merge components; their staggered drains are what the
    dynamic split machinery recovers from.  Returns the platform and
    one t=0-based :class:`Schedule` per job (the live engine reads only
    durations and per-processor order, so injection time is free).
    """
    from repro.dag.task import Task, TaskGraph
    from repro.platforms.cluster import Cluster
    from repro.platforms.multicluster import MultiClusterPlatform
    from repro.scheduling.schedule import Schedule, ScheduleEntry
    from repro.utils.rng import spawn_rng

    clusters = tuple(Cluster(name=f"c{i}", num_procs=procs,
                             speed_flops=3.0e9)
                     for i in range(n_clusters))
    platform = MultiClusterPlatform(clusters=clusters, name="large-grid")
    model = platform.performance_model()
    rng = spawn_rng("large-platform-bench")
    jobs = []
    for j in range(n_jobs):
        off = platform.offsets[j % n_clusters]
        wide = tuple(range(off, off + 16))
        narrow = tuple(range(off + 16, off + 27))
        graph = TaskGraph(name=f"job{j}")
        schedule = Schedule(graph=graph, cluster=platform)
        procs_now, side, prev, t_fin = wide, 0, None, 0.0
        for i in range(chain_len):
            # continuous jitter: keeps concurrent pipelines off exact
            # event ties (see sparse_multicluster_schedule)
            flops = 1.2e9 * (1.0 + 0.2 * rng.random())
            task = Task(name=f"t{i}", data_elements=m, flops=flops,
                        alpha=0.0)
            graph.add_task(task)
            if i > 0:
                graph.add_edge(prev, task.name)
                side ^= 1
                procs_now = narrow if side else wide
            dur = model.time(task, len(procs_now))
            schedule.add(ScheduleEntry(task=task.name, procs=procs_now,
                                       start=t_fin, finish=t_fin + dur))
            t_fin += dur
            prev = task.name
        schedule.validate()
        jobs.append(schedule)
    return platform, jobs


def _bench_simulator(n_tasks: int) -> tuple[Callable, dict]:
    from repro.simulation.simulator import FluidSimulator, simulate

    schedule = dense_dag_schedule(n_tasks)

    def run():
        return simulate(schedule)

    res = run()  # warm-up, also yields metadata
    full = FluidSimulator(schedule, lazy=False).run()
    return run, {"n_tasks": n_tasks, "events": res.events,
                 "maxmin_solves": res.maxmin_solves,
                 "solves_full": res.solves_full,
                 "solves_component": res.solves_component,
                 "solves_saved": full.solves_component - res.solves_component,
                 "makespan": res.makespan}


def _bench_component_reuse(n_clusters: int) -> tuple[Callable, dict]:
    from repro.simulation.simulator import FluidSimulator, simulate

    schedule = sparse_multicluster_schedule(n_clusters=n_clusters)

    def run():
        return simulate(schedule)

    res = run()  # warm-up, also yields metadata
    full = FluidSimulator(schedule, lazy=False).run()
    return run, {"n_clusters": n_clusters, "events": res.events,
                 "solves_full": res.solves_full,
                 "solves_component": res.solves_component,
                 "solves_saved": full.solves_component - res.solves_component,
                 "solve_ratio": res.solves_component / max(1, res.events),
                 "makespan": res.makespan}


def _bench_maxmin(n_flows: int) -> tuple[Callable, dict]:
    import numpy as np

    from repro.network.maxmin import maxmin_rates_bundled
    from repro.utils.rng import spawn_rng

    rng = spawn_rng("maxmin-bench")
    n_links = 250
    inner = 50  # sub-millisecond solve: batch it so rounds are stable
    capacities = np.full(n_links, 1.25e8)
    flows = [[int(a), int(b)]
             for a, b in rng.integers(0, n_links, size=(n_flows, 2))]

    def run():
        for _ in range(inner):
            maxmin_rates_bundled(flows, capacities)

    return run, {"n_flows": n_flows, "n_links": n_links, "inner": inner}


def _bench_rats_mapping(n_tasks: int) -> tuple[Callable, dict]:
    from repro.core.params import NAIVE_TIMECOST
    from repro.core.rats import rats_schedule
    from repro.experiments.scenarios import Scenario
    from repro.platforms.grid5000 import GRILLON
    from repro.scheduling.allocation import hcpa_allocation

    sc = Scenario(family="layered", n_tasks=n_tasks, width=0.8, density=0.8,
                  regularity=0.8, sample=0)
    g = sc.build()
    model = GRILLON.performance_model()
    alloc = hcpa_allocation(g, model, GRILLON.num_procs).allocation

    inner = 10

    def run():
        # a fresh scheduler per call: pricing caches must not leak
        # between rounds, the estimator rebuild is part of the cost
        for _ in range(inner):
            rats_schedule(g, GRILLON, NAIVE_TIMECOST, allocation=alloc)

    return run, {"n_tasks": n_tasks, "inner": inner}


def _bench_hcpa(n_tasks: int) -> tuple[Callable, dict]:
    from repro.experiments.scenarios import Scenario
    from repro.platforms.grid5000 import GRILLON
    from repro.scheduling.allocation import hcpa_allocation

    sc = Scenario(family="layered", n_tasks=n_tasks, width=0.8, density=0.8,
                  regularity=0.8, sample=0)
    g = sc.build()
    model = GRILLON.performance_model()

    def run():
        return hcpa_allocation(g, model, GRILLON.num_procs)

    return run, {"n_tasks": n_tasks}


def _bench_online_stream(n_jobs: int,
                         n_clusters: int = 12) -> tuple[Callable, dict]:
    """Online arrivals on the sparse multi-cluster platform.

    A Poisson stream of small layered DAGs admitted, scheduled against
    the residual platform and injected into the live fluid engine —
    traffic, not a batch.  Concurrent jobs land on different clusters, so
    the active flows stay component-sparse: the regime the lazy Max-Min
    maintenance and the component-scoped injection re-solves target.
    """
    from repro.experiments.runner import AlgorithmSpec
    from repro.experiments.scenarios import Scenario
    from repro.online.engine import OnlineSimulator
    from repro.online.stream import PoissonStream
    from repro.platforms.cluster import Cluster
    from repro.platforms.multicluster import MultiClusterPlatform

    clusters = tuple(Cluster(name=f"c{i}", num_procs=16, speed_flops=3.0e9)
                     for i in range(n_clusters))
    platform = MultiClusterPlatform(clusters=clusters, name="sparse-grid")
    scenarios = [Scenario(family="layered", n_tasks=12, width=0.5,
                          density=0.2, regularity=0.8, sample=s)
                 for s in range(4)]
    stream = PoissonStream(rate=2.0, n_jobs=n_jobs, scenarios=scenarios,
                           spec=AlgorithmSpec(label="hcpa"), seed=0)

    def run():
        return OnlineSimulator(platform).run(stream)

    res = run()  # warm-up, also yields metadata
    # the threaded solver must replay the serial run byte-for-byte:
    # same events, same makespan, same per-job records
    thr = OnlineSimulator(platform, solver_threads=4).run(stream)
    assert thr.events == res.events and thr.makespan == res.makespan
    assert thr.records == res.records
    return run, {"n_jobs": n_jobs, "n_clusters": n_clusters,
                 "events": res.events,
                 "solves_full": res.solves_full,
                 "solves_component": res.solves_component,
                 "makespan": res.makespan,
                 "jct_p50": res.metrics.jct["p50"],
                 # scheduler vs simulator attribution for the trajectory
                 "sched_s": res.sched_s,
                 "sim_s": res.sim_s,
                 # sim_s split further: Max-Min solve time vs event loop
                 "solve_s": res.solve_s,
                 "event_s": res.event_s}


def _bench_large_platform_stream(n_clusters: int, n_jobs: int,
                                 chain_len: int) -> tuple[Callable, dict]:
    """Online Poisson stream on a ≥10k-link grid — the leg-3 showcase.

    Pipelines stream into a persistent :class:`LiveFluidEngine` at
    Poisson arrivals and drain; ~100k+ events at full size.  On a
    platform this wide, per-solve cost is dominated by the O(total
    links) ``bincount``/``levels`` term unless solves are component-
    local, so this bench is where the local link indexing and dynamic
    splits earn their keep; ``local_global_speedup`` in the metadata
    records the measured ratio against the same engine with both knobs
    off (the pre-PR global-array solve cost).
    """
    import numpy as np

    from repro.online.live import LiveFluidEngine
    from repro.utils.rng import spawn_rng

    platform, jobs = large_platform_jobs(n_clusters=n_clusters,
                                         n_jobs=n_jobs,
                                         chain_len=chain_len)
    rng = spawn_rng("large-platform-arrivals")
    arrivals = np.cumsum(rng.exponential(0.35, len(jobs)))

    def _drive(**knobs):
        eng = LiveFluidEngine(platform, **knobs)
        for j, schedule in enumerate(jobs):
            t = float(arrivals[j])
            eng.advance_until(t)
            eng.inject(f"job{j}", schedule, t)
        eng.drain()
        return eng

    def run():
        return _drive()

    ref = _drive(collect_flow_traces=True)
    #   ^ untimed warm-up: fills the topology route caches, which
    #     otherwise dominate whichever run goes first; doubles as the
    #     trace reference for the identity assertions below
    t0 = time.perf_counter()
    eng = run()
    t_local = time.perf_counter() - t0
    t0 = time.perf_counter()
    base = _drive(local_index=False, split_threshold=None)
    t_global = time.perf_counter() - t0
    assert base.events == eng.events and base.makespan() == eng.makespan()
    # the threaded solver must replay the serial engine byte-for-byte:
    # events, makespan, and every task/flow trace
    thr = _drive(solver_threads=4, collect_flow_traces=True)
    assert thr.events == ref.events and thr.makespan() == ref.makespan()
    assert thr.traces == ref.traces
    assert thr.flow_traces == ref.flow_traces
    return run, {"n_clusters": n_clusters, "n_jobs": n_jobs,
                 "chain_len": chain_len,
                 "n_links": len(platform.topology.capacity_array),
                 "events": eng.events,
                 "solves_component": eng.solves_component,
                 "solve_rows": eng.solve_rows,
                 "splits": eng.splits,
                 "makespan": eng.makespan(),
                 "local_global_speedup": t_global / max(t_local, 1e-9),
                 # attribution: this bench injects pre-built schedules,
                 # so the whole timed run is simulator work
                 "sched_s": 0.0,
                 "sim_s": t_local,
                 # sim_s split further: Max-Min solve time vs event loop
                 "solve_s": eng.solve_s,
                 "event_s": eng.event_s}


def _bench_schedule_large_platform(n_clusters: int, procs: int,
                                   n_jobs: int,
                                   n_tasks: int) -> tuple[Callable, dict]:
    """Scheduler-dominated streaming on the 24k-processor grid.

    The raw-speed leg's showcase: a sequence of jobs scheduled (RATS
    time-cost, multi-cluster) against the 128×192 platform with residual
    ``proc_release`` folding between jobs — the online engine's
    scheduling loop without the fluid simulation, so the measured time
    is pure two-step scheduling.  ``indexed_speedup`` records the ratio
    against the same loop with the availability index and the vectorised
    pricing off (the pre-PR per-task full scans); both paths must agree
    entry-for-entry.
    """
    import numpy as np

    from repro.core.params import RATSParams
    from repro.experiments.scenarios import Scenario
    from repro.platforms.cluster import Cluster
    from repro.platforms.multicluster import MultiClusterPlatform
    from repro.redistribution.cost import RedistributionCost
    from repro.scheduling.allocation import hcpa_allocation
    from repro.scheduling.avail import AvailabilityIndex
    from repro.scheduling.multicluster import MultiClusterRATSScheduler
    from repro.utils.rng import spawn_rng

    clusters = tuple(Cluster(name=f"c{i}", num_procs=procs,
                             speed_flops=3.0e9)
                     for i in range(n_clusters))
    platform = MultiClusterPlatform(clusters=clusters, name="sched-grid")
    model = platform.performance_model()
    graphs = [Scenario(family="layered", n_tasks=n_tasks, width=0.5,
                       density=0.2, regularity=0.8, sample=s).build()
              for s in range(4)]
    allocations = [hcpa_allocation(g, model, platform.num_procs).allocation
                   for g in graphs]
    params = RATSParams("timecost")
    rng = spawn_rng("schedule-large-platform")
    arrivals = np.cumsum(rng.exponential(0.5, n_jobs))

    def _drive(fast: bool):
        # the online scheduling loop, minus the fluid engine: residual
        # availability folds forward job to job, the index stays warm
        index = AvailabilityIndex.for_platform(platform) if fast else None
        redist = RedistributionCost(platform)
        proc_avail = [0.0] * platform.num_procs
        out = []
        for j in range(n_jobs):
            now = float(arrivals[j])
            release = [max(now, t) for t in proc_avail]
            g = graphs[j % len(graphs)]
            sched = MultiClusterRATSScheduler(
                g, platform, allocations[j % len(graphs)], params,
                redist=redist, proc_release=release,
                avail_index=index if fast else False,
                vector_price=fast).run()
            for entry in sched.entries.values():
                for p in entry.procs:
                    if entry.finish > proc_avail[p]:
                        proc_avail[p] = entry.finish
            out.append(sched.entries)
        return out

    def run():
        return _drive(True)

    fast = run()  # untimed warm-up fills route/arena caches for both paths
    t0 = time.perf_counter()
    fast = _drive(True)
    t_fast = time.perf_counter() - t0
    t0 = time.perf_counter()
    ref = _drive(False)
    t_ref = time.perf_counter() - t0
    assert fast == ref  # byte-identical ScheduleEntry lists, per job
    return run, {"n_clusters": n_clusters, "procs": procs,
                 "n_jobs": n_jobs, "n_tasks": n_tasks,
                 "num_procs": platform.num_procs,
                 "indexed_speedup": t_ref / max(t_fast, 1e-9)}


def _benchmarks(quick: bool) -> dict[str, Callable[[], tuple[Callable, dict]]]:
    sim_tasks = 40 if quick else 100
    sched_tasks = 40 if quick else 100
    flows = 200 if quick else 1000
    grid = 4 if quick else 12
    jobs = 40 if quick else 200
    return {
        "simulator_dense_dag": lambda: _bench_simulator(sim_tasks),
        "maxmin_component_reuse": lambda: _bench_component_reuse(grid),
        "maxmin_bundled_random": lambda: _bench_maxmin(flows),
        "rats_timecost_mapping": lambda: _bench_rats_mapping(sched_tasks),
        "hcpa_allocation": lambda: _bench_hcpa(sched_tasks),
        "online_poisson_stream": lambda: _bench_online_stream(
            jobs, n_clusters=grid),
        "large_platform_stream": lambda: _bench_large_platform_stream(
            n_clusters=16 if quick else 128,
            n_jobs=48 if quick else 352,
            chain_len=20 if quick else 30),
        "schedule_large_platform": lambda: _bench_schedule_large_platform(
            n_clusters=16 if quick else 128,
            procs=48 if quick else 192,
            n_jobs=8 if quick else 24,
            n_tasks=10 if quick else 12),
    }


# --------------------------------------------------------------------- #
# harness
# --------------------------------------------------------------------- #
def run_benchmarks(*, rounds: int = 3, quick: bool = False,
                   only: list[str] | None = None,
                   profile: int | None = None,
                   log=None) -> dict:
    """Run the substrate benchmarks; returns the JSON-ready result dict.

    ``profile`` runs one extra cProfiled pass per benchmark after its
    timed rounds and prints the top-``profile`` entries to stderr — the
    timed rounds themselves stay unprofiled, so the recorded numbers are
    not distorted by tracing overhead.
    """
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    available = _benchmarks(quick)
    if only:
        unknown = sorted(set(only) - set(available))
        if unknown:
            raise ValueError(
                f"unknown benchmark(s) {unknown}; available: "
                f"{sorted(available)}")
    results: dict[str, dict] = {}
    for name, setup in available.items():
        if only and name not in only:
            continue
        if log:
            log(f"  {name} ...")
        fn, meta = setup()
        times = []
        for _ in range(rounds):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        if profile:
            if log:
                log(f"  {name}: profiling one extra pass ...")
            print(f"\n=== {name} ===", file=sys.stderr)
            with profiled(profile):
                fn()
        results[name] = {
            "mean_s": sum(times) / len(times),
            "min_s": min(times),
            "rounds": rounds,
            "meta": meta,
        }
        if log:
            log(f"  {name}: min {min(times):.4f}s  "
                f"mean {results[name]['mean_s']:.4f}s")
    return {
        "schema": BENCH_SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "quick": quick,
        "benchmarks": results,
    }


def write_results(results: dict, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(results, indent=1, sort_keys=True) + "\n")
    return path


def _git_rev() -> str | None:
    """The current short git revision, or ``None`` outside a checkout."""
    import subprocess

    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def latest_entry(data: dict) -> dict:
    """The newest benchmark entry of a result file, either shape.

    A plain single-run file *is* its entry; a ``--append`` trajectory
    (``{"entries": [...]}``) yields its last element.
    """
    if "entries" in data:
        entries = data["entries"]
        if not entries:
            raise ValueError("benchmark trajectory has no entries")
        return entries[-1]
    return data


def append_results(results: dict, path: str | Path) -> Path:
    """Append one entry to a benchmark trajectory file.

    Stamps ``results`` with the current git revision and appends it to the
    ``entries`` list at ``path``.  A pre-existing single-run file is
    upgraded in place: its old entry becomes the first of the trajectory,
    so nothing recorded before ``--append`` existed is lost.
    """
    path = Path(path)
    entry = {**results, "git_rev": _git_rev()}
    entries: list[dict] = []
    thresholds = None
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except ValueError as exc:
            raise ValueError(f"malformed benchmark file {path}: {exc}") \
                from None
        if isinstance(existing, dict) and "entries" in existing:
            entries = list(existing["entries"])
            thresholds = existing.get("thresholds")
        elif isinstance(existing, dict) and "benchmarks" in existing:
            entries = [existing]
            thresholds = existing.get("thresholds")
        else:
            # neither shape we know how to extend: overwriting would
            # silently destroy whatever this file is
            raise ValueError(
                f"{path} is neither a bench result nor a trajectory; "
                "refusing to overwrite it with --append")
    entries.append(entry)
    payload: dict = {"schema": BENCH_SCHEMA, "entries": entries}
    if thresholds is not None:   # per-benchmark gates ride along
        payload["thresholds"] = thresholds
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return path


def compare_benchmarks(current: dict, baseline: dict,
                       threshold: float = DEFAULT_THRESHOLD,
                       per_benchmark: Mapping[str, float] | None = None,
                       ) -> list[str]:
    """Regressions of ``current`` against ``baseline``.

    A benchmark regresses when its best-of-rounds time exceeds the
    baseline's by more than its threshold (0.25 = 25 %).  The baseline
    file may carry a per-benchmark ``"thresholds"`` dict (passed here as
    ``per_benchmark``): fast, stable benchmarks can then gate tightly
    while noisier scheduler benches keep a looser (or the global
    ``threshold``) bound.  Benchmarks present on only one side are
    reported as informational skips, not regressions.  Returns
    human-readable regression lines (empty = pass).
    """
    regressions: list[str] = []
    per_benchmark = per_benchmark or {}
    cur = current.get("benchmarks", {})
    base = baseline.get("benchmarks", {})
    for name in sorted(set(cur) & set(base)):
        t_new = cur[name]["min_s"]
        t_old = base[name]["min_s"]
        if t_old <= 0:
            continue
        limit = float(per_benchmark.get(name, threshold))
        ratio = t_new / t_old
        if ratio > 1.0 + limit:
            regressions.append(
                f"{name}: {t_old:.4f}s -> {t_new:.4f}s "
                f"({(ratio - 1) * 100:+.1f}%, threshold "
                f"{limit * 100:.0f}%)")
    return regressions


def render_comparison(current: dict, baseline: dict) -> str:
    """Side-by-side table of the shared benchmarks."""
    cur = current.get("benchmarks", {})
    base = baseline.get("benchmarks", {})
    lines = [f"{'benchmark':<28}{'baseline':>12}{'current':>12}{'ratio':>9}"]
    for name in sorted(set(cur) | set(base)):
        t_new = cur.get(name, {}).get("min_s")
        t_old = base.get(name, {}).get("min_s")
        if t_new is None or t_old is None:
            missing = "current" if t_new is None else "baseline"
            lines.append(f"{name:<28}{'(only in ' + missing + ')':>33}")
            continue
        ratio = t_new / t_old if t_old > 0 else float("inf")
        lines.append(f"{name:<28}{t_old:>11.4f}s{t_new:>11.4f}s"
                     f"{ratio:>8.2f}x")
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# profiling support for `repro run` / `repro campaign`
# --------------------------------------------------------------------- #
@contextmanager
def profiled(top: int | None, stream=None):
    """cProfile the enclosed block and print the top-``top`` entries.

    ``top=None`` disables profiling (the block runs untouched), so call
    sites can wrap unconditionally with the CLI flag's value.
    """
    if not top:
        yield
        return
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        stats = pstats.Stats(profiler, stream=stream or sys.stderr)
        stats.sort_stats("cumulative")
        print(f"\n--- cProfile: top {top} by cumulative time ---",
              file=stream or sys.stderr)
        stats.print_stats(top)


# --------------------------------------------------------------------- #
# CLI entry (wired as `repro bench`)
# --------------------------------------------------------------------- #
def add_bench_arguments(parser) -> None:
    parser.add_argument("--out", type=Path, default=Path(DEFAULT_OUT),
                        metavar="PATH",
                        help=f"result file (default {DEFAULT_OUT})")
    parser.add_argument("--append", action="store_true",
                        help="append a git-rev-stamped entry to --out "
                             "instead of overwriting, keeping the "
                             "per-commit perf trajectory inspectable")
    parser.add_argument("--compare", type=Path, default=None,
                        metavar="BASELINE",
                        help="compare against a previous result file "
                             "(the latest entry of a trajectory); exit "
                             "non-zero on regression")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD, metavar="FRACTION",
                        help="relative slowdown tolerated by --compare "
                             "(default 0.25 = 25%%); a 'thresholds' dict "
                             "in the baseline file overrides it per "
                             "benchmark")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds per benchmark (best-of counts)")
    parser.add_argument("--quick", action="store_true",
                        help="small problem sizes (for smoke tests)")
    parser.add_argument("--only", action="append", default=None,
                        metavar="NAME", help="run only the named benchmark "
                        "(repeatable)")
    parser.add_argument("--warm-kernels", action="store_true",
                        help="precompile the C solver kernels into the "
                             "content-addressed cache and exit (CI/install "
                             "hook; cold starts then skip "
                             "compile-at-first-use)")
    parser.add_argument("--profile", nargs="?", const=25, type=int,
                        metavar="N",
                        help="cProfile one extra pass per benchmark and "
                             "print the top N entries (default 25) — "
                             "timed rounds stay unprofiled")
    parser.add_argument("--quiet", action="store_true")


def main(args) -> int:
    log = None if args.quiet else (
        lambda msg: print(msg, file=sys.stderr, flush=True))
    if getattr(args, "warm_kernels", False):
        from repro.network._ckernel import warm

        status = warm()
        print(json.dumps(status, indent=1, sort_keys=True))
        # an environment without a compiler is not an error: the numpy
        # fallback is always available, warming is best-effort
        return 0
    # read the baseline FIRST: with the default --out, comparing against
    # the committed baseline would otherwise overwrite it before the read
    # and vacuously compare the run against itself
    baseline = None
    baseline_thresholds: dict | None = None
    if args.compare is not None:
        try:
            raw_baseline = json.loads(Path(args.compare).read_text())
            baseline = latest_entry(raw_baseline)
        except OSError as exc:
            raise SystemExit(f"cannot read baseline: {exc}") from None
        except ValueError as exc:
            raise SystemExit(
                f"malformed baseline {args.compare}: {exc}") from None
        # per-benchmark gates: a "thresholds" dict at the top of the
        # baseline file (either shape) overrides --threshold by name
        baseline_thresholds = (raw_baseline.get("thresholds")
                               or baseline.get("thresholds"))
        if baseline_thresholds is not None and not (
                isinstance(baseline_thresholds, dict)
                and all(isinstance(v, (int, float))
                        for v in baseline_thresholds.values())):
            raise SystemExit(
                f"malformed baseline {args.compare}: 'thresholds' must "
                "map benchmark names to fractions")

    if log:
        log(f"running substrate benchmarks "
            f"({args.rounds} rounds{', quick' if args.quick else ''}):")
    try:
        results = run_benchmarks(rounds=args.rounds, quick=args.quick,
                                 only=args.only,
                                 profile=getattr(args, "profile", None),
                                 log=log)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None

    regressions: list[str] = []
    if baseline is not None:
        if baseline.get("quick") != results.get("quick"):
            print("warning: comparing quick and full-size runs",
                  file=sys.stderr)
        if baseline_thresholds:
            known = (set(results.get("benchmarks", {}))
                     | set(baseline.get("benchmarks", {})))
            stale = sorted(set(baseline_thresholds) - known)
            if stale:
                # a typo'd or renamed benchmark silently loses its gate —
                # make that visible instead
                print(f"warning: thresholds for unknown benchmark(s) "
                      f"{stale} match nothing in the baseline or this "
                      "run", file=sys.stderr)
        regressions = compare_benchmarks(results, baseline,
                                         threshold=args.threshold,
                                         per_benchmark=baseline_thresholds)

    if args.append:
        try:
            out = append_results(results, args.out)
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
        n = len(json.loads(out.read_text())["entries"])
        print(f"appended to {out} ({n} entr{'ies' if n != 1 else 'y'})")
    elif (regressions and args.compare is not None
          and Path(args.out).resolve() == Path(args.compare).resolve()):
        # a regressed run must not clobber the very baseline it failed
        # against — the next run would compare against the regression
        # and pass
        print(f"not overwriting baseline {args.out} with regressed "
              "numbers", file=sys.stderr)
    else:
        out = write_results(results, args.out)
        print(f"wrote {out}")

    if baseline is None:
        return 0
    print(render_comparison(results, baseline))
    if regressions:
        print(f"\nPERF REGRESSION ({len(regressions)}):")
        for line in regressions:
            print(f"  {line}")
        return 1
    print(f"\nno regression beyond {args.threshold * 100:.0f}%")
    return 0
