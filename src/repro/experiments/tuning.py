"""Parameter tuning sweeps (paper §IV-C: Figures 4–5, Table IV).

* :func:`delta_grid` / :func:`rho_grid` — the sweep grids as declarative
  ``(point, AlgorithmSpec)`` lists, the form a
  :class:`~repro.experiments.plan.Stage` declares;
* :func:`sweep_from_results` — fold a result pool back into a
  :class:`SweepResult` of per-point averages (the artifact-consumer half);
* :func:`delta_sweep` — grid of (mindelta, maxdelta) pairs → average
  makespan relative to the baseline (Figure 4's surface);
* :func:`rho_sweep` — minrho values × packing on/off (Figure 5's curves);
* :func:`tune_parameters` — arg-min over both sweeps per (cluster,
  application family), the procedure that produced Table IV.

Both sweeps declare **one** matrix (baseline + every grid spec) instead of
re-running a two-spec matrix per grid point, so the shared baseline runs
once — and through a campaign plan the whole grid deduplicates against
runs other stages already own.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.params import RATSParams
from repro.experiments.metrics import relative_series
from repro.experiments.runner import (
    AlgorithmSpec,
    ExperimentRunner,
    RunResult,
    baseline_spec,
    rats_spec,
)
from repro.experiments.scenarios import Scenario
from repro.platforms.cluster import Cluster

__all__ = [
    "SweepResult",
    "delta_grid",
    "rho_grid",
    "sweep_from_results",
    "delta_sweep",
    "rho_sweep",
    "tune_parameters",
    "DEFAULT_MINDELTAS",
    "DEFAULT_MAXDELTAS",
    "DEFAULT_MINRHOS",
]

#: §IV-C tested values: mindelta ∈ {0, −.25, −.5, −.75},
#: maxdelta ∈ {0, .25, .5, .75, 1}, minrho ∈ {.2, .4, .5, .6, .8, 1}.
DEFAULT_MINDELTAS = (0.0, -0.25, -0.5, -0.75)
DEFAULT_MAXDELTAS = (0.0, 0.25, 0.5, 0.75, 1.0)
DEFAULT_MINRHOS = (0.2, 0.4, 0.5, 0.6, 0.8, 1.0)


@dataclass
class SweepResult:
    """Average relative makespans over a parameter grid."""

    cluster: str
    baseline: str
    #: parameter point → average makespan relative to the baseline
    averages: dict[tuple, float] = field(default_factory=dict)

    def best_point(self) -> tuple:
        """Grid point with the smallest average relative makespan."""
        return min(self.averages, key=lambda k: (self.averages[k], k))


def delta_grid(
    mindeltas: tuple[float, ...] = DEFAULT_MINDELTAS,
    maxdeltas: tuple[float, ...] = DEFAULT_MAXDELTAS,
) -> list[tuple[tuple[float, float], AlgorithmSpec]]:
    """The Figure 4 grid as declarative ``((mindelta, maxdelta), spec)``
    pairs, in mindelta-major order."""
    return [
        ((mind, maxd),
         rats_spec(RATSParams(strategy="delta", mindelta=mind,
                              maxdelta=maxd),
                   label=f"delta({mind:g},{maxd:g})"))
        for mind in mindeltas for maxd in maxdeltas
    ]


def rho_grid(
    minrhos: tuple[float, ...] = DEFAULT_MINRHOS,
    packing_options: tuple[bool, ...] = (True, False),
) -> list[tuple[tuple[float, bool], AlgorithmSpec]]:
    """The Figure 5 grid as declarative ``((minrho, allow_pack), spec)``
    pairs, in packing-major order."""
    return [
        ((rho, allow_pack),
         rats_spec(RATSParams(strategy="timecost", minrho=rho,
                              allow_pack=allow_pack),
                   label=f"timecost({rho:g},"
                         f"{'pack' if allow_pack else 'nopack'})"))
        for allow_pack in packing_options for rho in minrhos
    ]


def sweep_from_results(
    results: list[RunResult],
    grid: list[tuple[tuple, AlgorithmSpec]],
    *,
    cluster: str,
    baseline: str,
) -> SweepResult:
    """Fold a result pool into per-grid-point averages.

    ``results`` must hold, for every grid spec and the baseline, one run
    per scenario (extra runs of other labels are ignored) — which is what
    a sweep :class:`~repro.experiments.plan.Stage` receives.  The average
    per point is the mean of the sorted relative-makespan series, exactly
    the quantity the per-point matrices used to compute.
    """
    sweep = SweepResult(cluster=cluster, baseline=baseline)
    for point, spec in grid:
        series = relative_series(results, spec.label, baseline, "makespan")
        if not series:
            raise ValueError(
                f"no ({spec.label!r}, {baseline!r}) result pairs for sweep "
                f"point {point}")
        sweep.averages[point] = sum(series) / len(series)
    return sweep


def _run_sweep(scenarios: list[Scenario], cluster: Cluster,
               grid: list[tuple[tuple, AlgorithmSpec]],
               runner: ExperimentRunner | None,
               baseline: AlgorithmSpec | None) -> SweepResult:
    """One matrix over baseline + grid, folded into a :class:`SweepResult`."""
    runner = runner or ExperimentRunner()
    base = baseline or baseline_spec("hcpa")
    results = runner.run_matrix(scenarios, [cluster],
                                [base] + [spec for _, spec in grid])
    return sweep_from_results(results, grid, cluster=cluster.name,
                              baseline=base.label)


def delta_sweep(
    scenarios: list[Scenario],
    cluster: Cluster,
    *,
    mindeltas: tuple[float, ...] = DEFAULT_MINDELTAS,
    maxdeltas: tuple[float, ...] = DEFAULT_MAXDELTAS,
    runner: ExperimentRunner | None = None,
    baseline: AlgorithmSpec | None = None,
) -> SweepResult:
    """Figure 4: average relative makespan over the (mindelta, maxdelta) grid."""
    return _run_sweep(scenarios, cluster, delta_grid(mindeltas, maxdeltas),
                      runner, baseline)


def rho_sweep(
    scenarios: list[Scenario],
    cluster: Cluster,
    *,
    minrhos: tuple[float, ...] = DEFAULT_MINRHOS,
    packing_options: tuple[bool, ...] = (True, False),
    runner: ExperimentRunner | None = None,
    baseline: AlgorithmSpec | None = None,
) -> SweepResult:
    """Figure 5: average relative makespan as minrho varies, with and
    without packing allowed."""
    return _run_sweep(scenarios, cluster, rho_grid(minrhos, packing_options),
                      runner, baseline)


def tune_parameters(
    scenarios_by_family: dict[str, list[Scenario]],
    clusters: list[Cluster],
    *,
    mindeltas: tuple[float, ...] = DEFAULT_MINDELTAS,
    maxdeltas: tuple[float, ...] = DEFAULT_MAXDELTAS,
    minrhos: tuple[float, ...] = DEFAULT_MINRHOS,
    runner: ExperimentRunner | None = None,
) -> dict[tuple[str, str], tuple[float, float, float]]:
    """Reproduce Table IV: best (mindelta, maxdelta, minrho) per
    (cluster, family).

    The delta pair comes from the delta sweep's arg-min and minrho from the
    rho sweep's arg-min (packing enabled, as §IV-C found it always helps).
    """
    runner = runner or ExperimentRunner()
    table: dict[tuple[str, str], tuple[float, float, float]] = {}
    for cluster in clusters:
        for family, scenarios in sorted(scenarios_by_family.items()):
            dsweep = delta_sweep(scenarios, cluster, mindeltas=mindeltas,
                                 maxdeltas=maxdeltas, runner=runner)
            mind, maxd = dsweep.best_point()
            rsweep = rho_sweep(scenarios, cluster, minrhos=minrhos,
                               packing_options=(True,), runner=runner)
            rho, _ = rsweep.best_point()
            table[(cluster.name, family)] = (mind, maxd, rho)
    return table
