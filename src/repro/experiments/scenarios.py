"""The 557 application configurations of the paper's evaluation (Table III).

==============  =======================================================
family          parameters
==============  =======================================================
layered (108)   25/50/100 tasks × width {.2,.5,.8} × density {.2,.8}
                × regularity {.2,.8} × 3 samples
irregular (324) layered grid × jump {1,2,4}
fft (100)       k ∈ {2,4,8,16} data points × 25 samples
strassen (25)   25 samples
==============  =======================================================

Every scenario is identified by a stable string id; building it twice gives
the exact same task graph (costs included) through
:func:`repro.utils.rng.scenario_seed`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any

from repro.dag.task import TaskGraph
from repro.registry import dag_families
from repro.utils.rng import spawn_rng

__all__ = [
    "Scenario",
    "all_scenarios",
    "scenarios_by_family",
    "subsample",
    "FAMILIES",
    "TASK_COUNTS",
    "WIDTHS",
    "DENSITIES",
    "REGULARITIES",
    "JUMPS",
    "FFT_POINTS",
]

FAMILIES = ("layered", "irregular", "fft", "strassen")
TASK_COUNTS = (25, 50, 100)
WIDTHS = (0.2, 0.5, 0.8)
DENSITIES = (0.2, 0.8)
REGULARITIES = (0.2, 0.8)
JUMPS = (1, 2, 4)
FFT_POINTS = (2, 4, 8, 16)
RANDOM_SAMPLES = 3
KERNEL_SAMPLES = 25


@dataclass(frozen=True)
class Scenario:
    """One application configuration (identifies a unique task graph).

    The ``family`` names an entry of
    :data:`repro.registry.dag_families`; building the scenario delegates
    to the family's registered ``build(scenario, rng)`` callable, so
    third-party families plug in without touching this module.  Custom
    families may carry additional parameters in ``extras`` (a hashable
    tuple of ``(key, value)`` pairs, see :meth:`extra`).
    """

    family: str
    sample: int
    n_tasks: int = 0        # random families
    width: float = 0.0
    regularity: float = 0.0
    density: float = 0.0
    jump: int = 1           # irregular only
    k: int = 0              # fft only
    extras: tuple[tuple[str, Any], ...] = ()  # custom-family parameters

    def extra(self, key: str, default: Any = None) -> Any:
        """A custom-family parameter from :attr:`extras`."""
        for k, v in self.extras:
            if k == key:
                return v
        return default

    @property
    def scenario_id(self) -> str:
        """Stable identifier (seeds the graph construction).

        The registered family's ``scenario_id`` formatter wins; families
        registered without one get a generic ``family-…-s{sample}`` id
        built from the non-default shape fields and the extras.
        """
        # duck-typed: families registered through the plain Registry API
        # (a bare build callable, no DagFamily wrapper) get the generic id
        id_fn = getattr(dag_families.get(self.family).factory,
                        "scenario_id", None)
        if id_fn is not None:
            return id_fn(self)
        parts = [self.family]
        for f in fields(self):
            if f.name in ("family", "sample", "extras"):
                continue
            value = getattr(self, f.name)
            if value != f.default:
                parts.append(f"{f.name[0]}{value}")
        parts.extend(f"{k}{v}" for k, v in self.extras)
        parts.append(f"s{self.sample}")
        return "-".join(parts)

    def build(self) -> TaskGraph:
        """Deterministically build the scenario's task graph."""
        scenario_id = self.scenario_id  # also validates the family name
        return dag_families.build(self.family, self, spawn_rng(scenario_id))


def _layered() -> list[Scenario]:
    return [
        Scenario(family="layered", n_tasks=n, width=w, density=d,
                 regularity=r, sample=s)
        for n in TASK_COUNTS for w in WIDTHS for d in DENSITIES
        for r in REGULARITIES for s in range(RANDOM_SAMPLES)
    ]


def _irregular() -> list[Scenario]:
    return [
        Scenario(family="irregular", n_tasks=n, width=w, density=d,
                 regularity=r, jump=j, sample=s)
        for n in TASK_COUNTS for w in WIDTHS for d in DENSITIES
        for r in REGULARITIES for j in JUMPS for s in range(RANDOM_SAMPLES)
    ]


def _fft() -> list[Scenario]:
    return [Scenario(family="fft", k=k, sample=s)
            for k in FFT_POINTS for s in range(KERNEL_SAMPLES)]


def _strassen() -> list[Scenario]:
    return [Scenario(family="strassen", sample=s)
            for s in range(KERNEL_SAMPLES)]


def scenarios_by_family() -> dict[str, list[Scenario]]:
    """All scenarios grouped by family (108 / 324 / 100 / 25)."""
    return {
        "layered": _layered(),
        "irregular": _irregular(),
        "fft": _fft(),
        "strassen": _strassen(),
    }


def all_scenarios() -> list[Scenario]:
    """The paper's full set of 557 application configurations."""
    by_family = scenarios_by_family()
    out: list[Scenario] = []
    for family in FAMILIES:
        out.extend(by_family[family])
    return out


def subsample(scenarios: list[Scenario], fraction: float) -> list[Scenario]:
    """Deterministic, family-stratified, evenly-spaced subsample.

    Used by the default benchmark scale so each family keeps proportional
    representation; ``fraction = 1`` returns the input unchanged.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in ]0, 1]")
    if fraction == 1.0:
        return list(scenarios)
    by_family: dict[str, list[Scenario]] = {}
    for sc in scenarios:
        by_family.setdefault(sc.family, []).append(sc)
    out: list[Scenario] = []
    for family in sorted(by_family):
        group = by_family[family]
        count = max(1, round(len(group) * fraction))
        step = len(group) / count
        picked = [group[min(int(i * step), len(group) - 1)]
                  for i in range(count)]
        out.extend(picked)
    return out
