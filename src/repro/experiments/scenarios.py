"""The 557 application configurations of the paper's evaluation (Table III).

==============  =======================================================
family          parameters
==============  =======================================================
layered (108)   25/50/100 tasks × width {.2,.5,.8} × density {.2,.8}
                × regularity {.2,.8} × 3 samples
irregular (324) layered grid × jump {1,2,4}
fft (100)       k ∈ {2,4,8,16} data points × 25 samples
strassen (25)   25 samples
==============  =======================================================

Every scenario is identified by a stable string id; building it twice gives
the exact same task graph (costs included) through
:func:`repro.utils.rng.scenario_seed`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dag.generator import DagShape, random_irregular_dag, random_layered_dag
from repro.dag.kernels import fft_dag, strassen_dag
from repro.dag.task import TaskGraph
from repro.utils.rng import spawn_rng

__all__ = [
    "Scenario",
    "all_scenarios",
    "scenarios_by_family",
    "subsample",
    "FAMILIES",
    "TASK_COUNTS",
    "WIDTHS",
    "DENSITIES",
    "REGULARITIES",
    "JUMPS",
    "FFT_POINTS",
]

FAMILIES = ("layered", "irregular", "fft", "strassen")
TASK_COUNTS = (25, 50, 100)
WIDTHS = (0.2, 0.5, 0.8)
DENSITIES = (0.2, 0.8)
REGULARITIES = (0.2, 0.8)
JUMPS = (1, 2, 4)
FFT_POINTS = (2, 4, 8, 16)
RANDOM_SAMPLES = 3
KERNEL_SAMPLES = 25


@dataclass(frozen=True)
class Scenario:
    """One application configuration (identifies a unique task graph)."""

    family: str
    sample: int
    n_tasks: int = 0        # random families
    width: float = 0.0
    regularity: float = 0.0
    density: float = 0.0
    jump: int = 1           # irregular only
    k: int = 0              # fft only

    @property
    def scenario_id(self) -> str:
        if self.family == "layered":
            return (f"layered-n{self.n_tasks}-w{self.width}-d{self.density}"
                    f"-r{self.regularity}-s{self.sample}")
        if self.family == "irregular":
            return (f"irregular-n{self.n_tasks}-w{self.width}-d{self.density}"
                    f"-r{self.regularity}-j{self.jump}-s{self.sample}")
        if self.family == "fft":
            return f"fft-k{self.k}-s{self.sample}"
        if self.family == "strassen":
            return f"strassen-s{self.sample}"
        raise ValueError(f"unknown family {self.family!r}")

    def build(self) -> TaskGraph:
        """Deterministically build the scenario's task graph."""
        rng = spawn_rng(self.scenario_id)
        if self.family == "layered":
            shape = DagShape(n_tasks=self.n_tasks, width=self.width,
                             regularity=self.regularity, density=self.density)
            g = random_layered_dag(shape, rng, name=self.scenario_id)
        elif self.family == "irregular":
            shape = DagShape(n_tasks=self.n_tasks, width=self.width,
                             regularity=self.regularity, density=self.density,
                             jump=self.jump)
            g = random_irregular_dag(shape, rng, name=self.scenario_id)
        elif self.family == "fft":
            g = fft_dag(self.k, rng)
        elif self.family == "strassen":
            g = strassen_dag(rng)
        else:
            raise ValueError(f"unknown family {self.family!r}")
        return g


def _layered() -> list[Scenario]:
    return [
        Scenario(family="layered", n_tasks=n, width=w, density=d,
                 regularity=r, sample=s)
        for n in TASK_COUNTS for w in WIDTHS for d in DENSITIES
        for r in REGULARITIES for s in range(RANDOM_SAMPLES)
    ]


def _irregular() -> list[Scenario]:
    return [
        Scenario(family="irregular", n_tasks=n, width=w, density=d,
                 regularity=r, jump=j, sample=s)
        for n in TASK_COUNTS for w in WIDTHS for d in DENSITIES
        for r in REGULARITIES for j in JUMPS for s in range(RANDOM_SAMPLES)
    ]


def _fft() -> list[Scenario]:
    return [Scenario(family="fft", k=k, sample=s)
            for k in FFT_POINTS for s in range(KERNEL_SAMPLES)]


def _strassen() -> list[Scenario]:
    return [Scenario(family="strassen", sample=s)
            for s in range(KERNEL_SAMPLES)]


def scenarios_by_family() -> dict[str, list[Scenario]]:
    """All scenarios grouped by family (108 / 324 / 100 / 25)."""
    return {
        "layered": _layered(),
        "irregular": _irregular(),
        "fft": _fft(),
        "strassen": _strassen(),
    }


def all_scenarios() -> list[Scenario]:
    """The paper's full set of 557 application configurations."""
    by_family = scenarios_by_family()
    out: list[Scenario] = []
    for family in FAMILIES:
        out.extend(by_family[family])
    return out


def subsample(scenarios: list[Scenario], fraction: float) -> list[Scenario]:
    """Deterministic, family-stratified, evenly-spaced subsample.

    Used by the default benchmark scale so each family keeps proportional
    representation; ``fraction = 1`` returns the input unchanged.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in ]0, 1]")
    if fraction == 1.0:
        return list(scenarios)
    by_family: dict[str, list[Scenario]] = {}
    for sc in scenarios:
        by_family.setdefault(sc.family, []).append(sc)
    out: list[Scenario] = []
    for family in sorted(by_family):
        group = by_family[family]
        count = max(1, round(len(group) * fraction))
        step = len(group) / count
        picked = [group[min(int(i * step), len(group) - 1)]
                  for i in range(count)]
        out.extend(picked)
    return out
