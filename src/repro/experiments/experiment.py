"""Fluent ``Experiment`` builder: declarative scheduling comparisons.

Compiles a chain of ``.on(...)`` / ``.workload(...)`` / ``.compare(...)``
calls down to :meth:`~repro.experiments.runner.ExperimentRunner.run_matrix`::

    from repro import Experiment, GRILLON

    result = (Experiment()
              .on(GRILLON)                       # or .on("grillon", "chti")
              .workload(family="strassen", n_tasks=50)
              .compare("hcpa", "rats-delta", "rats-timecost")
              .repeats(5)
              .parallel(4)
              .run())
    print(result.summary())

Every component is resolved through the :mod:`repro.registry` registries,
so third-party allocators, mapping strategies, DAG families and platforms
participate without modifying any ``repro`` module.

Algorithm names accepted by :meth:`Experiment.compare`:

* an allocator name (``"cpa"``, ``"mcpa"``, ``"hcpa"``, …) — the two-step
  baseline with plain list-scheduling mapping;
* ``"rats-<strategy>"`` — HCPA allocation plus the named adaptation
  strategy with its naive parameters;
* ``"rats-<strategy>-tuned"`` (or ``"<strategy>-tuned"``) — same with the
  paper's Table IV per-(cluster, family) tuned parameters;
* any :class:`~repro.experiments.runner.AlgorithmSpec` or
  :class:`~repro.core.params.RATSParams` instance.
"""

from __future__ import annotations

import statistics
from contextlib import contextmanager
from dataclasses import dataclass, fields
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.plan import Stage

from repro.core.params import RATSParams
from repro.experiments.runner import (
    AlgorithmSpec,
    ExperimentRunner,
    RunResult,
    rats_spec,
)
from repro.experiments.scenarios import Scenario
from repro.experiments.store import ResultStore, open_store
from repro.platforms.cluster import Cluster
from repro.registry import (
    UnknownComponentError,
    allocators,
    dag_families,
    mapping_strategies,
    platforms,
)

__all__ = ["Experiment", "ExperimentResult", "as_algorithm_spec"]

#: Scenario shape fields settable directly through ``workload(**params)``.
_SCENARIO_FIELDS = frozenset(
    f.name for f in fields(Scenario)) - {"family", "sample", "extras"}


def as_algorithm_spec(algorithm: Any) -> AlgorithmSpec:
    """Coerce a ``compare()`` argument into an :class:`AlgorithmSpec`."""
    if isinstance(algorithm, AlgorithmSpec):
        return algorithm
    if isinstance(algorithm, RATSParams):
        return rats_spec(algorithm)
    if not isinstance(algorithm, str):
        raise TypeError(
            f"cannot interpret {algorithm!r} as an algorithm; pass a name, "
            "an AlgorithmSpec or a RATSParams")

    name = algorithm
    if name in allocators:
        return AlgorithmSpec(label=name, allocator=name)
    strategy = name.removeprefix("rats-")
    tuned = strategy.endswith("-tuned")
    if tuned:
        strategy = strategy.removesuffix("-tuned")
    if strategy in mapping_strategies:
        if tuned:
            return rats_spec(tuned=True, strategy=strategy, label=name)
        return AlgorithmSpec(label=name, strategy=strategy)

    available = (allocators.names()
                 + [f"rats-{s}" for s in mapping_strategies.names()]
                 + [f"rats-{s}-tuned" for s in mapping_strategies.names()])
    raise UnknownComponentError("algorithm", name, available)


@dataclass(frozen=True)
class ExperimentResult:
    """The :class:`RunResult` list of one experiment, with summaries."""

    results: tuple[RunResult, ...]

    def __iter__(self) -> Iterator[RunResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, i):
        return self.results[i]

    def by_algorithm(self) -> dict[str, list[RunResult]]:
        """Results grouped by algorithm label (insertion-ordered)."""
        out: dict[str, list[RunResult]] = {}
        for r in self.results:
            out.setdefault(r.algorithm, []).append(r)
        return out

    def mean_makespan(self) -> dict[str, float]:
        """Mean simulated makespan per algorithm label."""
        return {label: statistics.fmean(r.makespan for r in rs)
                for label, rs in self.by_algorithm().items()}

    def best_algorithm(self) -> str:
        """Label with the smallest mean simulated makespan."""
        means = self.mean_makespan()
        return min(means, key=lambda k: (means[k], k))

    def summary(self) -> str:
        """A small text table of per-algorithm makespan statistics."""
        lines = [f"{'algorithm':<24}{'runs':>6}{'mean':>12}{'min':>12}"
                 f"{'max':>12}"]
        for label, rs in self.by_algorithm().items():
            ms = [r.makespan for r in rs]
            lines.append(f"{label:<24}{len(ms):>6}{statistics.fmean(ms):>12.2f}"
                         f"{min(ms):>12.2f}{max(ms):>12.2f}")
        lines.append(f"best: {self.best_algorithm()}")
        return "\n".join(lines)


class Experiment:
    """Fluent builder compiling to ``ExperimentRunner.run_matrix``.

    All chaining methods return ``self``; :meth:`build` exposes the
    compiled ``(scenarios, clusters, specs)`` triple and :meth:`run`
    executes it.
    """

    def __init__(self, runner: ExperimentRunner | None = None) -> None:
        self._runner = runner
        self._clusters: list[Cluster] = []
        self._workloads: list[tuple[str, dict[str, Any], int | None]] = []
        self._scenarios: list[Scenario] = []
        self._specs: list[AlgorithmSpec] = []
        self._repeats = 1
        self._jobs: int | None = None
        self._simulate = True
        self._store: ResultStore | str | Path | None = None
        self._store_batch = 1

    # ------------------------------------------------------------------ #
    # fluent configuration
    # ------------------------------------------------------------------ #
    def on(self, *platform_list: str | Cluster) -> "Experiment":
        """Add target platforms: registry names or Cluster instances."""
        for p in platform_list:
            self._clusters.append(platforms.build(p) if isinstance(p, str)
                                  else p)
        return self

    def workload(self, family: str | None = None, *,
                 scenarios: Iterable[Scenario] | None = None,
                 samples: int | None = None, **params: Any) -> "Experiment":
        """Add a workload: a DAG family (with shape parameters) or
        explicit :class:`Scenario` objects.

        Family parameters matching :class:`Scenario` fields (``n_tasks``,
        ``width``, ``k``, …) are set directly; anything else lands in
        ``Scenario.extras`` for custom families.  ``samples`` overrides the
        experiment-wide :meth:`repeats` count for this workload.
        """
        if scenarios is not None:
            self._scenarios.extend(scenarios)
            if family is None and not params:
                return self
        if family is None:
            raise ValueError("workload() needs a family name or scenarios")
        entry = dag_families.get(family)  # raises listing available families
        unknown = [k for k in params if k not in _SCENARIO_FIELDS]
        allowed = getattr(entry.factory, "extra_params", None)
        if unknown and allowed is not None:
            bad = [k for k in unknown if k not in allowed]
            if bad:  # a typo'd shape field must not become a silent extra
                raise TypeError(
                    f"unknown parameter(s) {bad} for DAG family "
                    f"{family!r}; scenario fields: "
                    f"{sorted(_SCENARIO_FIELDS)}"
                    + (f", family extras: {sorted(allowed)}" if allowed
                       else ""))
        self._workloads.append((family, dict(params), samples))
        return self

    def compare(self, *algorithms: Any) -> "Experiment":
        """Add algorithms: names, AlgorithmSpecs or RATSParams."""
        self._specs.extend(as_algorithm_spec(a) for a in algorithms)
        return self

    def repeats(self, n: int) -> "Experiment":
        """Samples generated per family workload (default 1)."""
        if n < 1:
            raise ValueError("repeats must be >= 1")
        self._repeats = n
        return self

    def parallel(self, jobs: int = -1) -> "Experiment":
        """Run the matrix on a process pool (``-1`` = one worker per CPU)."""
        self._jobs = jobs
        return self

    def sequential(self) -> "Experiment":
        """Force serial execution (the default)."""
        self._jobs = 1
        return self

    def estimates_only(self) -> "Experiment":
        """Skip the fluid simulation; report the scheduler's estimates."""
        self._simulate = False
        return self

    def using(self, runner: ExperimentRunner) -> "Experiment":
        """Execute with (and share the caches of) an existing runner."""
        self._runner = runner
        return self

    def store(self, store: "ResultStore | str | Path", *,
              batch_size: int = 1) -> "Experiment":
        """Persist/reuse results through a content-addressed store.

        Accepts a :class:`~repro.experiments.store.ResultStore` instance
        (whose lifecycle stays with the caller) or a path — opened by
        suffix (JSONL / SQLite) lazily at :meth:`run`/:meth:`stream` time
        and closed afterwards.  Runs already in the store are skipped —
        re-running the same experiment against the same store performs
        zero fresh simulations.  ``batch_size > 1`` enables SQLite write
        batching (one transaction per runner chunk instead of one commit
        per run); it only applies to stores opened from a path.
        """
        self._store = store
        self._store_batch = batch_size
        return self

    # ------------------------------------------------------------------ #
    # compilation & execution
    # ------------------------------------------------------------------ #
    def build(self) -> tuple[list[Scenario], list[Cluster], list[AlgorithmSpec]]:
        """Compile to the ``run_matrix`` argument triple."""
        scenarios = list(self._scenarios)
        for family, params, samples in self._workloads:
            shape = {k: v for k, v in params.items()
                     if k in _SCENARIO_FIELDS}
            extras = tuple(sorted(
                (k, v) for k, v in params.items()
                if k not in _SCENARIO_FIELDS))
            for sample in range(samples if samples is not None
                                else self._repeats):
                scenarios.append(Scenario(family=family, sample=sample,
                                          extras=extras, **shape))
        if not scenarios:
            raise ValueError("no workloads: call .workload(...) first")
        if not self._clusters:
            raise ValueError("no platforms: call .on(...) first")
        if not self._specs:
            raise ValueError("no algorithms: call .compare(...) first")
        return scenarios, list(self._clusters), list(self._specs)

    @contextmanager
    def _execution(self, runner: ExperimentRunner | None):
        """Resolve the runner + store for one run()/stream() call.

        A runner or store the caller handed in is left exactly as found
        (an attached store is detached again on exit); everything this
        experiment opened itself — a runner it constructed, a
        ``JsonlStore`` opened from a ``store(path)`` — is closed on exit.
        """
        owned_runner = runner is None and self._runner is None
        runner = runner or self._runner
        store = self._store
        owned_store = isinstance(store, (str, Path))
        if owned_store:
            store = open_store(store, batch_size=self._store_batch)
        try:
            if runner is None:
                runner = ExperimentRunner(
                    simulate_schedules=self._simulate)
            elif not self._simulate and runner.simulate_schedules:
                # an injected runner carries its own simulation setting; a
                # silently-simulated result would contradict estimates_only()
                raise ValueError(
                    "estimates_only() conflicts with the injected runner; "
                    "construct it with simulate_schedules=False")
            previous_store = runner.store
            if store is not None and previous_store is None:
                runner.store = store
            try:
                yield runner
            finally:
                runner.store = previous_store
                if owned_runner:
                    runner.close()
        finally:
            if owned_store:
                store.close()

    def run(self, runner: ExperimentRunner | None = None) -> ExperimentResult:
        """Execute the compiled matrix and wrap the results."""
        scenarios, clusters, specs = self.build()
        with self._execution(runner) as resolved:
            results = resolved.run_matrix(scenarios, clusters, specs,
                                          jobs=self._jobs)
        return ExperimentResult(results=tuple(results))

    def plan(self, name: str = "experiment", *,
             artifact: "Callable[[list[RunResult]], str | Sequence[str]] | None"
             = None) -> "Stage":
        """Compile this experiment into a campaign :class:`Stage`.

        The stage declares the same matrix :meth:`run` would execute;
        added to a :class:`~repro.experiments.plan.CampaignPlan` it
        deduplicates against every other stage's runs.  ``artifact``
        renders the stage's report section(s) from its results; the
        default renders the :meth:`ExperimentResult.summary` table.
        """
        from repro.experiments.plan import Stage

        scenarios, clusters, specs = self.build()
        if artifact is None:
            def artifact(results: list[RunResult]) -> list[str]:
                return [ExperimentResult(results=tuple(results)).summary()]

        return Stage(name=name, scenarios=tuple(scenarios),
                     clusters=tuple(clusters), specs=tuple(specs),
                     artifact=artifact)

    def stream(self, runner: ExperimentRunner | None = None) -> Iterator[RunResult]:
        """Execute the compiled matrix, yielding results as they finish.

        The streaming counterpart of :meth:`run` — same runs, same store
        semantics, but delivered through
        :meth:`~repro.experiments.runner.ExperimentRunner.iter_matrix` so
        long campaigns can feed dashboards or incremental writers.
        """
        scenarios, clusters, specs = self.build()

        def generate() -> Iterator[RunResult]:
            with self._execution(runner) as resolved:
                yield from resolved.iter_matrix(scenarios, clusters, specs,
                                                jobs=self._jobs)

        return generate()
