"""Fluid discrete-event simulation of mapped schedules (paper §IV).

The paper evaluates schedules with SimGrid v3.3; this package provides the
equivalent substrate: computations run for their Amdahl durations while
redistribution flows share the network under bounded multi-port Max-Min
fairness.  The simulated makespan — not the scheduler's estimate — is what
all experiments report.
"""

from repro.simulation.simulator import FluidSimulator, SimulationResult, simulate
from repro.simulation.trace import FlowTrace, TaskTrace, canonical_event_trace
from repro.simulation.stats import (
    EdgeCommStats,
    edge_communication_times,
    estimation_errors,
    link_traffic,
    total_network_bytes,
)

__all__ = [
    "FluidSimulator",
    "SimulationResult",
    "simulate",
    "TaskTrace",
    "FlowTrace",
    "canonical_event_trace",
    "EdgeCommStats",
    "edge_communication_times",
    "estimation_errors",
    "link_traffic",
    "total_network_bytes",
]
