"""Post-hoc analysis of simulation traces.

These helpers answer the questions the paper's discussion raises (§IV-D):
how much data actually crossed the network, how long each redistribution
really took compared to its contention-free estimate, and how loaded the
individual links were.  They require the simulation to have been run with
``collect_flow_traces=True``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.platforms.cluster import Cluster
from repro.simulation.simulator import SimulationResult

__all__ = [
    "EdgeCommStats",
    "edge_communication_times",
    "total_network_bytes",
    "link_traffic",
    "estimation_errors",
]


@dataclass(frozen=True)
class EdgeCommStats:
    """Observed timing of one edge's redistribution."""

    edge: tuple[str, str]
    flows: int
    data_bytes: float
    start: float   # first flow release
    finish: float  # last flow completion

    @property
    def duration(self) -> float:
        return self.finish - self.start


def _require_traces(result: SimulationResult) -> None:
    if not result.flow_traces:
        raise ValueError(
            "no flow traces: run the simulation with "
            "FluidSimulator(schedule, collect_flow_traces=True)")


def edge_communication_times(result: SimulationResult) -> dict[tuple[str, str],
                                                               EdgeCommStats]:
    """Aggregate flow traces per application edge."""
    _require_traces(result)
    agg: dict[tuple[str, str], list] = {}
    for ft in result.flow_traces:
        agg.setdefault(ft.edge, []).append(ft)
    return {
        edge: EdgeCommStats(
            edge=edge,
            flows=len(fts),
            data_bytes=sum(f.data_bytes for f in fts),
            start=min(f.release for f in fts),
            finish=max(f.finish for f in fts),
        )
        for edge, fts in agg.items()
    }


def total_network_bytes(result: SimulationResult) -> float:
    """Bytes that crossed the network (self-communications excluded)."""
    _require_traces(result)
    return sum(f.data_bytes for f in result.flow_traces)


def link_traffic(result: SimulationResult,
                 cluster: Cluster) -> dict[tuple[str, int], float]:
    """Bytes carried by each link over the whole execution."""
    _require_traces(result)
    topo = cluster.topology
    out: dict[tuple[str, int], float] = {}
    for ft in result.flow_traces:
        for link in topo.route(ft.src, ft.dst).links:
            out[link] = out.get(link, 0.0) + ft.data_bytes
    return out


def estimation_errors(result: SimulationResult, schedule,
                      redist=None) -> dict[tuple[str, str], float]:
    """Per-edge ratio of observed redistribution time to the scheduler's
    contention-free estimate (≥ 1 means contention slowed it down).

    Edges whose estimate is zero (same ordered set) are skipped.
    """
    from repro.redistribution.cost import RedistributionCost

    _require_traces(result)
    rc = redist or RedistributionCost(schedule.cluster)
    observed = edge_communication_times(result)
    out: dict[tuple[str, str], float] = {}
    for (u, v), stats in observed.items():
        est = rc.time(schedule[u].procs, schedule[v].procs,
                      schedule.graph.edge_bytes(u, v))
        if est > 0:
            out[(u, v)] = stats.duration / est
    return out
