"""Small discrete-event primitives.

The fluid simulator keeps its own specialised loop for speed; this module
provides the generic pieces (a stable event queue and a virtual clock) for
extensions and tests that need classic discrete-event behaviour.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["EventQueue", "VirtualClock"]


@dataclass
class VirtualClock:
    """A monotonically advancing simulated time."""

    now: float = 0.0

    def advance_to(self, t: float) -> None:
        if t < self.now - 1e-12:
            raise ValueError(f"time cannot move backwards: {t} < {self.now}")
        self.now = max(self.now, t)


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    action: Callable[[], Any] = field(compare=False)


class EventQueue:
    """A time-ordered queue of callbacks with stable FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[_Event] = []
        self._counter = itertools.count()

    def push(self, time: float, action: Callable[[], Any]) -> None:
        heapq.heappush(self._heap, _Event(time, next(self._counter), action))

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def next_time(self) -> float | None:
        return self._heap[0].time if self._heap else None

    def pop(self) -> tuple[float, Callable[[], Any]]:
        ev = heapq.heappop(self._heap)
        return ev.time, ev.action

    def run_until_empty(self, clock: VirtualClock,
                        max_events: int = 1_000_000) -> int:
        """Drain the queue, advancing ``clock``; returns events processed."""
        processed = 0
        while self._heap:
            if processed >= max_events:
                raise RuntimeError("event budget exhausted (runaway loop?)")
            t, action = self.pop()
            clock.advance_to(t)
            action()
            processed += 1
        return processed
