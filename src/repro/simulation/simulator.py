"""Event-driven fluid simulation of a mapped schedule.

The simulator replays a :class:`~repro.scheduling.schedule.Schedule` the way
a runtime system such as TGrid would execute it:

* the *mapping* (which ordered processor set runs each task) and the
  *per-processor task order* are taken from the schedule — they are the
  scheduler's decisions;
* all *times* are recomputed: a task starts when (a) it is at the front of
  the queue of every processor it uses, (b) every predecessor task has
  finished, and (c) every incoming redistribution has completed;
* a redistribution's flows are released one latency after the producer
  finishes and progress at Max-Min fair rates over the cluster's links
  (bounded multi-port, §II-B/§IV-A), with the SimGrid per-flow empirical
  cap ``Wmax / RTT``.
* computation and communication overlap freely (receiving data does not
  occupy a processor).

Because estimated redistribution times ignore contention while the
simulation does not, the simulated makespan can exceed the scheduler's
estimate — the effect §IV-D discusses.

Implementation notes
--------------------
A dense 100-task DAG spawns tens of thousands of flows, so per-flow state
lives in numpy arrays and the Max-Min rates are solved over the *unique
active (src, dst) pairs* with multiplicities
(:func:`repro.network.maxmin.waterfill_bundled`), as described in
``docs/performance.md``.

The default engine additionally maintains the active pairs as
**link-connected components** (SimGrid-style lazy fluid model updates):

* a union-find over shared links groups active pairs into components;
  components merge when a newly released pair bridges them and dissolve
  when their last pair drains (merge-only while alive — a component may
  temporarily be coarser than the true connectivity, which costs work but
  never correctness, since Max-Min is exact on any union of components);
* every component caches its solved per-pair rates and its flows'
  *projected completion times*; an event re-solves **only** the
  components whose pair set or multiplicities it changed
  (``lazy=True``), and untouched components keep their cached rates and
  projections — their remaining bytes are materialised only when one of
  their own events fires;
* the "next flow completion" comes from a global **component event
  heap** keyed by each component's earliest projection, lazily
  invalidated by a per-component stamp — so the per-event cost scales
  with the touched component, not with the platform.

``lazy=False`` runs the same component machinery but re-solves every live
component at every flow-set change; since the extra solves see identical
inputs they produce identical rates, which makes the two modes
**byte-identical** (asserted by the property tests) while ``lazy=False``
actually performs the full-solve work and is therefore a true oracle for
the dirty-tracking.  ``use_bundling=False`` selects the original
per-flow solver and global scan loop — the reference implementation kept
as the end-to-end equivalence oracle for the golden tests.
"""

from __future__ import annotations

import heapq
import math
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from operator import attrgetter
from time import perf_counter

import numpy as np

from repro.dag.task import TaskGraph
from repro.network.maxmin import bundle_components, dsu_find, waterfill_bundled
from repro.platforms.cluster import Cluster
from repro.redistribution.matrix import redistribution_flows
from repro.scheduling.schedule import Schedule
from repro.simulation.trace import FlowTrace, TaskTrace

__all__ = ["FluidSimulator", "SimulationResult", "simulate"]

_TIME_EPS = 1e-9
#: Completion threshold as a fraction of a flow's total bytes.
_REL_BYTES_EPS = 1e-9
#: Components below this live-row count never partition: their solves
#: cost microseconds while a partition build (connectivity labelling +
#: part-local index construction) costs ~a millisecond — splits only pay
#: on components large enough that part-scoped solves amortise the build.
_SPLIT_MIN_ROWS = 32

_BY_CID = attrgetter("cid")


def _resolve_solver_threads(n: int | None) -> int:
    """``solver_threads`` knob resolution: explicit value, else the
    ``REPRO_SOLVER_THREADS`` env var, else 1 (today's serial path)."""
    if n is None:
        raw = os.environ.get("REPRO_SOLVER_THREADS", "").strip()
        n = int(raw) if raw else 1
    return max(1, int(n))


_SOLVER_POOL: ThreadPoolExecutor | None = None
_SOLVER_POOL_SIZE = 0


def _solver_pool(n: int) -> ThreadPoolExecutor:
    """The persistent solver thread pool, grown (never shrunk) to ``n``.

    One process-wide pool: engines come and go per scenario, but worker
    threads are only ever parked on a queue, so keeping them across
    engine lifetimes avoids the spawn cost on every simulation."""
    global _SOLVER_POOL, _SOLVER_POOL_SIZE
    if _SOLVER_POOL is None or _SOLVER_POOL_SIZE < n:
        old = _SOLVER_POOL
        _SOLVER_POOL = ThreadPoolExecutor(
            max_workers=n, thread_name_prefix="repro-solver")
        _SOLVER_POOL_SIZE = n
        if old is not None:
            old.shutdown(wait=False)
    return _SOLVER_POOL


@dataclass
class SimulationResult:
    """Outcome of simulating one schedule.

    ``solves_full`` counts the events at which an eager engine re-solves
    the whole active flow set (every flow-set change); ``solves_component``
    counts the component-scoped solver invocations the engine actually
    performed.  On the reference per-flow path ``solves_component`` is 0
    and ``maxmin_solves == solves_full``; on the component engine
    ``maxmin_solves == solves_component``, and the lazy path's saving is
    visible as ``solves_component`` falling below ``lazy=False``'s count
    (down to well under one solve per event when components decouple).
    """

    makespan: float
    task_traces: dict[str, TaskTrace]
    flow_traces: list[FlowTrace] = field(default_factory=list)
    events: int = 0
    maxmin_solves: int = 0
    solves_full: int = 0
    solves_component: int = 0
    #: dynamic component splits performed (component engine only)
    splits: int = 0
    #: total bundle rows handed to the solver across all component solves —
    #: the work proxy that makes the split/local-index saving measurable
    #: even when the solve *count* stays the same
    solve_rows: int = 0
    #: wall-clock seconds inside the rate re-solve phase (waterfilling,
    #: projection updates, heap pushes) vs everything else in the event
    #: loop (sweeps, bookkeeping, releases) — the per-phase attribution
    #: that tells future perf legs where the time actually goes
    solve_s: float = 0.0
    event_s: float = 0.0

    def as_executed_schedule(self, schedule: Schedule) -> Schedule:
        """Rebuild a :class:`Schedule` carrying the *simulated* times."""
        from repro.scheduling.schedule import ScheduleEntry

        out = Schedule(graph=schedule.graph, cluster=schedule.cluster)
        for name, tr in self.task_traces.items():
            out.add(ScheduleEntry(task=name, procs=tr.procs,
                                  start=tr.start, finish=tr.finish))
        return out


def _waterfill(entry_links: np.ndarray, entry_flow: np.ndarray,
               n_flows: int, capacities: np.ndarray,
               caps: np.ndarray) -> np.ndarray:
    """Max-Min rates by simultaneous waterfilling.

    ``entry_links`` / ``entry_flow`` give the (link, flow) incidence of the
    ``n_flows`` flows under consideration, with flow ids in ``[0, n_flows)``.
    Per-flow ``caps`` bound individual rates (the TCP window cap).
    Semantics match :func:`repro.network.maxmin.maxmin_rates`; links whose
    fair-share level ties with the minimum freeze *together*, which keeps
    the iteration count small on homogeneous-capacity networks.
    """
    n_links = len(capacities)
    rates = np.zeros(n_flows)
    fixed = np.zeros(n_flows, dtype=bool)
    residual = capacities.copy()

    for _ in range(n_links + n_flows + 1):
        live = ~fixed[entry_flow]
        if not live.any():
            break
        counts = np.bincount(entry_links[live], minlength=n_links)
        busy = counts > 0
        levels = np.full(n_links, np.inf)
        levels[busy] = residual[busy] / counts[busy]
        min_level = float(levels.min())

        unfixed_caps = np.where(fixed, np.inf, caps)
        min_cap = float(unfixed_caps.min())

        if min_cap < min_level * (1 - 1e-12):
            # cap-limited flows freeze at their cap
            to_fix = np.where(unfixed_caps <= min_cap * (1 + 1e-12))[0]
            rates[to_fix] = caps[to_fix]
        else:
            if not math.isfinite(min_level):
                break
            min_links = levels <= min_level * (1 + 1e-12)
            sel = min_links[entry_links] & live
            to_fix = np.unique(entry_flow[sel])
            rates[to_fix] = min_level
        fixed[to_fix] = True
        dec = np.isin(entry_flow, to_fix)
        np.subtract.at(residual, entry_links[dec], rates[entry_flow[dec]])
        np.maximum(residual, 0.0, out=residual)

    # safety net: anything left over is cap-limited
    rates[~fixed] = caps[~fixed]
    return rates


def _csr_gather(flat: np.ndarray, ptr: np.ndarray,
                rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate the CSR rows ``rows``; returns (entries, row lengths)."""
    starts = ptr[rows]
    lens = ptr[rows + 1] - starts
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=flat.dtype), lens
    # positions of each row's entries in the output are contiguous
    cum = np.zeros(len(rows), dtype=np.intp)
    np.cumsum(lens[:-1], out=cum[1:])
    idx = (np.arange(total, dtype=np.intp)
           - np.repeat(cum, lens) + np.repeat(starts, lens))
    return flat[idx], lens


def _grow(arr: np.ndarray, need: int) -> np.ndarray:
    """Capacity-doubling growth of an amortised append array."""
    cap = len(arr)
    if need <= cap:
        return arr
    new = np.empty(max(need, 2 * cap, 8), dtype=arr.dtype)
    new[:cap] = arr
    return new


class _Part:
    """One link-disjoint block of a dynamically split component.

    A view over a subset of the owning component's rows, with its own
    part-local link numbering and capacity slice — so re-solving one
    part costs O(part links) per round, not O(component links).  Parts
    *can* change shape: a pair (re)activation whose links all fall
    inside one part is grafted onto it (``_Component._graft_row``),
    which appends the row in sorted position and marks the part-local
    view stale (``flat = None``); the next part solve rebuilds it.
    Only a *bridging* activation — links spanning several parts — drops
    the whole partition (``_ComponentRegistry`` rebuilds it on the next
    drain hysteresis trigger).
    """

    __slots__ = ("rows", "flat", "ptr", "caps", "route_len")

    def __init__(self, rows: np.ndarray, flat: np.ndarray,
                 ptr: np.ndarray, caps: np.ndarray,
                 route_len: int) -> None:
        self.rows = rows            # owning component's row indices
        self.flat = flat            # CSR link incidence, part-local ids
        self.ptr = ptr
        self.caps = caps            # part-local capacity array
        self.route_len = route_len  # uniform route length, 0 = mixed


class _Component:
    """One link-connected component of the active pair set.

    Pair rows and member flows are stored in amortised append arrays with
    tombstones (a drained pair keeps its row with multiplicity 0, a
    completed flow keeps its slot with ``remaining = inf``), compacted
    when dead entries outnumber live ones — so the steady-state per-event
    cost is O(changed entries), not O(component).  The CSR link incidence
    (``flat`` / ``ptr`` / ``row_lens``) is maintained incrementally on
    pair activation — the "bundle diff" that lets consecutive solves of
    the same component skip any rebuild.

    With ``caps_global`` set, ``flat`` holds **component-local** link ids:
    every global link seen gets a compact local id (``local_of`` /
    ``local_links``) and its capacity is mirrored into ``cap_local``, so
    the solver receives a residual array of size O(component links)
    instead of the whole platform's.  Renumbering links changes nothing
    in the waterfilling arithmetic (every per-link accumulation keeps its
    entry order, links absent from the component contribute count 0 and
    level inf either way), so local solves are bitwise identical to
    global ones.
    """

    __slots__ = (
        "cid", "alive", "dirty", "stamp", "t_mat", "next_t",
        "pair_rows",
        "row_pair", "mult", "row_caps", "n_rows", "live_rows", "peak_rows",
        "flat", "ptr", "row_lens", "flat_len", "route_len", "uniform",
        "rates",
        "flow_fid", "flow_row", "n_flows", "live_flows", "flow_rates",
        "proj",
        "caps_global", "local_of", "local_links", "cap_local", "n_local",
        "parts", "part_of_row", "part_dirty", "part_of_link",
        "arena", "arena_addr", "touch_epoch",
    )

    def __init__(self, cid: int,
                 caps_global: np.ndarray | None = None) -> None:
        self.cid = cid
        self.alive = True
        self.dirty = True
        self.stamp = 0
        self.t_mat = 0.0
        self.next_t = math.inf
        self.pair_rows: dict[int, int] = {}   # pair id -> row index
        self.row_pair = np.empty(4, dtype=np.intp)
        # float64 multiplicities: handed to the solver without a cast
        # (always integer-valued, so comparisons stay exact)
        self.mult = np.zeros(4, dtype=float)
        self.row_caps = np.empty(4, dtype=float)
        self.flat = np.empty(8, dtype=np.intp)   # CSR link incidence
        self.ptr = np.zeros(5, dtype=np.intp)    # cached CSR offsets
        self.row_lens = np.empty(4, dtype=np.intp)
        self.flat_len = 0
        self.n_rows = 0
        self.live_rows = 0
        self.peak_rows = 0          # live-row high-water mark (split check)
        self.route_len = 0          # uniform route length, 0 = mixed
        self.uniform = True
        self.rates = np.zeros(0)
        self.flow_fid = np.empty(8, dtype=np.intp)
        self.flow_row = np.empty(8, dtype=np.intp)
        self.n_flows = 0
        self.live_flows = 0
        self.flow_rates = np.zeros(8)
        self.proj = np.full(8, np.inf)
        # local link index (None caps_global = global link ids in flat)
        self.caps_global = caps_global
        self.local_of: dict[int, int] = {}
        self.local_links = np.empty(8, dtype=np.intp)
        self.cap_local = np.empty(8, dtype=float)
        self.n_local = 0
        # dynamic split state (see _ComponentRegistry): link-disjoint
        # partition of the live rows, rebuilt on drain hysteresis;
        # maintained incrementally across pair (re)activations via
        # part_of_link (local link id -> part, -1 = unassigned) and
        # dropped only by merges or bridging activations
        self.parts: list[_Part] | None = None
        self.part_of_row: np.ndarray | None = None
        self.part_dirty: np.ndarray | None = None
        self.part_of_link: np.ndarray | None = None
        # packed C-kernel descriptor (sizes + raw array addresses),
        # cached between solves and dropped by every structural
        # mutation — the existing bundle-diff bookkeeping decides when
        # repacking is needed, so steady-state completion events do none
        self.arena: np.ndarray | None = None
        self.arena_addr = 0
        # last event epoch this component was appended to reg.touched
        self.touch_epoch = -1

    # ------------------------------------------------------------------ #
    def local_ids(self, links) -> np.ndarray:
        """Local ids of ``links``, extending the index for unseen ones."""
        local_of = self.local_of
        out = np.empty(len(links), dtype=np.intp)
        n = self.n_local
        for i, g in enumerate(links):
            lid = local_of.get(g)
            if lid is None:
                self.local_links = _grow(self.local_links, n + 1)
                self.cap_local = _grow(self.cap_local, n + 1)
                self.local_links[n] = g
                self.cap_local[n] = self.caps_global[g]
                local_of[g] = lid = n
                n += 1
            out[i] = lid
        self.n_local = n
        return out

    def add_pair(self, pair: int, links: tuple[int, ...],
                 cap: float) -> int:
        row = self.n_rows
        self.row_pair = _grow(self.row_pair, row + 1)
        self.mult = _grow(self.mult, row + 1)
        self.row_caps = _grow(self.row_caps, row + 1)
        self.row_lens = _grow(self.row_lens, row + 1)
        self.row_pair[row] = pair
        self.mult[row] = 0
        self.row_caps[row] = cap
        self.row_lens[row] = len(links)
        end = self.flat_len + len(links)
        self.flat = _grow(self.flat, end)
        ids = (np.asarray(links, dtype=np.intp)
               if self.caps_global is None else self.local_ids(links))
        self.flat[self.flat_len:end] = ids
        self.flat_len = end
        if self.parts is not None:
            if self.part_of_link is None or not len(ids):
                self.parts = None      # no link index: drop the partition
                self.part_of_link = None
            else:
                self._graft_row(row, ids)
        self.ptr = _grow(self.ptr, row + 2)
        self.ptr[row + 1] = end
        self.arena = None
        self.n_rows = row + 1
        self.live_rows += 1
        if self.live_rows > self.peak_rows:
            self.peak_rows = self.live_rows
        self.pair_rows[pair] = row
        if row == 0:
            self.route_len = len(links)
        elif self.uniform and len(links) != self.route_len:
            self.uniform = False
            self.route_len = 0
        return row

    def _graft_row(self, row: int, lids: np.ndarray) -> None:
        """Attach a (re)activated row to the standing partition.

        If the row's links are confined to one part (or wholly unseen),
        the partition stays valid: the row joins that part (or founds a
        new singleton part), the part's local view is marked stale for
        rebuild at its next solve, and link-disjointness — the property
        that makes part-scoped solves bitwise-identical to full ones —
        is preserved.  A row bridging several parts drops the partition.
        Rows are kept sorted within a part so the part solve sees them
        in the same order a full-component solve would.
        """
        pol = self.part_of_link
        if len(pol) < self.n_local:       # local index grew with this row
            new = np.full(max(self.n_local, 2 * len(pol)), -1,
                          dtype=np.intp)
            new[:len(pol)] = pol
            self.part_of_link = pol = new
        touched = np.unique(pol[lids])
        if len(touched) and touched[0] == -1:
            touched = touched[1:]
        if len(touched) > 1:
            self.parts = None             # bridging activation
            self.part_of_link = None
            return
        if len(touched) == 1:
            p = int(touched[0])
            part = self.parts[p]
            part.rows = np.insert(part.rows,
                                  int(np.searchsorted(part.rows, row)),
                                  row)
        else:
            p = len(self.parts)
            self.parts.append(_Part(np.array([row], dtype=np.intp),
                                    None, None, None, 0))
            self.part_dirty = np.append(self.part_dirty, False)
        self.parts[p].flat = None         # stale part-local view
        self.part_dirty[p] = True
        pol[lids] = p
        if row >= len(self.part_of_row):
            n = len(self.part_of_row)
            new = np.full(max(row + 1, 2 * n), -1, dtype=np.intp)
            new[:n] = self.part_of_row
            self.part_of_row = new
        self.part_of_row[row] = p
        if row >= len(self.rates):
            self.rates = _grow(self.rates, row + 1)
        self.rates[row] = 0.0             # rewritten by the dirty solve
        self.arena = None

    def add_flow(self, fid: int, row: int) -> None:
        n = self.n_flows
        # the four flow arrays always share one capacity, so a single
        # bound check covers them all (this runs once per released flow)
        if n >= len(self.flow_fid):
            self.flow_fid = _grow(self.flow_fid, n + 1)
            self.flow_row = _grow(self.flow_row, n + 1)
            self.flow_rates = _grow(self.flow_rates, n + 1)
            self.proj = _grow(self.proj, n + 1)
            self.arena = None          # buffer addresses changed
        self.flow_fid[n] = fid
        self.flow_row[n] = row
        self.flow_rates[n] = 0.0
        self.proj[n] = math.inf
        self.n_flows = n + 1
        a = self.arena
        if a is not None:
            a[9] = n + 1               # only the slot count changed
        self.live_flows += 1

    # ------------------------------------------------------------------ #
    def compact_flows(self, remaining: np.ndarray) -> None:
        """Drop completed-flow slots (remaining == inf marks them dead)."""
        n = self.n_flows
        keep = np.isfinite(remaining[self.flow_fid[:n]])
        kept = int(keep.sum())
        self.flow_fid[:kept] = self.flow_fid[:n][keep]
        self.flow_row[:kept] = self.flow_row[:n][keep]
        self.flow_rates[:kept] = self.flow_rates[:n][keep]
        self.proj[:kept] = self.proj[:n][keep]
        self.n_flows = kept
        a = self.arena
        if a is not None:
            a[9] = kept    # in-place rewrite: addresses are unchanged

    def compact_rows(self) -> list[int]:
        """Drop drained-pair rows (multiplicity 0), renumbering flows.

        The solved ``rates`` are *not* remapped: they are recomputed from
        scratch by the next solve before anything reads them (compaction
        only happens on completion events, which dirty the component).
        Returns the pair ids whose (resurrectable) tombstone rows were
        dropped — the registry must point them back at no component.
        """
        n = self.n_rows
        keep = self.mult[:n] > 0
        new_of_old = np.cumsum(keep) - 1
        kept = int(keep.sum())
        # rebuild the CSR incidence over the surviving rows
        pieces = [self.flat[self.ptr[r]:self.ptr[r + 1]]
                  for r in np.nonzero(keep)[0]]
        new_flat = (np.concatenate(pieces) if pieces
                    else np.empty(0, dtype=np.intp))
        self.flat[:len(new_flat)] = new_flat
        self.flat_len = len(new_flat)
        self.row_pair[:kept] = self.row_pair[:n][keep]
        self.row_lens[:kept] = self.row_lens[:n][keep]
        self.mult[:kept] = self.mult[:n][keep]
        self.row_caps[:kept] = self.row_caps[:n][keep]
        np.cumsum(self.row_lens[:kept], out=self.ptr[1:kept + 1])
        self.n_rows = kept
        dropped = [int(p) for p, r in self.pair_rows.items() if not keep[r]]
        self.pair_rows = {int(p): int(new_of_old[r])
                          for p, r in self.pair_rows.items() if keep[r]}
        # completed flows may still point at a dropped row; clamp them to
        # 0 — their rate is never read again (remaining == inf)
        old_rows = self.flow_row[:self.n_flows]
        dead_row = ~keep[old_rows]
        remapped = new_of_old[old_rows]
        remapped[dead_row] = 0
        self.flow_row[:self.n_flows] = remapped
        self.arena = None
        return dropped


def _connected_rows(flat: np.ndarray, ptr: np.ndarray) -> np.ndarray:
    """Link-connected component label of every CSR row.

    Labels are numbered by first row appearance — the exact contract of
    :func:`repro.network.maxmin.bundle_components`, which is the
    dependency-free fallback when scipy is unavailable.  The scipy path
    runs the connected-components sweep over the bipartite row↔link
    graph in compiled code, which is what makes split checks affordable
    on large components.
    """
    n_rows = len(ptr) - 1
    if n_rows <= 1 or not len(flat):
        return np.arange(n_rows, dtype=np.intp) if not len(flat) \
            else np.zeros(n_rows, dtype=np.intp) if n_rows == 1 \
            else bundle_components(flat, ptr)
    try:
        from scipy import sparse
        from scipy.sparse.csgraph import connected_components
    except ImportError:  # pragma: no cover - scipy-free environments
        return bundle_components(flat, ptr)
    n_ids = int(flat.max()) + 1
    rows = np.repeat(np.arange(n_rows, dtype=np.intp), np.diff(ptr))
    graph = sparse.coo_matrix(
        (np.ones(len(flat), dtype=np.int8), (rows, flat + n_rows)),
        shape=(n_rows + n_ids, n_rows + n_ids))
    _, labels = connected_components(graph, directed=False)
    row_labels = labels[:n_rows]
    # renumber by first appearance so scipy and the DSU fallback agree
    uniq, first = np.unique(row_labels, return_index=True)
    rank = np.empty(len(uniq), dtype=np.intp)
    rank[np.argsort(first, kind="stable")] = np.arange(len(uniq),
                                                       dtype=np.intp)
    return rank[np.searchsorted(uniq, row_labels)]


class _ComponentRegistry:
    """The link-connected component machinery shared by both engines.

    Owns the union-find over component ids, per-link ownership, the
    component event heap and the local (route-less) flow pseudo-heap, and
    performs the event-loop phases that touch components: the completion
    sweep (:meth:`sweep`), flow releases (:meth:`release`) and the
    re-solve with optional dynamic splits (:meth:`resolve`).  The batch
    :class:`FluidSimulator` and the online
    :class:`~repro.online.live.LiveFluidEngine` both drive this one
    implementation, so the two engines cannot drift apart.

    ``remaining`` / ``done_threshold`` are *bound* by the owning engine
    (and re-bound after amortised growth): the registry always reads the
    arrays the engine currently owns.  ``pair_routes`` / ``pair_cap`` are
    held by reference too — the live engine appends to them on inject.

    Dynamic splits
    --------------
    Components merge eagerly but — with ``split_threshold`` set — their
    *solves* no longer stay coarse forever: when a component's live-pair
    count has fallen to ``split_threshold × peak_rows`` at a re-solve,
    its live rows are re-partitioned by link connectivity
    (:func:`_connected_rows`).  If they fall apart, each block becomes a
    :class:`_Part` with its own part-local link index, and subsequent
    solves re-waterfill only the parts that events actually dirtied,
    splicing cached rates for the rest.  The component remains *one*
    entity for materialisation, projections and the event heap — that is
    what makes splitting byte-identical to merge-only: a Max-Min solve
    decomposes exactly over link-disjoint row sets (the same property
    the lazy component engine itself rests on), while every remaining
    flow still advances on the identical schedule.  A physical split
    into independent components would instead change *when* flows
    materialise and re-project, which perturbs the floating-point
    summation order of ``remaining`` — observably different traces.
    Any structural growth (pair activation, merge) drops the partition;
    the hysteresis (``peak_rows`` re-armed at every partition build, a
    :data:`_SPLIT_MIN_ROWS` floor, and no rebuild while a partition is
    already standing) amortises the O(component) build cost over the
    drains that earn it — drain-heavy workloads complete rows in large
    synchronised batches, so re-checking connectivity at every further
    halving would rebuild on nearly every solve and never reach a
    part-scoped one.
    """

    def __init__(self, capacities: np.ndarray, pair_routes, pair_cap, *,
                 lazy: bool = True, local_index: bool = True,
                 split_threshold: float | None = 0.5,
                 solver_threads: int = 1) -> None:
        self.capacities = capacities
        self.pair_routes = pair_routes
        self.pair_cap = pair_cap
        self.lazy = lazy
        self.local_index = local_index
        self.split_threshold = float(split_threshold or 0.0)
        self.solver_threads = max(1, int(solver_threads))
        n_links = len(capacities)
        self.comps: list[_Component] = []
        self.parent: list[int] = []         # union-find over component ids
        # plain lists: these tables are only ever read and written one
        # scalar at a time in the (de)activation loops, where list
        # indexing is several times cheaper than ndarray item access
        self.link_owner: list[int] = [-1] * n_links
        self.link_pairs: list[int] = [0] * n_links
        self.comp_of_pair: list[int] = [-1] * len(pair_cap)
        self.comp_heap: list[tuple[float, int, int]] = []  # (t, cid, stamp)
        # local (route-less) flows complete one event after release; they
        # never join a component — a shared pseudo-heap orders them
        self.local_heap: list[tuple[float, int]] = []
        self.remaining: np.ndarray | None = None       # bound by the engine
        self.done_threshold: np.ndarray | None = None
        self.touched: list[_Component] = []
        self.solves_full = 0
        self.solves_component = 0
        self.solve_rows = 0
        self.splits = 0
        #: wall-clock seconds spent inside resolve() — the solve phase
        self.solve_s = 0.0
        self._epoch = 0                      # current event, for touched
        # ---- compiled fast paths (None = numpy fallback throughout) ----
        # load_* re-checks REPRO_NO_C_KERNEL on every call, so a registry
        # built under the kill switch stays on the numpy path even when a
        # kernel was compiled earlier in the process
        from repro.network._ckernel import load_batch_kernel, load_sweep_kernel
        self._batch_knl = load_batch_kernel()
        self._sweep_knl = load_sweep_kernel()
        self._caps_addr = capacities.ctypes.data
        self._rem_addr = 0                   # set by bind()
        self._thr_addr = 0
        # reusable kernel I/O buffers (grown on demand) + cached addresses
        self._desc = np.zeros(16 * 8, dtype=np.int64)
        self._desc_addr = self._desc.ctypes.data
        self._next = np.zeros(8, dtype=np.float64)
        self._next_addr = self._next.ctypes.data
        self._fin = np.empty(64, dtype=np.int64)
        self._fin_addr = self._fin.ctypes.data
        self._rows = np.empty(64, dtype=np.int64)
        self._rows_addr = self._rows.ctypes.data

    # ------------------------------------------------------------------ #
    def find(self, cid: int) -> int:
        return dsu_find(self.parent, cid)

    def new_component(self) -> _Component:
        cid = len(self.comps)
        comp = _Component(cid,
                          self.capacities if self.local_index else None)
        self.comps.append(comp)
        self.parent.append(cid)
        return comp

    def push_comp(self, comp: _Component) -> None:
        if math.isfinite(comp.next_t):
            heapq.heappush(self.comp_heap,
                           (comp.next_t, comp.cid, comp.stamp))

    def bind(self, remaining: np.ndarray,
             done_threshold: np.ndarray) -> None:
        """(Re-)bind the engine-owned flow arrays.

        Engines must rebind through here after amortised growth: the
        kernels address the arrays by cached raw pointer, so a
        reallocation invalidates the addresses alongside the views."""
        self.remaining = remaining
        self.done_threshold = done_threshold
        self._rem_addr = remaining.ctypes.data
        self._thr_addr = done_threshold.ctypes.data

    def begin_event(self) -> None:
        """Open a new event: clears the touched set (epoch bump makes
        the per-component membership test O(1) instead of a list scan)."""
        self.touched.clear()
        self._epoch += 1

    def _touch(self, comp: _Component) -> None:
        if comp.touch_epoch != self._epoch:
            comp.touch_epoch = self._epoch
            self.touched.append(comp)

    def _arena(self, comp: _Component) -> np.ndarray:
        """The component's packed kernel descriptor, (re)built on demand.

        Cached until a structural mutation (pair/flow growth, merge,
        compaction, partition, rates rebind) drops it — completion-only
        steady-state events reuse the descriptor untouched."""
        d = comp.arena
        if d is not None:
            return d
        n = comp.n_rows
        if len(comp.rates) < n:
            comp.rates = _grow(comp.rates, n)
        d = np.empty(16, dtype=np.int64)
        d[0] = n
        if comp.caps_global is None:
            d[1] = len(self.capacities)
            d[7] = self._caps_addr
        else:
            d[1] = comp.n_local
            d[7] = comp.cap_local.ctypes.data
        d[2] = comp.flat.ctypes.data
        if comp.uniform and comp.route_len:
            d[3] = 0
            d[4] = comp.route_len
        else:
            d[3] = comp.ptr.ctypes.data
            d[4] = 0
        d[5] = comp.mult.ctypes.data
        d[6] = comp.row_caps.ctypes.data
        d[8] = comp.rates.ctypes.data
        d[9] = comp.n_flows
        d[10] = comp.flow_row.ctypes.data
        d[11] = comp.flow_fid.ctypes.data
        d[12] = comp.flow_rates.ctypes.data
        d[13] = comp.proj.ctypes.data
        d[14] = 0
        d[15] = 0
        comp.arena = d
        comp.arena_addr = d.ctypes.data
        return d

    def materialize(self, comp: _Component, t: float) -> None:
        """Advance the component's flows to ``t`` under cached rates."""
        if t > comp.t_mat:
            n = comp.n_flows
            fids = comp.flow_fid[:n]
            self.remaining[fids] -= comp.flow_rates[:n] * (t - comp.t_mat)
        comp.t_mat = t

    def merge(self, a: _Component, b: _Component, t: float) -> _Component:
        """Merge ``b`` into ``a`` (both materialised to ``t``)."""
        self.materialize(a, t)
        self.materialize(b, t)
        off = a.n_rows
        a.row_pair = _grow(a.row_pair, off + b.n_rows)
        a.mult = _grow(a.mult, off + b.n_rows)
        a.row_caps = _grow(a.row_caps, off + b.n_rows)
        a.row_lens = _grow(a.row_lens, off + b.n_rows)
        a.row_pair[off:off + b.n_rows] = b.row_pair[:b.n_rows]
        a.mult[off:off + b.n_rows] = b.mult[:b.n_rows]
        a.row_caps[off:off + b.n_rows] = b.row_caps[:b.n_rows]
        a.row_lens[off:off + b.n_rows] = b.row_lens[:b.n_rows]
        end = a.flat_len + b.flat_len
        a.flat = _grow(a.flat, end)
        if a.caps_global is None:
            a.flat[a.flat_len:end] = b.flat[:b.flat_len]
        else:
            # remap b's local link ids into a's local index
            remap = a.local_ids(b.local_links[:b.n_local].tolist())
            a.flat[a.flat_len:end] = remap[b.flat[:b.flat_len]]
        a.ptr = _grow(a.ptr, off + b.n_rows + 1)
        a.ptr[off + 1:off + b.n_rows + 1] = (a.flat_len
                                             + b.ptr[1:b.n_rows + 1])
        a.flat_len = end
        a.n_rows = off + b.n_rows
        a.live_rows += b.live_rows
        if a.live_rows > a.peak_rows:
            a.peak_rows = a.live_rows
        a.parts = None    # cross-component growth drops the partition
        a.part_of_link = None
        for pid, row in b.pair_rows.items():
            a.pair_rows[pid] = off + row
            self.comp_of_pair[pid] = a.cid
        if a.uniform and (not b.uniform or b.route_len != a.route_len):
            a.uniform = False
            a.route_len = 0
        fo = a.n_flows
        a.flow_fid = _grow(a.flow_fid, fo + b.n_flows)
        a.flow_row = _grow(a.flow_row, fo + b.n_flows)
        a.flow_rates = _grow(a.flow_rates, fo + b.n_flows)
        a.proj = _grow(a.proj, fo + b.n_flows)
        a.flow_fid[fo:fo + b.n_flows] = b.flow_fid[:b.n_flows]
        a.flow_row[fo:fo + b.n_flows] = b.flow_row[:b.n_flows] + off
        a.flow_rates[fo:fo + b.n_flows] = b.flow_rates[:b.n_flows]
        a.proj[fo:fo + b.n_flows] = b.proj[:b.n_flows]
        a.n_flows = fo + b.n_flows
        a.live_flows += b.live_flows
        a.arena = None
        b.alive = False
        self.parent[b.cid] = a.cid
        a.dirty = True
        return a

    def activate_pair(self, pid: int, t: float) -> tuple[_Component, int]:
        """Bring pair ``pid`` online; returns (component, row).

        Components sharing a link with the pair merge (union-find);
        link ownership is resolved through ``find``, so merged-away
        components never need their links rewritten.
        """
        links = self.pair_routes[pid]
        link_owner = self.link_owner
        roots: list[int] = []
        for li in links:
            owner = link_owner[li]
            if owner != -1:
                r = self.find(owner)
                if r not in roots:
                    roots.append(r)
        if not roots:
            comp = self.new_component()
            comp.t_mat = t
        else:
            comp = self.comps[roots[0]]
            self.materialize(comp, t)
            for r in roots[1:]:
                other = self.comps[r]
                if other.live_rows >= comp.live_rows:
                    comp, other = other, comp
                comp = self.merge(comp, other, t)
        row = comp.add_pair(pid, links, self.pair_cap[pid])
        self.comp_of_pair[pid] = comp.cid
        for li in links:
            link_owner[li] = comp.cid
            self.link_pairs[li] += 1
        comp.dirty = True
        return comp, row

    def deactivate_pair(self, pid: int, comp: _Component) -> None:
        """Drain pair ``pid``: free its links but keep the tombstone row
        *resurrectable* — ``pair_rows`` / ``comp_of_pair`` still point at
        it, so a later release of the same pair revives the row in place
        (:meth:`resurrect_pair`) instead of rebuilding CSR incidence and
        local link index from scratch."""
        comp.live_rows -= 1
        for li in self.pair_routes[pid]:
            self.link_pairs[li] -= 1
            if self.link_pairs[li] == 0:
                self.link_owner[li] = -1

    def resurrect_pair(self, pid: int, comp: _Component, row: int,
                       t: float) -> tuple[_Component, int]:
        """Re-activate a drained pair whose tombstone row still lives in
        ``comp``: reclaim link ownership (merging in any components that
        claimed the links meanwhile — their rows are appended after
        ``comp``'s, so live-row order matches a fresh activation) and
        revive the row in place, skipping the whole incidence rebuild of
        :meth:`activate_pair`."""
        links = self.pair_routes[pid]
        link_owner = self.link_owner
        self.materialize(comp, t)
        me = comp.cid
        roots: list[int] = []
        for li in links:
            owner = link_owner[li]
            if owner != -1:
                r = self.find(owner)
                if r != me and r not in roots:
                    roots.append(r)
        for r in roots:
            other = self.comps[r]
            if other.live_rows >= comp.live_rows:
                comp, other = other, comp
            comp = self.merge(comp, other, t)
            me = comp.cid
        if roots:
            row = comp.pair_rows[pid]
        for li in links:
            link_owner[li] = me
            self.link_pairs[li] += 1
        comp.live_rows += 1
        if comp.live_rows > comp.peak_rows:
            comp.peak_rows = comp.live_rows
        comp.dirty = True
        if comp.parts is not None:
            p = (int(comp.part_of_row[row])
                 if row < len(comp.part_of_row) else -1)
            if p >= 0:
                comp.part_dirty[p] = True
            elif comp.part_of_link is not None:
                comp._graft_row(row, comp.local_ids(links))
            else:
                comp.parts = None
                comp.part_of_link = None
        return comp, row

    # ------------------------------------------------------------------ #
    def comp_waterfill(self, comp: _Component) -> np.ndarray:
        self.solves_component += 1
        n = comp.n_rows
        self.solve_rows += n
        # local components hand the solver their own capacity slice:
        # O(component links) per round instead of O(platform links)
        caps_arr = (self.capacities if comp.caps_global is None
                    else comp.cap_local[:comp.n_local])
        if comp.uniform and comp.route_len:
            return waterfill_bundled(
                comp.flat[:comp.flat_len], None, comp.mult[:n],
                caps_arr, comp.row_caps[:n],
                route_len=comp.route_len)
        return waterfill_bundled(
            comp.flat[:comp.flat_len], comp.ptr[:n + 1], comp.mult[:n],
            caps_arr, comp.row_caps[:n])

    def solve(self, comp: _Component, t: float) -> None:
        """Re-solve the component's rates and projections at ``t``."""
        thr = self.split_threshold
        if (thr and comp.parts is None
                and comp.live_rows >= _SPLIT_MIN_ROWS
                and comp.live_rows <= thr * comp.peak_rows):
            self._partition(comp)             # includes one full solve
        elif comp.parts is None:
            comp.rates = self.comp_waterfill(comp)
            comp.arena = None                 # rates buffer rebound
        else:
            self._solve_parts(comp)
        nf = comp.n_flows
        rf = comp.rates[comp.flow_row[:nf]]
        comp.flow_rates[:nf] = rf
        comp.proj[:nf] = t + self.remaining[comp.flow_fid[:nf]] / rf
        comp.stamp += 1
        comp.next_t = float(comp.proj[:nf].min()) if nf else math.inf
        comp.dirty = False
        self.push_comp(comp)

    # ------------------------------------------------------------------ #
    # dynamic splits
    # ------------------------------------------------------------------ #
    def _partition(self, comp: _Component) -> None:
        """Re-partition ``comp``'s live rows by link connectivity.

        Performs one full-component solve either way (the caller is on
        the solve path), then — if the live rows fall into several
        link-disjoint blocks — builds the :class:`_Part` views that let
        subsequent solves touch only dirtied blocks.  ``peak_rows``
        re-arms to the current live count, so the next check waits for
        another ``split_threshold``-factor drain.
        """
        comp.peak_rows = comp.live_rows
        comp.rates = self.comp_waterfill(comp)
        comp.arena = None                     # rates buffer rebound
        comp.parts = None
        comp.part_of_link = None
        n = comp.n_rows
        live = np.nonzero(comp.mult[:n] > 0)[0]
        sub_flat, sub_lens = _csr_gather(comp.flat, comp.ptr[:n + 1], live)
        sub_ptr = np.zeros(len(live) + 1, dtype=np.intp)
        np.cumsum(sub_lens, out=sub_ptr[1:])
        labels = _connected_rows(sub_flat, sub_ptr)
        k = int(labels.max()) + 1 if len(labels) else 0
        if k <= 1:
            return
        self.splits += 1
        caps_src = (self.capacities if comp.caps_global is None
                    else comp.cap_local[:comp.n_local])
        part_of_link = (np.full(comp.n_local, -1, dtype=np.intp)
                        if comp.caps_global is not None else None)
        parts: list[_Part] = []
        for lbl in range(k):
            sel = labels == lbl
            rows = live[sel]
            entries, lens = _csr_gather(sub_flat, sub_ptr,
                                        np.nonzero(sel)[0])
            # part-local renumbering: bitwise-neutral for the solver
            # (per-link accumulations keep entry order either way)
            uniq, inv = np.unique(entries, return_inverse=True)
            ptr = np.zeros(len(rows) + 1, dtype=np.intp)
            np.cumsum(lens, out=ptr[1:])
            rl = int(lens[0]) if len(lens) and (lens == lens[0]).all() \
                else 0
            parts.append(_Part(rows, inv.astype(np.intp, copy=False),
                               ptr, caps_src[uniq], rl))
            if part_of_link is not None:
                part_of_link[uniq] = lbl
        comp.parts = parts
        comp.part_of_link = part_of_link
        part_of_row = np.full(n, -1, dtype=np.intp)
        part_of_row[live] = labels
        comp.part_of_row = part_of_row
        comp.part_dirty = np.zeros(k, dtype=bool)  # full solve just ran

    def _solve_parts(self, comp: _Component) -> None:
        """Re-waterfill only the dirtied parts, splicing cached rates.

        Bitwise-identical to a full-component solve: rates of rows in
        clean parts would be recomputed to the very same values (their
        links saw no change), and the dirty parts' solves see the same
        per-link arithmetic as inside the full solve.
        """
        mult, row_caps, rates = comp.mult, comp.row_caps, comp.rates
        for idx in np.nonzero(comp.part_dirty)[0]:
            part = comp.parts[idx]
            rows = part.rows
            if part.flat is None:
                # stale view: rows were grafted since the last build —
                # rebuild with the same arithmetic as _partition's build
                entries, lens = _csr_gather(comp.flat,
                                            comp.ptr[:comp.n_rows + 1],
                                            rows)
                uniq, inv = np.unique(entries, return_inverse=True)
                ptr = np.zeros(len(rows) + 1, dtype=np.intp)
                np.cumsum(lens, out=ptr[1:])
                part.flat = inv.astype(np.intp, copy=False)
                part.ptr = ptr
                caps_src = (self.capacities if comp.caps_global is None
                            else comp.cap_local[:comp.n_local])
                part.caps = caps_src[uniq]
                part.route_len = (int(lens[0])
                                  if len(lens) and (lens == lens[0]).all()
                                  else 0)
            self.solves_component += 1
            self.solve_rows += len(rows)
            if part.route_len:
                r = waterfill_bundled(
                    part.flat, None, mult[rows],
                    part.caps, row_caps[rows], route_len=part.route_len)
            else:
                r = waterfill_bundled(
                    part.flat, part.ptr, mult[rows],
                    part.caps, row_caps[rows])
            rates[rows] = r
        comp.part_dirty[:] = False

    # ------------------------------------------------------------------ #
    # event-loop phases
    # ------------------------------------------------------------------ #
    def peek(self) -> float:
        """Earliest component/local event time (inf when idle), dropping
        stale component-heap entries while peeking."""
        t_next = math.inf
        comp_heap = self.comp_heap
        comps = self.comps
        while comp_heap:
            tt, cid, stamp = comp_heap[0]
            comp = comps[cid]
            if not comp.alive or comp.stamp != stamp:
                heapq.heappop(comp_heap)
                continue
            t_next = tt
            break
        if self.local_heap and self.local_heap[0][0] < t_next:
            t_next = self.local_heap[0][0]
        return t_next

    def sweep(self, now: float, complete_flow) -> bool:
        """Flow completions: pop every component whose earliest projection
        fired, materialise it, sweep its flows; then the local
        (route-less) flows.  Returns whether the flow set changed.

        Completions are buffered and delivered in ascending flow id —
        the order the per-flow reference engine uses (its active set is
        kept fid-sorted) — so the trace order of same-instant
        completions never depends on component row layout, which can
        legitimately differ between split/merge-only/resurrected
        configurations of the same simulation."""
        comps = self.comps
        comp_heap = self.comp_heap
        remaining = self.remaining
        done_threshold = self.done_threshold
        set_changed = False
        completed: list[int] = []
        knl = self._sweep_knl
        while comp_heap and comp_heap[0][0] <= now:
            _, cid, stamp = heapq.heappop(comp_heap)
            comp = comps[cid]
            if not comp.alive or comp.stamp != stamp:
                continue
            if knl is not None:
                # compiled sweep: materialise + completion detect +
                # slot/multiplicity bookkeeping in one GIL-free call
                # over the cached descriptor (numpy block mirrored
                # slot-for-slot — see repro_sweep_comp)
                nf = comp.n_flows
                if nf > len(self._fin):
                    cap = max(nf, 2 * len(self._fin))
                    self._fin = np.empty(cap, dtype=np.int64)
                    self._fin_addr = self._fin.ctypes.data
                    self._rows = np.empty(cap, dtype=np.int64)
                    self._rows_addr = self._rows.ctypes.data
                if comp.arena is None:
                    self._arena(comp)
                dt = now - comp.t_mat
                comp.t_mat = now
                n_done = knl(comp.arena_addr, dt, now, self._thr_addr,
                             self._rem_addr, self._fin_addr,
                             self._rows_addr, self._next_addr)
                if n_done == 0:
                    # spurious wake-up (rates dropped since the push):
                    # the kernel reprojected from materialised remaining
                    comp.stamp += 1
                    comp.next_t = float(self._next[0])
                    self.push_comp(comp)
                    continue
                finished = self._fin[:n_done]
                rows = self._rows[:n_done]
                set_changed = True
                comp.dirty = True
                comp.live_flows -= n_done
                if comp.parts is not None:
                    comp.part_dirty[comp.part_of_row[rows]] = True
            else:
                self.materialize(comp, now)
                nf = comp.n_flows
                fids = comp.flow_fid[:nf]
                done_sel = remaining[fids] <= done_threshold[fids]
                if not done_sel.any():
                    # spurious wake-up (rates dropped since the push):
                    # reproject from materialised remaining
                    comp.stamp += 1
                    comp.proj[:nf] = now + (remaining[fids]
                                            / comp.flow_rates[:nf])
                    comp.next_t = (float(comp.proj[:nf].min())
                                   if nf else math.inf)
                    self.push_comp(comp)
                    continue
                finished = fids[done_sel]
                set_changed = True
                comp.dirty = True
                comp.live_flows -= len(finished)
                rows = comp.flow_row[:nf][done_sel]
                if comp.parts is not None:
                    comp.part_dirty[comp.part_of_row[rows]] = True
                np.subtract.at(comp.mult, rows, 1)
                remaining[finished] = np.inf      # dead-slot marker
                comp.flow_rates[:nf][done_sel] = 0.0
                comp.proj[:nf][done_sel] = np.inf
            # dedupe rows in first-seen order (np.unique sorts — order is
            # irrelevant here: deactivation only decrements per-link
            # counters, commutative across rows)
            rows_l = rows.tolist()
            if len(rows_l) == 1:
                r = rows_l[0]
                if comp.mult[r] == 0:
                    self.deactivate_pair(int(comp.row_pair[r]), comp)
            else:
                for r in dict.fromkeys(rows_l):
                    if comp.mult[r] == 0:
                        self.deactivate_pair(int(comp.row_pair[r]), comp)
            completed.extend(finished.tolist())
            if comp.live_rows == 0:
                # fully drained: every link was already freed by
                # deactivate_pair.  The component stays alive as a
                # resurrectable shell — its rows keep their local link
                # ids, so re-releases of the same pairs skip the whole
                # rebuild.  No heap entry (nothing can fire) and no
                # solve needed (nothing is live).
                comp.compact_flows(remaining)
                comp.stamp += 1
                comp.next_t = math.inf
                comp.dirty = False
            else:
                if comp.live_flows * 2 < comp.n_flows:
                    comp.compact_flows(remaining)
                # Since tombstones became resurrectable, eviction is no
                # longer free — a compacted pair must rebuild incidence
                # and local index on its next release — so only clearly
                # tombstone-dominated large components compact.  The
                # trigger must not depend on engine knobs: whether a
                # pair resurrects in place or re-activates fresh decides
                # future row order, and the solver's per-link float
                # accumulation is row-order-sensitive in the last ulp —
                # so a partitioned component compacts too (dropping its
                # partition views, which renumbering would orphan; the
                # next solve re-partitions if still eligible), keeping
                # split and merge-only layouts in lockstep.
                if (comp.live_rows * 8 < comp.n_rows
                        and comp.n_rows > 64):
                    if comp.parts is not None:
                        comp.parts = None
                        comp.part_of_link = None
                    for dead_pid in comp.compact_rows():
                        self.comp_of_pair[dead_pid] = -1
                if comp.touch_epoch != self._epoch:  # inlined _touch
                    comp.touch_epoch = self._epoch
                    self.touched.append(comp)

        # local (route-less) flows: instantaneous once released
        local_heap = self.local_heap
        local_done: list[int] = []
        while local_heap and local_heap[0][0] <= now:
            _, fid = heapq.heappop(local_heap)
            local_done.append(fid)
        if local_done:
            set_changed = True
            for fid in local_done:
                remaining[fid] = np.inf
            completed.extend(local_done)
        for fid in sorted(completed):
            complete_flow(fid, now)
        return set_changed

    def release(self, fid: int, pid: int, now: float) -> None:
        """A released flow joins its pair's component (activating or
        merging as needed); route-less pairs go to the local heap."""
        if not self.pair_routes[pid]:
            # local pair: completes at the next event
            heapq.heappush(self.local_heap, (now, fid))
            return
        cid = self.comp_of_pair[pid]
        if cid == -1:
            comp, row = self.activate_pair(pid, now)
        else:
            comp = self.comps[self.find(int(cid))]
            row = comp.pair_rows[pid]
            if comp.mult[row] > 0:         # pair is live: just pile on
                self.materialize(comp, now)
                comp.dirty = True
                if comp.parts is not None:
                    comp.part_dirty[comp.part_of_row[row]] = True
            else:                          # drained tombstone: revive it
                comp, row = self.resurrect_pair(pid, comp, row, now)
        comp.mult[row] += 1
        comp.add_flow(fid, row)
        if comp.touch_epoch != self._epoch:     # inlined _touch (hot)
            comp.touch_epoch = self._epoch
            self.touched.append(comp)

    def resolve(self, now: float) -> None:
        """Re-solve: only dirty components (lazy) — or, on the full-solve
        oracle, every live component; clean ones see identical inputs and
        recompute identical rates, so the two modes stay byte-identical
        while ``lazy=False`` really performs the eager work.

        On the lazy path all dirty components re-solve through **one**
        batched kernel crossing (``repro_waterfill_batch``) — the
        same-timestamp completions the sweep coalesced across components
        become a single re-solve — optionally chunked over the
        persistent solver thread pool (``solver_threads > 1``).  Results
        are committed in ascending component id, so stamps, heap pushes
        and counters follow one deterministic order however many threads
        produced the rates; per-component outputs are disjoint slices,
        so the values themselves are thread-count-invariant, making
        every thread setting byte-identical to the serial path.
        Components under the split machinery (standing parts, or a
        partition check due) take the classic per-component path inside
        the same ascending-cid commit loop.
        """
        t0 = perf_counter()
        self.solves_full += 1
        if not self.lazy:
            for comp in self.comps:
                if not comp.alive or not comp.live_rows:
                    continue
                if comp.dirty:
                    self.solve(comp, now)
                else:
                    # full re-solve of an untouched component: same
                    # bundles, same multiplicities — rates replaced by
                    # bitwise-equal values, cached projections untouched
                    # (their recomputation would reproduce them)
                    comp.rates = self.comp_waterfill(comp)
                    comp.arena = None
            self.solve_s += perf_counter() - t0
            return
        knl = self._batch_knl
        touched = self.touched
        if len(touched) == 1 and knl is not None:
            # fast path for the steady-state stream shape: one event
            # touched one component — no list building, no classify
            comp = touched[0]
            if comp.alive and comp.dirty and comp.live_rows:
                thr = self.split_threshold
                if comp.parts is None and not (
                        thr and comp.live_rows >= _SPLIT_MIN_ROWS
                        and comp.live_rows <= thr * comp.peak_rows):
                    if comp.arena is None:
                        self._arena(comp)
                    if knl(1, comp.arena_addr, now, self._rem_addr,
                           self._next_addr) == 0:
                        self.solves_component += 1
                        self.solve_rows += comp.n_rows
                        comp.stamp += 1
                        comp.next_t = float(self._next[0])
                        comp.dirty = False
                        self.push_comp(comp)
                        self.solve_s += perf_counter() - t0
                        return
                self.solve(comp, now)
            self.solve_s += perf_counter() - t0
            return
        dirty = [c for c in self.touched
                 if c.alive and c.dirty and c.live_rows]
        if len(dirty) > 1:
            dirty.sort(key=_BY_CID)
        if knl is None:
            # numpy fallback (no compiler / REPRO_NO_C_KERNEL): the
            # classic per-component solves, serial regardless of
            # solver_threads — identical results either way
            for comp in dirty:
                self.solve(comp, now)
            self.solve_s += perf_counter() - t0
            return
        thr = self.split_threshold
        plain = [comp for comp in dirty
                 if comp.parts is None
                 and not (thr and comp.live_rows >= _SPLIT_MIN_ROWS
                          and comp.live_rows <= thr * comp.peak_rows)]
        k = len(plain)
        ok = True
        if k == 1:
            comp = plain[0]
            if comp.arena is None:
                self._arena(comp)
            ok = knl(1, comp.arena_addr, now, self._rem_addr,
                     self._next_addr) == 0
        elif k:
            if 16 * k > len(self._desc):
                cap = max(16 * k, 2 * len(self._desc))
                self._desc = np.zeros(cap, dtype=np.int64)
                self._desc_addr = self._desc.ctypes.data
                self._next = np.zeros(cap // 16, dtype=np.float64)
                self._next_addr = self._next.ctypes.data
            desc = self._desc
            for i, comp in enumerate(plain):
                d = comp.arena
                if d is None:
                    d = self._arena(comp)
                desc[16 * i:16 * i + 16] = d
            nthreads = self.solver_threads
            if nthreads > 1:
                # contiguous chunks, one GIL-free kernel call each; a
                # descriptor is 16 int64 slots = 128 bytes, a next_out
                # slot 8 bytes
                pool = _solver_pool(nthreads)
                step = -(-k // min(nthreads, k))
                futs = [pool.submit(knl, min(step, k - s),
                                    self._desc_addr + 128 * s, now,
                                    self._rem_addr,
                                    self._next_addr + 8 * s)
                        for s in range(0, k, step)]
                ok = all(f.result() == 0 for f in futs)
            else:
                ok = knl(k, self._desc_addr, now, self._rem_addr,
                         self._next_addr) == 0
        if not ok:      # pragma: no cover - kernel scratch malloc failed
            for comp in dirty:
                self.solve(comp, now)
            self.solve_s += perf_counter() - t0
            return
        nxt = self._next
        j = 0
        for comp in dirty:          # ascending-cid commit
            if j < k and comp is plain[j]:
                self.solves_component += 1
                self.solve_rows += comp.n_rows
                comp.stamp += 1
                comp.next_t = float(nxt[j])
                comp.dirty = False
                self.push_comp(comp)
                j += 1
            else:
                self.solve(comp, now)
        self.solve_s += perf_counter() - t0


class _TaskBookkeeping:
    """Task-readiness and trace scaffolding shared by both engines.

    The replayed runtime semantics — a task starts when it is at the
    front of every processor queue, all predecessors finished and all
    incoming flows arrived; flows release one latency after the producer
    finishes — live here once, so the lazy component engine and the
    per-flow reference oracle cannot drift apart.
    """

    def __init__(self, sim: "FluidSimulator", fl: dict) -> None:
        graph, schedule = sim.graph, sim.schedule
        self.graph = graph
        self.collect_flow_traces = sim.collect_flow_traces
        self.fl = fl
        self.edges = fl["edges"]
        names = graph.task_names()
        self.total = graph.num_tasks
        self.exec_time = {n: schedule[n].duration for n in names}
        self.procs_of = {n: schedule[n].procs for n in names}
        self.proc_queue: dict[int, list[str]] = {
            p: [e.task for e in entries]
            for p, entries in schedule.proc_timeline().items()
        }
        self.queue_pos: dict[int, int] = {p: 0 for p in self.proc_queue}
        self.preds_left = {n: len(graph.predecessors(n)) for n in names}
        # flows (hence bytes) still missing per consumer task
        self.flows_left: dict[str, int] = {n: 0 for n in names}
        for eid in fl["edge_of"]:
            self.flows_left[self.edges[eid][1]] += 1
        # per-edge flow ids (for release on producer completion)
        self.edge_flows: dict[int, list[int]] = {}
        for fid, eid in enumerate(fl["edge_of"]):
            self.edge_flows.setdefault(int(eid), []).append(fid)
        self.out_edge_ids: dict[str, list[int]] = {n: [] for n in names}
        for eid, (u, _v) in enumerate(self.edges):
            self.out_edge_ids[u].append(eid)
        self.release_time = np.full(len(fl["size"]), np.inf)
        self.started: set[str] = set()
        self.done: set[str] = set()
        self.task_start: dict[str, float] = {}
        self.finish_heap: list[tuple[float, str]] = []
        self.release_heap: list[tuple[float, int]] = []  # (time, flow id)
        self.traces: dict[str, TaskTrace] = {}
        self.flow_traces: list[FlowTrace] = []
        # candidates whose readiness must be rechecked after an event
        self.check_ready: set[str] = set(names)

    # ------------------------------------------------------------------ #
    def at_front(self, name: str) -> bool:
        return all(
            self.queue_pos[p] < len(self.proc_queue[p])
            and self.proc_queue[p][self.queue_pos[p]] == name
            for p in self.procs_of[name]
        )

    def can_start(self, name: str) -> bool:
        return (name not in self.started
                and self.preds_left[name] == 0
                and self.flows_left[name] == 0
                and self.at_front(name))

    def start_task(self, name: str, now: float) -> None:
        self.started.add(name)
        self.task_start[name] = now
        heapq.heappush(self.finish_heap, (now + self.exec_time[name], name))

    def finish_task(self, name: str, now: float) -> None:
        self.done.add(name)
        self.traces[name] = TaskTrace(task=name, procs=self.procs_of[name],
                                      start=self.task_start[name], finish=now)
        for p in self.procs_of[name]:
            self.queue_pos[p] += 1
            pos = self.queue_pos[p]
            if pos < len(self.proc_queue[p]):
                self.check_ready.add(self.proc_queue[p][pos])
        for succ in self.graph.successors(name):
            self.preds_left[succ] -= 1
            self.check_ready.add(succ)
        lat = self.fl["lat"]
        for eid in self.out_edge_ids[name]:
            for fid in self.edge_flows.get(eid, ()):  # release after latency
                t_rel = now + lat[fid]
                self.release_time[fid] = t_rel
                heapq.heappush(self.release_heap, (t_rel, fid))

    def complete_flow(self, fid: int, now: float) -> None:
        eid = int(self.fl["edge_of"][fid])
        self.flows_left[self.edges[eid][1]] -= 1
        self.check_ready.add(self.edges[eid][1])
        if self.collect_flow_traces:
            self.flow_traces.append(FlowTrace(
                edge=self.edges[eid],
                src=int(self.fl["src"][fid]),
                dst=int(self.fl["dst"][fid]),
                data_bytes=float(self.fl["size"][fid]),
                release=float(self.release_time[fid]),
                finish=now))

    def start_ready(self, now: float) -> None:
        """Start every newly startable task, clearing the recheck set."""
        for name in self.check_ready:
            if name not in self.started and self.can_start(name):
                self.start_task(name, now)
        self.check_ready.clear()

    def makespan(self) -> float:
        return (max(tr.finish for tr in self.traces.values())
                - min(tr.start for tr in self.traces.values()))


class FluidSimulator:
    """Simulate one schedule on its cluster.

    Parameters
    ----------
    schedule:
        A complete, valid schedule (see :meth:`Schedule.validate`).
    collect_flow_traces:
        Keep per-flow trace records (off by default: a 100-task DAG can
        spawn tens of thousands of flows).
    use_bundling:
        Solve Max-Min rates over unique (src, dst) route bundles with
        multiplicities (the fast path, on by default).  ``False`` runs the
        original per-flow waterfilling and global-scan loop — the
        reference implementation the golden equivalence tests compare
        against (``lazy`` is then ignored).
    lazy:
        On the bundled engine, re-solve only the link-connected components
        an event touched (default).  ``lazy=False`` re-solves every live
        component at every flow-set change — byte-identical traces, kept
        as the full-solve equivalence oracle.
    local_index:
        Give each component a compact local link numbering so its solves
        see an O(component links) capacity array instead of the whole
        platform's (default).  Bitwise-neutral; the toggle exists for
        A/B benchmarking and debugging.
    split_threshold:
        Re-partition a component by link connectivity when its live-pair
        count drops to this fraction of its high-water mark (default
        0.5).  ``None`` disables dynamic splits (merge-only components,
        the pre-split behaviour).  Bitwise-neutral by construction.
    solver_threads:
        Solve independent dirty components concurrently over a
        persistent thread pool through the GIL-free batch kernel.
        Default ``None`` reads ``REPRO_SOLVER_THREADS`` (itself
        defaulting to 1, the serial path).  Byte-identical for every
        value: components are disjoint subproblems and results commit
        in ascending component id (see
        :meth:`_ComponentRegistry.resolve`).
    """

    def __init__(self, schedule: Schedule, *,
                 collect_flow_traces: bool = False,
                 use_bundling: bool = True,
                 lazy: bool = True,
                 local_index: bool = True,
                 split_threshold: float | None = 0.5,
                 solver_threads: int | None = None) -> None:
        self.schedule = schedule
        self.graph: TaskGraph = schedule.graph
        self.cluster: Cluster = schedule.cluster
        self.collect_flow_traces = collect_flow_traces
        self.use_bundling = use_bundling
        self.lazy = lazy
        self.local_index = local_index
        self.split_threshold = split_threshold
        self.solver_threads = _resolve_solver_threads(solver_threads)

    # ------------------------------------------------------------------ #
    def _build_flows(self):
        """Expand every edge into flows; returns global flow arrays.

        Route lookups run once per distinct (src, dst) *pair*, not per
        flow: flows are tagged with a pair id (``pair_of``) and the pair's
        route incidence is stored once in CSR form (``pair_links_flat`` /
        ``pair_ptr``) — the basis of the bundled Max-Min solves.
        """
        graph, schedule, topo = self.graph, self.schedule, self.cluster.topology
        srcs: list[int] = []
        dsts: list[int] = []
        sizes: list[float] = []
        edge_of: list[int] = []
        pair_of: list[int] = []
        edges: list[tuple[str, str]] = []
        edge_index: dict[tuple[str, str], int] = {}

        pair_index: dict[tuple[int, int], int] = {}
        pair_caps: list[float] = []
        pair_lats: list[float] = []
        pair_routes: list[tuple[int, ...]] = []

        for u, v, data in graph.edges():
            eid = len(edges)
            edges.append((u, v))
            edge_index[(u, v)] = eid
            specs = redistribution_flows(schedule[u].procs, schedule[v].procs,
                                         data)
            for s in specs:
                if s.data_bytes <= 0:
                    continue
                pid = pair_index.get((s.src, s.dst))
                if pid is None:
                    pid = len(pair_routes)
                    pair_index[(s.src, s.dst)] = pid
                    route = topo.route(s.src, s.dst)
                    pair_caps.append(route.rate_cap_Bps)
                    pair_lats.append(route.latency_s)
                    pair_routes.append(topo.route_indices(s.src, s.dst))
                srcs.append(s.src)
                dsts.append(s.dst)
                sizes.append(s.data_bytes)
                edge_of.append(eid)
                pair_of.append(pid)

        pair_of_arr = np.array(pair_of, dtype=np.intp)
        pair_lens = np.array([len(r) for r in pair_routes], dtype=np.intp)
        pair_ptr = np.zeros(len(pair_routes) + 1, dtype=np.intp)
        np.cumsum(pair_lens, out=pair_ptr[1:])
        pair_links_flat = np.fromiter(
            (li for r in pair_routes for li in r),
            dtype=np.intp, count=int(pair_lens.sum()))
        pair_cap_arr = np.array(pair_caps, dtype=float)
        pair_lat_arr = np.array(pair_lats, dtype=float)

        return {
            "src": np.array(srcs, dtype=np.intp),
            "dst": np.array(dsts, dtype=np.intp),
            "size": np.array(sizes, dtype=float),
            "cap": (pair_cap_arr[pair_of_arr] if len(srcs)
                    else np.empty(0, dtype=float)),
            "lat": (pair_lat_arr[pair_of_arr] if len(srcs)
                    else np.empty(0, dtype=float)),
            "edge_of": np.array(edge_of, dtype=np.intp),
            "pair_of": pair_of_arr,
            "pair_cap": pair_cap_arr,
            "pair_lat": pair_lat_arr,
            "pair_links_flat": pair_links_flat,
            "pair_ptr": pair_ptr,
            "pair_routes": pair_routes,
            "edges": edges,
            "edge_index": edge_index,
        }

    # ------------------------------------------------------------------ #
    def run(self) -> SimulationResult:
        if self.use_bundling:
            return self._run_component()
        return self._run_reference()

    # ================================================================== #
    # component engine (use_bundling=True)
    # ================================================================== #
    def _run_component(self) -> SimulationResult:
        topo = self.cluster.topology
        capacities = topo.capacity_array

        fl = self._build_flows()
        tb = _TaskBookkeeping(self, fl)

        size = fl["size"]
        pair_of = fl["pair_of"]

        reg = _ComponentRegistry(
            capacities, fl["pair_routes"], fl["pair_cap"],
            lazy=self.lazy, local_index=self.local_index,
            split_threshold=self.split_threshold,
            solver_threads=self.solver_threads)
        reg.bind(size.copy(), np.maximum(size * _REL_BYTES_EPS, 1e-12))

        # ---------------- event loop ---------------- #
        now = 0.0
        events = 0
        tb.start_ready(now)  # prime

        total = tb.total
        finish_heap = tb.finish_heap
        release_heap = tb.release_heap
        complete_flow = tb.complete_flow
        old_err = np.seterr(divide="ignore", invalid="ignore")
        t_loop = perf_counter()
        try:
            while len(tb.done) < total:
                t_next = reg.peek()
                if finish_heap and finish_heap[0][0] < t_next:
                    t_next = finish_heap[0][0]
                if release_heap and release_heap[0][0] < t_next:
                    t_next = release_heap[0][0]
                if not math.isfinite(t_next):  # pragma: no cover - deadlock
                    raise RuntimeError(
                        f"simulation stalled at t={now:g}: "
                        f"{total - len(tb.done)} tasks never became runnable")
                now = t_next
                events += 1
                reg.begin_event()

                # 1) flow completions (component sweep + local flows)
                set_changed = reg.sweep(now, complete_flow)

                # 2) task completions
                while finish_heap and finish_heap[0][0] <= now + _TIME_EPS:
                    _, name = heapq.heappop(finish_heap)
                    tb.finish_task(name, now)

                # 3) flow releases
                while release_heap and release_heap[0][0] <= now + _TIME_EPS:
                    _, fid = heapq.heappop(release_heap)
                    set_changed = True
                    reg.release(int(fid), int(pair_of[fid]), now)

                # 4) newly startable tasks
                tb.start_ready(now)

                # 5) re-solve dirty (lazy) or all live (oracle) components
                if set_changed:
                    reg.resolve(now)

        finally:
            np.seterr(**old_err)
        loop_s = perf_counter() - t_loop

        return SimulationResult(
            makespan=tb.makespan(),
            task_traces=tb.traces,
            flow_traces=tb.flow_traces,
            events=events,
            maxmin_solves=reg.solves_component,
            solves_full=reg.solves_full,
            solves_component=reg.solves_component,
            splits=reg.splits,
            solve_rows=reg.solve_rows,
            solve_s=reg.solve_s,
            event_s=loop_s - reg.solve_s,
        )

    # ================================================================== #
    # reference per-flow engine (use_bundling=False)
    # ================================================================== #
    def _run_reference(self) -> SimulationResult:
        graph, cluster = self.graph, self.cluster
        topo = cluster.topology
        capacities = topo.capacity_array

        fl = self._build_flows()
        tb = _TaskBookkeeping(self, fl)
        n_flows = len(fl["size"])

        remaining = fl["size"].copy()
        rates = np.zeros(n_flows)
        done_threshold = np.maximum(fl["size"] * _REL_BYTES_EPS, 1e-12)

        pair_of = fl["pair_of"]
        pair_ptr = fl["pair_ptr"]
        pair_links_flat = fl["pair_links_flat"]

        # reference path: expand the per-flow (link, flow) incidence
        links_flat, _ = _csr_gather(pair_links_flat, pair_ptr, pair_of)
        links_flow = np.repeat(
            np.arange(n_flows, dtype=np.intp),
            pair_ptr[pair_of + 1] - pair_ptr[pair_of])

        now = 0.0
        events = 0
        solves = 0

        active_idx = np.empty(0, dtype=np.intp)  # ids of active flows
        next_completion = math.inf
        finish_heap = tb.finish_heap
        release_heap = tb.release_heap

        def recompute_rates() -> None:
            nonlocal solves, next_completion
            solves += 1
            if len(active_idx) == 0:
                next_completion = math.inf
                return
            # compact incidence restricted to the active flows
            # (active_idx kept sorted on this path)
            active_mask = np.zeros(n_flows, dtype=bool)
            active_mask[active_idx] = True
            sel = active_mask[links_flow]
            compact_flow = np.searchsorted(active_idx, links_flow[sel])
            r = _waterfill(links_flat[sel], compact_flow, len(active_idx),
                           capacities, fl["cap"][active_idx])
            rates[active_idx] = r
            etas = remaining[active_idx] / rates[active_idx]
            next_completion = now + float(etas.min())

        tb.start_ready(now)  # prime

        total = tb.total
        # a single errstate for the whole loop: etas legitimately divide
        # by zero/inf rates (instantaneous and stalled flows)
        old_err = np.seterr(divide="ignore", invalid="ignore")
        try:
            while len(tb.done) < total:
                t_candidates = [next_completion]
                if finish_heap:
                    t_candidates.append(finish_heap[0][0])
                if release_heap:
                    t_candidates.append(release_heap[0][0])
                t_next = min(t_candidates)
                if not math.isfinite(t_next):  # pragma: no cover - deadlock guard
                    raise RuntimeError(
                        f"simulation stalled at t={now:g}: "
                        f"{total - len(tb.done)} tasks never became runnable")
                dt = max(0.0, t_next - now)

                if dt > 0 and len(active_idx):
                    remaining[active_idx] -= rates[active_idx] * dt
                now = t_next
                events += 1
                set_changed = False

                # 1) flow completions
                if len(active_idx):
                    done_sel = remaining[active_idx] <= done_threshold[active_idx]
                    if done_sel.any():
                        finished = active_idx[done_sel]
                        active_idx = active_idx[~done_sel]
                        remaining[finished] = 0.0
                        set_changed = True
                        for fid in finished:
                            tb.complete_flow(int(fid), now)

                # 2) task completions
                while finish_heap and finish_heap[0][0] <= now + _TIME_EPS:
                    _, name = heapq.heappop(finish_heap)
                    tb.finish_task(name, now)

                # 3) flow releases
                newly_active: list[int] = []
                while release_heap and release_heap[0][0] <= now + _TIME_EPS:
                    _, fid = heapq.heappop(release_heap)
                    newly_active.append(fid)
                if newly_active:
                    new = np.array(newly_active, dtype=np.intp)
                    active_idx = np.sort(np.concatenate([active_idx, new]))
                    set_changed = True

                # 4) newly startable tasks
                tb.start_ready(now)

                if set_changed:
                    recompute_rates()
                elif len(active_idx):
                    etas = remaining[active_idx] / rates[active_idx]
                    next_completion = now + float(etas.min())
                else:
                    next_completion = math.inf

        finally:
            np.seterr(**old_err)

        return SimulationResult(
            makespan=tb.makespan(),
            task_traces=tb.traces,
            flow_traces=tb.flow_traces,
            events=events,
            maxmin_solves=solves,
            solves_full=solves,
            solves_component=0,
        )


def simulate(schedule: Schedule, **kwargs) -> SimulationResult:
    """Convenience wrapper: ``FluidSimulator(schedule).run()``."""
    return FluidSimulator(schedule, **kwargs).run()
