"""Event-driven fluid simulation of a mapped schedule.

The simulator replays a :class:`~repro.scheduling.schedule.Schedule` the way
a runtime system such as TGrid would execute it:

* the *mapping* (which ordered processor set runs each task) and the
  *per-processor task order* are taken from the schedule — they are the
  scheduler's decisions;
* all *times* are recomputed: a task starts when (a) it is at the front of
  the queue of every processor it uses, (b) every predecessor task has
  finished, and (c) every incoming redistribution has completed;
* a redistribution's flows are released one latency after the producer
  finishes and progress at Max-Min fair rates over the cluster's links
  (bounded multi-port, §II-B/§IV-A), with the SimGrid per-flow empirical
  cap ``Wmax / RTT``.
* computation and communication overlap freely (receiving data does not
  occupy a processor).

Because estimated redistribution times ignore contention while the
simulation does not, the simulated makespan can exceed the scheduler's
estimate — the effect §IV-D discusses.

Implementation notes
--------------------
A dense 100-task DAG spawns tens of thousands of flows, so all per-flow
state lives in numpy arrays: advancing the fluid, finding the next
completion and re-solving the Max-Min rates are vector operations.  The
solver uses simultaneous waterfilling (all links at the current minimum
fair-share level freeze together), which converges in a handful of
iterations on homogeneous-capacity networks.

Two further structural optimisations keep the per-event cost low without
changing any simulated time (see ``docs/performance.md``):

* **flow bundling** — flows sharing a (src, dst) node pair have identical
  routes and rate caps, hence identical Max-Min rates; each solve runs
  over the *unique active pairs* with multiplicities
  (:func:`repro.network.maxmin.waterfill_bundled`) and broadcasts the
  per-pair rate back to the member flows;
* **incremental active-set state** — per-pair active flow counts are
  maintained on release/completion, and the compact pair incidence is
  only regathered when the *set* of active pairs changes, instead of
  rebuilding masks over all flows at every event.

``use_bundling=False`` selects the original per-flow solver; it is kept
as the equivalence oracle for the golden tests.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

import numpy as np

from repro.dag.task import TaskGraph
from repro.network.maxmin import waterfill_bundled
from repro.platforms.cluster import Cluster
from repro.redistribution.matrix import redistribution_flows
from repro.scheduling.schedule import Schedule
from repro.simulation.trace import FlowTrace, TaskTrace

__all__ = ["FluidSimulator", "SimulationResult", "simulate"]

_TIME_EPS = 1e-9
#: Completion threshold as a fraction of a flow's total bytes.
_REL_BYTES_EPS = 1e-9


@dataclass
class SimulationResult:
    """Outcome of simulating one schedule."""

    makespan: float
    task_traces: dict[str, TaskTrace]
    flow_traces: list[FlowTrace] = field(default_factory=list)
    events: int = 0
    maxmin_solves: int = 0

    def as_executed_schedule(self, schedule: Schedule) -> Schedule:
        """Rebuild a :class:`Schedule` carrying the *simulated* times."""
        from repro.scheduling.schedule import ScheduleEntry

        out = Schedule(graph=schedule.graph, cluster=schedule.cluster)
        for name, tr in self.task_traces.items():
            out.add(ScheduleEntry(task=name, procs=tr.procs,
                                  start=tr.start, finish=tr.finish))
        return out


def _waterfill(entry_links: np.ndarray, entry_flow: np.ndarray,
               n_flows: int, capacities: np.ndarray,
               caps: np.ndarray) -> np.ndarray:
    """Max-Min rates by simultaneous waterfilling.

    ``entry_links`` / ``entry_flow`` give the (link, flow) incidence of the
    ``n_flows`` flows under consideration, with flow ids in ``[0, n_flows)``.
    Per-flow ``caps`` bound individual rates (the TCP window cap).
    Semantics match :func:`repro.network.maxmin.maxmin_rates`; links whose
    fair-share level ties with the minimum freeze *together*, which keeps
    the iteration count small on homogeneous-capacity networks.
    """
    n_links = len(capacities)
    rates = np.zeros(n_flows)
    fixed = np.zeros(n_flows, dtype=bool)
    residual = capacities.copy()

    for _ in range(n_links + n_flows + 1):
        live = ~fixed[entry_flow]
        if not live.any():
            break
        counts = np.bincount(entry_links[live], minlength=n_links)
        busy = counts > 0
        levels = np.full(n_links, np.inf)
        levels[busy] = residual[busy] / counts[busy]
        min_level = float(levels.min())

        unfixed_caps = np.where(fixed, np.inf, caps)
        min_cap = float(unfixed_caps.min())

        if min_cap < min_level * (1 - 1e-12):
            # cap-limited flows freeze at their cap
            to_fix = np.where(unfixed_caps <= min_cap * (1 + 1e-12))[0]
            rates[to_fix] = caps[to_fix]
        else:
            if not math.isfinite(min_level):
                break
            min_links = levels <= min_level * (1 + 1e-12)
            sel = min_links[entry_links] & live
            to_fix = np.unique(entry_flow[sel])
            rates[to_fix] = min_level
        fixed[to_fix] = True
        dec = np.isin(entry_flow, to_fix)
        np.subtract.at(residual, entry_links[dec], rates[entry_flow[dec]])
        np.maximum(residual, 0.0, out=residual)

    # safety net: anything left over is cap-limited
    rates[~fixed] = caps[~fixed]
    return rates


def _csr_gather(flat: np.ndarray, ptr: np.ndarray,
                rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate the CSR rows ``rows``; returns (entries, row lengths)."""
    starts = ptr[rows]
    lens = ptr[rows + 1] - starts
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=flat.dtype), lens
    # positions of each row's entries in the output are contiguous
    cum = np.zeros(len(rows), dtype=np.intp)
    np.cumsum(lens[:-1], out=cum[1:])
    idx = (np.arange(total, dtype=np.intp)
           - np.repeat(cum, lens) + np.repeat(starts, lens))
    return flat[idx], lens


class FluidSimulator:
    """Simulate one schedule on its cluster.

    Parameters
    ----------
    schedule:
        A complete, valid schedule (see :meth:`Schedule.validate`).
    collect_flow_traces:
        Keep per-flow trace records (off by default: a 100-task DAG can
        spawn tens of thousands of flows).
    use_bundling:
        Solve Max-Min rates over unique (src, dst) route bundles with
        multiplicities (the fast path, on by default).  ``False`` runs the
        original per-flow waterfilling — the reference implementation the
        golden equivalence tests compare against.
    """

    def __init__(self, schedule: Schedule, *,
                 collect_flow_traces: bool = False,
                 use_bundling: bool = True) -> None:
        self.schedule = schedule
        self.graph: TaskGraph = schedule.graph
        self.cluster: Cluster = schedule.cluster
        self.collect_flow_traces = collect_flow_traces
        self.use_bundling = use_bundling

    # ------------------------------------------------------------------ #
    def _build_flows(self):
        """Expand every edge into flows; returns global flow arrays.

        Route lookups run once per distinct (src, dst) *pair*, not per
        flow: flows are tagged with a pair id (``pair_of``) and the pair's
        route incidence is stored once in CSR form (``pair_links_flat`` /
        ``pair_ptr``) — the basis of the bundled Max-Min solves.
        """
        graph, schedule, topo = self.graph, self.schedule, self.cluster.topology
        srcs: list[int] = []
        dsts: list[int] = []
        sizes: list[float] = []
        edge_of: list[int] = []
        pair_of: list[int] = []
        edges: list[tuple[str, str]] = []
        edge_index: dict[tuple[str, str], int] = {}

        pair_index: dict[tuple[int, int], int] = {}
        pair_caps: list[float] = []
        pair_lats: list[float] = []
        pair_routes: list[tuple[int, ...]] = []

        for u, v, data in graph.edges():
            eid = len(edges)
            edges.append((u, v))
            edge_index[(u, v)] = eid
            specs = redistribution_flows(schedule[u].procs, schedule[v].procs,
                                         data)
            for s in specs:
                if s.data_bytes <= 0:
                    continue
                pid = pair_index.get((s.src, s.dst))
                if pid is None:
                    pid = len(pair_routes)
                    pair_index[(s.src, s.dst)] = pid
                    route = topo.route(s.src, s.dst)
                    pair_caps.append(route.rate_cap_Bps)
                    pair_lats.append(route.latency_s)
                    pair_routes.append(topo.route_indices(s.src, s.dst))
                srcs.append(s.src)
                dsts.append(s.dst)
                sizes.append(s.data_bytes)
                edge_of.append(eid)
                pair_of.append(pid)

        pair_of_arr = np.array(pair_of, dtype=np.intp)
        pair_lens = np.array([len(r) for r in pair_routes], dtype=np.intp)
        pair_ptr = np.zeros(len(pair_routes) + 1, dtype=np.intp)
        np.cumsum(pair_lens, out=pair_ptr[1:])
        pair_links_flat = np.fromiter(
            (li for r in pair_routes for li in r),
            dtype=np.intp, count=int(pair_lens.sum()))
        pair_cap_arr = np.array(pair_caps, dtype=float)
        pair_lat_arr = np.array(pair_lats, dtype=float)

        return {
            "src": np.array(srcs, dtype=np.intp),
            "dst": np.array(dsts, dtype=np.intp),
            "size": np.array(sizes, dtype=float),
            "cap": (pair_cap_arr[pair_of_arr] if len(srcs)
                    else np.empty(0, dtype=float)),
            "lat": (pair_lat_arr[pair_of_arr] if len(srcs)
                    else np.empty(0, dtype=float)),
            "edge_of": np.array(edge_of, dtype=np.intp),
            "pair_of": pair_of_arr,
            "pair_cap": pair_cap_arr,
            "pair_lat": pair_lat_arr,
            "pair_links_flat": pair_links_flat,
            "pair_ptr": pair_ptr,
            "edges": edges,
            "edge_index": edge_index,
        }

    # ------------------------------------------------------------------ #
    def run(self) -> SimulationResult:
        graph, cluster, schedule = self.graph, self.cluster, self.schedule
        topo = cluster.topology
        capacities = topo.capacity_array

        exec_time = {n: schedule[n].duration for n in graph.task_names()}
        procs_of = {n: schedule[n].procs for n in graph.task_names()}

        proc_queue: dict[int, list[str]] = {
            p: [e.task for e in entries]
            for p, entries in schedule.proc_timeline().items()
        }
        queue_pos: dict[int, int] = {p: 0 for p in proc_queue}

        preds_left = {n: len(graph.predecessors(n)) for n in graph.task_names()}

        fl = self._build_flows()
        n_flows = len(fl["size"])
        edges = fl["edges"]
        # flows (hence bytes) still missing per consumer task
        flows_left: dict[str, int] = {n: 0 for n in graph.task_names()}
        for eid in fl["edge_of"]:
            flows_left[edges[eid][1]] += 1

        # flow state: 0 = waiting for producer, 1 = pending latency,
        # 2 = active, 3 = done
        status = np.zeros(n_flows, dtype=np.int8)
        remaining = fl["size"].copy()
        rates = np.zeros(n_flows)
        release_time = np.full(n_flows, np.inf)
        done_threshold = np.maximum(fl["size"] * _REL_BYTES_EPS, 1e-12)

        # per-edge flow ids (for release on producer completion)
        edge_flows: dict[int, list[int]] = {}
        for fid, eid in enumerate(fl["edge_of"]):
            edge_flows.setdefault(int(eid), []).append(fid)
        out_edge_ids: dict[str, list[int]] = {n: [] for n in graph.task_names()}
        for eid, (u, _v) in enumerate(edges):
            out_edge_ids[u].append(eid)

        pair_of = fl["pair_of"]
        pair_ptr = fl["pair_ptr"]
        pair_links_flat = fl["pair_links_flat"]
        pair_cap = fl["pair_cap"]
        n_pairs = len(pair_cap)

        # homogeneous route lengths (every non-hierarchical cluster, and
        # intra-cabinet-only traffic) allow a reshape-based incidence
        # gather instead of the generic CSR one
        pair_lens = np.diff(pair_ptr)
        uniform_len = 0
        if n_pairs and int(pair_lens.min()) == int(pair_lens.max()) > 0:
            uniform_len = int(pair_lens[0])
            links_2d = pair_links_flat.reshape(n_pairs, uniform_len)
            ptr_tpl = np.arange(n_pairs + 1, dtype=np.intp) * uniform_len
            entry_tpl = np.repeat(np.arange(n_pairs, dtype=np.intp),
                                  uniform_len)
        arange_tpl = np.arange(n_pairs, dtype=np.intp)

        if not self.use_bundling:
            # reference path: expand the per-flow (link, flow) incidence
            links_flat, _ = _csr_gather(pair_links_flat, pair_ptr, pair_of)
            links_flow = np.repeat(
                np.arange(n_flows, dtype=np.intp),
                pair_ptr[pair_of + 1] - pair_ptr[pair_of])

        now = 0.0
        started: set[str] = set()
        done: set[str] = set()
        task_start: dict[str, float] = {}
        finish_heap: list[tuple[float, str]] = []
        release_heap: list[tuple[float, int]] = []  # (time, flow id)
        traces: dict[str, TaskTrace] = {}
        flow_traces: list[FlowTrace] = []
        events = 0
        solves = 0

        active_idx = np.empty(0, dtype=np.intp)  # ids of active flows
        next_completion = math.inf

        # bundled-solver state: per-pair active flow counts are maintained
        # incrementally on release/completion; the compact pair incidence
        # is regathered only when the *set* of active pairs changes
        active_count = np.zeros(n_pairs, dtype=np.intp)
        pair_set_dirty = True
        active_pairs = np.empty(0, dtype=np.intp)
        compact_flat = np.empty(0, dtype=np.intp)
        compact_ptr = np.zeros(1, dtype=np.intp)
        compact_entry = np.empty(0, dtype=np.intp)
        active_caps = np.empty(0, dtype=float)
        pair_pos = np.zeros(n_pairs, dtype=np.intp)  # pair id -> compact row

        # candidates whose readiness must be rechecked after an event
        check_ready: set[str] = set(graph.task_names())

        def at_front(name: str) -> bool:
            return all(
                queue_pos[p] < len(proc_queue[p])
                and proc_queue[p][queue_pos[p]] == name
                for p in procs_of[name]
            )

        def can_start(name: str) -> bool:
            return (name not in started
                    and preds_left[name] == 0
                    and flows_left[name] == 0
                    and at_front(name))

        def start_task(name: str) -> None:
            started.add(name)
            task_start[name] = now
            heapq.heappush(finish_heap, (now + exec_time[name], name))

        def finish_task(name: str) -> None:
            done.add(name)
            traces[name] = TaskTrace(task=name, procs=procs_of[name],
                                     start=task_start[name], finish=now)
            for p in procs_of[name]:
                queue_pos[p] += 1
                pos = queue_pos[p]
                if pos < len(proc_queue[p]):
                    check_ready.add(proc_queue[p][pos])
            for succ in graph.successors(name):
                preds_left[succ] -= 1
                check_ready.add(succ)
            for eid in out_edge_ids[name]:
                for fid in edge_flows.get(eid, ()):  # release after latency
                    t_rel = now + fl["lat"][fid]
                    release_time[fid] = t_rel
                    status[fid] = 1
                    heapq.heappush(release_heap, (t_rel, fid))

        def recompute_rates() -> None:
            nonlocal solves, next_completion, pair_set_dirty
            nonlocal active_pairs, compact_flat, compact_ptr, compact_entry
            nonlocal active_caps
            solves += 1
            if len(active_idx) == 0:
                next_completion = math.inf
                return
            if self.use_bundling:
                if pair_set_dirty:
                    active_pairs = np.nonzero(active_count)[0]
                    n_act = len(active_pairs)
                    if uniform_len:
                        compact_flat = links_2d[active_pairs].ravel()
                        compact_ptr = ptr_tpl[:n_act + 1]
                        compact_entry = entry_tpl[:n_act * uniform_len]
                    else:
                        entries, lens = _csr_gather(pair_links_flat,
                                                    pair_ptr, active_pairs)
                        compact_flat = entries
                        compact_ptr = np.zeros(n_act + 1, dtype=np.intp)
                        np.cumsum(lens, out=compact_ptr[1:])
                        compact_entry = np.repeat(arange_tpl[:n_act], lens)
                    pair_pos[active_pairs] = arange_tpl[:n_act]
                    active_caps = pair_cap[active_pairs]
                    pair_set_dirty = False
                bundle_rates = waterfill_bundled(
                    compact_flat, compact_ptr, active_count[active_pairs],
                    capacities, active_caps, entry_bundle=compact_entry)
                rates[active_idx] = bundle_rates[pair_pos[pair_of[active_idx]]]
            else:
                # reference path: compact incidence restricted to the
                # active flows (active_idx kept sorted on this path)
                active_mask = np.zeros(n_flows, dtype=bool)
                active_mask[active_idx] = True
                sel = active_mask[links_flow]
                compact_flow = np.searchsorted(active_idx, links_flow[sel])
                r = _waterfill(links_flat[sel], compact_flow, len(active_idx),
                               capacities, fl["cap"][active_idx])
                rates[active_idx] = r
            etas = remaining[active_idx] / rates[active_idx]
            next_completion = now + float(etas.min())

        # prime
        for name in list(check_ready):
            if can_start(name):
                start_task(name)
        check_ready.clear()

        total = graph.num_tasks
        # a single errstate for the whole loop: etas legitimately divide
        # by zero/inf rates (instantaneous and stalled flows)
        old_err = np.seterr(divide="ignore", invalid="ignore")
        try:
            while len(done) < total:
                t_candidates = [next_completion]
                if finish_heap:
                    t_candidates.append(finish_heap[0][0])
                if release_heap:
                    t_candidates.append(release_heap[0][0])
                t_next = min(t_candidates)
                if not math.isfinite(t_next):  # pragma: no cover - deadlock guard
                    raise RuntimeError(
                        f"simulation stalled at t={now:g}: "
                        f"{total - len(done)} tasks never became runnable")
                dt = max(0.0, t_next - now)

                if dt > 0 and len(active_idx):
                    remaining[active_idx] -= rates[active_idx] * dt
                now = t_next
                events += 1
                set_changed = False

                # 1) flow completions
                if len(active_idx):
                    done_sel = remaining[active_idx] <= done_threshold[active_idx]
                    if done_sel.any():
                        finished = active_idx[done_sel]
                        active_idx = active_idx[~done_sel]
                        status[finished] = 3
                        remaining[finished] = 0.0
                        set_changed = True
                        fin_pairs = pair_of[finished]
                        np.subtract.at(active_count, fin_pairs, 1)
                        if (active_count[fin_pairs] == 0).any():
                            pair_set_dirty = True
                        for fid in finished:
                            consumer = edges[int(fl["edge_of"][fid])][1]
                            flows_left[consumer] -= 1
                            check_ready.add(consumer)
                            if self.collect_flow_traces:
                                flow_traces.append(FlowTrace(
                                    edge=edges[int(fl["edge_of"][fid])],
                                    src=int(fl["src"][fid]),
                                    dst=int(fl["dst"][fid]),
                                    data_bytes=float(fl["size"][fid]),
                                    release=float(release_time[fid]),
                                    finish=now))

                # 2) task completions
                while finish_heap and finish_heap[0][0] <= now + _TIME_EPS:
                    _, name = heapq.heappop(finish_heap)
                    finish_task(name)

                # 3) flow releases
                newly_active: list[int] = []
                while release_heap and release_heap[0][0] <= now + _TIME_EPS:
                    _, fid = heapq.heappop(release_heap)
                    status[fid] = 2
                    newly_active.append(fid)
                if newly_active:
                    new = np.array(newly_active, dtype=np.intp)
                    rel_pairs = pair_of[new]
                    if (active_count[rel_pairs] == 0).any():
                        pair_set_dirty = True
                    np.add.at(active_count, rel_pairs, 1)
                    if self.use_bundling:
                        active_idx = np.concatenate([active_idx, new])
                    else:  # reference path needs active_idx sorted
                        active_idx = np.sort(np.concatenate([active_idx, new]))
                    set_changed = True

                # 4) newly startable tasks
                for name in check_ready:
                    if name not in started and can_start(name):
                        start_task(name)
                check_ready.clear()

                if set_changed:
                    recompute_rates()
                elif len(active_idx):
                    etas = remaining[active_idx] / rates[active_idx]
                    next_completion = now + float(etas.min())
                else:
                    next_completion = math.inf

        finally:
            np.seterr(**old_err)

        makespan = max(tr.finish for tr in traces.values()) - min(
            tr.start for tr in traces.values())
        return SimulationResult(
            makespan=makespan,
            task_traces=traces,
            flow_traces=flow_traces,
            events=events,
            maxmin_solves=solves,
        )


def simulate(schedule: Schedule, **kwargs) -> SimulationResult:
    """Convenience wrapper: ``FluidSimulator(schedule).run()``."""
    return FluidSimulator(schedule, **kwargs).run()
