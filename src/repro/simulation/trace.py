"""Execution trace records produced by the fluid simulator."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TaskTrace", "FlowTrace", "canonical_event_trace"]


@dataclass(frozen=True)
class TaskTrace:
    """As-executed timing of one task."""

    task: str
    procs: tuple[int, ...]
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass(frozen=True)
class FlowTrace:
    """As-executed timing of one redistribution flow."""

    edge: tuple[str, str]
    src: int
    dst: int
    data_bytes: float
    release: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.release


def canonical_event_trace(result) -> dict:
    """A JSON-able, order-canonical form of one simulation's events.

    Task events are sorted by ``(start, task)`` and flow events kept in
    execution order; only engine-invariant fields enter (``makespan``,
    ``events``, the traces) — solver-strategy counters like
    ``maxmin_solves`` are deliberately excluded, because the lazy, eager
    and reference engines must all produce *this* value identically.

    Python floats survive a JSON round trip exactly (shortest-repr), so
    a golden file comparison asserts byte-exact replay, not approximate
    agreement.
    """
    tasks = [
        {"task": tr.task, "procs": list(tr.procs),
         "start": tr.start, "finish": tr.finish}
        for tr in sorted(result.task_traces.values(),
                         key=lambda tr: (tr.start, tr.task))
    ]
    flows = [
        {"edge": list(fl.edge), "src": fl.src, "dst": fl.dst,
         "bytes": fl.data_bytes, "release": fl.release,
         "finish": fl.finish}
        for fl in result.flow_traces
    ]
    return {"makespan": result.makespan, "events": result.events,
            "tasks": tasks, "flows": flows}
