"""Execution trace records produced by the fluid simulator."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TaskTrace", "FlowTrace"]


@dataclass(frozen=True)
class TaskTrace:
    """As-executed timing of one task."""

    task: str
    procs: tuple[int, ...]
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass(frozen=True)
class FlowTrace:
    """As-executed timing of one redistribution flow."""

    edge: tuple[str, str]
    src: int
    dst: int
    data_bytes: float
    release: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.release
