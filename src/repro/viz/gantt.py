"""ASCII Gantt charts of schedules and simulation traces."""

from __future__ import annotations

from repro.scheduling.schedule import Schedule

__all__ = ["ascii_gantt"]


def ascii_gantt(schedule: Schedule, *, width: int = 78,
                max_procs: int | None = None) -> str:
    """Render the per-processor timeline of a schedule.

    Each task is drawn with a single character (cycling through an
    alphabet); idle time is ``.``.  ``max_procs`` truncates tall clusters
    for readability.
    """
    if not schedule.entries:
        return "(empty schedule)"
    makespan = max(e.finish for e in schedule.entries.values())
    if makespan <= 0:
        return "(zero-length schedule)"
    t0 = min(e.start for e in schedule.entries.values())
    span = makespan - t0 or 1.0

    alphabet = ("ABCDEFGHIJKLMNOPQRSTUVWXYZ"
                "abcdefghijklmnopqrstuvwxyz0123456789")
    symbols = {
        name: alphabet[i % len(alphabet)]
        for i, name in enumerate(sorted(schedule.entries))
    }

    timeline = schedule.proc_timeline()
    procs = sorted(timeline)
    if max_procs is not None:
        procs = procs[:max_procs]

    lines = [f"Gantt: {schedule.graph.name} on {schedule.cluster.name} "
             f"(makespan {schedule.makespan:.3f}s)"]
    for p in procs:
        row = ["."] * width
        for e in timeline[p]:
            c0 = int((e.start - t0) / span * (width - 1))
            c1 = max(c0 + 1, int((e.finish - t0) / span * (width - 1)) + 1)
            for c in range(c0, min(c1, width)):
                row[c] = symbols[e.task]
        lines.append(f"p{p:<4d}|" + "".join(row) + "|")
    if max_procs is not None and len(timeline) > max_procs:
        lines.append(f"... ({len(timeline) - max_procs} more processors)")
    legend_items = [f"{sym}={name}" for name, sym in list(symbols.items())[:12]]
    lines.append("legend: " + " ".join(legend_items)
                 + (" ..." if len(symbols) > 12 else ""))
    return "\n".join(lines)
