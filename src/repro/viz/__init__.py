"""Terminal visualisation: ASCII Gantt charts and plots."""

from repro.viz.ascii_plot import ascii_curves, ascii_surface
from repro.viz.gantt import ascii_gantt

__all__ = ["ascii_curves", "ascii_surface", "ascii_gantt"]
