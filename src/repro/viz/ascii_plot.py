"""Minimal ASCII plotting for the paper's figures in a terminal.

Two primitives cover everything the evaluation needs:

* :func:`ascii_curves` — one or more ``(x, y)`` series on a shared canvas
  (Figures 2/3/5/6/7 are sorted-ratio or threshold curves);
* :func:`ascii_surface` — a labelled value grid (Figure 4 is a surface over
  the (mindelta, maxdelta) plane).
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["ascii_curves", "ascii_surface"]

_MARKS = "*o+x#@%&"


def ascii_curves(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 72,
    height: int = 18,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render ``label → [(x, y), ...]`` curves on one canvas.

    Each series gets its own marker; axes are annotated with the data
    ranges.  Intended for quick terminal inspection, not publication.
    """
    pts = [(x, y) for s in series.values() for x, y in s]
    if not pts:
        return "(no data)"
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, (label, s) in enumerate(series.items()):
        mark = _MARKS[si % len(_MARKS)]
        for x, y in s:
            col = int((x - x_min) / x_span * (width - 1))
            row = height - 1 - int((y - y_min) / y_span * (height - 1))
            grid[row][col] = mark

    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        y_val = y_max - i * y_span / (height - 1)
        lines.append(f"{y_val:10.3f} |" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(" " * 12 + f"{x_min:<12g}{'':^{max(0, width - 24)}}{x_max:>12g}")
    legend = "   ".join(f"{_MARKS[i % len(_MARKS)]} {label}"
                        for i, label in enumerate(series))
    lines.append("  legend: " + legend)
    if y_label:
        lines.append("  y: " + y_label)
    return "\n".join(lines)


def ascii_surface(
    values: Mapping[tuple[float, float], float],
    *,
    x_name: str = "x",
    y_name: str = "y",
    title: str = "",
    fmt: str = "{:7.3f}",
) -> str:
    """Render a ``(x, y) → value`` grid as an aligned table.

    Rows are distinct ``x`` values, columns distinct ``y`` values, both in
    sorted order — matching Figure 4's (mindelta, maxdelta) surface.
    """
    if not values:
        return "(no data)"
    xs = sorted({k[0] for k in values})
    ys = sorted({k[1] for k in values})
    col_w = max(len(fmt.format(0.0)), 8)
    head = f"{x_name + chr(92) + y_name:>10} " + "".join(
        f"{y:>{col_w}g}" for y in ys)
    lines = [title, head] if title else [head]
    for x in xs:
        cells = []
        for y in ys:
            v = values.get((x, y))
            cells.append(" " * (col_w - 1) + "-" if v is None
                         else f"{fmt.format(v):>{col_w}}")
        lines.append(f"{x:>10g} " + "".join(cells))
    return "\n".join(lines)
