"""The two redistribution-aware mapping strategies of §III-A / §III-B.

Both strategies consider, for a ready task ``t``, the processor sets of its
already-mapped predecessors.  Mapping ``t`` on the *exact ordered set* of a
predecessor makes that edge's redistribution free (§II-A), at the price of
changing the task's first-step allocation:

* **stretching** (predecessor has *more* processors) also shortens the
  task's execution time but uses more resources;
* **packing** (predecessor has *fewer* processors) lengthens the execution
  but can start earlier and leaves room for concurrent tasks.

``DeltaStrategy`` accepts the closest predecessor set whose size difference
is within the ``mindelta`` / ``maxdelta`` budget — purely structural, no
performance estimation.  ``TimeCostStrategy`` stretches only when the work
ratio ``ρ`` (Eq. 1) stays above ``minrho`` and packs only when the estimated
finish time does not degrade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.sorting import delta_sort_value, gain_sort_value
from repro.registry import mapping_strategies, register_mapping_strategy
from repro.scheduling.mapping import MappingDecision

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.params import RATSParams
    from repro.scheduling.mapping import ListScheduler

__all__ = [
    "AdaptationRecord",
    "DeltaStrategy",
    "TimeCostStrategy",
    "make_strategy",
]


@dataclass(frozen=True)
class AdaptationRecord:
    """One allocation adaptation performed while mapping."""

    task: str
    pred: str
    kind: str  # "stretch" | "pack" | "same"
    from_procs: int
    to_procs: int

    @property
    def delta(self) -> int:
        return self.to_procs - self.from_procs


def _kind_of(diff: int) -> str:
    if diff > 0:
        return "stretch"
    if diff < 0:
        return "pack"
    return "same"


def _mapped_pred_sets(scheduler: "ListScheduler",
                      name: str) -> list[tuple[str, tuple[int, ...]]]:
    """(pred, ordered procs) for each *claimable* mapped predecessor.

    Predecessors whose allocation was already claimed by a sibling's
    adaptation are excluded: Algorithm 1 (line 11) recomputes the
    delta / execution-time values of ready nodes "computed using this
    parent allocation" once a node has been mapped onto it — reusing the
    same parent set for many ready siblings would serialize them on the
    same processors and destroy task parallelism (§III-C).
    """
    consumed = getattr(scheduler, "consumed_parents", frozenset())
    return [
        (p, scheduler.schedule[p].procs)
        for p in scheduler.graph.predecessors(name)
        if p in scheduler.schedule and p not in consumed
    ]


def _pick_pred(scheduler: "ListScheduler", name: str,
               preds: list[tuple[str, tuple[int, ...]]]) -> tuple[str, tuple[int, ...]]:
    """Among equivalent predecessors prefer the heaviest edge (most data
    saved from redistribution), then the name for determinism."""
    return max(preds,
               key=lambda pp: (scheduler.graph.edge_bytes(pp[0], name), pp[0]))


@register_mapping_strategy(
    "delta",
    description="bounded structural adaptation (mindelta / maxdelta)")
class DeltaStrategy:
    """§III-A / §III-B *delta* mapping: bounded structural adaptation.

    For a ready task ``t`` with first-step allocation ``n_t``:

    * ``δ⁺ = min_i (Np(pred_i) − n_t)`` over predecessors with at least
      ``n_t`` processors; acceptable when ``δ⁺ ≤ maxdelta·n_t``;
    * ``δ⁻ = max_i (Np(pred_i) − n_t)`` over predecessors with fewer
      processors; acceptable when ``δ⁻ ≥ mindelta·n_t``;
    * the smaller modification wins (ties prefer stretching, which also
      reduces the execution time); the task is mapped on the selected
      predecessor's exact processor set.
    """

    name = "delta"

    def __init__(self, params: "RATSParams") -> None:
        self.params = params

    def secondary_sort(self, scheduler: "ListScheduler", name: str) -> float:
        """§III-C delta sort: increasing ``δ(t)`` among priority ties."""
        return delta_sort_value(scheduler, name)

    def decide(self, scheduler: "ListScheduler", name: str,
               ) -> tuple[MappingDecision, AdaptationRecord | None]:
        n_t = scheduler.allocation[name]
        preds = _mapped_pred_sets(scheduler, name)

        grow = [(p, procs) for p, procs in preds if len(procs) >= n_t]
        shrink = [(p, procs) for p, procs in preds if len(procs) < n_t]

        options: list[tuple[int, int, str, tuple[int, ...]]] = []
        if grow:
            d_plus = min(len(procs) - n_t for _, procs in grow)
            if d_plus <= self.params.maxdelta * n_t:
                cands = [pp for pp in grow if len(pp[1]) - n_t == d_plus]
                p, procs = _pick_pred(scheduler, name, cands)
                # (modification magnitude, tie-rank 0 = stretch preferred)
                options.append((d_plus, 0, p, procs))
        if shrink:
            d_minus = max(len(procs) - n_t for _, procs in shrink)
            if d_minus >= self.params.mindelta * n_t:
                cands = [pp for pp in shrink if len(pp[1]) - n_t == d_minus]
                p, procs = _pick_pred(scheduler, name, cands)
                options.append((-d_minus, 1, p, procs))

        if not options:
            return scheduler.best_decision(name, n_t), None

        options.sort(key=lambda o: (o[0], o[1]))
        _, _, pred, procs = options[0]
        decision = scheduler.decision_for_procs(name, procs)
        record = AdaptationRecord(task=name, pred=pred,
                                  kind=_kind_of(len(procs) - n_t),
                                  from_procs=n_t, to_procs=len(procs))
        return decision, record


@register_mapping_strategy(
    "timecost",
    description="work- and finish-time-aware adaptation (minrho, packing)",
    aliases=("time-cost",))
class TimeCostStrategy:
    """§III-A / §III-B *time-cost* mapping: work- and finish-time-aware.

    Stretching uses the work ratio (Eq. 1)

        ``ρ_i = (T(t, n_t)·n_t) / (T(t, Np(pred_i))·Np(pred_i))``

    over predecessors with ``Np(pred_i) ≥ n_t``; the best (largest) ratio
    must reach ``minrho`` (and, with ``guard_stretch``, the stretch's
    estimated finish time must not exceed the default mapping's — §III-A's
    finish-time estimation).  Packing (when enabled) maps ``t`` on a
    smaller predecessor set only if its estimated finish time is not worse
    than the default HCPA mapping.  When both qualify, the earlier
    estimated finish wins.
    """

    name = "timecost"

    def __init__(self, params: "RATSParams") -> None:
        self.params = params

    def secondary_sort(self, scheduler: "ListScheduler", name: str) -> float:
        """§III-C time-cost sort: decreasing ``gain(t)`` among ties."""
        return -gain_sort_value(scheduler, name)

    def decide(self, scheduler: "ListScheduler", name: str,
               ) -> tuple[MappingDecision, AdaptationRecord | None]:
        n_t = scheduler.allocation[name]
        default = scheduler.best_decision(name, n_t)
        preds = _mapped_pred_sets(scheduler, name)

        candidates: list[tuple[MappingDecision, AdaptationRecord]] = []

        grow = [(p, procs) for p, procs in preds if len(procs) >= n_t]
        if grow:
            own_work = n_t * scheduler.exec_time_count(name, n_t)

            def rho(procs: tuple[int, ...]) -> float:
                return own_work / scheduler.work_of(name, procs)

            best_rho = max(rho(procs) for _, procs in grow)
            if best_rho >= self.params.minrho:
                cands = [pp for pp in grow if rho(pp[1]) >= best_rho - 1e-12]
                p, procs = _pick_pred(scheduler, name, cands)
                decision = scheduler.decision_for_procs(name, procs)
                if not (self.params.guard_stretch
                        and decision.finish > default.finish):
                    candidates.append((decision, AdaptationRecord(
                        task=name, pred=p, kind=_kind_of(len(procs) - n_t),
                        from_procs=n_t, to_procs=len(procs))))

        if self.params.allow_pack:
            shrink = [(p, procs) for p, procs in preds if len(procs) < n_t]
            best_pack: tuple[MappingDecision, str, tuple[int, ...]] | None = None
            for p, procs in shrink:
                d = scheduler.decision_for_procs(name, procs)
                if d.finish <= default.finish and (
                        best_pack is None or d.finish < best_pack[0].finish):
                    best_pack = (d, p, procs)
            if best_pack is not None:
                d, p, procs = best_pack
                candidates.append((d, AdaptationRecord(
                    task=name, pred=p, kind="pack",
                    from_procs=n_t, to_procs=len(procs))))

        if not candidates:
            return default, None
        decision, record = min(candidates, key=lambda c: c[0].finish)
        return decision, record


def make_strategy(params: "RATSParams"):
    """Instantiate the strategy registered under ``params.strategy``.

    Third-party strategies registered through
    :func:`repro.registry.register_mapping_strategy` resolve here too.
    """
    return mapping_strategies.build(params.strategy, params)
