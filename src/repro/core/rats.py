"""RATS — Redistribution Aware Two-Step scheduling (paper Algorithm 1).

RATS keeps the two-step structure of CPA/HCPA but lets the *mapping* step
reconsider the allocations fixed by the first step:

1. compute the allocation with HCPA (§II-C);
2. while unscheduled tasks remain, take the wave of ready tasks, sort it by
   decreasing bottom level with the strategy's stable secondary sort
   (§III-C), and map each task: if a predecessor's allocation matches the
   *delta* or *time-cost* conditions, the task is mapped on that
   predecessor's exact processor set (making the edge's redistribution
   free); otherwise the plain HCPA mapping applies.

The scheduler records every adaptation in :attr:`RATSScheduler.adaptations`
so experiments can analyse how often packing/stretching fired.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.core.params import RATSParams
from repro.core.strategies import AdaptationRecord, make_strategy
from repro.dag.task import TaskGraph
from repro.model.amdahl import PerformanceModel
from repro.platforms.cluster import Cluster
from repro.redistribution.cost import RedistributionCost
from repro.registry import register_scheduler
from repro.scheduling.allocation import hcpa_allocation
from repro.scheduling.mapping import ListScheduler
from repro.scheduling.schedule import Schedule, ScheduleEntry

__all__ = ["RATSScheduler", "rats_schedule"]


class RATSScheduler(ListScheduler):
    """List scheduler with redistribution-aware allocation adaptation."""

    def __init__(
        self,
        graph: TaskGraph,
        cluster: Cluster,
        model: PerformanceModel,
        allocation: Mapping[str, int],
        params: RATSParams,
        *,
        redist: RedistributionCost | None = None,
        proc_release=None,
        priority_edge_costs: bool = True,
        avail_index=True,
        vector_price: bool = True,
    ) -> None:
        super().__init__(graph, cluster, model, allocation,
                         redist=redist, proc_release=proc_release,
                         priority_edge_costs=priority_edge_costs,
                         avail_index=avail_index,
                         vector_price=vector_price)
        self.params = params
        self.strategy = make_strategy(params)
        self.adaptations: list[AdaptationRecord] = []
        #: memoised secondary-sort values: ``iter_ready`` re-sorts the
        #: ready list after every mapping, but a task's δ(t) / gain(t)
        #: only changes when one of its predecessors gets mapped — the
        #: cache is invalidated for the successors of each committed task.
        self._sort_cache: dict[str, float] = {}
        #: bumped whenever a cached sort value is invalidated — lets
        #: ``iter_ready`` skip re-sorts that could not change the order
        self._sort_epoch = 0
        #: predecessors whose allocation has been claimed by an adaptation;
        #: they are no longer adaptation targets (Algorithm 1, line 11 — a
        #: parent allocation backs at most one adapted child, preventing
        #: ready siblings from piling up on the same processor set).
        self.consumed_parents: set[str] = set()

    # ------------------------------------------------------------------ #
    # ready-list ordering (§III-C)
    # ------------------------------------------------------------------ #
    def sort_ready(self, ready: list[str]) -> list[str]:
        """Decreasing bottom level + stable strategy-specific secondary sort.

        The secondary key comes from the strategy object's
        ``secondary_sort`` hook (delta: increasing ``δ(t)``; time-cost:
        decreasing ``gain(t)``; custom strategies may omit it, falling back
        to the name tie-break).  The input order is preserved among full
        ties (Python's sort is stable), as required by §III-C.
        """
        secondary = getattr(self.strategy, "secondary_sort", None)
        if secondary is None:
            return super().sort_ready(ready)
        cache = self._sort_cache

        def value(n: str) -> float:
            v = cache.get(n)
            if v is None:
                v = secondary(self, n)
                cache[n] = v
            return v

        return sorted(ready, key=lambda n: (-self.priorities[n], value(n)))

    def iter_ready(self, ready: list[str]) -> Iterator[str]:
        """Pop ready tasks one at a time, re-sorting between mappings.

        Algorithm 1 (lines 11–12) recomputes the per-task values and resorts
        the ready list after a task is mapped onto a parent allocation —
        mapping decisions never alter predecessor *allocations* in this
        implementation, but re-sorting keeps the behaviour faithful.

        A re-sort can only change the order when some remaining task's
        memoised sort value was invalidated since the last sort (the keys
        are otherwise served from ``_sort_cache`` and Python's sort is
        stable), so it is skipped while ``_sort_epoch`` is unchanged.
        """
        remaining = self.sort_ready(list(ready))
        epoch = self._sort_epoch
        while remaining:
            name = remaining.pop(0)
            yield name
            if remaining and self._sort_epoch != epoch:
                remaining = self.sort_ready(remaining)
                epoch = self._sort_epoch

    # ------------------------------------------------------------------ #
    # mapping with adaptation (Algorithm 1, lines 9–15)
    # ------------------------------------------------------------------ #
    def map_task(self, name: str) -> ScheduleEntry:
        decision, record = self.strategy.decide(self, name)
        if record is not None:
            self.adaptations.append(record)
            self.consumed_parents.add(record.pred)
        entry = self.commit(name, decision)
        # mapping `name` changes δ(t) / gain(t) of its successors only
        for succ in self.graph.successors(name):
            if self._sort_cache.pop(succ, None) is not None:
                self._sort_epoch += 1
        return entry

    # ------------------------------------------------------------------ #
    def adaptation_summary(self) -> dict[str, int]:
        """Counts of adaptations by kind (``stretch`` / ``pack`` / ``same``)."""
        out = {"stretch": 0, "pack": 0, "same": 0}
        for r in self.adaptations:
            out[r.kind] += 1
        return out


def rats_schedule(
    graph: TaskGraph,
    cluster: Cluster,
    params: RATSParams,
    *,
    model: PerformanceModel | None = None,
    allocation: Mapping[str, int] | None = None,
    redist: RedistributionCost | None = None,
) -> Schedule:
    """One-call convenience: HCPA allocation + RATS mapping.

    >>> from repro.platforms import GRILLON          # doctest: +SKIP
    >>> sched = rats_schedule(graph, GRILLON, RATSParams("timecost"))
    """
    model = model or cluster.performance_model()
    if allocation is None:
        allocation = hcpa_allocation(graph, model, cluster.num_procs).allocation
    scheduler = RATSScheduler(graph, cluster, model, allocation, params,
                              redist=redist)
    return scheduler.run()


@register_scheduler("rats", description="RATS redistribution-aware "
                    "adaptation (single cluster)")
def _build_rats_scheduler(graph, platform, model, allocation, *,
                          params=None, redist=None, proc_release=None,
                          avail_index=True, vector_price=True):
    if params is None:
        raise ValueError("the rats scheduler needs RATSParams")
    return RATSScheduler(graph, platform, model, allocation, params,
                         redist=redist, proc_release=proc_release,
                         avail_index=avail_index, vector_price=vector_price)
