"""Ready-list secondary sorting strategies (paper §III-C).

Ready tasks are primarily ordered by decreasing bottom level.  Among tasks
of equal priority a *stable* secondary sort applies:

* **delta sort** — increasing ``δ(t) = min(δ⁺, −δ⁻)``: tasks requiring the
  smallest modification of their initial allocation go first;
* **time-cost sort** — decreasing
  ``gain(t) = max_i (T(t, Np(t)) − T(t, Np(pred_i))))``: tasks with the most
  execution time to gain from a parent's allocation go first.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.scheduling.mapping import ListScheduler

__all__ = ["delta_sort_value", "gain_sort_value", "pred_size_diffs"]

_INF = float("inf")


def pred_size_diffs(scheduler: "ListScheduler", name: str) -> list[tuple[int, str]]:
    """``(Np(pred) − Np(t), pred)`` for every already-mapped predecessor."""
    n_t = scheduler.allocation[name]
    out: list[tuple[int, str]] = []
    for pred in scheduler.graph.predecessors(name):
        if pred in scheduler.schedule:
            out.append((scheduler.schedule[pred].nprocs - n_t, pred))
    return out


def delta_sort_value(scheduler: "ListScheduler", name: str) -> float:
    """``δ(t) = min(δ⁺, −δ⁻)`` — the smallest allocation modification.

    ``δ⁺`` is the minimal non-negative predecessor size difference and
    ``δ⁻`` the maximal negative one.  Tasks with no mapped predecessor get
    ``+inf`` (no adaptation possible, lowest priority among ties).
    """
    diffs = [d for d, _ in pred_size_diffs(scheduler, name)]
    if not diffs:
        return _INF
    d_plus = min((d for d in diffs if d >= 0), default=None)
    d_minus = max((d for d in diffs if d < 0), default=None)
    candidates = []
    if d_plus is not None:
        candidates.append(float(d_plus))
    if d_minus is not None:
        candidates.append(float(-d_minus))
    return min(candidates) if candidates else _INF


def gain_sort_value(scheduler: "ListScheduler", name: str) -> float:
    """``gain(t) = max_i (T(t, Np(t)) − T(t, Np(pred_i)))`` (Eq. 2).

    Positive when some predecessor runs on more processors than ``t`` was
    allocated.  Tasks with no mapped predecessor get ``−inf`` (no gain
    available, lowest priority among ties).
    """
    n_t = scheduler.allocation[name]
    t_own = scheduler.exec_time_count(name, n_t)
    best = -_INF
    for _diff, pred in pred_size_diffs(scheduler, name):
        procs = scheduler.schedule[pred].procs
        best = max(best, t_own - scheduler.exec_time(name, procs))
    return best
