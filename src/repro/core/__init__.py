"""RATS — Redistribution Aware Two-Step scheduling (the paper's contribution)."""

from repro.core.params import (
    NAIVE_DELTA,
    NAIVE_TIMECOST,
    PAPER_TUNED_PARAMS,
    RATSParams,
    tuned_params,
)
from repro.core.strategies import (
    AdaptationRecord,
    DeltaStrategy,
    TimeCostStrategy,
    make_strategy,
)
from repro.core.sorting import delta_sort_value, gain_sort_value
from repro.core.rats import RATSScheduler, rats_schedule
from repro.core.autotune import (
    ApplicationFeatures,
    AutotuneResult,
    autotune,
    extract_features,
    suggest_params,
)

__all__ = [
    "ApplicationFeatures",
    "AutotuneResult",
    "autotune",
    "extract_features",
    "suggest_params",
    "RATSParams",
    "NAIVE_DELTA",
    "NAIVE_TIMECOST",
    "PAPER_TUNED_PARAMS",
    "tuned_params",
    "AdaptationRecord",
    "DeltaStrategy",
    "TimeCostStrategy",
    "make_strategy",
    "delta_sort_value",
    "gain_sort_value",
    "RATSScheduler",
    "rats_schedule",
]
