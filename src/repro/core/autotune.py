"""Automatic RATS parameter tuning — the paper's §V future work.

"We also plan to further analyze the relationships between applications
and platform characteristics and our tunable parameters to allow the
automatic tuning of our scheduling algorithm."

Two mechanisms are provided:

* :func:`suggest_params` — a zero-cost, feature-based heuristic distilled
  from the patterns of Table IV: ``maxdelta`` wants to be large everywhere;
  communication-dominated applications tolerate low ``minrho`` (stretch
  aggressively — redistribution avoidance pays for the extra work); wide
  DAGs benefit from deeper packing budgets (more potential concurrency to
  protect).
* :func:`autotune` — per-application coordinate descent over the §IV-C
  grids, evaluating candidate parameter sets by *scheduling* the
  application (estimate-based by default, optionally simulation-based) and
  keeping the best.  This is the automated version of the paper's manual
  sweeps, at a per-application budget of a few dozen schedules instead of
  a full campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.params import RATSParams
from repro.core.rats import RATSScheduler
from repro.dag.analysis import dag_levels, dag_width
from repro.dag.task import TaskGraph
from repro.platforms.cluster import Cluster
from repro.redistribution.cost import RedistributionCost
from repro.scheduling.allocation import hcpa_allocation

__all__ = [
    "ApplicationFeatures",
    "extract_features",
    "suggest_params",
    "AutotuneResult",
    "autotune",
]

#: §IV-C grids (the search space of the paper's manual tuning)
MINDELTA_GRID = (0.0, -0.25, -0.5, -0.75)
MAXDELTA_GRID = (0.0, 0.25, 0.5, 0.75, 1.0)
MINRHO_GRID = (0.2, 0.4, 0.5, 0.6, 0.8, 1.0)


@dataclass(frozen=True)
class ApplicationFeatures:
    """Structural/cost features driving the parameter heuristic."""

    n_tasks: int
    depth: int                   # number of precedence levels
    width: int                   # max tasks per level
    parallelism: float           # width / depth balance in [0, 1]
    ccr: float                   # communication-to-computation time ratio
    procs_per_task: float        # cluster size / task count

    def describe(self) -> str:
        return (f"{self.n_tasks} tasks, depth {self.depth}, width "
                f"{self.width}, CCR {self.ccr:.2f}, "
                f"{self.procs_per_task:.2f} procs/task")


def extract_features(graph: TaskGraph, cluster: Cluster) -> ApplicationFeatures:
    """Compute the features of one application on one cluster."""
    levels = dag_levels(graph)
    depth = max(levels.values()) + 1
    width = dag_width(graph)
    model = cluster.performance_model()
    redist = RedistributionCost(cluster)
    compute = sum(model.time(t, 1) for t in graph.tasks())
    comm = sum(redist.average_edge_time(d) for _, _, d in graph.edges())
    return ApplicationFeatures(
        n_tasks=graph.num_tasks,
        depth=depth,
        width=width,
        parallelism=width / max(1, graph.num_tasks),
        ccr=comm / compute if compute > 0 else float("inf"),
        procs_per_task=cluster.num_procs / graph.num_tasks,
    )


def suggest_params(graph: TaskGraph, cluster: Cluster,
                   strategy: str = "timecost") -> RATSParams:
    """Feature-based parameter suggestion (no scheduling performed).

    Rules distilled from Table IV:

    * ``maxdelta = 1`` unless processors are scarce relative to tasks
      (``procs_per_task < 1``), where over-stretching starves siblings;
    * ``mindelta`` deepens with available parallelism — wide DAGs have
      concurrency worth protecting by packing;
    * ``minrho`` drops as the application becomes communication-dominated
      (avoiding a redistribution is worth more wasted work).
    """
    f = extract_features(graph, cluster)
    maxdelta = 1.0 if f.procs_per_task >= 1.0 else 0.5
    if f.parallelism >= 0.3:
        mindelta = -0.75
    elif f.parallelism >= 0.1:
        mindelta = -0.5
    else:
        mindelta = -0.25
    if f.ccr >= 2.0:
        minrho = 0.2
    elif f.ccr >= 0.5:
        minrho = 0.4
    else:
        minrho = 0.6
    return RATSParams(strategy=strategy, mindelta=mindelta,
                      maxdelta=maxdelta, minrho=minrho, allow_pack=True)


@dataclass
class AutotuneResult:
    """Outcome of a per-application parameter search."""

    best_params: RATSParams
    best_makespan: float
    baseline_makespan: float   # the strategy at its naive 0.5 settings
    evaluations: int
    history: list[tuple[RATSParams, float]] = field(default_factory=list)

    @property
    def improvement(self) -> float:
        """Fractional makespan reduction vs the naive parameterisation."""
        if self.baseline_makespan <= 0:
            return 0.0
        return 1.0 - self.best_makespan / self.baseline_makespan


def autotune(
    graph: TaskGraph,
    cluster: Cluster,
    strategy: str = "timecost",
    *,
    allocation: dict[str, int] | None = None,
    evaluate: Callable[[RATSParams], float] | None = None,
    simulate_candidates: bool = False,
    max_rounds: int = 3,
) -> AutotuneResult:
    """Coordinate-descent search for the best RATS parameters.

    Starting from :func:`suggest_params`, each round sweeps one parameter's
    §IV-C grid while holding the others, keeping improvements; the search
    stops after ``max_rounds`` rounds or when a round changes nothing.

    ``evaluate`` overrides the objective entirely (it receives a candidate
    :class:`RATSParams` and returns a makespan-like score).  By default a
    candidate is scored by the *scheduler's estimated* makespan — cheap and
    contention-blind like every decision in the paper; pass
    ``simulate_candidates=True`` to score with the fluid simulator.
    """
    model = cluster.performance_model()
    if allocation is None:
        allocation = hcpa_allocation(graph, model,
                                     cluster.num_procs).allocation
    redist = RedistributionCost(cluster)
    cache: dict[RATSParams, float] = {}
    evaluations = 0

    def default_evaluate(params: RATSParams) -> float:
        schedule = RATSScheduler(graph, cluster, model, allocation, params,
                                 redist=redist).run()
        if simulate_candidates:
            from repro.simulation.simulator import simulate

            return simulate(schedule).makespan
        return schedule.makespan

    score = evaluate or default_evaluate

    def scored(params: RATSParams) -> float:
        nonlocal evaluations
        if params not in cache:
            cache[params] = score(params)
            evaluations += 1
        return cache[params]

    current = suggest_params(graph, cluster, strategy)
    history: list[tuple[RATSParams, float]] = [(current, scored(current))]

    if strategy == "delta":
        axes: list[tuple[str, tuple[float, ...]]] = [
            ("mindelta", MINDELTA_GRID), ("maxdelta", MAXDELTA_GRID)]
    else:
        axes = [("minrho", MINRHO_GRID)]

    for _ in range(max_rounds):
        changed = False
        for attr, grid in axes:
            best_v, best_s = getattr(current, attr), scored(current)
            for v in grid:
                cand = current.with_(**{attr: v})
                s = scored(cand)
                history.append((cand, s))
                if s < best_s - 1e-12:
                    best_v, best_s = v, s
            if best_v != getattr(current, attr):
                current = current.with_(**{attr: best_v})
                changed = True
        if not changed:
            break

    naive = RATSParams(strategy=strategy)  # every knob at its 0.5 default
    baseline = scored(naive)
    best_params, best_score = min(
        ((p, s) for p, s in history), key=lambda ps: ps[1])
    if baseline <= best_score:
        best_params, best_score = naive, baseline
    return AutotuneResult(
        best_params=best_params,
        best_makespan=best_score,
        baseline_makespan=baseline,
        evaluations=evaluations,
        history=history,
    )
