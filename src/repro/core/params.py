"""RATS tunable parameters (paper §III and Table IV).

* ``mindelta ∈ R⁻`` — fraction of a task's allocation that *packing* may
  remove: a task allocated ``n`` processors may shrink to
  ``n + mindelta·n`` (e.g. ``n = 6``, ``mindelta = −0.5`` → at least 3).
* ``maxdelta ∈ R⁺`` — fraction *stretching* may add: ``n = 6``,
  ``maxdelta = 0.5`` → at most 9 processors (``δmax = 3``).
* ``minrho ∈ (0, 1]`` — time-cost stretch threshold on the work ratio
  ``ρ = (T(t,n_t)·n_t) / (T(t,n_p)·n_p)``; the closer to 1, the better the
  balance between execution-time reduction and extra work.
* ``allow_pack`` — time-cost packing toggle (§IV-C found enabling it always
  produces shorter schedules).
* ``guard_stretch`` — time-cost only: also require a stretch's *estimated
  finish time* not to exceed the default mapping's.  §III-A motivates the
  whole mapping step with "it is thus possible to estimate accurately the
  respective finish time of a task using several modified allocations",
  and this guard is what makes time-cost "rely on performance estimations"
  (§IV-D) for stretching as well as packing.  On by default; disable for
  the pure-ρ ablation.

The paper's first comparison (§IV-B) uses the *naive* value 0.5 everywhere;
§IV-C tunes per application type and cluster, giving Table IV, reproduced
here as :data:`PAPER_TUNED_PARAMS`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.registry import mapping_strategies

__all__ = [
    "RATSParams",
    "NAIVE_DELTA",
    "NAIVE_TIMECOST",
    "PAPER_TUNED_PARAMS",
    "tuned_params",
]

#: Any name registered in :data:`repro.registry.mapping_strategies`
#: (built-ins: ``"delta"`` and ``"timecost"``).
Strategy = str


@dataclass(frozen=True)
class RATSParams:
    """Parameter set for one RATS run."""

    strategy: Strategy = "timecost"
    mindelta: float = -0.5
    maxdelta: float = 0.5
    minrho: float = 0.5
    allow_pack: bool = True
    guard_stretch: bool = True

    def __post_init__(self) -> None:
        # raises UnknownComponentError (a ValueError) listing the registered
        # strategies; custom strategies pass once registered
        mapping_strategies.get(self.strategy)
        if self.mindelta > 0:
            raise ValueError("mindelta takes values in R- (<= 0)")
        if self.maxdelta < 0:
            raise ValueError("maxdelta takes values in R+ (>= 0)")
        if not 0.0 < self.minrho <= 1.0:
            raise ValueError("minrho takes values in ]0, 1]")

    def with_(self, **changes) -> "RATSParams":
        """Functional update helper."""
        return replace(self, **changes)

    def describe(self) -> str:
        if self.strategy == "delta":
            return (f"delta(mindelta={self.mindelta:g}, "
                    f"maxdelta={self.maxdelta:g})")
        pack = "packing" if self.allow_pack else "no packing"
        return f"time-cost(minrho={self.minrho:g}, {pack})"


#: §IV-B naive parameterisations (every knob at 0.5, packing allowed).
NAIVE_DELTA = RATSParams(strategy="delta", mindelta=-0.5, maxdelta=0.5)
NAIVE_TIMECOST = RATSParams(strategy="timecost", minrho=0.5, allow_pack=True)

#: Table IV — tuned (mindelta, maxdelta, minrho) per cluster × application
#: type.  Application families: "fft", "strassen", "layered", "irregular"
#: (the paper's "Random" column refers to the irregular random DAGs of the
#: Figure 5 sweep).
PAPER_TUNED_PARAMS: dict[tuple[str, str], tuple[float, float, float]] = {
    ("chti", "fft"): (-0.5, 1.0, 0.2),
    ("chti", "strassen"): (-0.25, 0.5, 0.5),
    ("chti", "layered"): (-0.5, 1.0, 0.2),
    ("chti", "irregular"): (-0.75, 1.0, 0.5),
    ("grillon", "fft"): (-0.5, 1.0, 0.2),
    ("grillon", "strassen"): (0.0, 1.0, 0.4),
    ("grillon", "layered"): (-0.25, 1.0, 0.2),
    ("grillon", "irregular"): (-0.75, 1.0, 0.5),
    ("grelon", "fft"): (-0.25, 0.75, 0.4),
    ("grelon", "strassen"): (-0.25, 1.0, 0.5),
    ("grelon", "layered"): (-0.5, 1.0, 0.2),
    ("grelon", "irregular"): (-0.75, 1.0, 0.4),
}


def tuned_params(cluster_name: str, family: str,
                 strategy: Strategy) -> RATSParams:
    """Table IV parameters for a cluster × application-family pair.

    >>> tuned_params("grillon", "fft", "delta").maxdelta
    1.0
    """
    try:
        mindelta, maxdelta, minrho = PAPER_TUNED_PARAMS[(cluster_name, family)]
    except KeyError:
        raise KeyError(
            f"no tuned parameters for cluster={cluster_name!r}, "
            f"family={family!r}") from None
    return RATSParams(strategy=strategy, mindelta=mindelta,
                      maxdelta=maxdelta, minrho=minrho, allow_pack=True)
