"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands
-----------
``demo``
    Schedule a random application with HCPA and both RATS variants and
    print the comparison plus a Gantt chart.
``list``
    Enumerate every registered component: allocators, mapping strategies,
    DAG families, platforms and schedulers (``--json`` for
    machine-readable output).
``run``
    Execute an :class:`~repro.experiments.experiment.Experiment` described
    by a JSON or TOML spec file, with ``--jobs``, ``--store`` and
    ``--resume`` wired to the resumable campaign engine.
``tables``
    Print the static tables (I, II, III) without running experiments.
``campaign``
    Run the reproduction campaign (same options as
    ``python -m repro.experiments.campaign``), including ``--shard i/n``
    for splitting the deduplicated run plan across machines.
``merge``
    Recombine result stores (shards of one campaign) into one, with
    deduplication and a conflict check; backends (JSONL / SQLite) are
    picked per file suffix and may mix.
``bench``
    Run the substrate performance benchmarks, write
    ``BENCH_substrate.json`` and optionally ``--compare`` against a
    baseline (non-zero exit on regression).
``serve``
    Run the online simulator behind a local TCP socket (newline-delimited
    JSON): submissions are admitted, scheduled against the residual
    platform and injected into the live fluid simulation; completion
    records stream back per job.
``replay-stream``
    Drive a deterministic job stream (Poisson / burst / replay spec file)
    through the online simulator and print the JCT / slowdown / SLO
    roll-up; ``--store`` persists one record per job.
``autotune``
    Auto-tune RATS parameters for a random application on a cluster.

``run`` and ``campaign`` accept ``--profile [N]`` to dump the cProfile
top-N (default 25) of the whole execution to stderr.
"""

from __future__ import annotations

import argparse
import sys

from repro.registry import UnknownComponentError

__all__ = ["main"]


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import (
        NAIVE_DELTA,
        NAIVE_TIMECOST,
        DagShape,
        ListScheduler,
        ascii_gantt,
        get_cluster,
        hcpa_allocation,
        random_layered_dag,
        rats_schedule,
        simulate,
        spawn_rng,
    )

    cluster = get_cluster(args.cluster)
    graph = random_layered_dag(
        DagShape(n_tasks=args.tasks, width=0.5, regularity=0.8, density=0.2),
        spawn_rng("cli-demo", args.seed))
    model = cluster.performance_model()
    print(graph.subgraph_summary())
    print(cluster.describe())
    alloc = hcpa_allocation(graph, model, cluster.num_procs).allocation
    rows = {
        "HCPA": ListScheduler(graph, cluster, model, alloc).run(),
        "RATS delta": rats_schedule(graph, cluster, NAIVE_DELTA,
                                    allocation=alloc),
        "RATS time-cost": rats_schedule(graph, cluster, NAIVE_TIMECOST,
                                        allocation=alloc),
    }
    print(f"\n{'algorithm':<16}{'estimated':>11}{'simulated':>11}")
    best, best_ms = None, float("inf")
    for name, schedule in rows.items():
        ms = simulate(schedule).makespan
        print(f"{name:<16}{schedule.makespan:>11.2f}{ms:>11.2f}")
        if ms < best_ms:
            best, best_ms = name, ms
    print(f"\nbest: {best}")
    if args.gantt:
        print(ascii_gantt(rows[best], max_procs=20))
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.registry import all_registries

    if getattr(args, "json", False):
        import json

        payload = {
            title: [
                {"name": entry.name, "description": entry.description,
                 "aliases": list(entry.aliases)}
                for entry in registry.entries()
            ]
            for title, registry in all_registries().items()
        }
        print(json.dumps(payload, indent=1))
        return 0

    for title, registry in all_registries().items():
        print(f"{title}:")
        for entry in registry.entries():
            aliases = (f"  (aliases: {', '.join(entry.aliases)})"
                       if entry.aliases else "")
            print(f"  {entry.name:<12} {entry.description}{aliases}")
        print()
    return 0


def _load_run_spec(path) -> dict:
    """Parse a ``repro run`` experiment spec (JSON, or TOML by suffix)."""
    from pathlib import Path

    path = Path(path)
    try:
        if path.suffix.lower() in (".toml", ".tml"):
            import tomllib

            with path.open("rb") as fh:
                return tomllib.load(fh)
        import json

        return json.loads(path.read_text())
    except OSError as exc:
        raise SystemExit(f"cannot read spec file: {exc}") from None
    except ValueError as exc:
        raise SystemExit(f"malformed spec file {path}: {exc}") from None


_RUN_SPEC_KEYS = frozenset(
    ("platforms", "workloads", "algorithms", "repeats", "jobs",
     "estimates_only"))


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.bench import profiled
    from repro.experiments.campaign import open_cli_store
    from repro.experiments.experiment import Experiment
    from repro.experiments.runner import ExperimentRunner
    from repro.scheduling.serialize import save_results

    spec = _load_run_spec(args.spec)
    unknown = sorted(set(spec) - _RUN_SPEC_KEYS)
    if unknown:
        raise SystemExit(
            f"unknown spec key(s) {unknown}; allowed: "
            f"{sorted(_RUN_SPEC_KEYS)}")

    exp = Experiment()
    try:
        exp.on(*spec.get("platforms", ()))
        for workload in spec.get("workloads", ()):
            workload = dict(workload)
            family = workload.pop("family", None)
            samples = workload.pop("samples", None)
            exp.workload(family, samples=samples, **workload)
        exp.compare(*spec.get("algorithms", ()))
        if "repeats" in spec:
            exp.repeats(int(spec["repeats"]))
        if spec.get("estimates_only"):
            exp.estimates_only()
        jobs = args.jobs if args.jobs is not None else spec.get("jobs")
        if jobs is not None:
            exp.parallel(int(jobs))
    except UnknownComponentError:
        raise  # main() renders these with the available names listed
    except (TypeError, ValueError) as exc:
        raise SystemExit(f"invalid experiment spec: {exc}") from None

    store = open_cli_store(args.store, args.resume)
    try:
        with ExperimentRunner(
                simulate_schedules=not spec.get("estimates_only", False),
                progress=not args.quiet, store=store) as runner:
            try:
                with profiled(getattr(args, "profile", None)):
                    result = exp.using(runner).run()
            except (TypeError, ValueError) as exc:
                raise SystemExit(f"invalid experiment spec: {exc}") from None
        print(result.summary())
        if args.results_json:
            save_results(list(result), args.results_json)
        if store is not None:
            print(f"store {args.store}: {store.stats.describe()}",
                  file=sys.stderr, flush=True)
    finally:
        if store is not None:
            store.close()
    return 0


def _cmd_tables(_args: argparse.Namespace) -> int:
    from repro.experiments.tables import (
        table1_communication_matrix,
        table2_clusters,
        table3_scenarios,
    )
    from repro.platforms.grid5000 import CHTI, GRELON, GRILLON

    print(table1_communication_matrix())
    print()
    print(table2_clusters([CHTI, GRELON, GRILLON]))
    print()
    print(table3_scenarios())
    return 0


def _cmd_autotune(args: argparse.Namespace) -> int:
    from repro import DagShape, get_cluster, random_irregular_dag, spawn_rng
    from repro.core.autotune import autotune, extract_features

    cluster = get_cluster(args.cluster)
    graph = random_irregular_dag(
        DagShape(n_tasks=args.tasks, width=0.5, regularity=0.8, density=0.2,
                 jump=2),
        spawn_rng("cli-autotune", args.seed))
    print(graph.subgraph_summary())
    print("features:", extract_features(graph, cluster).describe())
    for strategy in ("delta", "timecost"):
        res = autotune(graph, cluster, strategy,
                       simulate_candidates=args.simulate)
        print(f"\n{strategy}: best {res.best_params.describe()}")
        print(f"  estimated makespan {res.best_makespan:.2f}s "
              f"({res.improvement * 100:+.1f}% vs naive 0.5 settings, "
              f"{res.evaluations} schedules evaluated)")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.experiments.bench import profiled
    from repro.experiments.campaign import run_from_args

    with profiled(getattr(args, "profile", None)):
        return run_from_args(args)


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.experiments.bench import main as bench_main

    return bench_main(args)


def _cmd_merge(args: argparse.Namespace) -> int:
    from repro.experiments.store import StoreConflictError, merge_stores

    try:
        stats = merge_stores(args.stores, args.output)
    except FileNotFoundError as exc:
        raise SystemExit(str(exc)) from None
    except StoreConflictError as exc:
        raise SystemExit(f"merge conflict: {exc}") from None
    except ValueError as exc:  # e.g. a corrupt/non-database .sqlite input
        raise SystemExit(str(exc)) from None
    print(f"{args.output}: {stats.describe()}")
    return 0


def _build_online_simulator(args: argparse.Namespace):
    from repro.online.engine import OnlineSimulator
    from repro.registry import platforms

    platform = platforms.build(args.platform)
    try:
        return OnlineSimulator(platform, admission=args.admission,
                               slo=args.slo)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.online.service import serve

    sim = _build_online_simulator(args)

    def ready(bound: tuple) -> None:
        host, port = bound
        # single parseable line: the CI smoke job reads the port from it
        print(f"repro serve listening on {host}:{port}", flush=True)

    asyncio.run(serve(sim, host=args.host, port=args.port, wall=args.wall,
                      time_scale=args.time_scale, ready=ready))
    return 0


def _cmd_replay_stream(args: argparse.Namespace) -> int:
    from repro.experiments.campaign import open_cli_store
    from repro.experiments.store import job_key
    from repro.online.stream import stream_from_spec

    spec = _load_run_spec(args.spec)
    try:
        stream = stream_from_spec(spec)
    except (KeyError, TypeError, ValueError) as exc:
        raise SystemExit(f"invalid stream spec: {exc}") from None
    sim = _build_online_simulator(args)
    result = sim.run(stream)
    print(result.metrics.summary())
    if not args.quiet:
        print(f"makespan {result.makespan:.2f}s, {result.events} events, "
              f"{result.solves_component} component re-solves "
              f"(+{result.solves_full} full)")

    store = open_cli_store(args.store, args.resume)
    if store is not None:
        try:
            for record in result.records:
                store.put(job_key(spec, record.job_id, sim.platform),
                          record)
            store.flush()
            print(f"store {args.store}: {store.stats.puts} job records "
                  "written", file=sys.stderr, flush=True)
        finally:
            store.close()
    return 0


def _add_profile_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--profile", nargs="?", const=25, type=int,
                        default=None, metavar="N",
                        help="cProfile the execution and print the top N "
                             "entries (default 25) to stderr")


def main(argv: list[str] | None = None) -> int:
    from repro import __version__
    from repro.experiments.campaign import add_campaign_arguments

    argv = list(sys.argv[1:] if argv is None else argv)

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_demo = sub.add_parser("demo", help="schedule one random application")
    p_demo.add_argument("--cluster", default="grillon")
    p_demo.add_argument("--tasks", type=int, default=25)
    p_demo.add_argument("--seed", type=int, default=0)
    p_demo.add_argument("--gantt", action="store_true")
    p_demo.set_defaults(func=_cmd_demo)

    p_list = sub.add_parser("list", help="list all registered components")
    p_list.add_argument("--json", action="store_true",
                        help="machine-readable JSON output")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser(
        "run", help="run an Experiment from a JSON/TOML spec file")
    p_run.add_argument("spec", metavar="SPEC",
                       help="experiment spec file (.json or .toml) with "
                            "platforms / workloads / algorithms keys")
    p_run.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="persistent-pool workers (-1 = one per CPU; "
                            "overrides the spec's jobs key)")
    from pathlib import Path as _Path
    p_run.add_argument("--store", type=_Path, default=None, metavar="PATH",
                       help="result store (JSON-Lines, or SQLite for "
                            ".sqlite/.db paths); runs already in it are "
                            "skipped")
    p_run.add_argument("--resume", action="store_true",
                       help="continue into an existing --store file")
    p_run.add_argument("--results-json", type=_Path, default=None,
                       metavar="PATH", help="persist raw RunResults as JSON")
    p_run.add_argument("--quiet", action="store_true")
    _add_profile_flag(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_tables = sub.add_parser("tables", help="print the static tables")
    p_tables.set_defaults(func=_cmd_tables)

    p_campaign = sub.add_parser("campaign",
                                help="run the reproduction campaign")
    add_campaign_arguments(p_campaign)
    _add_profile_flag(p_campaign)
    p_campaign.set_defaults(func=_cmd_campaign)

    p_merge = sub.add_parser(
        "merge", help="merge result stores (campaign shards) into one")
    p_merge.add_argument("stores", nargs="+", metavar="STORE",
                         help="input store files (.jsonl, .sqlite, …)")
    p_merge.add_argument("-o", "--output", required=True, metavar="OUT",
                         help="output store (backend by suffix; appended "
                              "to if it already exists)")
    p_merge.set_defaults(func=_cmd_merge)

    p_bench = sub.add_parser(
        "bench", help="run the substrate performance benchmarks")
    from repro.experiments.bench import add_bench_arguments
    add_bench_arguments(p_bench)
    p_bench.set_defaults(func=_cmd_bench)

    def _add_online_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--platform", default="grillon",
                       help="registered platform name (see `repro list`)")
        p.add_argument("--admission", default="accept-all",
                       metavar="POLICY",
                       help="admission policy: accept-all, queue-cap:N "
                            "or load-shed:SECONDS")
        p.add_argument("--slo", type=float, default=None, metavar="SECONDS",
                       help="JCT threshold for the SLO-attainment roll-up")

    p_serve = sub.add_parser(
        "serve", help="serve the online simulator over a local socket")
    _add_online_options(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="TCP port (0 = ephemeral, printed on start)")
    p_serve.add_argument("--wall", action="store_true",
                         help="stamp arrivals from the wall clock instead "
                              "of deterministic virtual time")
    p_serve.add_argument("--time-scale", type=float, default=1.0,
                         metavar="X",
                         help="simulated seconds per wall second "
                              "(with --wall)")
    p_serve.set_defaults(func=_cmd_serve)

    p_replay = sub.add_parser(
        "replay-stream",
        help="drive a job-stream spec through the online simulator")
    p_replay.add_argument("spec", metavar="SPEC",
                          help="stream spec file (.json or .toml): kind "
                               "poisson/burst/replay + workloads, "
                               "algorithms, rate, jobs, seed …")
    _add_online_options(p_replay)
    from pathlib import Path as _P
    p_replay.add_argument("--store", type=_P, default=None, metavar="PATH",
                          help="persist one record per job (JSON-Lines, "
                               "or SQLite for .sqlite/.db paths)")
    p_replay.add_argument("--resume", action="store_true",
                          help="continue into an existing --store file")
    p_replay.add_argument("--quiet", action="store_true")
    p_replay.set_defaults(func=_cmd_replay_stream)

    p_tune = sub.add_parser("autotune", help="auto-tune RATS parameters")
    p_tune.add_argument("--cluster", default="grillon")
    p_tune.add_argument("--tasks", type=int, default=25)
    p_tune.add_argument("--seed", type=int, default=0)
    p_tune.add_argument("--simulate", action="store_true",
                        help="score candidates with the fluid simulator")
    p_tune.set_defaults(func=_cmd_autotune)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except UnknownComponentError as exc:
        parser.error(str(exc))  # clean one-liner instead of a traceback


if __name__ == "__main__":
    sys.exit(main())
