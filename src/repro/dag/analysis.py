"""Structural analyses on task graphs.

All functions are parameterised by *cost callables* so the same machinery
serves the allocation step (which evaluates execution times under a tentative
allocation, §II-C) and the mapping step (which orders ready tasks by
*bottom level* — the distance to the graph exit, §III-C).

Conventions
-----------
* ``node_time(name) -> float`` gives the execution time of a task under the
  current allocation.
* ``edge_time(src, dst) -> float`` gives the estimated communication time of
  an edge; the zero function reproduces the classic CPA behaviour of
  ignoring redistributions during allocation.
"""

from __future__ import annotations

from typing import Callable

from repro.dag.task import TaskGraph

__all__ = [
    "dag_levels",
    "dag_width",
    "bottom_levels",
    "top_levels",
    "critical_path",
    "critical_path_length",
]

NodeTime = Callable[[str], float]
EdgeTime = Callable[[str, str], float]


def _zero_edge(_u: str, _v: str) -> float:
    return 0.0


def dag_levels(graph: TaskGraph) -> dict[str, int]:
    """Assign each task its *precedence level*.

    The level of a task is the length (in hops) of the longest path from any
    entry task, i.e. entry tasks are level 0 and every task sits one level
    below its deepest predecessor.  This is the level notion used by the
    generator parameters (width / regularity / density) and by MCPA.
    """
    levels: dict[str, int] = {}
    for name in graph.topological_order():
        preds = graph.predecessors(name)
        levels[name] = 0 if not preds else 1 + max(levels[p] for p in preds)
    return levels


def dag_width(graph: TaskGraph) -> int:
    """Maximum number of tasks sharing a precedence level (max parallelism)."""
    levels = dag_levels(graph)
    counts: dict[int, int] = {}
    for lvl in levels.values():
        counts[lvl] = counts.get(lvl, 0) + 1
    return max(counts.values())


def bottom_levels(graph: TaskGraph, node_time: NodeTime,
                  edge_time: EdgeTime | None = None) -> dict[str, float]:
    """Bottom level ``b(t)``: longest node+edge weighted path from ``t`` to an exit.

    ``b(t) = node_time(t) + max over children c of (edge_time(t,c) + b(c))``,
    with ``b(exit) = node_time(exit)``.  Ready tasks are mapped in order of
    decreasing bottom level (§II-C, §III-C).
    """
    edge_time = edge_time or _zero_edge
    bl: dict[str, float] = {}
    for name in reversed(graph.topological_order()):
        succs = graph.successors(name)
        tail = max((edge_time(name, s) + bl[s] for s in succs), default=0.0)
        bl[name] = node_time(name) + tail
    return bl


def top_levels(graph: TaskGraph, node_time: NodeTime,
               edge_time: EdgeTime | None = None) -> dict[str, float]:
    """Top level: longest weighted path from an entry up to (excluding) ``t``.

    ``top(t) = max over parents p of (top(p) + node_time(p) + edge_time(p,t))``
    with ``top(entry) = 0``.  ``top(t) + b(t)`` is the length of the longest
    path through ``t``.
    """
    edge_time = edge_time or _zero_edge
    tl: dict[str, float] = {}
    for name in graph.topological_order():
        preds = graph.predecessors(name)
        tl[name] = max(
            (tl[p] + node_time(p) + edge_time(p, name) for p in preds),
            default=0.0,
        )
    return tl


def critical_path_length(graph: TaskGraph, node_time: NodeTime,
                         edge_time: EdgeTime | None = None) -> float:
    """``C∞`` — the length of the critical path under the given costs."""
    bl = bottom_levels(graph, node_time, edge_time)
    return max((bl[e] for e in graph.entry_tasks()), default=0.0)


def critical_path(graph: TaskGraph, node_time: NodeTime,
                  edge_time: EdgeTime | None = None) -> list[str]:
    """Return one critical path as a list of task names (entry → exit).

    Ties are broken deterministically by task name so repeated calls under
    identical costs return the same path.
    """
    edge_time = edge_time or _zero_edge
    bl = bottom_levels(graph, node_time, edge_time)
    entries = graph.entry_tasks()
    if not entries:
        return []
    current = max(entries, key=lambda n: (bl[n], n))
    path = [current]
    while True:
        succs = graph.successors(current)
        if not succs:
            break
        # the critical successor continues the longest path
        def tail(s: str) -> float:
            return edge_time(current, s) + bl[s]

        best = max(succs, key=lambda s: (tail(s), s))
        path.append(best)
        current = best
    return path
