"""Random DAG generators for the paper's §IV-A workloads (Table III).

Two families of randomly generated application DAGs are used:

* **layered** — all tasks of a precedence level share the same cost, hence
  all transfers between the same two levels share the same communication
  cost;
* **irregular** — per-task costs, plus random *jump edges* from level ``l``
  to level ``l + jump`` (``jump = 1`` adds no extra edges).

Three shape parameters in ``[0, 1]`` control the structure (semantics follow
the paper and Suter's ``daggen`` program [12]):

* ``width`` — maximum parallelism: small → "chain" graphs, large →
  "fork-join" graphs.  We use a mean level width of ``round(n^width)``.
* ``regularity`` — uniformity of the number of tasks per level: level sizes
  are drawn as ``round(mean · U[regularity, 2 − regularity])``.
* ``density`` — number of edges between two consecutive levels: each task
  draws ``1 + Binomial(min(|previous level| − 1, max_extra_parents),
  density)`` parents.  The fan-in cap (default 5) keeps the edge count of
  wide DAGs in the realistic few-times-``n`` regime of workflow generators
  such as ``daggen``; without it a width-0.8 / density-0.8 DAG degenerates
  into a near-complete bipartite stack whose every task waits on dozens of
  redistributions.

Every generated DAG has a single entry and a single exit task (§II-A).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dag.costs import ComputeCostConfig, annotate_costs
from repro.dag.task import Task, TaskGraph
from repro.registry import register_dag_family

__all__ = ["DagShape", "random_layered_dag", "random_irregular_dag"]


@dataclass(frozen=True)
class DagShape:
    """Shape parameters of a random application DAG.

    ``n_tasks`` counts *all* tasks including the single entry and exit.
    ``jump`` is only meaningful for irregular DAGs (``jump = 1`` means no
    level is jumped over).
    """

    n_tasks: int
    width: float = 0.5
    regularity: float = 0.5
    density: float = 0.5
    jump: int = 1
    max_extra_parents: int = 5

    def __post_init__(self) -> None:
        if self.n_tasks < 3:
            raise ValueError("need at least 3 tasks (entry, middle, exit)")
        for field_name in ("width", "regularity", "density"):
            v = getattr(self, field_name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{field_name} must be in [0, 1], got {v}")
        if self.jump < 1:
            raise ValueError("jump must be >= 1")
        if self.max_extra_parents < 0:
            raise ValueError("max_extra_parents must be >= 0")


def _level_sizes(shape: DagShape, rng: np.random.Generator) -> list[int]:
    """Draw internal level sizes (entry and exit levels are size 1)."""
    budget = shape.n_tasks - 2
    mean = max(1.0, round(float(shape.n_tasks) ** shape.width))
    sizes: list[int] = []
    while budget > 0:
        lo, hi = shape.regularity, 2.0 - shape.regularity
        size = int(round(mean * rng.uniform(lo, hi)))
        size = max(1, min(size, budget))
        sizes.append(size)
        budget -= size
    if not sizes:  # n_tasks == 3 handled by the loop, but be safe
        sizes = [shape.n_tasks - 2]
    return sizes


def _build_structure(shape: DagShape, rng: np.random.Generator,
                     name: str) -> tuple[TaskGraph, list[list[str]]]:
    """Build the level/edge structure (costs not yet annotated)."""
    graph = TaskGraph(name=name)
    levels: list[list[str]] = [["entry"]]
    graph.add_task(Task("entry"))
    for li, size in enumerate(_level_sizes(shape, rng), start=1):
        level = []
        for i in range(size):
            tname = f"t{li}_{i}"
            graph.add_task(Task(tname))
            level.append(tname)
        levels.append(level)
    graph.add_task(Task("exit"))
    levels.append(["exit"])

    # forward edges: each task picks 1 + Binomial(|prev|-1, density) parents
    for li in range(1, len(levels)):
        prev = levels[li - 1]
        for tname in levels[li]:
            fan_in = min(len(prev) - 1, shape.max_extra_parents)
            n_parents = 1 + int(rng.binomial(fan_in, shape.density))
            parents = rng.choice(len(prev), size=n_parents, replace=False)
            for p in parents:
                graph.add_edge(prev[int(p)], tname)
        # guarantee every task of the previous level has a child
        for pname in prev:
            if not graph.successors(pname):
                child = levels[li][int(rng.integers(len(levels[li])))]
                graph.add_edge(pname, child)
    return graph, levels


def _add_jump_edges(graph: TaskGraph, levels: list[list[str]],
                    shape: DagShape, rng: np.random.Generator) -> None:
    """Add edges from level ``l`` to level ``l + jump`` (irregular DAGs).

    Each task of the target level independently gains one extra parent from
    level ``l`` with probability ``density``; duplicates are skipped.
    """
    if shape.jump <= 1:
        return
    for li in range(0, len(levels) - shape.jump):
        src_level = levels[li]
        dst_level = levels[li + shape.jump]
        for tname in dst_level:
            if rng.random() < shape.density:
                src = src_level[int(rng.integers(len(src_level)))]
                if not graph.nx_graph.has_edge(src, tname):
                    graph.add_edge(src, tname)


def random_layered_dag(shape: DagShape, rng: np.random.Generator,
                       cost_config: ComputeCostConfig | None = None,
                       name: str = "layered") -> TaskGraph:
    """Generate a layered random DAG: per-*level* uniform costs."""
    graph, _levels = _build_structure(shape, rng, name)
    annotate_costs(graph, rng, cost_config, per_level=True)
    graph.validate(require_single_entry=True, require_single_exit=True)
    return graph


def random_irregular_dag(shape: DagShape, rng: np.random.Generator,
                         cost_config: ComputeCostConfig | None = None,
                         name: str = "irregular") -> TaskGraph:
    """Generate an irregular random DAG: per-task costs and jump edges."""
    graph, levels = _build_structure(shape, rng, name)
    _add_jump_edges(graph, levels, shape, rng)
    annotate_costs(graph, rng, cost_config, per_level=False)
    graph.validate(require_single_entry=True, require_single_exit=True)
    return graph


# --------------------------------------------------------------------- #
# scenario-family registrations (the ids must stay byte-stable: they seed
# the graph construction through repro.utils.rng.scenario_seed)
# --------------------------------------------------------------------- #
def _scenario_shape(scenario) -> DagShape:
    return DagShape(n_tasks=scenario.n_tasks, width=scenario.width,
                    regularity=scenario.regularity, density=scenario.density,
                    jump=scenario.jump)


def _layered_id(sc) -> str:
    return (f"layered-n{sc.n_tasks}-w{sc.width}-d{sc.density}"
            f"-r{sc.regularity}-s{sc.sample}")


def _irregular_id(sc) -> str:
    return (f"irregular-n{sc.n_tasks}-w{sc.width}-d{sc.density}"
            f"-r{sc.regularity}-j{sc.jump}-s{sc.sample}")


@register_dag_family(
    "layered", scenario_id=_layered_id, extra_params=(),
    description="layered random DAGs, per-level uniform costs (Table III)")
def _build_layered(scenario, rng: np.random.Generator) -> TaskGraph:
    return random_layered_dag(_scenario_shape(scenario), rng,
                              name=scenario.scenario_id)


@register_dag_family(
    "irregular", scenario_id=_irregular_id, extra_params=(),
    description="irregular random DAGs with jump edges, per-task costs")
def _build_irregular(scenario, rng: np.random.Generator) -> TaskGraph:
    return random_irregular_dag(_scenario_shape(scenario), rng,
                                name=scenario.scenario_id)
