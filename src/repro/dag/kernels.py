"""Task graphs of the two HPC kernels used in §IV-A.

FFT
---
For ``k`` data points the task graph has ``2k − 1`` *recursive call* tasks
(a binary tree of depth ``log2 k``) followed by ``k · log2 k`` *butterfly*
tasks (``log2 k`` stages of ``k`` tasks).  The paper uses
``k ∈ {2, 4, 8, 16}`` giving 5, 15, 39 and 95 tasks.  Every path from the
entry (tree root) to any exit is a critical path, because all tasks of a
level share the same cost.

Strassen
--------
One level of Strassen's matrix multiplication ``C = A·B``: 10 operand
additions (``S1..S10``), 7 sub-products (``M1..M7``) and 8 combination
additions forming the four quadrants of ``C`` — 25 tasks in total, matching
§IV-A.  All entry tasks lie on a critical path by the same per-level cost
convention.
"""

from __future__ import annotations

import numpy as np

from repro.dag.costs import ComputeCostConfig, annotate_costs
from repro.dag.task import Task, TaskGraph
from repro.registry import register_dag_family

__all__ = ["fft_task_count", "fft_dag", "strassen_dag", "STRASSEN_TASK_COUNT"]

#: Number of tasks in the Strassen DAG (paper §IV-A).
STRASSEN_TASK_COUNT = 25


def fft_task_count(k: int) -> int:
    """Number of tasks of the FFT DAG for ``k`` data points.

    ``2k − 1`` recursive-call tasks plus ``k · log2 k`` butterfly tasks.

    >>> [fft_task_count(k) for k in (2, 4, 8, 16)]
    [5, 15, 39, 95]
    """
    _check_power_of_two(k)
    d = k.bit_length() - 1
    return (2 * k - 1) + k * d


def _check_power_of_two(k: int) -> None:
    if k < 2 or (k & (k - 1)) != 0:
        raise ValueError(f"k must be a power of two >= 2, got {k}")


def fft_dag(k: int, rng: np.random.Generator,
            cost_config: ComputeCostConfig | None = None) -> TaskGraph:
    """Build the FFT task graph for ``k`` data points with per-level costs."""
    _check_power_of_two(k)
    depth = k.bit_length() - 1
    graph = TaskGraph(name=f"fft_{k}")

    # recursive-call binary tree: level t has 2^t tasks, t = 0..depth
    tree: list[list[str]] = []
    for t in range(depth + 1):
        level = []
        for i in range(2 ** t):
            name = f"call_{t}_{i}"
            graph.add_task(Task(name))
            level.append(name)
        tree.append(level)
    for t in range(depth):
        for i in range(2 ** t):
            graph.add_edge(tree[t][i], tree[t + 1][2 * i])
            graph.add_edge(tree[t][i], tree[t + 1][2 * i + 1])

    # butterfly stages: stage s (1..depth) has k tasks; task i of stage s
    # depends on tasks i and i XOR 2^(s-1) of the previous stage (the k
    # leaves of the call tree act as stage 0).
    prev = tree[depth]
    for s in range(1, depth + 1):
        stage = []
        for i in range(k):
            name = f"bfly_{s}_{i}"
            graph.add_task(Task(name))
            stage.append(name)
        stride = 2 ** (s - 1)
        for i in range(k):
            graph.add_edge(prev[i], stage[i])
            partner = i ^ stride
            graph.add_edge(prev[partner], stage[i])
        prev = stage

    annotate_costs(graph, rng, cost_config, per_level=True)
    graph.validate(require_single_entry=True)
    assert graph.num_tasks == fft_task_count(k)
    return graph


# Strassen dataflow: S-task -> list of M-products it feeds, and M-product ->
# post-addition tasks.  Following the classic seven-product formulation:
#   M1 = (A11+A22)(B11+B22)   M2 = (A21+A22) B11      M3 = A11 (B12-B22)
#   M4 = A22 (B21-B11)        M5 = (A11+A12) B22      M6 = (A21-A11)(B11+B12)
#   M7 = (A12-A22)(B21+B22)
#   C11 = M1+M4-M5+M7   C12 = M3+M5   C21 = M2+M4   C22 = M1-M2+M3+M6
_STRASSEN_M_PARENTS: dict[str, list[str]] = {
    "M1": ["S1", "S2"],   # S1 = A11+A22, S2 = B11+B22
    "M2": ["S3"],         # S3 = A21+A22          (B11 is an input, no task)
    "M3": ["S4"],         # S4 = B12-B22
    "M4": ["S5"],         # S5 = B21-B11
    "M5": ["S6"],         # S6 = A11+A12
    "M6": ["S7", "S8"],   # S7 = A21-A11, S8 = B11+B12
    "M7": ["S9", "S10"],  # S9 = A12-A22, S10 = B21+B22
}

# 8 post-addition tasks (4-operand quadrants decomposed into binary adds):
#   U1 = M1+M4,  U2 = M7-M5,  C11 = U1+U2
#   V1 = M1-M2,  V2 = M3+M6,  C22 = V1+V2
#   C12 = M3+M5,  C21 = M2+M4
_STRASSEN_POST_PARENTS: dict[str, list[str]] = {
    "U1": ["M1", "M4"],
    "U2": ["M7", "M5"],
    "C11": ["U1", "U2"],
    "V1": ["M1", "M2"],
    "V2": ["M3", "M6"],
    "C22": ["V1", "V2"],
    "C12": ["M3", "M5"],
    "C21": ["M2", "M4"],
}


def strassen_dag(rng: np.random.Generator,
                 cost_config: ComputeCostConfig | None = None) -> TaskGraph:
    """Build the 25-task Strassen matrix-multiplication DAG."""
    graph = TaskGraph(name="strassen")
    for i in range(1, 11):
        graph.add_task(Task(f"S{i}"))
    for m in _STRASSEN_M_PARENTS:
        graph.add_task(Task(m))
    for p in _STRASSEN_POST_PARENTS:
        graph.add_task(Task(p))
    for m, parents in _STRASSEN_M_PARENTS.items():
        for s in parents:
            graph.add_edge(s, m)
    for p, parents in _STRASSEN_POST_PARENTS.items():
        for m in parents:
            graph.add_edge(m, p)

    annotate_costs(graph, rng, cost_config, per_level=True)
    graph.validate()
    assert graph.num_tasks == STRASSEN_TASK_COUNT
    return graph


# --------------------------------------------------------------------- #
# scenario-family registrations (ids must stay byte-stable: they seed the
# graph construction through repro.utils.rng.scenario_seed)
# --------------------------------------------------------------------- #
def _fft_id(sc) -> str:
    return f"fft-k{sc.k}-s{sc.sample}"


def _strassen_id(sc) -> str:
    return f"strassen-s{sc.sample}"


@register_dag_family(
    "fft", scenario_id=_fft_id, extra_params=(),
    description="FFT kernel DAGs, k data points -> 2k-1 + k*log2(k) tasks")
def _build_fft(scenario, rng: np.random.Generator) -> TaskGraph:
    return fft_dag(scenario.k, rng)


@register_dag_family(
    "strassen", scenario_id=_strassen_id, extra_params=(),
    description="one-level Strassen matrix multiplication (25 tasks)")
def _build_strassen(scenario, rng: np.random.Generator) -> TaskGraph:
    return strassen_dag(rng)
