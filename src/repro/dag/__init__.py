"""Application model: DAGs of moldable data-parallel tasks.

The sub-package provides

* :mod:`repro.dag.task` — the :class:`~repro.dag.task.Task` payload and the
  :class:`~repro.dag.task.TaskGraph` container (a thin, validated wrapper
  around :class:`networkx.DiGraph`),
* :mod:`repro.dag.analysis` — structural analyses (levels, bottom/top
  levels, critical path, width),
* :mod:`repro.dag.generator` — the layered / irregular random DAG
  generators of the paper's §IV-A (Table III),
* :mod:`repro.dag.kernels` — FFT and Strassen task graphs,
* :mod:`repro.dag.costs` — the cost model of §II-A (``m`` doubles,
  ``a·m`` flops, Amdahl ``α``).
"""

from repro.dag.task import DOUBLE_BYTES, Task, TaskGraph
from repro.dag.analysis import (
    bottom_levels,
    critical_path,
    dag_levels,
    dag_width,
    top_levels,
)
from repro.dag.costs import ComputeCostConfig, annotate_costs
from repro.dag.generator import DagShape, random_irregular_dag, random_layered_dag
from repro.dag.kernels import fft_dag, fft_task_count, strassen_dag

__all__ = [
    "DOUBLE_BYTES",
    "Task",
    "TaskGraph",
    "bottom_levels",
    "top_levels",
    "critical_path",
    "dag_levels",
    "dag_width",
    "ComputeCostConfig",
    "annotate_costs",
    "DagShape",
    "random_layered_dag",
    "random_irregular_dag",
    "fft_dag",
    "fft_task_count",
    "strassen_dag",
]
