"""Task and TaskGraph: the mixed-parallel application model of §II-A.

A mixed-parallel application is a DAG ``G = (N, E)`` whose nodes are
*moldable* data-parallel tasks and whose edges carry the amount of data (in
bytes) the producer must send to the consumer.  Redistribution between two
subsequent tasks costs nothing when they run on the *same ordered processor
set* (§II-A).

Tasks operate on ``m`` double-precision elements; the data volume
communicated to *each* child equals the full ``m`` elements (§II-A), i.e.
``8·m`` bytes per out-edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

import networkx as nx

__all__ = ["DOUBLE_BYTES", "Task", "TaskGraph"]

#: Size of one double-precision element, in bytes.
DOUBLE_BYTES = 8


@dataclass
class Task:
    """A moldable data-parallel task.

    Parameters
    ----------
    name:
        Unique identifier inside one :class:`TaskGraph`.
    data_elements:
        ``m`` — the number of double-precision elements the task operates
        on.  The paper constrains ``4·10^6 ≤ m ≤ 121·10^6`` (≤ 1 GByte).
    flops:
        Total number of floating-point operations of the *sequential*
        execution (the paper uses ``a·m`` with ``a`` drawn randomly).
    alpha:
        Non-parallelizable fraction of the sequential execution time for
        the Amdahl speedup model, drawn uniformly in ``[0, 0.25]``.
    """

    name: str
    data_elements: float = 0.0
    flops: float = 0.0
    alpha: float = 0.0

    def __post_init__(self) -> None:
        if self.data_elements < 0:
            raise ValueError(f"task {self.name!r}: data_elements must be >= 0")
        if self.flops < 0:
            raise ValueError(f"task {self.name!r}: flops must be >= 0")
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"task {self.name!r}: alpha must be in [0, 1]")

    @property
    def data_bytes(self) -> float:
        """Size in bytes of the task's dataset (``8·m``)."""
        return self.data_elements * DOUBLE_BYTES

    def with_costs(self, *, data_elements: float | None = None,
                   flops: float | None = None,
                   alpha: float | None = None) -> "Task":
        """Return a copy with some cost fields replaced."""
        return replace(
            self,
            data_elements=self.data_elements if data_elements is None else data_elements,
            flops=self.flops if flops is None else flops,
            alpha=self.alpha if alpha is None else alpha,
        )


@dataclass
class TaskGraph:
    """A DAG of :class:`Task` nodes with byte-weighted edges.

    The container wraps :class:`networkx.DiGraph` and adds the invariants
    the scheduling algorithms rely on: acyclicity, unique task names, and
    non-negative edge weights.  Node keys in the underlying graph are the
    task *names*; the :class:`Task` payloads live in the ``"task"`` node
    attribute and the edge weight in ``"data_bytes"``.
    """

    name: str = "dag"
    _g: nx.DiGraph = field(default_factory=nx.DiGraph, repr=False)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_task(self, task: Task) -> Task:
        """Insert a task; raises if the name is already used."""
        if task.name in self._g:
            raise ValueError(f"duplicate task name {task.name!r}")
        self._g.add_node(task.name, task=task)
        return task

    def add_edge(self, src: str | Task, dst: str | Task,
                 data_bytes: float | None = None) -> None:
        """Add a dependence edge carrying ``data_bytes`` bytes.

        When ``data_bytes`` is omitted the paper's convention applies: the
        producer ships its whole dataset, i.e. ``8·m`` bytes.
        """
        u = src.name if isinstance(src, Task) else src
        v = dst.name if isinstance(dst, Task) else dst
        for n in (u, v):
            if n not in self._g:
                raise KeyError(f"unknown task {n!r}")
        if u == v:
            raise ValueError(f"self-loop on task {u!r}")
        if data_bytes is None:
            data_bytes = self.task(u).data_bytes
        if data_bytes < 0:
            raise ValueError("edge data_bytes must be >= 0")
        self._g.add_edge(u, v, data_bytes=float(data_bytes))
        if not nx.is_directed_acyclic_graph(self._g):
            self._g.remove_edge(u, v)
            raise ValueError(f"edge {u!r}->{v!r} would create a cycle")

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    def task(self, name: str) -> Task:
        """Return the :class:`Task` payload for ``name``."""
        return self._g.nodes[name]["task"]

    def tasks(self) -> Iterator[Task]:
        """Iterate over task payloads in insertion order."""
        for n in self._g.nodes:
            yield self._g.nodes[n]["task"]

    def task_names(self) -> list[str]:
        return list(self._g.nodes)

    def edges(self) -> Iterator[tuple[str, str, float]]:
        """Iterate over ``(src, dst, data_bytes)`` triples."""
        for u, v, d in self._g.edges(data="data_bytes"):
            yield u, v, d

    def edge_bytes(self, src: str, dst: str) -> float:
        return self._g.edges[src, dst]["data_bytes"]

    def predecessors(self, name: str) -> list[str]:
        return list(self._g.predecessors(name))

    def successors(self, name: str) -> list[str]:
        return list(self._g.successors(name))

    def entry_tasks(self) -> list[str]:
        """Tasks with no predecessor."""
        return [n for n in self._g.nodes if self._g.in_degree(n) == 0]

    def exit_tasks(self) -> list[str]:
        """Tasks with no successor."""
        return [n for n in self._g.nodes if self._g.out_degree(n) == 0]

    def topological_order(self) -> list[str]:
        return list(nx.topological_sort(self._g))

    @property
    def num_tasks(self) -> int:
        return self._g.number_of_nodes()

    @property
    def num_edges(self) -> int:
        return self._g.number_of_edges()

    def __contains__(self, name: str) -> bool:
        return name in self._g

    def __len__(self) -> int:
        return self.num_tasks

    @property
    def nx_graph(self) -> nx.DiGraph:
        """The underlying :class:`networkx.DiGraph` (mutate with care)."""
        return self._g

    # ------------------------------------------------------------------ #
    # validation & misc
    # ------------------------------------------------------------------ #
    def validate(self, *, require_single_entry: bool = False,
                 require_single_exit: bool = False) -> None:
        """Check structural invariants; raises :class:`ValueError` on failure."""
        if self.num_tasks == 0:
            raise ValueError("empty task graph")
        if not nx.is_directed_acyclic_graph(self._g):
            raise ValueError("task graph contains a cycle")
        if require_single_entry and len(self.entry_tasks()) != 1:
            raise ValueError(f"expected a single entry task, got {self.entry_tasks()}")
        if require_single_exit and len(self.exit_tasks()) != 1:
            raise ValueError(f"expected a single exit task, got {self.exit_tasks()}")
        for u, v, d in self.edges():
            if d < 0:
                raise ValueError(f"negative edge weight on {u!r}->{v!r}")

    def total_flops(self) -> float:
        return sum(t.flops for t in self.tasks())

    def total_edge_bytes(self) -> float:
        return sum(d for _, _, d in self.edges())

    def subgraph_summary(self) -> str:
        """One-line human readable description."""
        return (f"TaskGraph({self.name!r}: {self.num_tasks} tasks, "
                f"{self.num_edges} edges, {self.total_flops():.3g} flops, "
                f"{self.total_edge_bytes():.3g} edge bytes)")

    @classmethod
    def from_tasks(cls, name: str, tasks: Iterable[Task],
                   edges: Iterable[tuple[str, str]] |
                          Iterable[tuple[str, str, float]] = ()) -> "TaskGraph":
        """Build a graph from task payloads and ``(src, dst[, bytes])`` pairs."""
        g = cls(name=name)
        for t in tasks:
            g.add_task(t)
        for e in edges:
            if len(e) == 2:
                g.add_edge(e[0], e[1])
            else:
                g.add_edge(e[0], e[1], e[2])
        return g
