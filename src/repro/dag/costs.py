"""Cost annotation for task graphs (paper §II-A).

A data-parallel task operates on a dataset of ``m`` double-precision
elements with ``4M ≤ m ≤ 121M`` (at most 1 GByte).  Its computational
complexity is ``a·m`` operations, ``a`` drawn randomly in ``[2^6, 2^9]``
(see DESIGN.md on the superscript-extraction caveat — the literal
``[26, 29]`` reading is available by configuring ``a_min``/``a_max``).
The non-parallelizable Amdahl fraction ``α`` is uniform in ``[0, 0.25]``.

The data volume a task communicates to *each* of its children is its whole
dataset ``m`` (``8·m`` bytes).

*Layered* DAGs share one ``(m, a, α)`` triple per precedence level so all
tasks of a level have the same cost; *irregular* DAGs draw per task.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dag.analysis import dag_levels
from repro.dag.task import TaskGraph

__all__ = ["ComputeCostConfig", "annotate_costs"]


@dataclass(frozen=True)
class ComputeCostConfig:
    """Random cost-model parameters of §II-A.

    Defaults follow the paper: ``m ∈ [4·10^6, 121·10^6]`` doubles,
    ``a ∈ [2^6, 2^9]``, ``α ∈ [0, 0.25]``.
    """

    m_min: float = 4.0e6
    m_max: float = 121.0e6
    a_min: float = 2.0 ** 6
    a_max: float = 2.0 ** 9
    alpha_min: float = 0.0
    alpha_max: float = 0.25

    def __post_init__(self) -> None:
        if not 0 < self.m_min <= self.m_max:
            raise ValueError("require 0 < m_min <= m_max")
        if not 0 < self.a_min <= self.a_max:
            raise ValueError("require 0 < a_min <= a_max")
        if not 0.0 <= self.alpha_min <= self.alpha_max <= 1.0:
            raise ValueError("require 0 <= alpha_min <= alpha_max <= 1")

    def draw(self, rng: np.random.Generator) -> tuple[float, float, float]:
        """Draw one ``(m, a, alpha)`` triple."""
        m = rng.uniform(self.m_min, self.m_max)
        a = rng.uniform(self.a_min, self.a_max)
        alpha = rng.uniform(self.alpha_min, self.alpha_max)
        return m, a, alpha


def annotate_costs(graph: TaskGraph, rng: np.random.Generator,
                   config: ComputeCostConfig | None = None,
                   *, per_level: bool = False) -> TaskGraph:
    """Draw ``(m, a, α)`` costs for every task and reset edge weights.

    Parameters
    ----------
    graph:
        Graph whose structure is already built.  Task payloads are mutated
        in place (``data_elements``, ``flops``, ``alpha``) and every edge
        weight is re-derived as the producer's ``8·m`` bytes.
    per_level:
        When true all tasks of one precedence level share the same cost
        triple (the *layered* convention, also used for FFT and Strassen
        kernels where "computation or communication tasks in a given level
        have the same cost").
    """
    config = config or ComputeCostConfig()
    if per_level:
        levels = dag_levels(graph)
        draws: dict[int, tuple[float, float, float]] = {}
        for lvl in sorted(set(levels.values())):
            draws[lvl] = config.draw(rng)

        def triple(name: str) -> tuple[float, float, float]:
            return draws[levels[name]]
    else:
        cache: dict[str, tuple[float, float, float]] = {
            name: config.draw(rng) for name in graph.task_names()
        }

        def triple(name: str) -> tuple[float, float, float]:
            return cache[name]

    for name in graph.task_names():
        m, a, alpha = triple(name)
        task = graph.task(name)
        task.data_elements = m
        task.flops = a * m
        task.alpha = alpha

    # edge weight = producer's full dataset, in bytes
    for u, v, _ in list(graph.edges()):
        graph.nx_graph.edges[u, v]["data_bytes"] = graph.task(u).data_bytes
    return graph
