"""Shared utilities: deterministic RNG seeding and validation helpers."""

from repro.utils.rng import scenario_seed, spawn_rng

__all__ = ["scenario_seed", "spawn_rng"]
