"""Deterministic random-number generation.

Every random draw in the library flows from a :class:`numpy.random.Generator`
seeded through :func:`scenario_seed`, so any experiment (a DAG sample, a
parameter sweep point, a full table) can be regenerated bit-for-bit from its
textual identifier.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["scenario_seed", "spawn_rng"]


def scenario_seed(*parts: object) -> int:
    """Derive a stable 64-bit seed from an arbitrary tuple of identifiers.

    The parts are stringified, joined and hashed with SHA-256, making the
    seed independent of Python's per-process hash randomisation.

    >>> scenario_seed("layered", 25, 0.2) == scenario_seed("layered", 25, 0.2)
    True
    >>> scenario_seed("layered", 25) != scenario_seed("irregular", 25)
    True
    """
    text = "\x1f".join(str(p) for p in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def spawn_rng(*parts: object) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` seeded from identifier parts."""
    return np.random.default_rng(scenario_seed(*parts))
