"""The two lower bounds balanced by CPA-family allocation (paper §II-C).

Under an allocation ``n : tasks → processor counts``:

* ``C∞`` — the critical-path length, i.e. the longest node-weighted path
  (optionally including estimated edge costs);
* ``W̄ = (1/P_eff) · Σ_t n_t · T(t, n_t)`` — the *average area*: total work
  divided by the (effective) processor count.

Both are lower bounds on the makespan; CPA stops growing allocations when
``C∞ ≤ W̄`` — the "optimal trade-off".  HCPA fixes CPA's bias on large
clusters by clamping the effective processor count (see
:func:`effective_processor_count`).
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.dag.analysis import critical_path_length, dag_width
from repro.dag.task import TaskGraph
from repro.model.amdahl import PerformanceModel

__all__ = [
    "critical_path_bound",
    "average_area",
    "effective_processor_count",
]


def critical_path_bound(
    graph: TaskGraph,
    model: PerformanceModel,
    allocation: Mapping[str, int],
    edge_time: Callable[[str, str], float] | None = None,
) -> float:
    """``C∞`` under ``allocation`` (edge costs default to zero, as in CPA)."""
    def node_time(name: str) -> float:
        return model.time(graph.task(name), allocation[name])

    return critical_path_length(graph, node_time, edge_time)


def effective_processor_count(graph: TaskGraph, total_procs: int,
                              policy: str = "total") -> int:
    """Effective ``P`` for the average area.

    Policies
    --------
    ``"total"``
        CPA's plain ``P``.
    ``"ntasks"``
        HCPA's bias fix: ``min(P, N)`` — with far more processors than
        tasks, plain CPA's average area stays tiny and allocations explode;
        clamping to the task count removes that bias (§II-C).
    ``"width"``
        Clamp to ``min(P, N, P·width(G)/...)`` — a stricter variant using
        the DAG's maximum parallelism; offered for ablation studies.
    """
    if total_procs < 1:
        raise ValueError("total_procs must be >= 1")
    if policy == "total":
        return total_procs
    if policy == "ntasks":
        return min(total_procs, graph.num_tasks)
    if policy == "width":
        return max(1, min(total_procs, graph.num_tasks, dag_width(graph)))
    raise ValueError(f"unknown effective processor policy {policy!r}")


def average_area(
    graph: TaskGraph,
    model: PerformanceModel,
    allocation: Mapping[str, int],
    total_procs: int,
    policy: str = "total",
) -> float:
    """``W̄ = Σ n_t · T(t, n_t) / P_eff``."""
    p_eff = effective_processor_count(graph, total_procs, policy)
    total_work = sum(
        model.work(graph.task(name), allocation[name])
        for name in graph.task_names()
    )
    return total_work / p_eff
