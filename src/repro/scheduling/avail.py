"""Incremental processor-availability index for the mapping step.

List scheduling selects, for every candidate probe, the ``k`` earliest-
available processors — historically a ``heapq.nsmallest`` (single
cluster) or per-cluster ``sorted`` (multi-cluster) scan over **all**
``proc_avail`` entries with a Python key function.  On a 24k-processor
platform that scan is the scheduler's dominant cost: O(tasks × procs)
per job, re-paid from scratch for every arriving job of a stream.

:class:`AvailabilityIndex` maintains the same selection incrementally:

* availability lives in a numpy mirror of the scheduler's ``proc_avail``
  list, partitioned into *groups* (one per cluster on multi-cluster
  platforms, one group for a plain cluster);
* each group keeps its processor ids sorted by ``(avail, proc id)``
  (a stable argsort, rebuilt lazily and only for groups whose
  availability actually changed since the last query — a task commit
  touches exactly one cluster, so 127 of 128 groups stay sorted);
* :meth:`k_smallest` reproduces the exact historical tie-break order —
  availability time, then preferred-set membership, then processor id —
  by merging the small sorted ``prefer`` set with the group's sorted id
  stream, so the selected sets (and therefore every schedule) are
  **byte-identical** to the scan-based reference path;
* :meth:`reseed` re-synchronises a *warm* index against a new
  ``proc_release`` seeding in one vectorised pass, marking only the
  groups whose values moved — this is what lets the online engine keep
  one index alive across arriving jobs instead of rebuilding per job.

The helper :func:`seed_proc_avail` is the single home of the
``proc_release`` validation/seeding previously repeated across the
scheduler classes.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Sequence

import numpy as np

__all__ = ["AvailabilityIndex", "seed_proc_avail", "platform_groups"]


def seed_proc_avail(proc_release, num_procs: int) -> list[float]:
    """Validate a ``proc_release`` seeding and return the ``proc_avail`` list.

    The shared implementation of the seeding contract documented on
    :class:`~repro.scheduling.mapping.ListScheduler`: ``None`` means the
    batch case (all zeros); anything else must provide one float per
    processor.  Every scheduler variant (list / RATS, single- and
    multi-cluster) funnels through here, so the validation cannot drift.
    """
    if proc_release is None:
        return [0.0] * num_procs
    if len(proc_release) != num_procs:
        raise ValueError(
            f"proc_release has {len(proc_release)} entries for "
            f"{num_procs} processors")
    if isinstance(proc_release, np.ndarray):
        return [float(t) for t in proc_release.tolist()]
    return [float(t) for t in proc_release]


def platform_groups(platform) -> list[tuple[int, int]]:
    """``(start, stop)`` processor ranges per cluster of ``platform``.

    A plain :class:`~repro.platforms.cluster.Cluster` is one group; a
    :class:`~repro.platforms.multicluster.MultiClusterPlatform` yields
    one group per member cluster (``offsets`` order).
    """
    clusters = getattr(platform, "clusters", None)
    if clusters is None:
        return [(0, platform.num_procs)]
    offsets = platform.offsets
    return [(off, off + c.num_procs)
            for off, c in zip(offsets, clusters)]


class AvailabilityIndex:
    """Bucketed k-earliest selection over per-processor availability."""

    def __init__(self, avail: Sequence[float],
                 groups: Sequence[tuple[int, int]] | None = None) -> None:
        self._avail = np.asarray(avail, dtype=float).copy()
        n = len(self._avail)
        if groups is None:
            groups = [(0, n)]
        self.groups: list[tuple[int, int]] = [(int(s), int(e))
                                              for s, e in groups]
        if (not self.groups or self.groups[0][0] != 0
                or self.groups[-1][1] != n
                or any(e <= s for s, e in self.groups)
                or any(self.groups[i][1] != self.groups[i + 1][0]
                       for i in range(len(self.groups) - 1))):
            raise ValueError(f"groups {self.groups} do not partition "
                             f"0..{n}")
        self._starts = [s for s, _ in self.groups]
        self._sorted: list[np.ndarray | None] = [None] * len(self.groups)
        # the cross-group ordering, for whole-platform queries
        self._sorted_all: np.ndarray | None = None

    @classmethod
    def for_platform(cls, platform,
                     avail: Sequence[float] | None = None
                     ) -> "AvailabilityIndex":
        if avail is None:
            avail = np.zeros(platform.num_procs)
        return cls(avail, platform_groups(platform))

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #
    @property
    def num_procs(self) -> int:
        return len(self._avail)

    def group_of(self, p: int) -> int:
        return bisect_right(self._starts, p) - 1

    def avail(self, p: int) -> float:
        return float(self._avail[p])

    def update(self, p: int, t: float) -> None:
        """Record a new availability time for one processor."""
        self._avail[p] = t
        self._sorted[self.group_of(p)] = None
        self._sorted_all = None

    def update_many(self, procs: Iterable[int], t: float) -> None:
        """One task commit: every processor of the set frees at ``t``."""
        touched = set()
        for p in procs:
            self._avail[p] = t
            touched.add(self.group_of(p))
        for g in touched:
            self._sorted[g] = None
        if touched:
            self._sorted_all = None

    def reseed(self, values: Sequence[float]) -> None:
        """Adopt a fresh ``proc_release`` seeding, keeping clean groups.

        Only groups whose availability actually differs from the index's
        current content are marked dirty — the warm-path contract: a job
        stream re-seeds before every arrival, but between two arrivals
        only the clusters the previous job landed on (plus the clusters
        the clamp to *now* moved) have changed.
        """
        arr = np.asarray(values, dtype=float)
        if arr.shape != self._avail.shape:
            raise ValueError(
                f"reseed got {arr.shape[0] if arr.ndim else 0} entries "
                f"for {len(self._avail)} processors")
        changed = np.flatnonzero(self._avail != arr)
        if changed.size == 0:
            return
        self._avail[changed] = arr[changed]
        starts = np.asarray(self._starts)
        dirty = np.unique(np.searchsorted(starts, changed,
                                          side="right") - 1)
        for g in dirty.tolist():
            self._sorted[g] = None
        self._sorted_all = None

    def clamped(self, now: float) -> np.ndarray:
        """``max(now, avail)`` per processor — the residual release seed."""
        return np.maximum(self._avail, now)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def _sorted_ids(self, group: int | None) -> np.ndarray:
        if group is None:
            if self._sorted_all is None:
                self._sorted_all = np.argsort(self._avail, kind="stable")
            return self._sorted_all
        ids = self._sorted[group]
        if ids is None:
            s, e = self.groups[group]
            ids = np.argsort(self._avail[s:e], kind="stable")
            if s:
                ids = ids + s
            self._sorted[group] = ids
        return ids

    def k_smallest(self, count: int, prefer: Sequence[int] = (),
                   group: int | None = None) -> list[int]:
        """The ``count`` earliest-available processors of ``group``.

        Exactly ``heapq.nsmallest(count, procs, key=lambda p:
        (avail[p], p not in prefer, p))`` — availability first, preferred
        processors win ties, processor id as the final tie-break — which
        is the historical selection order of both the single-cluster
        ``_earliest_procs`` scan and the multi-cluster per-cluster pool
        sort.  ``group=None`` queries the whole platform.
        """
        ids = self._sorted_ids(group)
        if count >= len(ids):
            if not prefer:
                return ids.tolist()
            # whole group selected: only the order among ties changes
            avail = self._avail
            preferred = set(prefer)
            return sorted(ids.tolist(),
                          key=lambda p: (avail[p], p not in preferred, p))
        if not prefer:
            return ids[: count].tolist()
        avail = self._avail
        preferred = set(prefer)
        if group is not None:
            s, e = self.groups[group]
            pref_here = [p for p in preferred if s <= p < e]
        else:
            pref_here = [p for p in preferred
                         if 0 <= p < len(avail)]
        if not pref_here:
            return ids[: count].tolist()
        # merge the (tiny) preferred stream with the sorted id stream;
        # preferred entries carry flag 0, the rest flag 1 — the exact
        # historical (avail, not-preferred, p) key order
        pref_sorted = sorted((float(avail[p]), p) for p in pref_here)
        out_list: list[int] = []
        ia = 0
        ids_list = ids
        ib = 0
        n_ids = len(ids_list)
        while len(out_list) < count:
            # next non-preferred candidate
            while ib < n_ids and int(ids_list[ib]) in preferred:
                ib += 1
            have_a = ia < len(pref_sorted)
            have_b = ib < n_ids
            if not have_a and not have_b:
                break
            if have_b:
                pb = int(ids_list[ib])
                key_b = (float(avail[pb]), 1, pb)
            if have_a and (not have_b or
                           (pref_sorted[ia][0], 0, pref_sorted[ia][1])
                           < key_b):
                out_list.append(pref_sorted[ia][1])
                ia += 1
            else:
                out_list.append(pb)
                ib += 1
        return out_list
