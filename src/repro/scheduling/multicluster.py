"""Scheduling on multi-cluster platforms (paper §V future work).

The two-step structure carries over with two changes, both borrowed from
HCPA's original heterogeneous design [N'takpé, Suter & Casanova 2007]:

* the **allocation** step runs against a *reference cluster* — the whole
  platform at its fastest member speed (``platform.performance_model()``);
* the **mapping** step *translates* the reference allocation per candidate
  cluster (``ceil(n_ref · speed_ref / speed_k)``) and evaluates one
  candidate processor set per cluster, keeping the earliest estimated
  finish.  Tasks never span clusters; inter-cluster edges pay WAN
  redistribution, which the usual estimator prices through the platform's
  topology.

:class:`MultiClusterRATSScheduler` layers the RATS adaptation on top: a
ready task may still be packed/stretched onto a predecessor's exact set —
which, on a multi-cluster platform, additionally avoids a WAN crossing
when the predecessor sits in another cluster than the default mapping
would have chosen.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.params import RATSParams
from repro.core.rats import RATSScheduler
from repro.dag.task import TaskGraph
from repro.model.amdahl import PerformanceModel
from repro.platforms.multicluster import MultiClusterPlatform
from repro.redistribution.cost import RedistributionCost
from repro.redistribution.remap import align_receivers
from repro.registry import register_scheduler
from repro.scheduling.allocation import AllocationResult, hcpa_allocation
from repro.scheduling.mapping import ListScheduler

__all__ = [
    "MultiClusterListScheduler",
    "MultiClusterRATSScheduler",
    "reference_allocation",
]


def reference_allocation(graph: TaskGraph, platform: MultiClusterPlatform,
                         **kwargs) -> AllocationResult:
    """HCPA allocation against the platform's reference cluster.

    Registered in :data:`repro.registry.allocators` as ``"reference"``
    (the registry-signature adapter lives in
    :mod:`repro.scheduling.allocation` to keep the allocator bootstrap
    import-cycle-free).
    """
    return hcpa_allocation(graph, platform.performance_model(),
                           platform.num_procs, **kwargs)


class _MultiClusterMixin:
    """Per-cluster execution times + one mapping candidate per cluster."""

    platform: MultiClusterPlatform

    # -- execution-time hooks ------------------------------------------ #
    def exec_time(self, name: str, procs: Sequence[int]) -> float:
        k, _ = self.platform.locate(procs[0])
        model = self.platform.model_for_cluster(k)
        return model.time(self.graph.task(name), len(procs))

    # exec_time_count stays on the reference model (self.model)

    # -- candidate generation ------------------------------------------ #
    def candidate_sets(self, name: str,
                       nprocs: int) -> list[tuple[int, ...]]:
        preds = self.graph.predecessors(name)
        dominant: tuple[int, ...] | None = None
        if preds:
            dom = max(preds,
                      key=lambda p: (self.graph.edge_bytes(p, name), p))
            dominant = self.schedule[dom].procs

        candidates: list[tuple[int, ...]] = []
        for k in range(len(self.platform.clusters)):
            count = self.platform.translate_allocation(nprocs, k)
            if self._avail is not None:
                # cluster-local index view; same (avail, preferred, id)
                # order as the sort below, without touching other
                # clusters' processors
                procs = self._avail.k_smallest(count, dominant or (),
                                               group=k)
            else:
                pool = sorted(self.platform.procs_of_cluster(k),
                              key=lambda p: (self.proc_avail[p],
                                             dominant is None
                                             or p not in dominant,
                                             p))
                procs = pool[:count]
            if len(procs) < count:  # pragma: no cover - translate clamps
                continue
            if dominant is not None:
                candidates.append(align_receivers(dominant, procs))
            else:
                candidates.append(tuple(sorted(procs)))
        seen: set[tuple[int, ...]] = set()
        unique = []
        for c in candidates:
            if c not in seen:
                seen.add(c)
                unique.append(c)
        return unique


class MultiClusterListScheduler(_MultiClusterMixin, ListScheduler):
    """Baseline list scheduling across clusters (translated HCPA)."""

    def __init__(
        self,
        graph: TaskGraph,
        platform: MultiClusterPlatform,
        allocation: Mapping[str, int],
        *,
        model: PerformanceModel | None = None,
        redist: RedistributionCost | None = None,
        proc_release: Sequence[float] | None = None,
        priority_edge_costs: bool = True,
        avail_index=True,
        vector_price: bool = True,
    ) -> None:
        self.platform = platform
        super().__init__(
            graph,
            platform,  # quacks like a Cluster for every consumer below
            model or platform.performance_model(),
            allocation,
            redist=redist,
            proc_release=proc_release,
            priority_edge_costs=priority_edge_costs,
            avail_index=avail_index,
            vector_price=vector_price,
        )


class MultiClusterRATSScheduler(_MultiClusterMixin, RATSScheduler):
    """RATS (delta / time-cost) on a multi-cluster platform."""

    def __init__(
        self,
        graph: TaskGraph,
        platform: MultiClusterPlatform,
        allocation: Mapping[str, int],
        params: RATSParams,
        *,
        model: PerformanceModel | None = None,
        redist: RedistributionCost | None = None,
        proc_release: Sequence[float] | None = None,
        priority_edge_costs: bool = True,
        avail_index=True,
        vector_price: bool = True,
    ) -> None:
        self.platform = platform
        super().__init__(
            graph,
            platform,
            model or platform.performance_model(),
            allocation,
            params,
            redist=redist,
            proc_release=proc_release,
            priority_edge_costs=priority_edge_costs,
            avail_index=avail_index,
            vector_price=vector_price,
        )


@register_scheduler("multicluster-list",
                    description="translated-HCPA list scheduling across "
                                "clusters")
def _build_mc_list_scheduler(graph, platform, model, allocation, *,
                             params=None, redist=None, proc_release=None,
                             avail_index=True, vector_price=True):
    return MultiClusterListScheduler(graph, platform, allocation,
                                     model=model, redist=redist,
                                     proc_release=proc_release,
                                     avail_index=avail_index,
                                     vector_price=vector_price)


@register_scheduler("multicluster-rats",
                    description="RATS adaptation on a multi-cluster "
                                "platform (WAN-crossing aware)")
def _build_mc_rats_scheduler(graph, platform, model, allocation, *,
                             params=None, redist=None, proc_release=None,
                             avail_index=True, vector_price=True):
    if params is None:
        raise ValueError("the multicluster-rats scheduler needs RATSParams")
    return MultiClusterRATSScheduler(graph, platform, allocation, params,
                                     model=model, redist=redist,
                                     proc_release=proc_release,
                                     avail_index=avail_index,
                                     vector_price=vector_price)
