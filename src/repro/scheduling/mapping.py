"""Step two of two-step scheduling: list-scheduling task mapping (§II-C).

Tasks are mapped in order of decreasing *bottom level* (distance to the
graph exit), "accounting for data communication and data redistribution
costs": the estimated start of a task is
``max(max_pred(finish_pred + redistribution estimate), processors free)``
and its finish adds the Amdahl execution time.

Two candidate-generation policies are available:

* ``"earliest"`` (default — the classic CPA/MCPA/HCPA mapping this paper
  compares against): the ``n`` earliest-available processors.  The chosen
  set is rank-ordered with
  :func:`~repro.redistribution.remap.align_receivers` against the
  predecessor shipping the most data, because the *redistribution
  algorithm* itself maximises self-communication (§II-A) — but which
  processors participate is decided by availability alone, ignoring
  redistribution.
* ``"rich"`` (an ablation extension, not the paper's baseline): additionally
  tries, for each predecessor, its processor set truncated to ``n``
  (prefix, which keeps block layouts aligned) or extended with the
  earliest-available other processors, keeping the earliest estimated
  finish.  This bakes redistribution-awareness into the *mapping* while
  leaving allocations untouched, which is useful to quantify how much of
  RATS's gain comes from allocation adaptation versus mere set reuse.

:class:`ListScheduler` exposes the hooks (:meth:`sort_ready`,
:meth:`map_task`) that :class:`repro.core.rats.RATSScheduler` overrides to
implement Algorithm 1.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.dag.analysis import bottom_levels
from repro.dag.task import TaskGraph
from repro.model.amdahl import PerformanceModel
from repro.platforms.cluster import Cluster
from repro.redistribution.cost import RedistributionCost
from repro.redistribution.remap import align_receivers
from repro.registry import register_scheduler
from repro.scheduling.avail import AvailabilityIndex, seed_proc_avail
from repro.scheduling.schedule import Schedule, ScheduleEntry

__all__ = ["MappingDecision", "ListScheduler"]


@dataclass(frozen=True)
class MappingDecision:
    """A fully-priced candidate placement for one task."""

    procs: tuple[int, ...]
    start: float
    finish: float
    data_ready: float
    remote_bytes: float

    @property
    def nprocs(self) -> int:
        return len(self.procs)


class ListScheduler:
    """Bottom-level-ordered list scheduling with earliest-finish selection.

    This is the mapping procedure shared by CPA, MCPA and HCPA (§II-C); the
    baseline "HCPA" of the paper's evaluation is
    ``ListScheduler(graph, cluster, model, hcpa_allocation(...).allocation)``.

    Parameters
    ----------
    graph, cluster, model:
        The application, the platform and the performance model.
    allocation:
        Processor count per task from step one.  The scheduler copies it;
        subclasses (RATS) may adapt individual entries while mapping.
    redist:
        Redistribution-cost estimator (defaults to a fresh one for the
        cluster).
    proc_release:
        Per-processor earliest-availability times seeding
        :attr:`proc_avail` (length ``cluster.num_procs``).  Defaults to
        all zeros — the batch case.  The online engine passes the
        residual platform state here, so a job scheduled mid-stream is
        priced against the processors' *current* backlog instead of an
        empty platform.
    priority_edge_costs:
        Whether bottom-level priorities include a-priori edge communication
        estimates (the list scheduling of [7] accounts for communication).
    candidates:
        Candidate-generation policy: ``"earliest"`` (the paper's baseline)
        or ``"rich"`` (redistribution-aware set reuse, for ablations).
    avail_index:
        ``True`` (default) keeps the k-earliest selection on an
        :class:`~repro.scheduling.avail.AvailabilityIndex` — same sets,
        same schedules, O(k log P) instead of scanning every processor
        per probe.  Pass an existing index to share a warm one across
        jobs (the online engine does; it is reseeded to this job's
        ``proc_release`` view), or ``False`` for the reference scan.
    vector_price:
        ``True`` (default) batch-prices all candidate placements of a
        task per predecessor edge through
        :meth:`~repro.redistribution.cost.RedistributionCost.price_batch`
        (bitwise-identical estimates); ``False`` keeps per-candidate
        scalar pricing.
    """

    def __init__(
        self,
        graph: TaskGraph,
        cluster: Cluster,
        model: PerformanceModel,
        allocation: Mapping[str, int],
        *,
        redist: RedistributionCost | None = None,
        proc_release: Sequence[float] | None = None,
        priority_edge_costs: bool = True,
        candidates: str = "earliest",
        avail_index: bool | AvailabilityIndex = True,
        vector_price: bool = True,
    ) -> None:
        if candidates not in ("earliest", "rich"):
            raise ValueError(f"unknown candidate policy {candidates!r}")
        self.candidate_policy = candidates
        self.graph = graph
        self.cluster = cluster
        self.model = model
        self.allocation = dict(allocation)
        for name in graph.task_names():
            if name not in self.allocation:
                raise ValueError(f"allocation missing task {name!r}")
            n = self.allocation[name]
            if not 1 <= n <= cluster.num_procs:
                raise ValueError(
                    f"allocation for {name!r} out of range: {n}")
        self.redist = redist or RedistributionCost(cluster)
        self.proc_avail: list[float] = seed_proc_avail(proc_release,
                                                       cluster.num_procs)
        if isinstance(avail_index, AvailabilityIndex):
            if avail_index.num_procs != cluster.num_procs:
                raise ValueError(
                    f"shared availability index covers "
                    f"{avail_index.num_procs} processors, platform has "
                    f"{cluster.num_procs}")
            avail_index.reseed(self.proc_avail)
            self._avail: AvailabilityIndex | None = avail_index
        elif avail_index:
            self._avail = AvailabilityIndex.for_platform(
                cluster, self.proc_avail)
        else:
            self._avail = None
        self.vector_price = vector_price
        self.schedule = Schedule(graph=graph, cluster=cluster)
        self.priorities = self._compute_priorities(priority_edge_costs)

    # ------------------------------------------------------------------ #
    # execution-time hooks (overridden by heterogeneous platforms)
    # ------------------------------------------------------------------ #
    def exec_time(self, name: str, procs: Sequence[int]) -> float:
        """Execution time of ``name`` on the concrete set ``procs``.

        The homogeneous default only depends on the count; the multi-cluster
        scheduler overrides this to account for per-cluster speeds.
        """
        return self.model.time(self.graph.task(name), len(procs))

    def exec_time_count(self, name: str, nprocs: int) -> float:
        """Execution time for a processor *count* (reference speed)."""
        return self.model.time(self.graph.task(name), nprocs)

    def work_of(self, name: str, procs: Sequence[int]) -> float:
        """Work ``|procs| · T`` of ``name`` on the concrete set ``procs``."""
        return len(procs) * self.exec_time(name, procs)

    # ------------------------------------------------------------------ #
    # priorities
    # ------------------------------------------------------------------ #
    def _compute_priorities(self, with_edges: bool) -> dict[str, float]:
        def node_time(n: str) -> float:
            return self.exec_time_count(n, self.allocation[n])

        edge_time = None
        if with_edges:
            def edge_time(u: str, v: str) -> float:
                return self.redist.average_edge_time(self.graph.edge_bytes(u, v))

        return bottom_levels(self.graph, node_time, edge_time)

    # ------------------------------------------------------------------ #
    # main loop
    # ------------------------------------------------------------------ #
    def run(self) -> Schedule:
        """Map every task; returns the completed (validated) schedule."""
        order = self.graph.task_names()  # deterministic iteration order
        unscheduled = set(order)
        while unscheduled:
            ready = [
                n for n in order
                if n in unscheduled
                and all(p in self.schedule for p in self.graph.predecessors(n))
            ]
            if not ready:  # pragma: no cover - graph is a DAG, cannot happen
                raise RuntimeError("no ready task but unscheduled tasks remain")
            for name in self.iter_ready(ready):
                self.map_task(name)
                unscheduled.discard(name)
        self.schedule.validate()
        return self.schedule

    def iter_ready(self, ready: list[str]):
        """Yield the current wave of ready tasks in mapping order.

        The base implementation fixes the order up front (priorities do not
        change while mapping); RATS resorts after allocation adaptations.
        """
        return iter(self.sort_ready(ready))

    def sort_ready(self, ready: list[str]) -> list[str]:
        """Decreasing bottom level, name as deterministic tie-break."""
        return sorted(ready, key=lambda n: (-self.priorities[n], n))

    # ------------------------------------------------------------------ #
    # mapping one task
    # ------------------------------------------------------------------ #
    def map_task(self, name: str) -> ScheduleEntry:
        decision = self.best_decision(name, self.allocation[name])
        return self.commit(name, decision)

    def commit(self, name: str, decision: MappingDecision) -> ScheduleEntry:
        entry = ScheduleEntry(task=name, procs=decision.procs,
                              start=decision.start, finish=decision.finish)
        self.schedule.add(entry)
        self.allocation[name] = decision.nprocs
        for p in decision.procs:
            self.proc_avail[p] = decision.finish
        if self._avail is not None:
            self._avail.update_many(decision.procs, decision.finish)
        return entry

    def best_decision(self, name: str, nprocs: int) -> MappingDecision:
        """Earliest-finish decision over the candidate processor sets."""
        candidates = self.candidate_sets(name, nprocs)
        if self.vector_price and len(candidates) > 1:
            # one batched pricing pass per predecessor edge fills the
            # estimator's memo caches; the scalar loop below hits them
            for pred in self.graph.predecessors(name):
                self.redist.price_batch(self.schedule[pred].procs,
                                        candidates,
                                        self.graph.edge_bytes(pred, name))
        best: MappingDecision | None = None
        for procs in candidates:
            d = self.decision_for_procs(name, procs)
            if (best is None
                    or (d.finish, d.remote_bytes, d.procs)
                    < (best.finish, best.remote_bytes, best.procs)):
                best = d
        assert best is not None
        return best

    # ------------------------------------------------------------------ #
    # candidate generation & pricing
    # ------------------------------------------------------------------ #
    def _earliest_procs(self, count: int,
                        prefer: Sequence[int] = ()) -> list[int]:
        """``count`` processors by availability; ``prefer`` wins ties.

        Selection instead of a full sort: ``heapq.nsmallest`` is
        documented to equal ``sorted(...)[:count]``, so the chosen sets —
        and thus every schedule — are unchanged, at ``O(P log count)``
        instead of ``O(P log P)`` per pricing probe.  With the
        availability index the scan disappears entirely: the index keeps
        the same ordering incrementally across commits.
        """
        if self._avail is not None:
            return self._avail.k_smallest(count, prefer)
        preferred = set(prefer)
        return heapq.nsmallest(
            count, range(self.cluster.num_procs),
            key=lambda p: (self.proc_avail[p], p not in preferred, p),
        )

    def candidate_sets(self, name: str, nprocs: int) -> list[tuple[int, ...]]:
        """Candidate ordered processor sets for ``name`` at size ``nprocs``."""
        preds = self.graph.predecessors(name)
        dominant: tuple[int, ...] | None = None
        if preds:
            dom = max(preds, key=lambda p: (self.graph.edge_bytes(p, name), p))
            dominant = self.schedule[dom].procs

        candidates: list[tuple[int, ...]] = []

        # earliest-available processors, aligned to the dominant producer
        # (the redistribution algorithm maximises self-communication, §II-A)
        base = self._earliest_procs(nprocs, prefer=dominant or ())
        if dominant is not None:
            candidates.append(align_receivers(dominant, base))
        else:
            candidates.append(tuple(sorted(base)))

        if self.candidate_policy == "earliest":
            return candidates

        # "rich" policy: predecessor-derived sets — prefix (pack-aligned)
        # or extension with earliest-available processors
        for pred in preds:
            pp = self.schedule[pred].procs
            if len(pp) >= nprocs:
                cand = pp[:nprocs]
            else:
                pool = self._earliest_procs(
                    min(self.cluster.num_procs, nprocs + len(pp)))
                pps = set(pp)
                extra = [p for p in pool if p not in pps][: nprocs - len(pp)]
                cand = tuple(pp) + tuple(extra)
            if len(cand) == nprocs:
                candidates.append(tuple(cand))

        # dedup, preserving order
        seen: set[tuple[int, ...]] = set()
        unique = []
        for c in candidates:
            if c not in seen:
                seen.add(c)
                unique.append(c)
        return unique

    def decision_for_procs(self, name: str,
                           procs: Sequence[int]) -> MappingDecision:
        """Price mapping ``name`` on the concrete ordered set ``procs``."""
        procs = tuple(procs)
        data_ready = 0.0
        remote = 0.0
        for pred in self.graph.predecessors(name):
            entry = self.schedule[pred]
            data = self.graph.edge_bytes(pred, name)
            rt = self.redist.time(entry.procs, procs, data)
            remote += self.redist.remote_bytes(entry.procs, procs, data)
            data_ready = max(data_ready, entry.finish + rt)
        proc_free = max(self.proc_avail[p] for p in procs)
        start = max(data_ready, proc_free)
        finish = start + self.exec_time(name, procs)
        return MappingDecision(procs=procs, start=start, finish=finish,
                               data_ready=data_ready, remote_bytes=remote)


@register_scheduler("list", description="plain list-scheduling mapping "
                    "(single cluster)")
def _build_list_scheduler(graph, platform, model, allocation, *,
                          params=None, redist=None, proc_release=None,
                          avail_index=True, vector_price=True):
    return ListScheduler(graph, platform, model, allocation, redist=redist,
                         proc_release=proc_release, avail_index=avail_index,
                         vector_price=vector_price)
