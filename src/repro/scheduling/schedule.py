"""Schedule representation: task → (ordered processor set, start, finish).

A :class:`Schedule` is what a scheduling algorithm *promises*: estimated
start/finish instants for every task on a concrete ordered processor set.
Whether the promise holds under network contention is decided by the fluid
simulator (:mod:`repro.simulation`), which replays the mapping and the
per-processor task order while recomputing communications.

Validity invariants (checked by :meth:`Schedule.validate`):

* every task scheduled exactly once, on a non-empty duplicate-free
  processor set within the cluster;
* precedence: a task never starts before any predecessor finishes;
* exclusivity: entries sharing a processor never overlap in time (only one
  task per processing unit at a time, §II-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dag.task import TaskGraph
from repro.model.amdahl import PerformanceModel
from repro.platforms.cluster import Cluster

__all__ = ["ScheduleEntry", "Schedule"]

_TOL = 1e-9


@dataclass(frozen=True)
class ScheduleEntry:
    """One task's placement."""

    task: str
    procs: tuple[int, ...]
    start: float
    finish: float

    def __post_init__(self) -> None:
        if not self.procs:
            raise ValueError(f"task {self.task!r}: empty processor set")
        if len(set(self.procs)) != len(self.procs):
            raise ValueError(f"task {self.task!r}: duplicate processors")
        if self.finish < self.start - _TOL:
            raise ValueError(f"task {self.task!r}: finish < start")

    @property
    def nprocs(self) -> int:
        return len(self.procs)

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass
class Schedule:
    """A complete mapping of a task graph onto a cluster."""

    graph: TaskGraph
    cluster: Cluster
    entries: dict[str, ScheduleEntry] = field(default_factory=dict)

    def add(self, entry: ScheduleEntry) -> None:
        if entry.task in self.entries:
            raise ValueError(f"task {entry.task!r} already scheduled")
        if entry.task not in self.graph:
            raise KeyError(f"unknown task {entry.task!r}")
        for p in entry.procs:
            if not 0 <= p < self.cluster.num_procs:
                raise ValueError(f"processor {p} out of range")
        self.entries[entry.task] = entry

    def __contains__(self, task: str) -> bool:
        return task in self.entries

    def __getitem__(self, task: str) -> ScheduleEntry:
        return self.entries[task]

    def __len__(self) -> int:
        return len(self.entries)

    # ------------------------------------------------------------------ #
    # metrics
    # ------------------------------------------------------------------ #
    @property
    def makespan(self) -> float:
        """Estimated makespan (earliest start is the origin, §II-A)."""
        if not self.entries:
            return 0.0
        start = min(e.start for e in self.entries.values())
        end = max(e.finish for e in self.entries.values())
        return end - start

    def total_work(self, model: PerformanceModel | None = None) -> float:
        """``W = Σ ω_i`` — processor-seconds consumed (paper §II-C, §IV-B).

        With a performance model the work is ``Σ n_t · T(t, n_t)`` from the
        model (the paper's definition); otherwise the scheduled durations
        are used (identical when entries were built from the model).
        """
        if model is None:
            return sum(e.nprocs * e.duration for e in self.entries.values())
        return sum(
            e.nprocs * model.time(self.graph.task(name), e.nprocs)
            for name, e in self.entries.items()
        )

    def allocation(self) -> dict[str, int]:
        """Processor count per task (the first-step view of this schedule)."""
        return {name: e.nprocs for name, e in self.entries.items()}

    def proc_timeline(self) -> dict[int, list[ScheduleEntry]]:
        """Entries per processor, ordered by start time."""
        timeline: dict[int, list[ScheduleEntry]] = {}
        for e in self.entries.values():
            for p in e.procs:
                timeline.setdefault(p, []).append(e)
        for p in timeline:
            timeline[p].sort(key=lambda e: (e.start, e.finish, e.task))
        return timeline

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    def validate(self, tol: float = 1e-6) -> None:
        """Raise :class:`ValueError` on any violated invariant."""
        missing = [t for t in self.graph.task_names() if t not in self.entries]
        if missing:
            raise ValueError(f"unscheduled tasks: {missing[:5]}"
                             f"{'...' if len(missing) > 5 else ''}")
        for u, v, _ in self.graph.edges():
            if self.entries[v].start < self.entries[u].finish - tol:
                raise ValueError(
                    f"precedence violated: {v!r} starts at "
                    f"{self.entries[v].start:g} before {u!r} finishes at "
                    f"{self.entries[u].finish:g}"
                )
        for p, seq in self.proc_timeline().items():
            for a, b in zip(seq, seq[1:]):
                if b.start < a.finish - tol:
                    raise ValueError(
                        f"processor {p} double-booked: {a.task!r} "
                        f"[{a.start:g},{a.finish:g}) overlaps {b.task!r} "
                        f"[{b.start:g},{b.finish:g})"
                    )

    def summary(self) -> str:
        return (f"Schedule({self.graph.name!r} on {self.cluster.name!r}: "
                f"{len(self.entries)} tasks, makespan={self.makespan:.3f}s, "
                f"work={self.total_work():.1f} proc-s)")
