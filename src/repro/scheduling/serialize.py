"""JSON (de)serialisation of schedules and experiment results.

Full-scale campaigns (557 configurations × 3 clusters × 3 algorithms) are
expensive to recompute; these helpers let harnesses persist schedules and
:class:`~repro.experiments.runner.RunResult` rows and reload them for
post-hoc analysis without re-running the simulator.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.dag.task import TaskGraph
from repro.platforms.cluster import Cluster
from repro.scheduling.schedule import Schedule, ScheduleEntry

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.runner import RunResult

__all__ = [
    "schedule_to_dict",
    "schedule_from_dict",
    "save_schedule",
    "load_schedule",
    "results_to_json",
    "results_from_json",
    "save_results",
    "load_results",
]


def schedule_to_dict(schedule: Schedule) -> dict:
    """Plain-dict form of a schedule (graph/cluster referenced by name)."""
    return {
        "graph": schedule.graph.name,
        "cluster": schedule.cluster.name,
        "entries": [
            {
                "task": e.task,
                "procs": list(e.procs),
                "start": e.start,
                "finish": e.finish,
            }
            for e in schedule.entries.values()
        ],
    }


def schedule_from_dict(data: dict, graph: TaskGraph,
                       cluster: Cluster) -> Schedule:
    """Rebuild a schedule against its graph and cluster.

    The caller provides the graph/cluster (rebuilt deterministically from a
    scenario id, or constructed directly); names are cross-checked.
    """
    if data.get("graph") != graph.name:
        raise ValueError(
            f"schedule was for graph {data.get('graph')!r}, got {graph.name!r}")
    if data.get("cluster") != cluster.name:
        raise ValueError(
            f"schedule was for cluster {data.get('cluster')!r}, "
            f"got {cluster.name!r}")
    schedule = Schedule(graph=graph, cluster=cluster)
    for row in data["entries"]:
        schedule.add(ScheduleEntry(
            task=row["task"],
            procs=tuple(row["procs"]),
            start=float(row["start"]),
            finish=float(row["finish"]),
        ))
    return schedule


def save_schedule(schedule: Schedule, path: str | Path) -> None:
    Path(path).write_text(json.dumps(schedule_to_dict(schedule), indent=1))


def load_schedule(path: str | Path, graph: TaskGraph,
                  cluster: Cluster) -> Schedule:
    return schedule_from_dict(json.loads(Path(path).read_text()),
                              graph, cluster)


def results_to_json(results: Iterable["RunResult"]) -> str:
    """Serialise experiment rows to a JSON array string."""
    return json.dumps([dataclasses.asdict(r) for r in results], indent=1)


def results_from_json(text: str) -> list["RunResult"]:
    from repro.experiments.runner import RunResult

    return [RunResult(**row) for row in json.loads(text)]


def save_results(results: Iterable["RunResult"], path: str | Path) -> None:
    Path(path).write_text(results_to_json(results))


def load_results(path: str | Path) -> list["RunResult"]:
    return results_from_json(Path(path).read_text())
