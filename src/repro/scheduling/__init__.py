"""Two-step scheduling: allocation procedures and list-scheduling mapping."""

from repro.scheduling.schedule import Schedule, ScheduleEntry
from repro.scheduling.bounds import average_area, critical_path_bound
from repro.scheduling.allocation import (
    AllocationResult,
    cpa_allocation,
    hcpa_allocation,
    mcpa_allocation,
)
from repro.scheduling.mapping import ListScheduler, MappingDecision
from repro.scheduling.serialize import (
    load_results,
    load_schedule,
    save_results,
    save_schedule,
)
# NOTE: repro.scheduling.multicluster is intentionally NOT imported here —
# it subclasses repro.core.rats.RATSScheduler, and core itself imports
# repro.scheduling.mapping; import it directly (or from the top-level
# ``repro`` package, which loads core first).

__all__ = [
    "save_schedule",
    "load_schedule",
    "save_results",
    "load_results",
    "Schedule",
    "ScheduleEntry",
    "average_area",
    "critical_path_bound",
    "AllocationResult",
    "cpa_allocation",
    "hcpa_allocation",
    "mcpa_allocation",
    "ListScheduler",
    "MappingDecision",
]
