"""Step one of two-step scheduling: moldable-task allocation (paper §II-C).

All three procedures share the CPA iteration [Radulescu & van Gemund 2001]:
start from one processor per task; while the critical path ``C∞`` exceeds
the average area ``W̄``, give one more processor to the critical-path task
that benefits the most.  ``C∞ = W̄`` is the optimal trade-off because both
quantities lower-bound the makespan.

* :func:`cpa_allocation` — plain CPA (``P_eff = P``).
* :func:`hcpa_allocation` — HCPA's allocation [N'takpé, Suter & Casanova
  2007]: identical loop with the average-area bias fix ``P_eff = min(P, N)``
  ("a modified definition of W to remove the bias induced by a large number
  of available processors", §II-C).  This is the allocator RATS builds on.
* :func:`mcpa_allocation` — MCPA [Bansal, Kumar & Singh 2006]: additionally
  caps each precedence level's total allocation at ``P`` so all tasks of a
  level can run concurrently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.dag.analysis import bottom_levels, dag_levels, top_levels
from repro.dag.task import TaskGraph
from repro.model.amdahl import PerformanceModel
from repro.registry import register_allocator
from repro.scheduling.bounds import effective_processor_count

__all__ = [
    "AllocationResult",
    "cpa_allocation",
    "hcpa_allocation",
    "mcpa_allocation",
]

_TOL = 1e-9


@dataclass
class AllocationResult:
    """Outcome of an allocation procedure.

    ``converged`` is true when the stopping condition ``C∞ ≤ W̄`` was
    reached (as opposed to running out of grantable processors).
    """

    allocation: dict[str, int]
    iterations: int
    cp_length: float
    avg_area: float
    converged: bool
    trace: list[tuple[str, int]] = field(default_factory=list, repr=False)

    def __getitem__(self, task: str) -> int:
        return self.allocation[task]

    def total_procs_allocated(self) -> int:
        return sum(self.allocation.values())


def _cpa_core(
    graph: TaskGraph,
    model: PerformanceModel,
    total_procs: int,
    *,
    area_policy: str,
    level_cap: bool,
    edge_time: Callable[[str, str], float] | None = None,
    max_iterations: int | None = None,
    keep_trace: bool = False,
) -> AllocationResult:
    """The shared CPA allocation loop."""
    if total_procs < 1:
        raise ValueError("total_procs must be >= 1")
    names = graph.task_names()
    alloc: dict[str, int] = {n: 1 for n in names}
    levels = dag_levels(graph) if level_cap else None
    level_tasks: dict[int, list[str]] = {}
    if levels is not None:
        for n, lvl in levels.items():
            level_tasks.setdefault(lvl, []).append(n)

    p_eff = effective_processor_count(graph, total_procs, area_policy)
    total_work = sum(model.work(graph.task(n), 1) for n in names)
    if max_iterations is None:
        # each task can grow at most to P processors
        max_iterations = graph.num_tasks * total_procs

    trace: list[tuple[str, int]] = []
    iterations = 0
    cp_len = 0.0
    area = 0.0
    converged = False

    def node_time(n: str) -> float:
        return model.time(graph.task(n), alloc[n])

    def can_grow(n: str) -> bool:
        if alloc[n] >= total_procs:
            return False
        if levels is not None:
            used = sum(alloc[m] for m in level_tasks[levels[n]])
            if used + 1 > total_procs:
                return False
        return True

    while iterations < max_iterations:
        bl = bottom_levels(graph, node_time, edge_time)
        tl = top_levels(graph, node_time, edge_time)
        cp_len = max((bl[e] for e in graph.entry_tasks()), default=0.0)
        area = total_work / p_eff
        if cp_len <= area + _TOL:
            converged = True
            break

        # tasks on a critical path that may still grow
        candidates = [
            n for n in names
            if tl[n] + bl[n] >= cp_len - _TOL * max(1.0, cp_len) and can_grow(n)
        ]
        if not candidates:
            break

        # benefit of one extra processor: largest execution-time reduction
        def benefit(n: str) -> float:
            t = graph.task(n)
            return model.time(t, alloc[n]) - model.time(t, alloc[n] + 1)

        best = max(candidates, key=lambda n: (benefit(n), node_time(n), n))
        old_work = model.work(graph.task(best), alloc[best])
        alloc[best] += 1
        total_work += model.work(graph.task(best), alloc[best]) - old_work
        if keep_trace:
            trace.append((best, alloc[best]))
        iterations += 1

    return AllocationResult(
        allocation=alloc,
        iterations=iterations,
        cp_length=cp_len,
        avg_area=area,
        converged=converged,
        trace=trace,
    )


@register_allocator("cpa", description="plain CPA (P_eff = P)")
def cpa_allocation(graph: TaskGraph, model: PerformanceModel,
                   total_procs: int, **kwargs) -> AllocationResult:
    """Plain CPA allocation (``P_eff = P``)."""
    return _cpa_core(graph, model, total_procs,
                     area_policy="total", level_cap=False, **kwargs)


@register_allocator("hcpa",
                    description="HCPA: CPA with the average-area bias fix "
                                "(the allocator RATS builds on)")
def hcpa_allocation(graph: TaskGraph, model: PerformanceModel,
                    total_procs: int, *, area_policy: str = "ntasks",
                    **kwargs) -> AllocationResult:
    """HCPA allocation: CPA with the average-area bias fix (default
    ``P_eff = min(P, N)``)."""
    return _cpa_core(graph, model, total_procs,
                     area_policy=area_policy, level_cap=False, **kwargs)


@register_allocator("mcpa",
                    description="MCPA: CPA with per-level concurrency budgets")
def mcpa_allocation(graph: TaskGraph, model: PerformanceModel,
                    total_procs: int, **kwargs) -> AllocationResult:
    """MCPA allocation: CPA with per-level concurrency budgets."""
    return _cpa_core(graph, model, total_procs,
                     area_policy="total", level_cap=True, **kwargs)


@register_allocator("reference", aliases=("hcpa-ref",),
                    description="HCPA against a multi-cluster platform's "
                                "reference (fastest-member) model")
def _reference_allocator(graph: TaskGraph, model: PerformanceModel,
                         total_procs: int, **kwargs) -> AllocationResult:
    # the registry signature of repro.scheduling.multicluster's
    # reference_allocation(): the experiment runner hands a multi-cluster
    # platform's reference performance model and global processor count
    # to every allocator, so the reference allocation is HCPA verbatim
    return hcpa_allocation(graph, model, total_procs, **kwargs)
