"""Step one of two-step scheduling: moldable-task allocation (paper §II-C).

All three procedures share the CPA iteration [Radulescu & van Gemund 2001]:
start from one processor per task; while the critical path ``C∞`` exceeds
the average area ``W̄``, give one more processor to the critical-path task
that benefits the most.  ``C∞ = W̄`` is the optimal trade-off because both
quantities lower-bound the makespan.

* :func:`cpa_allocation` — plain CPA (``P_eff = P``).
* :func:`hcpa_allocation` — HCPA's allocation [N'takpé, Suter & Casanova
  2007]: identical loop with the average-area bias fix ``P_eff = min(P, N)``
  ("a modified definition of W to remove the bias induced by a large number
  of available processors", §II-C).  This is the allocator RATS builds on.
* :func:`mcpa_allocation` — MCPA [Bansal, Kumar & Singh 2006]: additionally
  caps each precedence level's total allocation at ``P`` so all tasks of a
  level can run concurrently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.dag.analysis import dag_levels
from repro.dag.task import TaskGraph
from repro.model.amdahl import PerformanceModel
from repro.registry import register_allocator
from repro.scheduling.bounds import effective_processor_count

__all__ = [
    "AllocationResult",
    "cpa_allocation",
    "hcpa_allocation",
    "mcpa_allocation",
]

_TOL = 1e-9


@dataclass
class AllocationResult:
    """Outcome of an allocation procedure.

    ``converged`` is true when the stopping condition ``C∞ ≤ W̄`` was
    reached (as opposed to running out of grantable processors).
    """

    allocation: dict[str, int]
    iterations: int
    cp_length: float
    avg_area: float
    converged: bool
    trace: list[tuple[str, int]] = field(default_factory=list, repr=False)

    def __getitem__(self, task: str) -> int:
        return self.allocation[task]

    def total_procs_allocated(self) -> int:
        return sum(self.allocation.values())


def _cpa_core(
    graph: TaskGraph,
    model: PerformanceModel,
    total_procs: int,
    *,
    area_policy: str,
    level_cap: bool,
    edge_time: Callable[[str, str], float] | None = None,
    max_iterations: int | None = None,
    keep_trace: bool = False,
) -> AllocationResult:
    """The shared CPA allocation loop.

    The loop re-evaluates bottom/top levels over the whole graph on every
    grant, which used to dominate the allocator's cost through repeated
    ``model.time`` calls and graph-dict traversals.  The graph structure
    and per-task times are therefore flattened **once** into index
    arrays; each iteration then only touches plain-float lists plus the
    one or two ``model.time`` evaluations of the task that grew.  A
    user-supplied ``edge_time`` callable is still re-evaluated every
    iteration (it may read the evolving allocation); the built-in
    allocators pass ``None``, whose zero costs stay static.  Every float
    is produced by the same arithmetic as before, so the resulting
    allocations (and traces) are unchanged.
    """
    if total_procs < 1:
        raise ValueError("total_procs must be >= 1")
    names = graph.task_names()
    n_tasks = len(names)
    index = {n: i for i, n in enumerate(names)}
    alloc = [1] * n_tasks
    levels = dag_levels(graph) if level_cap else None
    level_of: list[int] | None = None
    level_used: dict[int, int] = {}
    if levels is not None:
        level_of = [levels[n] for n in names]
        for n, lvl in levels.items():
            level_used[lvl] = level_used.get(lvl, 0) + 1  # 1 proc per task

    # ---- one-time structure flattening ---- #
    topo = [index[n] for n in graph.topological_order()]
    preds: list[list[int]] = [[] for _ in range(n_tasks)]
    succs: list[list[int]] = [[] for _ in range(n_tasks)]
    # edge costs aligned with the preds/succs adjacency
    pred_cost: list[list[float]] = [[] for _ in range(n_tasks)]
    succ_cost: list[list[float]] = [[] for _ in range(n_tasks)]

    def fill_edge_costs() -> None:
        for i, n in enumerate(names):
            sc = succ_cost[i]
            sc.clear()
            for s in graph.successors(n):
                sc.append(edge_time(n, s) if edge_time is not None else 0.0)
        for j in range(n_tasks):
            pc = pred_cost[j]
            pc.clear()
            for k, i in enumerate(preds[j]):
                pc.append(succ_cost[i][succs[i].index(j)])

    for i, n in enumerate(names):
        for s in graph.successors(n):
            j = index[s]
            succs[i].append(j)
            preds[j].append(i)
    fill_edge_costs()
    entries = [index[n] for n in graph.entry_tasks()]
    tasks = [graph.task(n) for n in names]

    # per-task times under the current (and next) allocation — the only
    # model evaluations each iteration needs are for the task that grew
    cur_time = [model.time(t, 1) for t in tasks]
    next_time = [model.time(t, 2) if total_procs > 1 else 0.0 for t in tasks]

    p_eff = effective_processor_count(graph, total_procs, area_policy)
    total_work = sum(model.work(t, 1) for t in tasks)
    if max_iterations is None:
        # each task can grow at most to P processors
        max_iterations = n_tasks * total_procs

    trace: list[tuple[str, int]] = []
    iterations = 0
    cp_len = 0.0
    area = 0.0
    converged = False
    bl = [0.0] * n_tasks
    tl = [0.0] * n_tasks

    def can_grow(i: int) -> bool:
        if alloc[i] >= total_procs:
            return False
        if level_of is not None and level_used[level_of[i]] + 1 > total_procs:
            return False
        return True

    while iterations < max_iterations:
        if edge_time is not None and iterations:
            # a user-supplied edge_time may read the evolving allocation
            # (the pre-flattening loop re-evaluated it every iteration);
            # the built-in allocators pass None and keep the static arrays
            fill_edge_costs()
        for i in reversed(topo):
            tail = 0.0
            for j, c in zip(succs[i], succ_cost[i]):
                v = c + bl[j]
                if v > tail:
                    tail = v
            bl[i] = cur_time[i] + tail
        for i in topo:
            top = 0.0
            for j, c in zip(preds[i], pred_cost[i]):
                v = tl[j] + cur_time[j] + c
                if v > top:
                    top = v
            tl[i] = top
        cp_len = max((bl[e] for e in entries), default=0.0)
        area = total_work / p_eff
        if cp_len <= area + _TOL:
            converged = True
            break

        # tasks on a critical path that may still grow
        threshold = cp_len - _TOL * max(1.0, cp_len)
        candidates = [i for i in range(n_tasks)
                      if tl[i] + bl[i] >= threshold and can_grow(i)]
        if not candidates:
            break

        # benefit of one extra processor: largest execution-time reduction
        best = max(candidates,
                   key=lambda i: (cur_time[i] - next_time[i], cur_time[i],
                                  names[i]))
        t = tasks[best]
        # model.work, not alloc·time: custom models may define work
        # independently of time (the old loop called work() too)
        total_work += model.work(t, alloc[best] + 1) - model.work(t, alloc[best])
        alloc[best] += 1
        if level_of is not None:
            level_used[level_of[best]] += 1
        cur_time[best] = next_time[best]
        next_time[best] = (model.time(t, alloc[best] + 1)
                           if alloc[best] < total_procs else 0.0)
        if keep_trace:
            trace.append((names[best], alloc[best]))
        iterations += 1

    return AllocationResult(
        allocation={n: alloc[i] for i, n in enumerate(names)},
        iterations=iterations,
        cp_length=cp_len,
        avg_area=area,
        converged=converged,
        trace=trace,
    )


@register_allocator("cpa", description="plain CPA (P_eff = P)")
def cpa_allocation(graph: TaskGraph, model: PerformanceModel,
                   total_procs: int, **kwargs) -> AllocationResult:
    """Plain CPA allocation (``P_eff = P``)."""
    return _cpa_core(graph, model, total_procs,
                     area_policy="total", level_cap=False, **kwargs)


@register_allocator("hcpa",
                    description="HCPA: CPA with the average-area bias fix "
                                "(the allocator RATS builds on)")
def hcpa_allocation(graph: TaskGraph, model: PerformanceModel,
                    total_procs: int, *, area_policy: str = "ntasks",
                    **kwargs) -> AllocationResult:
    """HCPA allocation: CPA with the average-area bias fix (default
    ``P_eff = min(P, N)``)."""
    return _cpa_core(graph, model, total_procs,
                     area_policy=area_policy, level_cap=False, **kwargs)


@register_allocator("mcpa",
                    description="MCPA: CPA with per-level concurrency budgets")
def mcpa_allocation(graph: TaskGraph, model: PerformanceModel,
                    total_procs: int, **kwargs) -> AllocationResult:
    """MCPA allocation: CPA with per-level concurrency budgets."""
    return _cpa_core(graph, model, total_procs,
                     area_policy="total", level_cap=True, **kwargs)


@register_allocator("reference", aliases=("hcpa-ref",),
                    description="HCPA against a multi-cluster platform's "
                                "reference (fastest-member) model")
def _reference_allocator(graph: TaskGraph, model: PerformanceModel,
                         total_procs: int, **kwargs) -> AllocationResult:
    # the registry signature of repro.scheduling.multicluster's
    # reference_allocation(): the experiment runner hands a multi-cluster
    # platform's reference performance model and global processor count
    # to every allocator, so the reference allocation is HCPA verbatim
    return hcpa_allocation(graph, model, total_procs, **kwargs)
