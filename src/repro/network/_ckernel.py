"""Optional compiled waterfilling kernel (transparent numpy fallback).

The fluid simulator re-solves Max-Min rates thousands of times per
scenario; each solve is a handful of local-bottleneck rounds over a few
hundred bundles.  At that size the numpy implementation is dispatch-bound
(~100 numpy calls of ~300 elements each), so a direct C translation of
the *same* loop runs an order of magnitude faster.

This module compiles that translation on first use with the system C
compiler into a content-addressed shared object under the user cache
directory and binds it via :mod:`ctypes` — no build-time machinery, no
extra dependencies.  When no compiler is available (or
``REPRO_NO_C_KERNEL=1`` is set) :func:`load_kernel` returns ``None`` and
:func:`repro.network.maxmin.waterfill_bundled` silently keeps its numpy
path.

The C code mirrors the numpy path operation-for-operation — same freeze
rules, same tolerance constants, same per-link accumulation order — and
is compiled with ``-ffp-contract=off`` so no FMA contraction can change
a rounding: its results are **bitwise identical** to the numpy path
(asserted by ``tests/test_bundled_solver.py`` whenever the kernel is
available), which keeps golden event counts independent of whether an
environment could compile.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

__all__ = ["load_kernel", "load_indexed_kernel", "load_pricing_kernel",
           "load_batch_kernel", "load_sweep_kernel",
           "warm", "kernel_status"]

#: Why the kernel is (un)available — for diagnostics, set by load_kernel.
kernel_status = "not loaded"

_CFLAGS = ["-O2", "-ffp-contract=off", "-shared", "-fPIC"]

_C_SOURCE = r"""
#include <math.h>
#include <stdlib.h>
#include <string.h>
#include <stdint.h>

/* Local-bottleneck waterfilling over flow bundles (CSR incidence).
 *
 * Mirrors the numpy rounds of repro.network.maxmin.waterfill_bundled
 * operation-for-operation so the results are bitwise identical:
 * per-link sums accumulate in entry (bundle-major) order, the freeze
 * tests use the same tolerance constants, and the residual is clamped
 * to zero once per round.
 *
 * route_len > 0 declares that bundle b's links are
 * flat[b*route_len : (b+1)*route_len] (ptr may be NULL); otherwise the
 * CSR ptr is used.  A bundle with multiplicity 0 or an empty route is
 * cap-limited and never enters the filling.
 *
 * The rounds live in waterfill_core over caller-provided scratch of
 * (4*n_links + 2*n_b) doubles plus n_b bytes, so the batched entry
 * point below can run many components through one allocation; the
 * single-component wrapper keeps the original malloc-per-call ABI.
 * ctypes dispatches every entry point through CDLL, which drops the
 * GIL around the foreign call — solver threads therefore run the
 * rounds truly concurrently.
 */
static void waterfill_core(int64_t n_b, int64_t n_links,
                           const int64_t *flat, const int64_t *ptr,
                           int64_t route_len,
                           const double *mult, const double *caps,
                           const double *capacities,
                           double *rates, double *scratch)
{
    double *residual = scratch;
    double *counts = scratch + n_links;
    double *levels = scratch + 2 * n_links;
    double *link_min = scratch + 3 * n_links;
    double *blm = scratch + 4 * n_links;
    double *bundle_min = blm + n_b;
    unsigned char *notfixed = (unsigned char *)(bundle_min + n_b);

#define ROW(b, s, e) \
    int64_t s = route_len ? (b) * route_len : ptr[b]; \
    int64_t e = route_len ? s + route_len : ptr[(b) + 1];

    int64_t n_unfixed = 0;
    for (int64_t b = 0; b < n_b; b++) {
        ROW(b, s, e)
        if (mult[b] == 0.0 || e == s) {
            rates[b] = caps[b];
            notfixed[b] = 0;
        } else {
            rates[b] = 0.0;
            notfixed[b] = 1;
            n_unfixed++;
        }
    }
    memcpy(residual, capacities, (size_t)n_links * sizeof(double));

    while (n_unfixed > 0) {
        for (int64_t l = 0; l < n_links; l++) counts[l] = 0.0;
        for (int64_t b = 0; b < n_b; b++) {
            if (!notfixed[b]) continue;
            ROW(b, s, e)
            for (int64_t k = s; k < e; k++) counts[flat[k]] += mult[b];
        }
        for (int64_t l = 0; l < n_links; l++)
            levels[l] = counts[l] > 0.0 ? residual[l] / counts[l] : INFINITY;

        /* per-bundle bottleneck level, capped */
        for (int64_t b = 0; b < n_b; b++) {
            double m = INFINITY;
            if (notfixed[b]) {
                ROW(b, s, e)
                for (int64_t k = s; k < e; k++) {
                    double lv = levels[flat[k]];
                    if (lv < m) m = lv;
                }
            }
            blm[b] = m;
            bundle_min[b] = caps[b] < m ? caps[b] : m;
        }
        /* a link freezes when no unfixed bundle on it bottlenecks lower */
        for (int64_t l = 0; l < n_links; l++) link_min[l] = INFINITY;
        for (int64_t b = 0; b < n_b; b++) {
            if (!notfixed[b]) continue;
            ROW(b, s, e)
            for (int64_t k = s; k < e; k++)
                if (bundle_min[b] < link_min[flat[k]])
                    link_min[flat[k]] = bundle_min[b];
        }
        int64_t n_new = 0;
        for (int64_t b = 0; b < n_b; b++) {
            if (!notfixed[b]) continue;
            int fix = caps[b] <= blm[b] * (1.0 + 1e-12);
            if (!fix) {
                ROW(b, s, e)
                for (int64_t k = s; k < e; k++) {
                    int64_t l = flat[k];
                    if (link_min[l] >= levels[l] * (1.0 - 1e-12)) {
                        fix = 1;
                        break;
                    }
                }
            }
            if (fix) {
                rates[b] = bundle_min[b];
                notfixed[b] = 2;        /* subtract pass below */
                n_new++;
            }
        }
        if (n_new == 0) break;          /* degenerate: all levels inf */
        for (int64_t b = 0; b < n_b; b++) {
            if (notfixed[b] == 2) {
                notfixed[b] = 0;
                ROW(b, s, e)
                for (int64_t k = s; k < e; k++)
                    residual[flat[k]] -= rates[b] * mult[b];
            }
        }
        for (int64_t l = 0; l < n_links; l++)
            if (residual[l] < 0.0) residual[l] = 0.0;
        n_unfixed -= n_new;
    }
    for (int64_t b = 0; b < n_b; b++)
        if (notfixed[b]) rates[b] = caps[b];   /* safety net: cap-limited */
#undef ROW
}

/* Returns 0 on success, non-zero when the scratch allocation failed —
 * the caller then falls back to the numpy implementation. */
int repro_waterfill(int64_t n_b, int64_t n_links,
                    const int64_t *flat, const int64_t *ptr,
                    int64_t route_len,
                    const double *mult, const double *caps,
                    const double *capacities,
                    double *rates)
{
    double *scratch = malloc((size_t)(4 * n_links + 2 * n_b) * sizeof(double)
                             + (size_t)n_b);
    if (!scratch)
        return 1;
    waterfill_core(n_b, n_links, flat, ptr, route_len,
                   mult, caps, capacities, rates, scratch);
    free(scratch);
    return 0;
}

/* Component descriptor for the batched solve / sweep entry points.
 *
 * One component is 16 int64 slots: sizes and raw array addresses the
 * Python side caches between structural changes (the "packed arena" —
 * any bundle-diff mutation invalidates it):
 *
 *   [0] n_b          bundle rows               [8]  rates*      (n_b)
 *   [1] n_links      local link count          [9]  n_flows
 *   [2] flat*        CSR link incidence        [10] flow_row*   (int64)
 *   [3] ptr*         CSR offsets (0 if [4])    [11] flow_fid*   (int64)
 *   [4] route_len    uniform route length      [12] flow_rates* (double)
 *   [5] mult*        multiplicities (double)   [13] proj*       (double)
 *   [6] caps*        per-flow rate caps        [14] reserved
 *   [7] capacities*  link capacity slice       [15] reserved
 */
#define RPRO_DESC_SLOTS 16

/* Solve n_comps components in one crossing: waterfill each, gather the
 * per-flow rates, project completion times (t_now + remaining/rate,
 * the numpy expression verbatim) and write each component's earliest
 * projection to next_out (NaN-propagating like np.min, INFINITY when
 * the component has no flow slots).  Output slices are disjoint per
 * component, so concurrent calls over disjoint descriptor ranges are
 * race-free.  Returns 0, or non-zero when scratch allocation failed
 * (the caller falls back to per-component solves).
 */
int repro_waterfill_batch(int64_t n_comps, const int64_t *desc,
                          double t_now, const double *remaining,
                          double *next_out)
{
    int64_t max_links = 1, max_b = 1;
    for (int64_t c = 0; c < n_comps; c++) {
        const int64_t *d = desc + c * RPRO_DESC_SLOTS;
        if (d[0] > max_b) max_b = d[0];
        if (d[1] > max_links) max_links = d[1];
    }
    double *scratch = malloc(
        (size_t)(4 * max_links + 2 * max_b) * sizeof(double)
        + (size_t)max_b);
    if (!scratch)
        return 1;
    for (int64_t c = 0; c < n_comps; c++) {
        const int64_t *d = desc + c * RPRO_DESC_SLOTS;
        double *rates = (double *)d[8];
        waterfill_core(d[0], d[1],
                       (const int64_t *)d[2], (const int64_t *)d[3], d[4],
                       (const double *)d[5], (const double *)d[6],
                       (const double *)d[7], rates, scratch);
        int64_t n_f = d[9];
        const int64_t *frow = (const int64_t *)d[10];
        const int64_t *ffid = (const int64_t *)d[11];
        double *frate = (double *)d[12];
        double *proj = (double *)d[13];
        double m = INFINITY;
        int has_nan = 0;
        for (int64_t i = 0; i < n_f; i++) {
            double r = rates[frow[i]];
            frate[i] = r;
            double p = t_now + remaining[ffid[i]] / r;
            proj[i] = p;
            if (isnan(p)) has_nan = 1;
            else if (p < m) m = p;
        }
        next_out[c] = has_nan ? NAN : (n_f > 0 ? m : INFINITY);
    }
    free(scratch);
    return 0;
}

/* The completion sweep of one component, mirroring the numpy block of
 * _ComponentRegistry.sweep slot-for-slot: materialise the flows by dt
 * (guarded dt > 0), detect completions against the freshly
 * materialised remaining (the numpy order: subtract, then compare),
 * and either
 *
 *   - no completion: reproject every slot from the materialised
 *     remaining and write the new earliest projection (NaN-propagating
 *     min; INFINITY when no flow slots) — the spurious wake-up path —
 *     returning 0, or
 *   - n > 0 completions: for each completing slot in flow-slot order,
 *     decrement its row multiplicity, mark the flow done
 *     (remaining = inf), zero its cached rate, clear its projection,
 *     and append (fid, row) to finished/rows_out; returns n.
 *
 * Each fid occupies at most one live slot per component, so the
 * in-place remaining update cannot affect another slot's completion
 * test within the loop — the single pass is exactly the numpy
 * two-phase select-then-mutate.
 */
int64_t repro_sweep_comp(const int64_t *d, double dt, double t_now,
                         const double *done_threshold, double *remaining,
                         int64_t *finished, int64_t *rows_out,
                         double *next_out)
{
    int64_t n_f = d[9];
    const int64_t *frow = (const int64_t *)d[10];
    const int64_t *ffid = (const int64_t *)d[11];
    double *frate = (double *)d[12];
    double *proj = (double *)d[13];
    double *mult = (double *)d[5];

    if (dt > 0.0)
        for (int64_t i = 0; i < n_f; i++)
            remaining[ffid[i]] -= frate[i] * dt;

    int64_t n_done = 0;
    for (int64_t i = 0; i < n_f; i++) {
        int64_t fid = ffid[i];
        if (remaining[fid] <= done_threshold[fid]) {
            mult[frow[i]] -= 1.0;
            remaining[fid] = INFINITY;     /* dead-slot marker */
            frate[i] = 0.0;
            proj[i] = INFINITY;
            finished[n_done] = fid;
            rows_out[n_done] = frow[i];
            n_done++;
        }
    }
    if (n_done == 0) {
        double m = INFINITY;
        int has_nan = 0;
        for (int64_t i = 0; i < n_f; i++) {
            double p = t_now + remaining[ffid[i]] / frate[i];
            proj[i] = p;
            if (isnan(p)) has_nan = 1;
            else if (p < m) m = p;
        }
        *next_out = has_nan ? NAN : (n_f > 0 ? m : INFINITY);
    }
    return n_done;
}

/* Per-flow progressive filling with the rate-cap branch.
 *
 * Mirrors repro.network.maxmin.maxmin_rates_indexed round-for-round:
 * the same first-minimum argmin over link levels and unfixed caps, the
 * same cap-branch tolerance (cap_level < link_level - 1e-12) with *no*
 * residual clamp, and the same flow-major entry order for the
 * bottleneck-link subtraction followed by one clamp per round — so the
 * rates are bitwise identical to the numpy path.
 *
 * residual is caller-owned scratch (a private copy of the capacities)
 * and is freely mutated.  Flows with an empty route must already be
 * fixed at their cap by the caller (rates pre-filled); their
 * offsets[i+1] == offsets[i], which is how they are recognised here.
 *
 * Returns 0 on success, non-zero when scratch allocation failed — the
 * caller then falls back to the numpy implementation.
 */
int repro_maxmin_indexed(int64_t n, int64_t n_links,
                         const int64_t *flat, const int64_t *offsets,
                         const double *caps,
                         double *residual,
                         double *rates)
{
    void *scratch = malloc((size_t)n_links * sizeof(double) + (size_t)n);
    if (!scratch)
        return 1;
    double *counts = scratch;
    unsigned char *unfixed = (unsigned char *)(counts + n_links);

    int64_t n_unfixed = 0;
    for (int64_t i = 0; i < n; i++) {
        if (offsets[i + 1] == offsets[i]) {
            rates[i] = caps[i];
            unfixed[i] = 0;
        } else {
            rates[i] = 0.0;
            unfixed[i] = 1;
            n_unfixed++;
        }
    }

    while (n_unfixed > 0) {
        for (int64_t l = 0; l < n_links; l++) counts[l] = 0.0;
        for (int64_t i = 0; i < n; i++) {
            if (!unfixed[i]) continue;
            for (int64_t k = offsets[i]; k < offsets[i + 1]; k++)
                counts[flat[k]] += 1.0;
        }
        /* first-minimum link level, exactly np.argmin over the levels */
        int64_t link_idx = 0;
        double link_level = INFINITY;
        for (int64_t l = 0; l < n_links; l++) {
            double lv = counts[l] > 0.0 ? residual[l] / counts[l]
                                        : INFINITY;
            if (lv < link_level) {
                link_level = lv;
                link_idx = l;
            }
        }
        /* first-minimum unfixed rate cap */
        int64_t cap_idx = -1;
        double cap_level = INFINITY;
        for (int64_t i = 0; i < n; i++) {
            if (unfixed[i] && caps[i] < cap_level) {
                cap_level = caps[i];
                cap_idx = i;
            }
        }

        if (cap_level < link_level - 1e-12) {
            rates[cap_idx] = cap_level;
            unfixed[cap_idx] = 0;
            /* numpy's cap branch subtracts without clamping */
            for (int64_t k = offsets[cap_idx]; k < offsets[cap_idx + 1];
                 k++)
                residual[flat[k]] -= cap_level;
            n_unfixed--;
            continue;
        }

        if (!isfinite(link_level)) {       /* degenerate: unbounded */
            for (int64_t i = 0; i < n; i++)
                if (unfixed[i]) rates[i] = INFINITY;
            break;
        }

        /* fix every unfixed flow crossing the bottleneck link, then
         * subtract in flow-major entry order (np.subtract.at on the
         * isin selection), then clamp once */
        int64_t n_new = 0;
        for (int64_t i = 0; i < n; i++) {
            if (!unfixed[i]) continue;
            for (int64_t k = offsets[i]; k < offsets[i + 1]; k++) {
                if (flat[k] == link_idx) {
                    rates[i] = link_level;
                    unfixed[i] = 2;        /* subtract pass below */
                    n_new++;
                    break;
                }
            }
        }
        for (int64_t i = 0; i < n; i++) {
            if (unfixed[i] == 2) {
                unfixed[i] = 0;
                for (int64_t k = offsets[i]; k < offsets[i + 1]; k++)
                    residual[flat[k]] -= link_level;
            }
        }
        for (int64_t l = 0; l < n_links; l++)
            if (residual[l] < 0.0) residual[l] = 0.0;
        n_unfixed -= n_new;
    }
    free(scratch);
    return 0;
}

/* Masked redistribution statistics for the batched candidate pricing.
 *
 * One pass over the communication-matrix triples of one (bytes, p, q)
 * arena, mapped onto concrete processor sets: entries whose sender and
 * receiver land on the same node are self-communications and skipped
 * (paper par. II-A, they are free).  Produces per-sender-rank and
 * per-receiver-rank byte sums, the total crossing bytes and the largest
 * single amount — everything the flat-topology bottleneck formula
 * needs.
 *
 * Accumulation runs in entry order, matching both the scalar
 * FlowSpec-style loop of bottleneck_time_estimate_mapped and the
 * numpy np.bincount path (bincount adds sequentially in input order),
 * so all three produce bitwise-identical sums.  row_out / col_out are
 * caller-zeroed; stats receives [total, amt_max, n_flows].
 */
void repro_price_masked(int64_t n,
                        const int64_t *ii, const int64_t *jj,
                        const double *amt,
                        const int64_t *src, const int64_t *dst,
                        double *row_out, double *col_out,
                        double *stats)
{
    double total = 0.0, amax = 0.0;
    int64_t flows = 0;
    for (int64_t k = 0; k < n; k++) {
        if (src[ii[k]] == dst[jj[k]])
            continue;
        double a = amt[k];
        row_out[ii[k]] += a;
        col_out[jj[k]] += a;
        total += a;
        if (a > amax)
            amax = a;
        flows++;
    }
    stats[0] = total;
    stats[1] = amax;
    stats[2] = (double)flows;
}
"""


def _cache_dir() -> Path:
    base = os.environ.get("XDG_CACHE_HOME")
    if base:
        return Path(base) / "repro-kernels"
    home = Path.home()
    if os.access(home, os.W_OK):
        return home / ".cache" / "repro-kernels"
    return Path(tempfile.gettempdir()) / "repro-kernels"


_LIB_UNSET = object()
_LIB = _LIB_UNSET       # memoised CDLL (or None when unavailable)


def _load_lib():
    """Compile (once, content-addressed) and load the kernel library.

    The shared object holds every kernel entry point; individual loaders
    bind their function from it.  Returns the ``ctypes.CDLL`` or ``None``
    when compilation is unavailable; the reason lands in
    :data:`kernel_status`.  The env-var kill switch is checked on every
    call (not memoised) so tests can toggle it.
    """
    global kernel_status, _LIB
    if os.environ.get("REPRO_NO_C_KERNEL"):
        kernel_status = "disabled by REPRO_NO_C_KERNEL"
        return None
    if _LIB is not _LIB_UNSET:
        return _LIB
    try:
        cc = (shutil.which("cc") or shutil.which("gcc")
              or shutil.which("clang"))
        if cc is None:
            kernel_status = "no C compiler found"
            _LIB = None
            return None
        tag = hashlib.sha256(
            (_C_SOURCE + " ".join(_CFLAGS)).encode()).hexdigest()[:16]
        cache = _cache_dir()
        so_path = cache / f"waterfill-{tag}.so"
        if not so_path.exists():
            cache.mkdir(parents=True, exist_ok=True)
            src = cache / f"waterfill-{tag}.c"
            src.write_text(_C_SOURCE)
            # compile to a unique temp name, then atomically publish —
            # concurrent processes (pool workers) race safely
            tmp = cache / f".waterfill-{tag}.{os.getpid()}.so"
            result = subprocess.run(
                [cc, *_CFLAGS, "-o", str(tmp), str(src)],
                capture_output=True, text=True, timeout=120)
            if result.returncode != 0:
                kernel_status = f"compile failed: {result.stderr[:500]}"
                tmp.unlink(missing_ok=True)
                _LIB = None
                return None
            os.replace(tmp, so_path)
        _LIB = ctypes.CDLL(str(so_path))
        kernel_status = f"loaded ({so_path})"
        return _LIB
    except Exception as exc:  # pragma: no cover - environment-specific
        kernel_status = f"unavailable: {exc!r}"
        _LIB = None
        return None


def load_kernel():
    """Bind the bundled waterfilling kernel, or ``None`` (numpy path)."""
    lib = _load_lib()
    if lib is None:
        return None
    fn = lib.repro_waterfill
    i64, vp = ctypes.c_int64, ctypes.c_void_p
    # pointer slots take raw addresses (ndarray.ctypes.data) — far
    # cheaper per call than constructing POINTER objects
    fn.argtypes = [i64, i64, vp, vp, i64, vp, vp, vp, vp]
    fn.restype = ctypes.c_int
    return fn


def load_indexed_kernel():
    """Bind the per-flow indexed solver kernel, or ``None`` (numpy path)."""
    lib = _load_lib()
    if lib is None:
        return None
    fn = lib.repro_maxmin_indexed
    i64, vp = ctypes.c_int64, ctypes.c_void_p
    fn.argtypes = [i64, i64, vp, vp, vp, vp, vp]
    fn.restype = ctypes.c_int
    return fn


def load_pricing_kernel():
    """Bind the masked pricing-statistics kernel, or ``None`` (numpy path)."""
    lib = _load_lib()
    if lib is None:
        return None
    fn = lib.repro_price_masked
    i64, vp = ctypes.c_int64, ctypes.c_void_p
    fn.argtypes = [i64, vp, vp, vp, vp, vp, vp, vp, vp]
    fn.restype = None
    return fn


def load_batch_kernel():
    """Bind the batched multi-component solver kernel, or ``None``.

    Signature: ``(n_comps, desc_addr, t_now, remaining_addr,
    next_out_addr)`` where ``desc_addr`` points at ``n_comps``
    16-slot int64 component descriptors (see the C source).  Disjoint
    descriptor ranges may be solved concurrently: ctypes releases the
    GIL around the call and every output slice is component-private.
    """
    lib = _load_lib()
    if lib is None:
        return None
    fn = lib.repro_waterfill_batch
    i64, vp = ctypes.c_int64, ctypes.c_void_p
    fn.argtypes = [i64, vp, ctypes.c_double, vp, vp]
    fn.restype = ctypes.c_int
    return fn


def load_sweep_kernel():
    """Bind the per-component completion-sweep kernel, or ``None``.

    Signature: ``(desc_addr, dt, t_now, done_threshold_addr,
    remaining_addr, finished_addr, rows_out_addr, next_out_addr)``;
    returns the number of completed flows (0 = spurious wake-up, with
    the new earliest projection written to ``next_out``).
    """
    lib = _load_lib()
    if lib is None:
        return None
    fn = lib.repro_sweep_comp
    i64, vp = ctypes.c_int64, ctypes.c_void_p
    fn.argtypes = [vp, ctypes.c_double, ctypes.c_double, vp, vp, vp, vp, vp]
    fn.restype = i64
    return fn


def warm() -> dict:
    """Precompile and bind every kernel (CI / install warm-up hook).

    Compiling is content-addressed, so a warm cache directory makes every
    later ``load_*`` call a pure dlopen — cold ``repro serve`` starts no
    longer pay compile-at-first-use.  Returns a status mapping.
    """
    return {
        "waterfill": load_kernel() is not None,
        "maxmin_indexed": load_indexed_kernel() is not None,
        "price_masked": load_pricing_kernel() is not None,
        "waterfill_batch": load_batch_kernel() is not None,
        "sweep_comp": load_sweep_kernel() is not None,
        "status": kernel_status,
    }
