"""Flow-level network model: Max-Min fair bandwidth sharing (paper §II-B, §IV-A)."""

from repro.network.maxmin import maxmin_rates
from repro.network.flows import FlowSpec, bottleneck_time_estimate

__all__ = ["maxmin_rates", "FlowSpec", "bottleneck_time_estimate"]
