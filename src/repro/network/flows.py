"""Flow descriptions and the contention-free time estimate used by schedulers.

Scheduling algorithms must price a redistribution *before* it happens and
without knowledge of concurrent traffic — exactly the situation discussed in
§IV-D ("the estimations of the redistribution time made in the time-cost
version do not take network contention into account").  The estimator here
considers the redistribution's own flows *in isolation* and charges its
bottleneck link:

    ``t ≈ max_link (bytes through link / capacity) + max route latency``

which is the completion time of the redistribution alone under fluid
Max-Min sharing when one link dominates, and a lower bound otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.platforms.cluster import Cluster

__all__ = ["FlowSpec", "bottleneck_time_estimate"]


@dataclass(frozen=True)
class FlowSpec:
    """A point-to-point transfer of ``data_bytes`` from ``src`` to ``dst``."""

    src: int
    dst: int
    data_bytes: float

    def __post_init__(self) -> None:
        if self.data_bytes < 0:
            raise ValueError("data_bytes must be >= 0")


def bottleneck_time_estimate(flows: list[FlowSpec], cluster: Cluster) -> float:
    """Contention-free estimate of the completion time of a flow set.

    Self-communications (``src == dst``) are free.  Per-flow TCP rate caps
    are honoured: a flow can never finish faster than
    ``bytes / rate_cap``, so the estimate is the max of the link bottleneck
    and the slowest individual flow.
    """
    topo = cluster.topology
    link_bytes: dict[tuple[str, int], float] = {}
    max_latency = 0.0
    slowest_flow = 0.0
    for f in flows:
        if f.src == f.dst or f.data_bytes == 0:
            continue
        route = topo.route(f.src, f.dst)
        max_latency = max(max_latency, route.latency_s)
        if route.rate_cap_Bps > 0:
            slowest_flow = max(slowest_flow, f.data_bytes / route.rate_cap_Bps)
        for link in route.links:
            link_bytes[link] = link_bytes.get(link, 0.0) + f.data_bytes
    if not link_bytes:
        return 0.0
    bottleneck = max(
        bytes_ / topo.link_capacity(link) for link, bytes_ in link_bytes.items()
    )
    return max(bottleneck, slowest_flow) + max_latency
