"""Flow descriptions and the contention-free time estimate used by schedulers.

Scheduling algorithms must price a redistribution *before* it happens and
without knowledge of concurrent traffic — exactly the situation discussed in
§IV-D ("the estimations of the redistribution time made in the time-cost
version do not take network contention into account").  The estimator here
considers the redistribution's own flows *in isolation* and charges its
bottleneck link:

    ``t ≈ max_link (bytes through link / capacity) + max route latency``

which is the completion time of the redistribution alone under fluid
Max-Min sharing when one link dominates, and a lower bound otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.platforms.cluster import Cluster

__all__ = ["FlowSpec", "bottleneck_time_estimate",
           "bottleneck_time_estimate_mapped"]


@dataclass(frozen=True)
class FlowSpec:
    """A point-to-point transfer of ``data_bytes`` from ``src`` to ``dst``."""

    src: int
    dst: int
    data_bytes: float

    def __post_init__(self) -> None:
        if self.data_bytes < 0:
            raise ValueError("data_bytes must be >= 0")


def bottleneck_time_estimate(flows: list[FlowSpec], cluster: Cluster) -> float:
    """Contention-free estimate of the completion time of a flow set.

    Self-communications (``src == dst``) are free.  Per-flow TCP rate caps
    are honoured: a flow can never finish faster than
    ``bytes / rate_cap``, so the estimate is the max of the link bottleneck
    and the slowest individual flow.

    This is a thin wrapper over :func:`bottleneck_time_estimate_mapped`,
    which the schedulers' pricing layer calls directly with the memoised
    communication-matrix triples (no :class:`FlowSpec` objects on the hot
    path).
    """
    return bottleneck_time_estimate_mapped(
        None, None, [(f.src, f.dst, f.data_bytes) for f in flows], cluster)


def bottleneck_time_estimate_mapped(
    src_procs: Sequence[int] | None,
    dst_procs: Sequence[int] | None,
    entries: Sequence[tuple[int, int, float]],
    cluster: Cluster,
) -> float:
    """:func:`bottleneck_time_estimate` over ``(i, j, amount)`` triples.

    ``entries`` are communication-matrix triples
    (:func:`repro.redistribution.matrix._comm_matrix_entries`); ``i`` /
    ``j`` index ``src_procs`` / ``dst_procs``, or are concrete node ids
    when the sequences are ``None``.  This runs once per distinct
    (processor sets, bytes) key of every mapping probe, so the per-flow
    work is one fused ``pair_summary`` cache hit (integer link indices,
    latency, cap) plus integer-keyed accumulation; per-link byte sums
    accumulate in flow order, exactly as the original FlowSpec loop did,
    so the estimates are unchanged to the last bit.
    """
    topo = cluster.topology
    pair_summary = topo.pair_summary
    link_bytes: dict[int, float] = {}
    get = link_bytes.get
    max_latency = 0.0
    slowest_flow = 0.0
    for i, j, data in entries:
        src = src_procs[i] if src_procs is not None else i
        dst = dst_procs[j] if dst_procs is not None else j
        if src == dst or data == 0:
            continue
        indices, latency, cap = pair_summary(src, dst)
        if latency > max_latency:
            max_latency = latency
        if cap > 0:
            v = data / cap
            if v > slowest_flow:
                slowest_flow = v
        for li in indices:
            link_bytes[li] = get(li, 0.0) + data
    if not link_bytes:
        return 0.0
    capacities = topo.capacity_list
    bottleneck = max(
        bytes_ / capacities[li] for li, bytes_ in link_bytes.items()
    )
    return max(bottleneck, slowest_flow) + max_latency
