"""Max-Min fair bandwidth allocation by progressive filling.

SimGrid models the sharing of network resources among concurrent flows with
Max-Min fairness (§IV-A): rates are raised together until a link saturates;
flows bottlenecked there are frozen at the link's fair share and the process
repeats on the residual network.  Flows may additionally carry an individual
rate cap (the empirical TCP bound ``Wmax / RTT``), honoured by treating the
cap as a private one-flow link.

The solver is exact for the fluid model and runs in
``O(#links · #flows)`` worst case, fast enough to be re-invoked at every
simulation event.

Flow bundling
-------------
Flows sharing the same (route, rate cap) are *interchangeable* under
Max-Min fairness: the optimum is unique and symmetric in such flows, so
they all receive the same rate and freeze together.  A redistribution
between two processor sets spawns ``O(p + q)`` flows but only as many
*distinct* routes as (src, dst) node pairs, so :func:`waterfill_bundled`
solves the progressive filling over unique route bundles carrying a
multiplicity, and callers broadcast the per-bundle rate back to the flows.
This collapses the per-solve cost from ``O(incidence entries)`` to
``O(bundles)`` — the hot-path win the fluid simulator relies on.

Component decomposition
-----------------------
The Max-Min optimum decomposes exactly over *link-connected components*
of the bundle set: two bundles sharing no link (directly or transitively)
never influence each other's rate, so each component can be solved in
isolation.  :func:`bundle_components` labels the components and
:func:`waterfill_bundled_by_component` solves them one by one — the
entry point behind the fluid simulator's lazy per-component maintenance,
which re-solves only the component an event touched.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

import numpy as np

__all__ = [
    "maxmin_rates",
    "maxmin_rates_indexed",
    "maxmin_rates_bundled",
    "waterfill_bundled",
    "bundle_components",
    "waterfill_bundled_by_component",
]

_EPS = 1e-12


def maxmin_rates(
    routes: Sequence[Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
    rate_caps: Sequence[float] | None = None,
) -> list[float]:
    """Compute the Max-Min fair rate of each flow.

    Parameters
    ----------
    routes:
        One sequence of link identifiers per flow.  A flow with an empty
        route (local communication) is only limited by its rate cap.
    capacities:
        Capacity of every link appearing in the routes.
    rate_caps:
        Optional per-flow rate bounds (``inf`` when absent).

    Returns
    -------
    list of per-flow rates; rates satisfy every capacity constraint and are
    Max-Min optimal (no flow's rate can grow without shrinking the rate of a
    flow with an equal-or-smaller rate).
    """
    n = len(routes)
    if rate_caps is None:
        rate_caps = [float("inf")] * n
    if len(rate_caps) != n:
        raise ValueError("rate_caps length must match routes length")

    rates: list[float] = [0.0] * n
    fixed = [False] * n

    # residual capacity and active flow count per link
    residual: dict[Hashable, float] = {}
    active_on: dict[Hashable, list[int]] = {}
    for i, route in enumerate(routes):
        for link in route:
            if link not in residual:
                if link not in capacities:
                    raise KeyError(f"no capacity for link {link!r}")
                residual[link] = float(capacities[link])
                active_on[link] = []
            active_on[link].append(i)

    unfixed = set(range(n))
    while unfixed:
        # candidate bottleneck level: min over links of residual / #active,
        # and min rate cap among unfixed flows
        best_level = float("inf")
        bottleneck_link: Hashable | None = None
        for link, flows_on in active_on.items():
            count = sum(1 for i in flows_on if not fixed[i])
            if count == 0:
                continue
            level = residual[link] / count
            if level < best_level - _EPS:
                best_level = level
                bottleneck_link = link

        cap_flow = None
        for i in unfixed:
            if rate_caps[i] < best_level - _EPS:
                best_level = rate_caps[i]
                cap_flow = i

        if best_level == float("inf"):
            # remaining flows are uncapped and cross no links: unbounded in
            # the fluid model; callers treat them as instantaneous.
            for i in unfixed:
                rates[i] = float("inf")
            break

        if cap_flow is not None:
            to_fix = [cap_flow]
            level = rate_caps[cap_flow]
        else:
            assert bottleneck_link is not None
            to_fix = [i for i in active_on[bottleneck_link] if not fixed[i]]
            level = best_level

        for i in to_fix:
            rates[i] = level
            fixed[i] = True
            unfixed.discard(i)
            for link in routes[i]:
                residual[link] = max(0.0, residual[link] - level)

    return rates


def maxmin_rates_indexed(
    flow_links: Sequence[Sequence[int]],
    capacities: np.ndarray,
    rate_caps: np.ndarray | None = None,
) -> np.ndarray:
    """Vectorised Max-Min solver over integer-indexed links.

    Same semantics as :func:`maxmin_rates` but links are integers indexing
    ``capacities`` (see :attr:`repro.platforms.topology.Topology.link_index`),
    which lets the inner progressive-filling iterations run in numpy.  This
    is the hot path of the fluid simulator, re-invoked at every event.
    """
    n = len(flow_links)
    n_links = len(capacities)
    rates = np.zeros(n)
    if n == 0:
        return rates
    fixed = np.zeros(n, dtype=bool)
    residual = np.asarray(capacities, dtype=float).copy()
    caps = (np.full(n, np.inf) if rate_caps is None
            else np.asarray(rate_caps, dtype=float))

    # flatten routes once: flat link ids + per-flow offsets
    lengths = np.array([len(r) for r in flow_links], dtype=np.intp)
    flat = np.fromiter(
        (l for r in flow_links for l in r),
        dtype=np.intp,
        count=int(lengths.sum()),
    )
    flow_of = np.repeat(np.arange(n, dtype=np.intp), lengths)
    # CSR offsets: flow i's links live in flat[offsets[i]:offsets[i + 1]]
    offsets = np.zeros(n + 1, dtype=np.intp)
    np.cumsum(lengths, out=offsets[1:])

    # flows with no links are only cap-limited
    no_link = lengths == 0
    rates[no_link] = caps[no_link]
    fixed[no_link] = True

    kernel = _indexed_kernel()
    if (kernel is not None and flat.flags.c_contiguous
            and caps.dtype == np.float64 and caps.flags.c_contiguous):
        # residual is this function's private contiguous float64 copy,
        # so the kernel may mutate it freely; the C loop replays the
        # numpy rounds below op-for-op (bitwise identical results)
        rc = kernel(n, n_links, flat.ctypes.data, offsets.ctypes.data,
                    caps.ctypes.data, residual.ctypes.data,
                    rates.ctypes.data)
        if rc == 0:
            return rates
        # in-kernel scratch allocation failed: run the numpy rounds

    while not fixed.all():
        active_entry = ~fixed[flow_of]
        counts = np.bincount(flat[active_entry], minlength=n_links)
        with np.errstate(divide="ignore", invalid="ignore"):
            levels = np.where(counts > 0, residual / np.maximum(counts, 1),
                              np.inf)
        link_idx = int(np.argmin(levels))
        link_level = float(levels[link_idx])

        unfixed_caps = np.where(fixed, np.inf, caps)
        cap_idx = int(np.argmin(unfixed_caps))
        cap_level = float(unfixed_caps[cap_idx])

        if cap_level < link_level - _EPS:
            rates[cap_idx] = cap_level
            fixed[cap_idx] = True
            np.subtract.at(residual, flat[offsets[cap_idx]:offsets[cap_idx + 1]],
                           cap_level)
            continue

        if not np.isfinite(link_level):  # pragma: no cover - degenerate
            rates[~fixed] = np.inf
            break

        on_link = np.unique(flow_of[(flat == link_idx) & active_entry])
        rates[on_link] = link_level
        fixed[on_link] = True
        sel = np.isin(flow_of, on_link)
        np.subtract.at(residual, flat[sel], link_level)
        np.maximum(residual, 0.0, out=residual)

    return rates


_KERNEL_UNSET = object()
_C_KERNEL = _KERNEL_UNSET   # lazily resolved on the first bundled solve
_INDEXED_KERNEL = _KERNEL_UNSET  # lazily resolved on the first indexed solve


def _kernel():
    """The compiled waterfilling kernel, or ``None`` (numpy fallback)."""
    global _C_KERNEL
    if _C_KERNEL is _KERNEL_UNSET:
        from repro.network._ckernel import load_kernel

        _C_KERNEL = load_kernel()
    return _C_KERNEL


def _indexed_kernel():
    """The compiled per-flow indexed kernel, or ``None`` (numpy fallback)."""
    global _INDEXED_KERNEL
    if _INDEXED_KERNEL is _KERNEL_UNSET:
        from repro.network._ckernel import load_indexed_kernel

        _INDEXED_KERNEL = load_indexed_kernel()
    return _INDEXED_KERNEL


def waterfill_bundled(
    bundle_links_flat: np.ndarray,
    bundle_ptr: np.ndarray,
    multiplicity: np.ndarray,
    capacities: np.ndarray,
    rate_caps: np.ndarray,
    *,
    route_len: int | None = None,
) -> np.ndarray:
    """Waterfilling over *bundles* of interchangeable flows.

    A bundle groups ``multiplicity[b]`` flows that share the same route and
    the same per-flow rate cap; Max-Min fairness gives every one of them
    the same rate, so the progressive filling can run over bundles with the
    link fair-share counts weighted by multiplicity.

    Each round freezes every *locally bottlenecked* link — a link whose
    fair-share level is minimal among the links crossed by each of its
    unfixed bundles (Bertsekas–Gallager bottleneck iteration).  Freezing
    such a link at its level is exact: none of its bundles can be granted
    more anywhere else, and levels only rise as bundles leave the residual
    network.  This converges in a handful of rounds where one-bottleneck-
    at-a-time progressive filling needs tens.

    Parameters
    ----------
    bundle_links_flat, bundle_ptr:
        CSR incidence: bundle ``b`` crosses the integer link indices
        ``bundle_links_flat[bundle_ptr[b]:bundle_ptr[b + 1]]``.  A bundle
        with an empty route is only limited by its cap.
    multiplicity:
        Number of flows in each bundle (``>= 1``).
    capacities:
        Per-link capacities (indexed by the link ids in the incidence).
    rate_caps:
        Per-flow rate cap of each bundle (``inf`` when uncapped).
    route_len:
        Declare that *every* bundle crosses exactly ``route_len >= 1``
        links laid out contiguously in ``bundle_links_flat``
        (``bundle_ptr`` may then be ``None``) — the layout the fluid
        simulator's uniform-route components maintain incrementally.

    Returns
    -------
    Per-bundle, per-flow rate (each of the ``multiplicity[b]`` flows of
    bundle ``b`` receives ``rates[b]``).  Semantics match running
    :func:`maxmin_rates` over the expanded flow set.

    Notes
    -----
    When the optional compiled kernel is available
    (:mod:`repro.network._ckernel`) the solve runs in C with **bitwise
    identical** results; otherwise (including a failed in-kernel scratch
    allocation) the numpy rounds below run.
    """
    n_bundles = len(multiplicity)
    rates = np.zeros(n_bundles)
    if n_bundles == 0:
        return rates
    n_links = len(capacities)
    caps = np.asarray(rate_caps, dtype=float)

    kernel = _kernel()
    if kernel is not None:
        mult_f = (multiplicity if multiplicity.dtype == np.float64
                  else multiplicity.astype(float))
        if (bundle_links_flat.dtype == np.intp
                and mult_f.flags.c_contiguous
                and bundle_links_flat.flags.c_contiguous
                and caps.flags.c_contiguous
                and capacities.dtype == np.float64
                and capacities.flags.c_contiguous
                and (route_len
                     or (bundle_ptr is not None
                         and bundle_ptr.dtype == np.intp
                         and bundle_ptr.flags.c_contiguous))):
            rc = kernel(n_bundles, n_links,
                        bundle_links_flat.ctypes.data,
                        0 if route_len else bundle_ptr.ctypes.data,
                        route_len or 0,
                        mult_f.ctypes.data, caps.ctypes.data,
                        capacities.ctypes.data, rates.ctypes.data)
            if rc == 0:
                return rates
            # scratch allocation failed inside the kernel: fall through
            # to the numpy rounds rather than return degraded rates

    if route_len and bundle_ptr is None:
        bundle_ptr = np.arange(n_bundles + 1, dtype=np.intp) * route_len

    mult = multiplicity.astype(float)

    lens = np.diff(bundle_ptr)
    entry_bundle = np.repeat(np.arange(n_bundles, dtype=np.intp), lens)
    # route-less or population-less bundles never enter the filling;
    # the former are cap-limited, the latter carry no flows at all
    prefixed = (lens == 0) | (multiplicity == 0)

    n_unfixed = n_bundles
    if prefixed.any():
        rates[prefixed] = caps[prefixed]
        n_unfixed -= int(prefixed.sum())
        live0 = ~prefixed[entry_bundle]
        fl_live = bundle_links_flat[live0]
        eb_live = entry_bundle[live0]
    else:
        fl_live = bundle_links_flat
        eb_live = entry_bundle
    if len(fl_live) == 0:
        rates[~prefixed] = caps[~prefixed]
        return rates

    residual = np.asarray(capacities, dtype=float).copy()
    w_live = mult[eb_live]
    notfixed = ~prefixed
    levels = np.empty(n_links)
    blm = np.empty(n_bundles)
    link_min = np.empty(n_links)

    while n_unfixed > 0:
        counts = np.bincount(fl_live, weights=w_live, minlength=n_links)
        levels.fill(np.inf)
        np.divide(residual, counts, out=levels, where=counts > 0)

        # per-bundle bottleneck level: min over the bundle's links
        ent_lvl = levels[fl_live]
        blm.fill(np.inf)
        np.minimum.at(blm, eb_live, ent_lvl)
        bundle_min = np.minimum(blm, caps)

        # a link freezes when its level is minimal for every one of its
        # unfixed bundles (cap included: a lower cap defers the link);
        # idle links freeze vacuously and carry no live entries
        link_min.fill(np.inf)
        np.minimum.at(link_min, fl_live, bundle_min[eb_live])
        frozen_link = link_min >= levels * (1 - 1e-12)

        # bundles on a frozen link freeze at their bottleneck level; a
        # bundle capped at or below its bottleneck freezes at its cap
        # (blm is inf for fixed bundles, masked by notfixed)
        to_fix = caps <= blm * (1 + 1e-12)
        to_fix[eb_live[frozen_link[fl_live]]] = True
        to_fix &= notfixed
        n_new = int(to_fix.sum())
        if n_new == 0:  # pragma: no cover - degenerate (all-inf levels)
            break
        rates[to_fix] = bundle_min[to_fix]
        notfixed[to_fix] = False
        n_unfixed -= n_new

        # newly fixed bundles leave the residual network; their entries
        # are dropped so later rounds shrink
        keep = notfixed[eb_live]
        drop = ~keep
        np.subtract.at(residual, fl_live[drop],
                       rates[eb_live[drop]] * w_live[drop])
        np.maximum(residual, 0.0, out=residual)
        fl_live = fl_live[keep]
        eb_live = eb_live[keep]
        w_live = w_live[keep]

    # safety net: anything left over is cap-limited
    rates[notfixed] = caps[notfixed]
    return rates


def maxmin_rates_bundled(
    flow_links: Sequence[Sequence[int]],
    capacities: np.ndarray,
    rate_caps: np.ndarray | None = None,
) -> np.ndarray:
    """Max-Min rates via flow bundling — same semantics as
    :func:`maxmin_rates_indexed`.

    Flows with identical (route, rate cap) are grouped into one bundle,
    the waterfilling runs over bundles with multiplicities
    (:func:`waterfill_bundled`), and the per-bundle rate is broadcast back
    to every member flow.  On flow sets with many shared routes — a
    redistribution between large processor sets, a dense DAG's concurrent
    transfers — this is the fast path.
    """
    n = len(flow_links)
    if rate_caps is None:
        caps = np.full(n, np.inf)
    else:
        caps = np.asarray(rate_caps, dtype=float)
        if len(caps) != n:
            raise ValueError("rate_caps length must match flow_links length")
    if n == 0:
        return np.zeros(0)

    bundles: dict[tuple, int] = {}
    bundle_of = np.empty(n, dtype=np.intp)
    bundle_routes: list[Sequence[int]] = []
    bundle_caps: list[float] = []
    counts: list[int] = []
    for i, route in enumerate(flow_links):
        key = (tuple(route), float(caps[i]))
        b = bundles.get(key)
        if b is None:
            b = len(bundle_routes)
            bundles[key] = b
            bundle_routes.append(route)
            bundle_caps.append(float(caps[i]))
            counts.append(0)
        bundle_of[i] = b
        counts[b] += 1

    lengths = np.array([len(r) for r in bundle_routes], dtype=np.intp)
    ptr = np.zeros(len(bundle_routes) + 1, dtype=np.intp)
    np.cumsum(lengths, out=ptr[1:])
    flat = np.fromiter((l for r in bundle_routes for l in r),
                       dtype=np.intp, count=int(lengths.sum()))
    bundle_rates = waterfill_bundled(
        flat, ptr, np.array(counts, dtype=np.intp),
        np.asarray(capacities, dtype=float),
        np.array(bundle_caps, dtype=float))
    return bundle_rates[bundle_of]


# --------------------------------------------------------------------- #
# link-connected component decomposition
# --------------------------------------------------------------------- #
def dsu_find(parent: list[int], x: int) -> int:
    """Union-find root of ``x`` with path compression.

    ``parent`` is a plain parent list (``parent[r] == r`` marks a root);
    merging is ``parent[find(a)] = find(b)`` at the call site.  Shared by
    :func:`bundle_components` and the fluid simulator's component
    registry so the merge semantics live in one audited spot.
    """
    root = x
    while parent[root] != root:
        root = parent[root]
    while parent[x] != root:
        parent[x], x = root, parent[x]
    return root


def bundle_components(bundle_links_flat: np.ndarray,
                      bundle_ptr: np.ndarray) -> np.ndarray:
    """Label every bundle with its link-connected component.

    Two bundles belong to the same component when they share a link,
    directly or through a chain of other bundles.  The Max-Min optimum is
    separable over these components (no constraint couples them), which
    is what lets the fluid simulator re-solve only the component an event
    touched.  Bundles with an empty route are singleton components.

    Returns an ``intp`` array of component labels, numbered ``0..k-1`` in
    order of first appearance.
    """
    n_bundles = len(bundle_ptr) - 1
    parent = list(range(n_bundles))

    link_owner: dict[int, int] = {}
    for b in range(n_bundles):
        for li in bundle_links_flat[bundle_ptr[b]:bundle_ptr[b + 1]]:
            owner = link_owner.get(int(li))
            if owner is None:
                link_owner[int(li)] = b
            else:
                ra, rb = dsu_find(parent, owner), dsu_find(parent, b)
                if ra != rb:
                    parent[rb] = ra

    labels = np.empty(n_bundles, dtype=np.intp)
    seen: dict[int, int] = {}
    for b in range(n_bundles):
        root = dsu_find(parent, b)
        label = seen.get(root)
        if label is None:
            label = len(seen)
            seen[root] = label
        labels[b] = label
    return labels


def waterfill_bundled_by_component(
    bundle_links_flat: np.ndarray,
    bundle_ptr: np.ndarray,
    multiplicity: np.ndarray,
    capacities: np.ndarray,
    rate_caps: np.ndarray,
) -> np.ndarray:
    """Solve each link-connected component independently.

    Exactly equivalent to one global :func:`waterfill_bundled` call (the
    optimum is separable over components); useful when callers want the
    per-component structure — and the correctness anchor for the fluid
    simulator's lazy component-scoped maintenance.
    """
    n_bundles = len(multiplicity)
    rates = np.zeros(n_bundles)
    if n_bundles == 0:
        return rates
    caps = np.asarray(rate_caps, dtype=float)
    labels = bundle_components(bundle_links_flat, bundle_ptr)
    lens = np.diff(bundle_ptr)
    for c in range(int(labels.max()) + 1):
        sel = np.nonzero(labels == c)[0]
        sub_lens = lens[sel]
        sub_ptr = np.zeros(len(sel) + 1, dtype=np.intp)
        np.cumsum(sub_lens, out=sub_ptr[1:])
        sub_flat = np.concatenate(
            [bundle_links_flat[bundle_ptr[b]:bundle_ptr[b + 1]]
             for b in sel]) if sub_ptr[-1] else np.empty(0, dtype=np.intp)
        rates[sel] = waterfill_bundled(
            sub_flat, sub_ptr, multiplicity[sel], capacities, caps[sel])
    return rates
