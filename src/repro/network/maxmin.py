"""Max-Min fair bandwidth allocation by progressive filling.

SimGrid models the sharing of network resources among concurrent flows with
Max-Min fairness (§IV-A): rates are raised together until a link saturates;
flows bottlenecked there are frozen at the link's fair share and the process
repeats on the residual network.  Flows may additionally carry an individual
rate cap (the empirical TCP bound ``Wmax / RTT``), honoured by treating the
cap as a private one-flow link.

The solver is exact for the fluid model and runs in
``O(#links · #flows)`` worst case, fast enough to be re-invoked at every
simulation event.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

import numpy as np

__all__ = ["maxmin_rates", "maxmin_rates_indexed"]

_EPS = 1e-12


def maxmin_rates(
    routes: Sequence[Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
    rate_caps: Sequence[float] | None = None,
) -> list[float]:
    """Compute the Max-Min fair rate of each flow.

    Parameters
    ----------
    routes:
        One sequence of link identifiers per flow.  A flow with an empty
        route (local communication) is only limited by its rate cap.
    capacities:
        Capacity of every link appearing in the routes.
    rate_caps:
        Optional per-flow rate bounds (``inf`` when absent).

    Returns
    -------
    list of per-flow rates; rates satisfy every capacity constraint and are
    Max-Min optimal (no flow's rate can grow without shrinking the rate of a
    flow with an equal-or-smaller rate).
    """
    n = len(routes)
    if rate_caps is None:
        rate_caps = [float("inf")] * n
    if len(rate_caps) != n:
        raise ValueError("rate_caps length must match routes length")

    rates: list[float] = [0.0] * n
    fixed = [False] * n

    # residual capacity and active flow count per link
    residual: dict[Hashable, float] = {}
    active_on: dict[Hashable, list[int]] = {}
    for i, route in enumerate(routes):
        for link in route:
            if link not in residual:
                if link not in capacities:
                    raise KeyError(f"no capacity for link {link!r}")
                residual[link] = float(capacities[link])
                active_on[link] = []
            active_on[link].append(i)

    unfixed = set(range(n))
    while unfixed:
        # candidate bottleneck level: min over links of residual / #active,
        # and min rate cap among unfixed flows
        best_level = float("inf")
        bottleneck_link: Hashable | None = None
        for link, flows_on in active_on.items():
            count = sum(1 for i in flows_on if not fixed[i])
            if count == 0:
                continue
            level = residual[link] / count
            if level < best_level - _EPS:
                best_level = level
                bottleneck_link = link

        cap_flow = None
        for i in unfixed:
            if rate_caps[i] < best_level - _EPS:
                best_level = rate_caps[i]
                cap_flow = i

        if best_level == float("inf"):
            # remaining flows are uncapped and cross no links: unbounded in
            # the fluid model; callers treat them as instantaneous.
            for i in unfixed:
                rates[i] = float("inf")
            break

        if cap_flow is not None:
            to_fix = [cap_flow]
            level = rate_caps[cap_flow]
        else:
            assert bottleneck_link is not None
            to_fix = [i for i in active_on[bottleneck_link] if not fixed[i]]
            level = best_level

        for i in to_fix:
            rates[i] = level
            fixed[i] = True
            unfixed.discard(i)
            for link in routes[i]:
                residual[link] = max(0.0, residual[link] - level)

    return rates


def maxmin_rates_indexed(
    flow_links: Sequence[Sequence[int]],
    capacities: np.ndarray,
    rate_caps: np.ndarray | None = None,
) -> np.ndarray:
    """Vectorised Max-Min solver over integer-indexed links.

    Same semantics as :func:`maxmin_rates` but links are integers indexing
    ``capacities`` (see :attr:`repro.platforms.topology.Topology.link_index`),
    which lets the inner progressive-filling iterations run in numpy.  This
    is the hot path of the fluid simulator, re-invoked at every event.
    """
    n = len(flow_links)
    n_links = len(capacities)
    rates = np.zeros(n)
    if n == 0:
        return rates
    fixed = np.zeros(n, dtype=bool)
    residual = np.asarray(capacities, dtype=float).copy()
    caps = (np.full(n, np.inf) if rate_caps is None
            else np.asarray(rate_caps, dtype=float))

    # flatten routes once: flat link ids + per-flow offsets
    lengths = np.array([len(r) for r in flow_links], dtype=np.intp)
    flat = np.fromiter(
        (l for r in flow_links for l in r),
        dtype=np.intp,
        count=int(lengths.sum()),
    )
    flow_of = np.repeat(np.arange(n, dtype=np.intp), lengths)

    # flows with no links are only cap-limited
    no_link = lengths == 0
    rates[no_link] = caps[no_link]
    fixed[no_link] = True

    while not fixed.all():
        active_entry = ~fixed[flow_of]
        counts = np.bincount(flat[active_entry], minlength=n_links)
        with np.errstate(divide="ignore", invalid="ignore"):
            levels = np.where(counts > 0, residual / np.maximum(counts, 1),
                              np.inf)
        link_idx = int(np.argmin(levels))
        link_level = float(levels[link_idx])

        unfixed_caps = np.where(fixed, np.inf, caps)
        cap_idx = int(np.argmin(unfixed_caps))
        cap_level = float(unfixed_caps[cap_idx])

        if cap_level < link_level - _EPS:
            rates[cap_idx] = cap_level
            fixed[cap_idx] = True
            np.subtract.at(residual, flat[flow_of == cap_idx], cap_level)
            continue

        if not np.isfinite(link_level):  # pragma: no cover - degenerate
            rates[~fixed] = np.inf
            break

        on_link = np.unique(flow_of[(flat == link_idx) & active_entry])
        rates[on_link] = link_level
        fixed[on_link] = True
        sel = np.isin(flow_of, on_link)
        np.subtract.at(residual, flat[sel], link_level)
        np.maximum(residual, 0.0, out=residual)

    return rates
