"""repro — Redistribution Aware Two-Step Scheduling for Mixed-Parallel Applications.

A full reproduction of Hunold, Rauber & Suter, *"Redistribution Aware
Two-Step Scheduling for Mixed-Parallel Applications"* (IEEE Cluster 2008):

* the application model (DAGs of moldable Amdahl tasks, 1-D block
  redistribution) — :mod:`repro.dag`, :mod:`repro.model`,
  :mod:`repro.redistribution`;
* the platform model (Grid'5000 clusters, bounded multi-port network,
  Max-Min fair sharing) — :mod:`repro.platforms`, :mod:`repro.network`;
* the two-step baselines (CPA / MCPA / HCPA allocation + list-scheduling
  mapping) — :mod:`repro.scheduling`;
* the paper's contribution, RATS (delta and time-cost redistribution-aware
  mapping) — :mod:`repro.core`;
* the SimGrid-like fluid simulator used for evaluation —
  :mod:`repro.simulation`;
* the experiment harness regenerating every table and figure —
  :mod:`repro.experiments`;
* the open-system online mode (job streams, admission control, residual
  scheduling, live injection, per-job JCT/slowdown/SLO metrics) —
  :mod:`repro.online`, fronted by ``repro serve`` and
  ``repro replay-stream``.

Quickstart
----------
Declare a comparison with the fluent :class:`Experiment` builder — every
component (platform, DAG family, allocator, mapping strategy) is resolved
by name through the :mod:`repro.registry` registries:

>>> from repro import Experiment
>>> result = (Experiment()
...           .on("grillon")
...           .workload(family="strassen")
...           .compare("hcpa", "rats-delta", "rats-timecost")
...           .repeats(3)
...           .run())
>>> len(result)
9
>>> result.best_algorithm() in ("hcpa", "rats-delta", "rats-timecost")
True

Add ``.parallel(8)`` to execute the matrix on a persistent process pool,
``.store("results.jsonl")`` to make the campaign resumable (re-running
skips everything already computed), ``.stream()`` to consume results as
they finish, and ``python -m repro list`` to see every registered
component.  ``python -m repro run spec.toml --store results.jsonl``
drives the same engine from a declarative spec file.

Extending
---------
Register your own components — no ``repro`` module needs editing:

>>> from repro import register_allocator, register_mapping_strategy
>>> from repro import register_dag_family, register_platform

and they become available to :class:`Experiment`, the experiment runner
and the CLI under the name you registered.  See ``docs/api.md``.

One-off schedules keep the direct API:

>>> from repro import (DagShape, random_layered_dag, GRILLON, RATSParams,
...                    rats_schedule, simulate, spawn_rng)
>>> graph = random_layered_dag(DagShape(n_tasks=25), spawn_rng("demo"))
>>> schedule = rats_schedule(graph, GRILLON, RATSParams("timecost"))
>>> bool(simulate(schedule).makespan > 0)
True
"""

from repro.core import (
    NAIVE_DELTA,
    NAIVE_TIMECOST,
    PAPER_TUNED_PARAMS,
    RATSParams,
    RATSScheduler,
    rats_schedule,
    tuned_params,
)
from repro.dag import (
    ComputeCostConfig,
    DagShape,
    Task,
    TaskGraph,
    annotate_costs,
    fft_dag,
    random_irregular_dag,
    random_layered_dag,
    strassen_dag,
)
from repro.model import AmdahlModel
from repro.platforms import CHTI, GRELON, GRILLON, Cluster, get_cluster
from repro.redistribution import (
    RedistributionCost,
    align_receivers,
    communication_matrix,
    redistribution_flows,
)
from repro.scheduling import (
    ListScheduler,
    Schedule,
    cpa_allocation,
    hcpa_allocation,
    mcpa_allocation,
)
from repro.platforms.multicluster import MultiClusterPlatform
from repro.scheduling.multicluster import (
    MultiClusterListScheduler,
    MultiClusterRATSScheduler,
    reference_allocation,
)
from repro.simulation import FluidSimulator, simulate
from repro.utils import scenario_seed, spawn_rng
from repro.viz import ascii_curves, ascii_gantt, ascii_surface
# NOTE: the registry *instances* (allocators, mapping_strategies,
# dag_families, platforms) stay namespaced under repro.registry — importing
# `platforms` here would shadow the repro.platforms subpackage attribute.
from repro import registry
from repro.registry import (
    Registry,
    UnknownComponentError,
    register_allocator,
    register_dag_family,
    register_mapping_strategy,
    register_platform,
    register_scheduler,
)
from repro.experiments import (
    AlgorithmSpec,
    CampaignPlan,
    Experiment,
    ExperimentResult,
    ExperimentRunner,
    JsonlStore,
    MemoryStore,
    ResultStore,
    RunResult,
    Scenario,
    SqliteStore,
    Stage,
    baseline_spec,
    merge_stores,
    rats_spec,
    run_key,
)
from repro.online import (
    BurstStream,
    JobArrival,
    JobRecord,
    JobStream,
    OnlineMetrics,
    OnlineResult,
    OnlineSimulator,
    PoissonStream,
    ReplayStream,
    stream_from_spec,
)

__version__ = "1.8.0"

__all__ = [
    "__version__",
    # registries & extension API
    "registry",
    "Registry",
    "UnknownComponentError",
    "register_allocator",
    "register_mapping_strategy",
    "register_dag_family",
    "register_platform",
    "register_scheduler",
    # experiment harness
    "Experiment",
    "ExperimentResult",
    "ExperimentRunner",
    "AlgorithmSpec",
    "RunResult",
    "Scenario",
    "baseline_spec",
    "rats_spec",
    "ResultStore",
    "MemoryStore",
    "JsonlStore",
    "SqliteStore",
    "merge_stores",
    "run_key",
    "Stage",
    "CampaignPlan",
    # core (RATS)
    "RATSParams",
    "RATSScheduler",
    "rats_schedule",
    "NAIVE_DELTA",
    "NAIVE_TIMECOST",
    "PAPER_TUNED_PARAMS",
    "tuned_params",
    # application model
    "Task",
    "TaskGraph",
    "DagShape",
    "ComputeCostConfig",
    "annotate_costs",
    "random_layered_dag",
    "random_irregular_dag",
    "fft_dag",
    "strassen_dag",
    "AmdahlModel",
    # platform
    "Cluster",
    "CHTI",
    "GRILLON",
    "GRELON",
    "get_cluster",
    "MultiClusterPlatform",
    "MultiClusterListScheduler",
    "MultiClusterRATSScheduler",
    "reference_allocation",
    # redistribution
    "communication_matrix",
    "redistribution_flows",
    "align_receivers",
    "RedistributionCost",
    # scheduling
    "Schedule",
    "ListScheduler",
    "cpa_allocation",
    "hcpa_allocation",
    "mcpa_allocation",
    # simulation
    "FluidSimulator",
    "simulate",
    # online mode
    "JobArrival",
    "JobStream",
    "PoissonStream",
    "BurstStream",
    "ReplayStream",
    "stream_from_spec",
    "OnlineSimulator",
    "OnlineResult",
    "JobRecord",
    "OnlineMetrics",
    # utils & viz
    "scenario_seed",
    "spawn_rng",
    "ascii_gantt",
    "ascii_curves",
    "ascii_surface",
]
