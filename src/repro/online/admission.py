"""Pluggable admission control for the online engine and the service.

A policy sees each arrival *before* scheduling, along with the engine's
residual view of the platform, and answers admit / reject.  Three ship:

* :class:`AcceptAll` — the open-system baseline (and the policy under
  which the t=0 batch-equivalence holds);
* :class:`QueueCap` — reject when more than ``cap`` admitted jobs are
  still in flight, the classic bounded-queue model;
* :class:`LoadShed` — reject when even the *least-loaded* processor's
  estimated availability lies more than ``max_wait`` seconds out — an
  optimistic lower bound on queueing delay, so load-shed only drops jobs
  that would provably wait at least that long.

Specs like ``"queue-cap:8"`` (see :func:`admission_from_spec`) make
policies addressable from the CLI and the service config.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.online.engine import ResidualState
    from repro.online.stream import JobArrival

__all__ = [
    "AdmissionPolicy",
    "AcceptAll",
    "QueueCap",
    "LoadShed",
    "admission_from_spec",
]


@runtime_checkable
class AdmissionPolicy(Protocol):
    """Admit or reject one arrival against the current residual state."""

    def admit(self, job: "JobArrival", residual: "ResidualState") -> bool: ...


class AcceptAll:
    """Admit every job — the open-system baseline."""

    spec = "accept-all"

    def admit(self, job: "JobArrival", residual: "ResidualState") -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "AcceptAll()"


class QueueCap:
    """Reject once ``cap`` admitted jobs are in flight (bounded queue)."""

    def __init__(self, cap: int) -> None:
        if cap < 1:
            raise ValueError("queue cap must be >= 1")
        self.cap = int(cap)

    @property
    def spec(self) -> str:
        return f"queue-cap:{self.cap}"

    def admit(self, job: "JobArrival", residual: "ResidualState") -> bool:
        return len(residual.in_flight) < self.cap

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"QueueCap({self.cap})"


class LoadShed:
    """Reject when the platform is provably more than ``max_wait`` s behind.

    The test compares ``min(proc_avail) − now`` against ``max_wait``:
    the earliest any processor frees up is an *optimistic* bound on the
    job's queueing delay (its tasks may need busier processors), so every
    shed job would have waited at least ``max_wait``.
    """

    def __init__(self, max_wait: float) -> None:
        if max_wait < 0:
            raise ValueError("max_wait must be >= 0")
        self.max_wait = float(max_wait)

    @property
    def spec(self) -> str:
        return f"load-shed:{self.max_wait:g}"

    def admit(self, job: "JobArrival", residual: "ResidualState") -> bool:
        if not residual.proc_avail:
            return True
        backlog = min(residual.proc_avail) - residual.now
        return backlog <= self.max_wait

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LoadShed({self.max_wait!r})"


def admission_from_spec(spec: str | AdmissionPolicy) -> AdmissionPolicy:
    """Parse ``"accept-all"``, ``"queue-cap:N"`` or ``"load-shed:SECONDS"``.

    An already-built policy passes through, so call sites can accept
    either form.
    """
    if isinstance(spec, AdmissionPolicy) and not isinstance(spec, str):
        return spec
    name, _, arg = str(spec).partition(":")
    if name == "accept-all":
        if arg:
            raise ValueError("accept-all takes no argument")
        return AcceptAll()
    if name == "queue-cap":
        if not arg:
            raise ValueError("queue-cap needs a size, e.g. 'queue-cap:8'")
        return QueueCap(int(arg))
    if name == "load-shed":
        if not arg:
            raise ValueError(
                "load-shed needs a wait bound, e.g. 'load-shed:30'")
        return LoadShed(float(arg))
    raise ValueError(f"unknown admission policy {spec!r}; expected "
                     "accept-all, queue-cap:N or load-shed:SECONDS")
