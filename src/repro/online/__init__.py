"""Open-system (online) simulation: traffic, not batches.

Every other mode of this codebase is a closed-world batch — a static DAG
known up front, one makespan out.  This package adds the open-system view
production schedulers face: DAG-job instances *arrive over time* from a
workload source, the two-step scheduler runs incrementally against the
residual platform state, the job's flows are injected into the **live**
fluid simulation (component-scoped re-solves keep mid-flight injection
cheap), and the reported metrics become per-job distributions —
slowdown, job completion time and SLO attainment — instead of a single
makespan.

Layers
------
:mod:`repro.online.stream`
    Workload sources: the :class:`JobStream` protocol plus Poisson,
    burst (MMPP-style on/off) and replay-from-list generators, all
    deterministic from a seed.
:mod:`repro.online.live`
    :class:`LiveFluidEngine` — the PR 5 component event-heap simulator
    core, made *injectable*: jobs enter mid-flight and only the touched
    link-connected components re-solve.
:mod:`repro.online.engine`
    :class:`OnlineSimulator` — admit → two-step schedule (against the
    current residual platform state) → inject, per arrival.
:mod:`repro.online.admission`
    Pluggable admission control: accept-all, queue-cap, load-shed.
:mod:`repro.online.metrics`
    :class:`JobRecord` and :class:`OnlineMetrics` (p50/p95/p99 JCT and
    slowdown, SLO attainment).
:mod:`repro.online.service`
    The ``repro serve`` asyncio front-end (stdlib-only) and its client
    helper.
"""

from repro.online.admission import (
    AcceptAll,
    AdmissionPolicy,
    LoadShed,
    QueueCap,
    admission_from_spec,
)
from repro.online.engine import OnlineResult, OnlineSimulator, ResidualState
from repro.online.live import LiveFluidEngine
from repro.online.metrics import JobRecord, OnlineMetrics
from repro.online.stream import (
    BurstStream,
    JobArrival,
    JobStream,
    PoissonStream,
    ReplayStream,
    stream_from_spec,
)

__all__ = [
    "AcceptAll",
    "AdmissionPolicy",
    "BurstStream",
    "JobArrival",
    "JobRecord",
    "JobStream",
    "LiveFluidEngine",
    "LoadShed",
    "OnlineMetrics",
    "OnlineResult",
    "OnlineSimulator",
    "PoissonStream",
    "QueueCap",
    "ReplayStream",
    "ResidualState",
    "admission_from_spec",
    "stream_from_spec",
]
