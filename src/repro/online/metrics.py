"""Per-job records and distribution metrics for the online mode.

A batch simulation reports one makespan.  An open system reports *per-job*
outcomes: a :class:`JobRecord` per arrival (admitted or not), rolled up by
:class:`OnlineMetrics` into the distributions operators actually watch —
job completion time (JCT), slowdown, and SLO attainment at percentile
tails.

Conventions
-----------
* ``JCT = completion − arrival`` (queueing *and* service);
* ``slowdown = JCT / (completion − start)`` — time in system relative to
  the job's own execution span, ≥ 1, the classic open-system metric;
* percentiles use the **nearest-rank** definition (the ⌈p·n⌉-th smallest
  sample), so every reported value is an actual observed JCT — no
  interpolation artefacts in the tails;
* SLO attainment is counted over **all** jobs: a rejected or unfinished
  job is a missed SLO, and a job whose JCT lands exactly on the threshold
  attains it (``<=``).

Records are plain JSON-safe dataclasses (``None`` for the fields a
rejected job never gets), so they round-trip through the
:class:`~repro.experiments.store.ResultStore` backends and the service's
wire protocol unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from typing import Iterable, Sequence

__all__ = ["JobRecord", "OnlineMetrics"]


@dataclass(frozen=True)
class JobRecord:
    """Outcome of one job arrival, admitted or not.

    ``start`` is the simulated start of the job's first task and
    ``completion`` the finish of its last; both are ``None`` for jobs the
    admission policy rejected (``admitted=False``) or that never finished.
    ``est_makespan`` is the two-step scheduler's own estimate at admission
    time — comparing it with ``completion − start`` exposes the
    contention the estimate ignores (the §IV-D effect, per job).
    """

    job_id: str
    scenario: str
    algorithm: str
    arrival: float
    admitted: bool
    start: float | None = None
    completion: float | None = None
    est_makespan: float | None = None

    @property
    def finished(self) -> bool:
        return self.completion is not None

    @property
    def jct(self) -> float | None:
        """Job completion time: arrival → completion (None if unfinished)."""
        if self.completion is None:
            return None
        return self.completion - self.arrival

    @property
    def slowdown(self) -> float | None:
        """JCT relative to the job's own execution span (≥ 1)."""
        if self.completion is None or self.start is None:
            return None
        span = self.completion - self.start
        if span <= 0:
            return 1.0
        return (self.completion - self.arrival) / span


def _nearest_rank(sorted_vals: Sequence[float], p: float) -> float:
    """The ⌈p·n⌉-th smallest of pre-sorted ``sorted_vals`` (p in [0, 1])."""
    n = len(sorted_vals)
    rank = max(1, math.ceil(p * n))
    return float(sorted_vals[min(rank, n) - 1])


def _tails(values: list[float]) -> dict[str, float]:
    vals = sorted(values)
    return {"p50": _nearest_rank(vals, 0.50),
            "p95": _nearest_rank(vals, 0.95),
            "p99": _nearest_rank(vals, 0.99),
            "mean": sum(vals) / len(vals),
            "max": vals[-1]}


@dataclass(frozen=True)
class OnlineMetrics:
    """Distribution roll-up of a set of :class:`JobRecord` outcomes."""

    n_jobs: int
    n_admitted: int
    n_rejected: int
    n_finished: int
    jct: dict[str, float] = field(default_factory=dict)
    slowdown: dict[str, float] = field(default_factory=dict)
    slo_threshold: float | None = None
    slo_attainment: float | None = None

    @classmethod
    def from_records(cls, records: Iterable[JobRecord], *,
                     slo: float | None = None) -> "OnlineMetrics":
        """Roll up ``records``; ``slo`` is a JCT threshold in seconds.

        An empty record set yields zero counts and empty distributions
        (attainment ``None`` — there is nothing to attain or miss); with
        records but no finished jobs the distributions stay empty and
        attainment, if an SLO is given, is 0.0.
        """
        records = list(records)
        finished = [r for r in records if r.finished]
        jcts = [r.jct for r in finished]
        slowdowns = [s for r in finished
                     if (s := r.slowdown) is not None]
        attainment: float | None = None
        if slo is not None and records:
            attained = sum(1 for j in jcts if j <= slo)
            attainment = attained / len(records)
        return cls(
            n_jobs=len(records),
            n_admitted=sum(1 for r in records if r.admitted),
            n_rejected=sum(1 for r in records if not r.admitted),
            n_finished=len(finished),
            jct=_tails(jcts) if jcts else {},
            slowdown=_tails(slowdowns) if slowdowns else {},
            slo_threshold=slo,
            slo_attainment=attainment,
        )

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def summary(self) -> str:
        """One human line, for CLI output."""
        parts = [f"jobs={self.n_jobs}", f"finished={self.n_finished}",
                 f"rejected={self.n_rejected}"]
        if self.jct:
            parts.append(f"JCT p50/p95/p99 = {self.jct['p50']:.4g}"
                         f"/{self.jct['p95']:.4g}/{self.jct['p99']:.4g} s")
        if self.slowdown:
            parts.append(f"slowdown p50/p99 = {self.slowdown['p50']:.3g}"
                         f"/{self.slowdown['p99']:.3g}")
        if self.slo_attainment is not None:
            parts.append(f"SLO({self.slo_threshold:g}s) = "
                         f"{100 * self.slo_attainment:.1f}%")
        return "  ".join(parts)
